// EstimateJobBytes is the admission controller's unit of account: every
// job is charged the estimate at submit and discharged exactly once at
// completion (or cancellation, or queue abandonment). These tests pin
// the formula — a silent change would silently re-tune every server's
// admission behavior — and prove charge/discharge symmetry end to end:
// inflight_bytes is the estimate while a job is parked and zero after,
// so no drift accumulates across jobs.

#include <thread>

#include <gtest/gtest.h>

#include "core/job.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

// condensed n(n-1)/2 doubles + 4 n-length arrays per grid value + 64 KiB.
TEST(JobEstimateTest, FormulaIsPinned) {
  EXPECT_EQ(EstimateJobBytes(0, 0), 64u * 1024);
  EXPECT_EQ(EstimateJobBytes(0, 5), 64u * 1024);
  EXPECT_EQ(EstimateJobBytes(1, 0), 64u * 1024);  // no pairs, no grid
  EXPECT_EQ(EstimateJobBytes(2, 1), 8u + 2 * 8 * 4 + 64 * 1024);
  // Iris × the SmallJobSpec grid — the value the service tests observe.
  EXPECT_EQ(EstimateJobBytes(150, 3),
            150u * 149 / 2 * 8 + 3u * 150 * 8 * 4 + 64 * 1024);
  EXPECT_EQ(EstimateJobBytes(150, 3), 169336u);
}

TEST(JobEstimateTest, GrowsWithPointsAndGrid) {
  EXPECT_LT(EstimateJobBytes(100, 3), EstimateJobBytes(200, 3));
  EXPECT_LT(EstimateJobBytes(100, 3), EstimateJobBytes(100, 6));
}

TEST(ServiceJobEstimateTest, ChargeEqualsEstimateAndDischargesToZero) {
  ServiceScratch scratch = MakeServiceScratch();
  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;
  config.threads = 1;
  config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());
  auto submitted = client->Submit(SmallJobSpec());
  ASSERT_TRUE(submitted.ok());
  gate.AwaitParked(1);

  // While the job is parked, the in-flight account holds exactly its
  // estimated charge (iris = 150 points, grid {3,6,9}).
  auto parked_stats = client->Stats();
  ASSERT_TRUE(parked_stats.ok());
  EXPECT_EQ(parked_stats->inflight_bytes, EstimateJobBytes(150, 3));

  gate.Release();
  auto reply = client->Wait(submitted->job_id);
  ASSERT_TRUE(reply.ok());

  // Discharge mirrors the charge exactly: the account returns to zero,
  // with no residue to drift across subsequent jobs.
  auto final_stats = client->Stats();
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->inflight_bytes, 0u);
  server.Stop(/*drain=*/true);
}

TEST(ServiceJobEstimateTest, MemoryLimitBoundaryAdmitsAtExactEstimate) {
  const uint64_t estimate = EstimateJobBytes(150, 3);

  {
    // Limit exactly the estimate: the job fits.
    ServiceScratch scratch = MakeServiceScratch();
    ServerConfig config = ScratchServerConfig(scratch);
    config.threads = 1;
    config.memory_limit_bytes = estimate;
    Server server(config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());
    auto submitted = client->Submit(SmallJobSpec());
    EXPECT_TRUE(submitted.ok());
    server.Stop(/*drain=*/true);
  }
  {
    // One byte under: rejected with the retryable backpressure code.
    ServiceScratch scratch = MakeServiceScratch();
    ServerConfig config = ScratchServerConfig(scratch);
    config.threads = 1;
    config.memory_limit_bytes = estimate - 1;
    Server server(config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());
    auto submitted = client->Submit(SmallJobSpec());
    ASSERT_FALSE(submitted.ok());
    EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->rejected_memory, 1u);
    EXPECT_EQ(stats->inflight_bytes, 0u);  // a rejection charges nothing
    server.Stop(/*drain=*/true);
  }
}

}  // namespace
}  // namespace cvcp
