#include "common/union_find.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumComponents(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.ComponentSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already same
  EXPECT_EQ(uf.NumComponents(), 3u);
  EXPECT_TRUE(uf.Same(0, 2));
  EXPECT_FALSE(uf.Same(0, 3));
  EXPECT_EQ(uf.ComponentSize(1), 3u);
}

TEST(UnionFindTest, ComponentIdsAreCompactAndStable) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(0, 2);
  std::vector<size_t> ids = uf.ComponentIds();
  ASSERT_EQ(ids.size(), 6u);
  // First-appearance numbering: 0 -> 0, 1 -> 1, 2 -> 0, 3 -> 2, 4/5 -> 3.
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(ids[4], ids[5]);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
  EXPECT_EQ(ids[3], 2u);
  EXPECT_EQ(ids[4], 3u);
}

TEST(UnionFindTest, ComponentsGroupMembers) {
  UnionFind uf(5);
  uf.Union(0, 3);
  uf.Union(1, 4);
  auto comps = uf.Components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<size_t>{0, 3}));
  EXPECT_EQ(comps[1], (std::vector<size_t>{1, 4}));
  EXPECT_EQ(comps[2], (std::vector<size_t>{2}));
}

TEST(UnionFindTest, ChainCollapsesToOne) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.NumComponents(), 1u);
  EXPECT_EQ(uf.ComponentSize(0), 100u);
  EXPECT_TRUE(uf.Same(0, 99));
}

}  // namespace
}  // namespace cvcp
