#include "common/matrix.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructWithFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 2.5);
  }
}

TEST(MatrixTest, FromRowsRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(MatrixTest, RowViewReflectsData) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(MatrixTest, MutableRowWrites) {
  Matrix m(2, 2, 0.0);
  auto row = m.MutableRow(0);
  row[1] = 9.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 9.0);
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 3, 0.0);
  m.SetRow(1, std::vector<double>{7, 8, 9});
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 9.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, AppendRowDefinesColsOnEmpty) {
  Matrix m;
  m.AppendRow(std::vector<double>{1, 2, 3});
  m.AppendRow(std::vector<double>{4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, ColumnMeansAllRows) {
  Matrix m = Matrix::FromRows({{1, 10}, {3, 20}});
  std::vector<double> means = m.ColumnMeans();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
}

TEST(MatrixTest, ColumnMeansSubset) {
  Matrix m = Matrix::FromRows({{1, 10}, {3, 20}, {5, 60}});
  std::vector<size_t> idx = {0, 2};
  std::vector<double> means = m.ColumnMeans(idx);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 35.0);
}

TEST(MatrixTest, ColumnMeansEmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.ColumnMeans().empty());
}

TEST(MatrixTest, SelectRowsReorders) {
  Matrix m = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  std::vector<size_t> idx = {2, 0};
  Matrix sel = m.SelectRows(idx);
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel.At(1, 0), 1.0);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1, 2}});
  Matrix c = Matrix::FromRows({{1}, {2}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixDeathTest, FromRowsRejectsRaggedInput) {
  EXPECT_DEATH(Matrix::FromRows({{1, 2}, {3, 4, 5}}), "size");
  EXPECT_DEATH(Matrix::FromRows({{1, 2, 3}, {4}}), "size");
}

TEST(MatrixDeathTest, AppendRowRejectsWrongWidth) {
  Matrix m = Matrix::FromRows({{1, 2}});
  EXPECT_DEATH(m.AppendRow(std::vector<double>{1, 2, 3}), "size");
}

TEST(MatrixDeathTest, SetRowRejectsWrongWidth) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.SetRow(0, std::vector<double>{1, 2}), "size");
  EXPECT_DEATH(m.SetRow(0, std::vector<double>{1, 2, 3, 4}), "size");
}

TEST(MatrixDeathTest, SetRowRejectsOutOfRangeRow) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.SetRow(2, std::vector<double>{1, 2, 3}), "rows_");
}

}  // namespace
}  // namespace cvcp
