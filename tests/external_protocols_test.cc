#include "eval/external_protocols.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Dataset EasyData(uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(3);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {20.0, 0.0};
  specs[2].mean = {0.0, 20.0};
  for (auto& s : specs) {
    s.stddevs = {1.0};
    s.size = 30;
  }
  return MakeGaussianMixture("easy", specs, &rng);
}

TEST(ExternalProtocolsTest, NamesAreStable) {
  EXPECT_STREQ(ExternalProtocolName(ExternalProtocol::kUseAllData),
               "use-all-data");
  EXPECT_STREQ(ExternalProtocolName(ExternalProtocol::kSetAside),
               "set-aside");
  EXPECT_STREQ(ExternalProtocolName(ExternalProtocol::kHoldout), "holdout");
  EXPECT_STREQ(ExternalProtocolName(ExternalProtocol::kNFoldCv),
               "n-fold-cv");
}

TEST(ExternalProtocolsTest, AllProtocolsScoreHighOnEasyData) {
  Dataset data = EasyData();
  MpckMeansClusterer clusterer;
  for (ExternalProtocol p :
       {ExternalProtocol::kUseAllData, ExternalProtocol::kSetAside,
        ExternalProtocol::kHoldout, ExternalProtocol::kNFoldCv}) {
    ExternalEvalConfig config;
    config.protocol = p;
    config.supervision_fraction = 0.2;
    Rng rng(7);
    auto result = EvaluateWithProtocol(data, clusterer, 3, config, &rng);
    ASSERT_TRUE(result.ok()) << ExternalProtocolName(p);
    EXPECT_GT(result->overall_f, 0.9) << ExternalProtocolName(p);
    EXPECT_GT(result->scored_objects, 0u);
  }
}

TEST(ExternalProtocolsTest, ScoredObjectCountsMatchSemantics) {
  Dataset data = EasyData(2);
  MpckMeansClusterer clusterer;
  const size_t n = data.size();

  ExternalEvalConfig all;
  all.protocol = ExternalProtocol::kUseAllData;
  Rng rng1(3);
  auto r_all = EvaluateWithProtocol(data, clusterer, 3, all, &rng1);
  ASSERT_TRUE(r_all.ok());
  EXPECT_EQ(r_all->scored_objects, n);

  ExternalEvalConfig aside;
  aside.protocol = ExternalProtocol::kSetAside;
  aside.supervision_fraction = 0.2;
  Rng rng2(3);
  auto r_aside = EvaluateWithProtocol(data, clusterer, 3, aside, &rng2);
  ASSERT_TRUE(r_aside.ok());
  EXPECT_EQ(r_aside->scored_objects, n - 18);  // 20% of 90

  ExternalEvalConfig holdout;
  holdout.protocol = ExternalProtocol::kHoldout;
  holdout.holdout_fraction = 0.3;
  Rng rng3(3);
  auto r_holdout = EvaluateWithProtocol(data, clusterer, 3, holdout, &rng3);
  ASSERT_TRUE(r_holdout.ok());
  EXPECT_EQ(r_holdout->scored_objects, 27u);  // 30% of 90

  ExternalEvalConfig cv;
  cv.protocol = ExternalProtocol::kNFoldCv;
  cv.n_folds = 5;
  Rng rng4(3);
  auto r_cv = EvaluateWithProtocol(data, clusterer, 3, cv, &rng4);
  ASSERT_TRUE(r_cv.ok());
  EXPECT_EQ(r_cv->scored_objects, n);  // every object scored exactly once
}

TEST(ExternalProtocolsTest, NaiveProtocolInflatesOnSupervisionHeavyData) {
  // With a LOT of supervision, use-all-data scores objects whose pairwise
  // relations the algorithm was literally told; set-aside cannot. On easy
  // data both are ~1 anyway, so use an overlapping mixture where the
  // constraints genuinely help only the supervised objects.
  Rng data_rng(5);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {2.5, 0.0};  // heavy overlap
  for (auto& s : specs) {
    s.stddevs = {1.2};
    s.size = 60;
  }
  Dataset data = MakeGaussianMixture("overlap", specs, &data_rng);
  MpckMeansClusterer clusterer;

  double naive_sum = 0.0, aside_sum = 0.0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    ExternalEvalConfig config;
    config.supervision_fraction = 0.5;
    config.protocol = ExternalProtocol::kUseAllData;
    Rng rng_a(100 + t);
    auto naive = EvaluateWithProtocol(data, clusterer, 2, config, &rng_a);
    ASSERT_TRUE(naive.ok());
    config.protocol = ExternalProtocol::kSetAside;
    Rng rng_b(100 + t);
    auto aside = EvaluateWithProtocol(data, clusterer, 2, config, &rng_b);
    ASSERT_TRUE(aside.ok());
    naive_sum += naive->overall_f;
    aside_sum += aside->overall_f;
  }
  // The naive estimate must not be lower; typically it is visibly higher.
  EXPECT_GE(naive_sum / kTrials, aside_sum / kTrials - 0.02);
}

TEST(ExternalProtocolsTest, RejectsBadConfigs) {
  Dataset data = EasyData(6);
  MpckMeansClusterer clusterer;
  Rng rng(1);
  ExternalEvalConfig config;
  config.supervision_fraction = 0.0;
  EXPECT_FALSE(EvaluateWithProtocol(data, clusterer, 3, config, &rng).ok());
  config = {};
  config.protocol = ExternalProtocol::kHoldout;
  config.holdout_fraction = 1.0;
  EXPECT_FALSE(EvaluateWithProtocol(data, clusterer, 3, config, &rng).ok());
  config = {};
  config.protocol = ExternalProtocol::kNFoldCv;
  config.n_folds = 1;
  EXPECT_FALSE(EvaluateWithProtocol(data, clusterer, 3, config, &rng).ok());
  Dataset unlabeled("u", Matrix::FromRows({{0, 0}, {1, 1}, {2, 2}}));
  config = {};
  EXPECT_EQ(
      EvaluateWithProtocol(unlabeled, clusterer, 2, config, &rng).status()
          .code(),
      StatusCode::kFailedPrecondition);
}

TEST(ExternalProtocolsTest, DeterministicGivenSeed) {
  Dataset data = EasyData(8);
  MpckMeansClusterer clusterer;
  ExternalEvalConfig config;
  config.protocol = ExternalProtocol::kNFoldCv;
  Rng a(9), b(9);
  auto ra = EvaluateWithProtocol(data, clusterer, 3, config, &a);
  auto rb = EvaluateWithProtocol(data, clusterer, 3, config, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->overall_f, rb->overall_f);
}

}  // namespace
}  // namespace cvcp
