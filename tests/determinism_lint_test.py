#!/usr/bin/env python3
"""Self-tests for tools/check_determinism_contract.py.

Each test materializes a minimal fixture tree in a temp directory and
asserts that exactly the expected rule fires (or that a clean tree and
the real repository produce zero findings). Runs under plain unittest —
no third-party dependencies.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "check_determinism_contract.py")

# A CMakeLists.txt that satisfies kernel-fp-contract for the one kernel
# TU the fixtures ship.
GOOD_CMAKE = """
add_library(kernels src/common/distance_kernels.cc)
set_source_files_properties(src/common/distance_kernels.cc PROPERTIES
  COMPILE_OPTIONS "-ffp-contract=off")
"""

CLEAN_KERNEL = """
namespace cvcp {
double SquaredL2(const double* a, const double* b, int d) {
  double acc = 0.0;
  for (int i = 0; i < d; ++i) { double t = a[i] - b[i]; acc = acc + t * t; }
  return acc;
}
}  // namespace cvcp
"""


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def run_linter(root):
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", root, "--format", "json"],
        capture_output=True, text=True)
    assert proc.returncode in (0, 1), proc.stderr
    return proc.returncode, json.loads(proc.stdout)


class FixtureCase(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="detlint-")
        self.addCleanup(shutil.rmtree, self.root)
        write(self.root, "CMakeLists.txt", GOOD_CMAKE)
        write(self.root, os.path.join("src", "common",
                                      "distance_kernels.cc"), CLEAN_KERNEL)

    def rules_fired(self):
        code, report = run_linter(self.root)
        rules = sorted({f["rule"] for f in report["findings"]})
        return code, rules, report

    def test_clean_fixture_has_zero_findings(self):
        code, rules, report = self.rules_fired()
        self.assertEqual(code, 0, report)
        self.assertEqual(rules, [])
        self.assertGreater(report["checked_files"], 0)

    def test_fma_call_in_kernel_fires(self):
        write(self.root, os.path.join("src", "common",
                                      "distance_kernels.cc"),
              "double f(double a, double b, double c) {\n"
              "  return std::fma(a, b, c);\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("kernel-fma", rules)

    def test_fma_intrinsic_in_kernel_fires(self):
        write(self.root, os.path.join("src", "common",
                                      "distance_kernels_avx2.cc"),
              "void f() { acc = _mm256_fmadd_pd(a, b, acc); }\n")
        write(self.root, "CMakeLists.txt", GOOD_CMAKE +
              'set_source_files_properties('
              'src/common/distance_kernels_avx2.cc PROPERTIES '
              'COMPILE_OPTIONS "-mavx2;-ffp-contract=off")\n')
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("kernel-fma", rules)

    def test_kernel_tu_without_fp_contract_off_fires(self):
        write(self.root, "CMakeLists.txt",
              "add_library(kernels src/common/distance_kernels.cc)\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("kernel-fp-contract", rules)

    def test_fast_math_flag_fires(self):
        write(self.root, "CMakeLists.txt",
              GOOD_CMAKE + "add_compile_options(-ffast-math)\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("fast-math", rules)

    def test_std_reduce_outside_kernels_fires(self):
        write(self.root, os.path.join("src", "core", "agg.cc"),
              "#include <numeric>\n"
              "double Sum(const std::vector<double>& v) {\n"
              "  return std::reduce(v.begin(), v.end());\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("std-reduce", rules)

    def test_unordered_accumulation_fires(self):
        write(self.root, os.path.join("src", "core", "score.cc"),
              "double Total(const std::unordered_map<int, double>& w) {\n"
              "  double total = 0.0;\n"
              "  for (const auto& kv : w) {\n"
              "    total += kv.second;\n"
              "  }\n"
              "  return total;\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("unordered-float-accum", rules)

    def test_unseeded_rng_fires(self):
        write(self.root, os.path.join("src", "core", "sample.cc"),
              "#include <random>\n"
              "int Roll() {\n"
              "  std::mt19937 gen;\n"
              "  return static_cast<int>(gen());\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("raw-random", rules)

    def test_random_device_and_time_seed_fire(self):
        write(self.root, os.path.join("src", "core", "seed.cc"),
              "#include <random>\n#include <ctime>\n"
              "unsigned Seed() {\n"
              "  std::random_device rd;\n"
              "  return rd() ^ static_cast<unsigned>(time(nullptr));\n}\n")
        code, rules, report = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("raw-random", rules)
        self.assertGreaterEqual(
            len([f for f in report["findings"]
                 if f["rule"] == "raw-random"]), 2)

    def test_rng_cc_is_exempt_from_raw_random(self):
        write(self.root, os.path.join("src", "common", "rng.cc"),
              "unsigned Entropy() { std::random_device rd; return rd(); }\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 0, rules)

    def test_unannotated_parallel_reduction_fires(self):
        write(self.root, os.path.join("src", "core", "reduce.cc"),
              "void Sum(const ExecutionContext& exec) {\n"
              "  double total = 0.0;\n"
              "  ParallelFor(exec, 100, [&](size_t i) {\n"
              "    total += static_cast<double>(i);\n"
              "  });\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("reduction-allowlist", rules)

    def test_lambda_local_accumulator_does_not_fire(self):
        write(self.root, os.path.join("src", "core", "slots.cc"),
              "void Fill(const ExecutionContext& exec,"
              " std::vector<double>& out) {\n"
              "  ParallelFor(exec, out.size(), [&](size_t i) {\n"
              "    double acc = 0.0;\n"
              "    for (size_t j = 0; j + 4 <= 16; j += 4) acc += 1.0;\n"
              "    out[i] = acc;\n"
              "  });\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 0, rules)

    def test_annotated_reduction_with_registered_tag_passes(self):
        write(self.root, os.path.join("src", "core", "reduce.cc"),
              "void Count(const ExecutionContext& exec) {\n"
              "  std::atomic<int> hits{0};\n"
              "  // determinism: reduction(fixture-hit-count)\n"
              "  ParallelFor(exec, 100, [&](size_t i) {\n"
              "    hits.fetch_add(1, std::memory_order_relaxed);\n"
              "  });\n}\n")
        write(self.root, os.path.join("tools",
                                      "determinism_allowlist.txt"),
              "fixture-hit-count: integer increments commute.\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 0, rules)

    def test_annotated_reduction_with_unregistered_tag_fires(self):
        write(self.root, os.path.join("src", "core", "reduce.cc"),
              "void Count(const ExecutionContext& exec) {\n"
              "  std::atomic<int> hits{0};\n"
              "  // determinism: reduction(no-such-tag)\n"
              "  ParallelFor(exec, 100, [&](size_t i) {\n"
              "    hits.fetch_add(1);\n"
              "  });\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("reduction-allowlist", rules)

    def test_stale_allowlist_tag_fires(self):
        write(self.root, os.path.join("tools",
                                      "determinism_allowlist.txt"),
              "ghost-tag: nothing references this.\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("reduction-allowlist", rules)

    def test_suppression_with_justification_silences_finding(self):
        write(self.root, os.path.join("src", "core", "agg.cc"),
              "double Sum(const std::vector<double>& v) {\n"
              "  // determinism: allow(std-reduce) -- serial container,"
              " single thread, exact order.\n"
              "  return std::reduce(v.begin(), v.end());\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 0, rules)

    def test_bare_suppression_is_rejected(self):
        write(self.root, os.path.join("src", "core", "agg.cc"),
              "double Sum(const std::vector<double>& v) {\n"
              "  // determinism: allow(std-reduce)\n"
              "  return std::reduce(v.begin(), v.end());\n}\n")
        code, rules, _ = self.rules_fired()
        self.assertEqual(code, 1)
        self.assertIn("std-reduce", rules)


class RealTreeCase(unittest.TestCase):
    def test_repository_is_clean(self):
        code, report = run_linter(REPO_ROOT)
        self.assertEqual(
            code, 0,
            "determinism contract violated:\n" + "\n".join(
                f'{f["file"]}:{f["line"]}: [{f["rule"]}] {f["message"]}'
                for f in report["findings"]))


if __name__ == "__main__":
    unittest.main()
