#include "core/cvcp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

Dataset EasyData(uint64_t seed = 1) {
  // Four blobs at fixed, well-separated corners (random blob placement can
  // drop two means next to each other and make "the true k" ambiguous).
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {30.0, 0.0};
  specs[2].mean = {0.0, 30.0};
  specs[3].mean = {30.0, 30.0};
  for (auto& s : specs) {
    s.stddevs = {0.8};
    s.size = 25;
  }
  return MakeGaussianMixture("easy", specs, &rng);
}

TEST(CvcpTest, SelectsTrueKOnSeparatedBlobsMpck) {
  Dataset data = EasyData();
  Rng rng(2);
  auto labeled = SampleLabeledObjects(data, 0.25, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8};
  auto report = RunCvcp(data, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->best_param, 4);
  EXPECT_GT(report->best_score, 0.9);
  EXPECT_EQ(report->scores.size(), 7u);
  // The final clustering is good externally too.
  EXPECT_GT(OverallFMeasure(data.labels(), report->final_clustering), 0.9);
}

TEST(CvcpTest, WorksWithFoscInConstraintScenario) {
  Dataset data = EasyData(3);
  Rng rng(4);
  auto pool = BuildConstraintPool(data, 0.25, &rng);
  ASSERT_TRUE(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  ASSERT_TRUE(sampled.ok());
  Supervision supervision = Supervision::FromConstraints(sampled.value());
  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {3, 6, 9, 12};
  auto report = RunCvcp(data, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->best_score, 0.5);
  // Best param is one of the grid values.
  bool in_grid = false;
  for (int p : config.param_grid) in_grid |= (p == report->best_param);
  EXPECT_TRUE(in_grid);
}

TEST(CvcpTest, ScoresReportedInGridOrder) {
  Dataset data = EasyData(5);
  Rng rng(6);
  auto labeled = SampleLabeledObjects(data, 0.2, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 3;
  config.param_grid = {5, 2, 9};
  auto report = RunCvcp(data, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->scores.size(), 3u);
  EXPECT_EQ(report->scores[0].param, 5);
  EXPECT_EQ(report->scores[1].param, 2);
  EXPECT_EQ(report->scores[2].param, 9);
}

TEST(CvcpTest, TieBreaksTowardEarlierGridEntry) {
  // A degenerate two-point-class dataset where several k are perfect:
  // verify the first grid entry among the argmax set is chosen. We build
  // this indirectly: run twice with reversed grids and check consistency.
  Dataset data = EasyData(7);
  Rng rng_a(8), rng_b(8);
  auto labeled = SampleLabeledObjects(data, 0.25, &rng_a);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  (void)SampleLabeledObjects(data, 0.25, &rng_b);  // keep rngs aligned

  MpckMeansClusterer clusterer;
  CvcpConfig forward;
  forward.cv.n_folds = 5;
  forward.param_grid = {4, 5, 6};
  auto rep_f = RunCvcp(data, supervision, clusterer, forward, &rng_a);
  ASSERT_TRUE(rep_f.ok());

  CvcpConfig reversed = forward;
  reversed.param_grid = {6, 5, 4};
  auto rep_r = RunCvcp(data, supervision, clusterer, reversed, &rng_b);
  ASSERT_TRUE(rep_r.ok());

  // Both runs must pick a param whose score equals their own max score.
  for (const auto& rep : {rep_f.value(), rep_r.value()}) {
    double max_score = -1.0;
    for (const auto& s : rep.scores) {
      if (!std::isnan(s.score)) max_score = std::max(max_score, s.score);
    }
    EXPECT_DOUBLE_EQ(rep.best_score, max_score);
  }
}

TEST(CvcpTest, EmptyGridRejected) {
  Dataset data = EasyData(9);
  Rng rng(10);
  Supervision supervision = Supervision::FromLabels(data, {0, 1, 2, 3, 4});
  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 2;
  auto report = RunCvcp(data, supervision, clusterer, config, &rng);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(CvcpTest, DeterministicGivenSeed) {
  Dataset data = EasyData(11);
  Rng rng(12);
  auto labeled = SampleLabeledObjects(data, 0.2, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  MpckMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {2, 4, 6};
  Rng a(13), b(13);
  auto ra = RunCvcp(data, supervision, clusterer, config, &a);
  auto rb = RunCvcp(data, supervision, clusterer, config, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->best_param, rb->best_param);
  for (size_t i = 0; i < ra->scores.size(); ++i) {
    if (std::isnan(ra->scores[i].score)) {
      EXPECT_TRUE(std::isnan(rb->scores[i].score));
    } else {
      EXPECT_DOUBLE_EQ(ra->scores[i].score, rb->scores[i].score);
    }
  }
  EXPECT_EQ(ra->final_clustering.assignment(),
            rb->final_clustering.assignment());
}

TEST(CvcpTest, KMeansBaselineIgnoresSupervisionButStillSelectsK) {
  Dataset data = EasyData(14);
  Rng rng(15);
  auto labeled = SampleLabeledObjects(data, 0.25, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  KMeansClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6};
  auto report = RunCvcp(data, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  // Even an unsupervised algorithm can be model-selected through the
  // constraint F-measure lens; on well-separated blobs k=4 wins.
  EXPECT_EQ(report->best_param, 4);
}

}  // namespace
}  // namespace cvcp
