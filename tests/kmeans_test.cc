#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 3, 30, 2, 30.0, 0.5, &rng);
  KMeansConfig config;
  config.k = 3;
  auto result = RunKMeans(data.points(), config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.NumClusters(), 3);
  // Perfect recovery expected at this separation.
  const double ari = AdjustedRandIndex(data.labels(), result->clustering);
  EXPECT_GT(ari, 0.99);
  EXPECT_TRUE(result->converged);
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 4, 25, 3, 15.0, 1.5, &rng);
  double prev = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 6; ++k) {
    KMeansConfig config;
    config.k = k;
    config.n_init = 5;
    Rng run_rng(3);
    auto result = RunKMeans(data.points(), config, &run_rng);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev * 1.0001) << "k=" << k;
    prev = result->inertia;
  }
}

TEST(KMeansTest, KOneAssignsEverythingToOneCluster) {
  Rng rng(4);
  Dataset data = MakeBlobs("blobs", 2, 10, 2, 5.0, 1.0, &rng);
  KMeansConfig config;
  config.k = 1;
  auto result = RunKMeans(data.points(), config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.NumClusters(), 1);
  EXPECT_EQ(result->clustering.NumNoise(), 0u);
}

TEST(KMeansTest, KEqualsNIsValid) {
  Rng rng(5);
  Matrix points = Matrix::FromRows({{0, 0}, {10, 0}, {0, 10}});
  KMeansConfig config;
  config.k = 3;
  auto result = RunKMeans(points, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.NumClusters(), 3);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsInvalidConfigs) {
  Rng rng(6);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 1}});
  KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(RunKMeans(points, config, &rng).ok());
  config.k = 3;  // more clusters than points
  EXPECT_FALSE(RunKMeans(points, config, &rng).ok());
  config.k = 2;
  config.max_iters = 0;
  EXPECT_FALSE(RunKMeans(points, config, &rng).ok());
  config.max_iters = 10;
  config.n_init = 0;
  EXPECT_FALSE(RunKMeans(points, config, &rng).ok());
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng data_rng(7);
  Dataset data = MakeBlobs("blobs", 3, 20, 2, 10.0, 1.0, &data_rng);
  KMeansConfig config;
  config.k = 3;
  Rng a(42), b(42);
  auto ra = RunKMeans(data.points(), config, &a);
  auto rb = RunKMeans(data.points(), config, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->clustering.assignment(), rb->clustering.assignment());
  EXPECT_DOUBLE_EQ(ra->inertia, rb->inertia);
}

TEST(KMeansPlusPlusTest, CentroidsAreDataPointsAndSpread) {
  Rng rng(8);
  Matrix points = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {100, 100}, {100.1, 100}, {200, 0}, {200, 0.1}});
  Matrix centroids = KMeansPlusPlusInit(points, 3, &rng);
  EXPECT_EQ(centroids.rows(), 3u);
  // Every centroid must be one of the input points.
  for (size_t c = 0; c < 3; ++c) {
    bool found = false;
    for (size_t i = 0; i < points.rows(); ++i) {
      if (std::equal(centroids.Row(c).begin(), centroids.Row(c).end(),
                     points.Row(i).begin())) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // With three far-apart pairs, D^2 seeding picks one from each pair (this
  // holds deterministically for this geometry across seeds).
  std::set<int> regions;
  for (size_t c = 0; c < 3; ++c) {
    const double x = centroids.Row(c)[0];
    regions.insert(x < 50 ? 0 : (x < 150 ? 1 : 2));
  }
  EXPECT_EQ(regions.size(), 3u);
}

TEST(KMeansTest, MultipleRestartsNeverWorse) {
  Rng data_rng(9);
  Dataset data = MakeBlobs("blobs", 5, 20, 2, 8.0, 1.2, &data_rng);
  KMeansConfig one;
  one.k = 5;
  one.n_init = 1;
  KMeansConfig many = one;
  many.n_init = 10;
  Rng rng_one(10), rng_many(10);
  auto r1 = RunKMeans(data.points(), one, &rng_one);
  auto rn = RunKMeans(data.points(), many, &rng_many);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_LE(rn->inertia, r1->inertia * 1.0001);
}

}  // namespace
}  // namespace cvcp
