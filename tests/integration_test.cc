// End-to-end integration and parameterized property tests: the full CVCP
// pipeline (oracle -> folds -> clusterer -> F-measure -> selection) across
// scenarios, algorithms and fold counts.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "core/cvcp.h"
#include "core/selectors.h"
#include "data/generators.h"
#include "data/iris.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

// ---------------------------------------------------------------------------
// End-to-end checks on real-ish data.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, CvcpWithFoscOnIrisBeatsExpectedQuality) {
  Dataset iris = MakeIris();
  Rng rng(20140324);

  double cvcp_sum = 0.0, expected_sum = 0.0;
  const int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng trial_rng = rng.Fork(static_cast<uint64_t>(trial));
    auto labeled = SampleLabeledObjects(iris, 0.20, &trial_rng);
    ASSERT_TRUE(labeled.ok());
    Supervision supervision = Supervision::FromLabels(iris, labeled.value());

    FoscOpticsDendClusterer clusterer;
    CvcpConfig config;
    config.cv.n_folds = 5;
    config.param_grid = {3, 6, 9, 12, 15, 18, 21, 24};
    auto report = RunCvcp(iris, supervision, clusterer, config, &trial_rng);
    ASSERT_TRUE(report.ok());

    // External scores over the whole grid for the expected quality.
    const std::vector<bool> exclude = supervision.InvolvementMask(iris.size());
    std::vector<double> externals;
    for (int param : config.param_grid) {
      Rng run_rng = trial_rng.Fork(static_cast<uint64_t>(param) + 1000);
      auto clustering = clusterer.Cluster(iris, supervision, param, &run_rng);
      ASSERT_TRUE(clustering.ok());
      externals.push_back(
          OverallFMeasure(iris.labels(), clustering.value(), &exclude));
      if (param == report->best_param) {
        cvcp_sum += externals.back();
      }
    }
    expected_sum += ExpectedQuality(externals);
  }
  // The paper's qualitative claim (Tables 5-7): CVCP >= Expected on Iris.
  EXPECT_GT(cvcp_sum / kTrials, expected_sum / kTrials - 0.02);
}

TEST(IntegrationTest, ConstraintScenarioEndToEndOnIris) {
  Dataset iris = MakeIris();
  Rng rng(7);
  auto pool = BuildConstraintPool(iris, 0.10, &rng);
  ASSERT_TRUE(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  ASSERT_TRUE(sampled.ok());
  Supervision supervision = Supervision::FromConstraints(sampled.value());

  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {3, 6, 9, 12, 15, 18, 21, 24};
  auto report = RunCvcp(iris, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->best_score, 0.5);
  const std::vector<bool> exclude = supervision.InvolvementMask(iris.size());
  EXPECT_GT(OverallFMeasure(iris.labels(), report->final_clustering, &exclude),
            0.55);
}

// ---------------------------------------------------------------------------
// Parameterized property sweep: scenario x algorithm x fold count.
// ---------------------------------------------------------------------------

enum class Algo { kFosc, kMpck, kCop };

struct SweepParam {
  bool label_scenario;
  Algo algo;
  int n_folds;

  std::string Name() const {
    std::string s = label_scenario ? "labels" : "constraints";
    s += algo == Algo::kFosc ? "_fosc" : (algo == Algo::kMpck ? "_mpck" : "_cop");
    s += '_';
    s += std::to_string(n_folds);
    s += "folds";
    return s;
  }
};

class CvcpSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static std::unique_ptr<SemiSupervisedClusterer> MakeClusterer(Algo algo) {
    switch (algo) {
      case Algo::kFosc:
        return std::make_unique<FoscOpticsDendClusterer>();
      case Algo::kMpck:
        return std::make_unique<MpckMeansClusterer>();
      case Algo::kCop:
        return std::make_unique<CopKMeansClusterer>();
    }
    return nullptr;
  }
};

TEST_P(CvcpSweepTest, PipelineProducesValidBoundedScores) {
  const SweepParam p = GetParam();
  Rng rng(0xABCDEF ^ static_cast<uint64_t>(p.n_folds));
  Dataset data = MakeBlobs("sweep", 3, 20, 3, 18.0, 1.2, &rng);

  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  if (p.label_scenario) {
    auto labeled = SampleLabeledObjects(data, 0.30, &rng);
    ASSERT_TRUE(labeled.ok());
    supervision = Supervision::FromLabels(data, labeled.value());
  } else {
    auto pool = BuildConstraintPool(data, 0.25, &rng);
    ASSERT_TRUE(pool.ok());
    supervision = Supervision::FromConstraints(pool.value());
  }

  auto clusterer = MakeClusterer(p.algo);
  CvcpConfig config;
  config.cv.n_folds = p.n_folds;
  config.param_grid = p.algo == Algo::kFosc
                          ? std::vector<int>{3, 6, 9, 12}
                          : std::vector<int>{2, 3, 4, 5};
  auto report = RunCvcp(data, supervision, *clusterer, config, &rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Scores are in [0, 1] or NaN; the selected one is defined and maximal.
  double max_defined = -1.0;
  for (const auto& s : report->scores) {
    if (std::isnan(s.score)) continue;
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.0);
    max_defined = std::max(max_defined, s.score);
  }
  EXPECT_DOUBLE_EQ(report->best_score, max_defined);
  // Final clustering covers the dataset.
  EXPECT_EQ(report->final_clustering.size(), data.size());
  // On separable blobs any of the algorithms should do decently.
  EXPECT_GT(report->best_score, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    ScenarioAlgoFolds, CvcpSweepTest,
    ::testing::Values(
        SweepParam{true, Algo::kFosc, 3}, SweepParam{true, Algo::kFosc, 5},
        SweepParam{true, Algo::kMpck, 3}, SweepParam{true, Algo::kMpck, 5},
        SweepParam{true, Algo::kCop, 3}, SweepParam{false, Algo::kFosc, 3},
        SweepParam{false, Algo::kFosc, 5}, SweepParam{false, Algo::kMpck, 3},
        SweepParam{false, Algo::kMpck, 5}, SweepParam{false, Algo::kCop, 3},
        SweepParam{true, Algo::kFosc, 10}, SweepParam{false, Algo::kMpck, 10}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.Name();
    });

// ---------------------------------------------------------------------------
// Parameterized leakage property: sound folds never leak, across seeds.
// ---------------------------------------------------------------------------

class FoldSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FoldSoundnessTest, TrainClosureNeverImpliesTestConstraint) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  Dataset data = MakeBlobs("sound", 4, 15, 2, 10.0, 2.0, &rng);
  auto pool = BuildConstraintPool(data, 0.35, &rng);
  ASSERT_TRUE(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.6, &rng);
  ASSERT_TRUE(sampled.ok());
  Supervision supervision = Supervision::FromConstraints(sampled.value());
  auto folds = MakeSupervisionFolds(data, supervision, {.n_folds = 5}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& fold : *folds) {
    auto train_closure = TransitiveClosure(fold.train_constraints);
    ASSERT_TRUE(train_closure.ok());
    for (const Constraint& c : fold.test_constraints.all()) {
      EXPECT_FALSE(train_closure->Lookup(c.a, c.b).has_value())
          << "seed " << seed << " leaked " << ConstraintToString(c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldSoundnessTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace cvcp
