#include "constraints/transitive_closure.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

// The paper's Figure 2: ML(A,B), ML(C,D), CL(B,C) induce CL(A,C), CL(A,D),
// CL(B,D). Objects: A=0, B=1, C=2, D=3.
TEST(TransitiveClosureTest, PaperFigure2Example) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(2, 3).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());

  auto closure = TransitiveClosure(cs);
  ASSERT_TRUE(closure.ok());
  // 2 must-links + all 4 cross cannot-links.
  EXPECT_EQ(closure->num_must_links(), 2u);
  EXPECT_EQ(closure->num_cannot_links(), 4u);
  EXPECT_EQ(closure->Lookup(0, 2), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(0, 3), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(1, 3), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(1, 2), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(0, 1), ConstraintType::kMustLink);
  EXPECT_EQ(closure->Lookup(2, 3), ConstraintType::kMustLink);
}

// The paper's counter-example: CL(A,B), CL(C,D), ML(B,C) induce CL(A,C) and
// CL(B,D) but say nothing about (A,D).
TEST(TransitiveClosureTest, PaperFigure2OppositeExample) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddCannotLink(0, 1).ok());
  ASSERT_TRUE(cs.AddCannotLink(2, 3).ok());
  ASSERT_TRUE(cs.AddMustLink(1, 2).ok());

  auto closure = TransitiveClosure(cs);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->Lookup(0, 2), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(1, 3), ConstraintType::kCannotLink);
  EXPECT_EQ(closure->Lookup(1, 2), ConstraintType::kMustLink);
  // (A,D) must remain unknown.
  EXPECT_FALSE(closure->Lookup(0, 3).has_value());
}

TEST(TransitiveClosureTest, MustLinkChainCollapses) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(1, 2).ok());
  ASSERT_TRUE(cs.AddMustLink(2, 3).ok());
  auto closure = TransitiveClosure(cs);
  ASSERT_TRUE(closure.ok());
  // 4 objects in one component => C(4,2) = 6 must-links.
  EXPECT_EQ(closure->num_must_links(), 6u);
  EXPECT_EQ(closure->Lookup(0, 3), ConstraintType::kMustLink);
}

TEST(TransitiveClosureTest, InconsistencyDetected) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(1, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(0, 2).ok());  // contradicts the ML chain
  auto closure = TransitiveClosure(cs);
  EXPECT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kInconsistentConstraints);
  EXPECT_FALSE(IsConsistent(cs));
}

TEST(TransitiveClosureTest, ConsistentInputReported) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());
  EXPECT_TRUE(IsConsistent(cs));
}

TEST(TransitiveClosureTest, EmptySetClosesToEmpty) {
  auto closure = TransitiveClosure(ConstraintSet{});
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(closure->empty());
}

TEST(TransitiveClosureTest, ClosureContainsInput) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(4, 7).ok());
  ASSERT_TRUE(cs.AddCannotLink(7, 9).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 4).ok());
  auto closure = TransitiveClosure(cs);
  ASSERT_TRUE(closure.ok());
  for (const Constraint& c : cs.all()) {
    EXPECT_EQ(closure->Lookup(c.a, c.b), c.type)
        << ConstraintToString(c);
  }
}

TEST(TransitiveClosureTest, ClosureIsIdempotent) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(2, 3).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(cs.AddMustLink(5, 6).ok());
  auto once = TransitiveClosure(cs);
  ASSERT_TRUE(once.ok());
  auto twice = TransitiveClosure(once.value());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->size(), twice->size());
  for (const Constraint& c : once->all()) {
    EXPECT_EQ(twice->Lookup(c.a, c.b), c.type);
  }
}

TEST(BuildConstraintComponentsTest, ComponentStructure) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(2, 3).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(0, 5).ok());  // 5 is a CL-only singleton

  auto comps = BuildConstraintComponents(cs);
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(comps->components.size(), 3u);  // {0,1}, {2,3}, {5}
  EXPECT_EQ(comps->involved_objects, (std::vector<size_t>{0, 1, 2, 3, 5}));
  EXPECT_EQ(comps->cannot_edges.size(), 2u);
}

TEST(BuildConstraintComponentsTest, DedupesComponentLevelCannotEdges) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(2, 3).ok());
  // Two CL edges between the same pair of components.
  ASSERT_TRUE(cs.AddCannotLink(0, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 3).ok());
  auto comps = BuildConstraintComponents(cs);
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(comps->cannot_edges.size(), 1u);
}

}  // namespace
}  // namespace cvcp
