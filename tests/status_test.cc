#include "common/status.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::InconsistentConstraints("x").code(),
            StatusCode::kInconsistentConstraints);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CVCP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CVCP_ASSIGN_OR_RETURN(int h, Half(x));
  CVCP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnHappyPath) {
  auto r = helpers::Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesFromEitherStep) {
  EXPECT_FALSE(helpers::Quarter(5).ok());   // first Half fails
  EXPECT_FALSE(helpers::Quarter(6).ok());   // second Half fails (3 is odd)
  EXPECT_TRUE(helpers::Quarter(12).ok());
}

}  // namespace
}  // namespace cvcp
