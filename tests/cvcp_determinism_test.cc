// Determinism suite for the parallel CVCP execution engine: RunCvcp must
// produce byte-identical reports for every thread count, on both
// supervision scenarios. Scores are compared through their bit patterns so
// even sign-of-zero or NaN-payload drift would fail.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Dataset FixtureData(uint64_t seed) {
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {30.0, 0.0};
  specs[2].mean = {0.0, 30.0};
  specs[3].mean = {30.0, 30.0};
  for (auto& spec : specs) {
    spec.stddevs = {0.8};
    spec.size = 25;
  }
  return MakeGaussianMixture("fixture", specs, &rng);
}

/// Scenario I fixture: labeled objects + MPCKMeans.
struct LabelFixture {
  Dataset data = FixtureData(101);
  Supervision supervision = [this] {
    Rng rng(102);
    auto labeled = SampleLabeledObjects(data, 0.25, &rng);
    CVCP_CHECK(labeled.ok());
    return Supervision::FromLabels(data, labeled.value());
  }();
  MpckMeansClusterer clusterer;
};

/// Scenario II fixture: pairwise constraints + FOSC.
struct ConstraintFixture {
  Dataset data = FixtureData(201);
  Supervision supervision = [this] {
    Rng rng(202);
    auto pool = BuildConstraintPool(data, 0.25, &rng);
    CVCP_CHECK(pool.ok());
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    CVCP_CHECK(sampled.ok());
    return Supervision::FromConstraints(sampled.value());
  }();
  FoscOpticsDendClusterer clusterer;
};

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

/// Asserts two reports are byte-identical in every deterministic field
/// (cell timings are wall-clock and legitimately differ).
void ExpectReportsIdentical(const CvcpReport& a, const CvcpReport& b,
                            int threads) {
  EXPECT_EQ(a.best_param, b.best_param) << "threads " << threads;
  EXPECT_EQ(Bits(a.best_score), Bits(b.best_score)) << "threads " << threads;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << "threads " << threads;
  for (size_t g = 0; g < a.scores.size(); ++g) {
    EXPECT_EQ(a.scores[g].param, b.scores[g].param)
        << "grid " << g << ", threads " << threads;
    EXPECT_EQ(a.scores[g].valid_folds, b.scores[g].valid_folds)
        << "grid " << g << ", threads " << threads;
    EXPECT_EQ(Bits(a.scores[g].score), Bits(b.scores[g].score))
        << "grid " << g << ", threads " << threads;
  }
  EXPECT_EQ(a.final_clustering.assignment(), b.final_clustering.assignment())
      << "threads " << threads;
}

template <typename Fixture>
void CheckThreadCountInvariance(const Fixture& fixture,
                                const CvcpConfig& base_config) {
  CvcpConfig config = base_config;
  config.cv.exec = ExecutionContext::Serial();
  Rng serial_rng(303);
  auto serial = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                        config, &serial_rng);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : {2, 8}) {
    config.cv.exec.threads = threads;
    Rng rng(303);
    auto parallel = RunCvcp(fixture.data, fixture.supervision,
                            fixture.clusterer, config, &rng);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectReportsIdentical(*serial, *parallel, threads);
  }
}

TEST(CvcpDeterminismTest, ScenarioOneLabelsMpckMeansBitIdentical) {
  LabelFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8};
  CheckThreadCountInvariance(fixture, config);
}

TEST(CvcpDeterminismTest, ScenarioTwoConstraintsFoscBitIdentical) {
  ConstraintFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {3, 6, 9, 12};
  CheckThreadCountInvariance(fixture, config);
}

// Cost-sorted execution (the default) permutes the order cells *run* in;
// the reduction stays in (grid-order, fold-order), so the report must be
// byte-identical whether the cost model is on, off, or fed real measured
// timings — on both supervision scenarios.
template <typename Fixture>
void CheckCostModelInvariance(const Fixture& fixture,
                              const CvcpConfig& base_config) {
  CvcpConfig config = base_config;
  config.cv.exec = ExecutionContext::Serial();
  Rng serial_rng(707);
  auto serial = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                        config, &serial_rng);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // Harvest real per-cell timings to drive the measured-cost schedule.
  config.cv.exec.threads = 4;
  config.collect_timings = true;
  Rng timing_rng(707);
  auto timed = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                       config, &timing_rng);
  ASSERT_TRUE(timed.ok()) << timed.status().ToString();
  ExpectReportsIdentical(*serial, *timed, 4);

  struct ModelCase {
    const char* name;
    bool sort_by_cost;
    bool with_prior;
  };
  const ModelCase cases[] = {
      {"estimate-sorted", true, false},
      {"measured-sorted", true, true},
      {"unsorted", false, false},
  };
  for (const ModelCase& model : cases) {
    for (int threads : {2, 8}) {
      config.cv.exec.threads = threads;
      config.cv.cost.sort_by_cost = model.sort_by_cost;
      config.cv.cost.prior_timings =
          model.with_prior ? timed->cell_timings
                           : std::vector<CvCellTiming>{};
      Rng rng(707);
      auto parallel = RunCvcp(fixture.data, fixture.supervision,
                              fixture.clusterer, config, &rng);
      ASSERT_TRUE(parallel.ok())
          << model.name << ": " << parallel.status().ToString();
      SCOPED_TRACE(model.name);
      ExpectReportsIdentical(*serial, *parallel, threads);
    }
  }
}

TEST(CvcpDeterminismTest, CostSortedLabelsMpckMeansBitIdentical) {
  LabelFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8};
  CheckCostModelInvariance(fixture, config);
}

TEST(CvcpDeterminismTest, CostSortedConstraintsFoscBitIdentical) {
  ConstraintFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {3, 6, 9, 12};
  CheckCostModelInvariance(fixture, config);
}

TEST(CostModelTest, EstimateGrowsWithParamAndTrainingSize) {
  EXPECT_GT(CellCostModel::EstimateCost(5, 100),
            CellCostModel::EstimateCost(2, 100));
  EXPECT_GT(CellCostModel::EstimateCost(5, 100),
            CellCostModel::EstimateCost(5, 10));
  // Negative params cost by magnitude, and the estimate is never zero.
  EXPECT_EQ(CellCostModel::EstimateCost(-5, 100),
            CellCostModel::EstimateCost(5, 100));
  EXPECT_GT(CellCostModel::EstimateCost(0, 0), 0.0);
}

TEST(CvcpDeterminismTest, TimingsCoverEveryCellInGridFoldOrder) {
  LabelFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 3;
  config.param_grid = {4, 2, 6};
  config.collect_timings = true;
  config.cv.exec.threads = 2;
  Rng rng(404);
  auto report = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                        config, &rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->cell_timings.size(),
            config.param_grid.size() * static_cast<size_t>(config.cv.n_folds));
  size_t cell = 0;
  for (int param : config.param_grid) {
    for (int fold = 0; fold < config.cv.n_folds; ++fold, ++cell) {
      EXPECT_EQ(report->cell_timings[cell].param, param) << "cell " << cell;
      EXPECT_EQ(report->cell_timings[cell].fold, fold) << "cell " << cell;
      EXPECT_GE(report->cell_timings[cell].wall_ms, 0.0) << "cell " << cell;
    }
  }
}

TEST(CvcpDeterminismTest, TimingsOffByDefault) {
  LabelFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 3;
  config.param_grid = {3, 4};
  Rng rng(505);
  auto report = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                        config, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->cell_timings.empty());
}

}  // namespace
}  // namespace cvcp
