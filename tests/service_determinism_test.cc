// End-to-end determinism of the service layer: the report a client gets
// back from cvcp_serve must be byte-identical to a direct in-process
// RunJob of the same spec — for every server thread width, executor
// batch, client concurrency, and cache temperature. This is the ISSUE's
// acceptance gate: the server adds queueing, batching, caching, and a
// wire protocol, and none of it may perturb a single byte.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/job.h"
#include "service/client.h"
#include "service/dataset_resolver.h"
#include "service/server.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

/// The direct (no server) encoding of a spec's report — the byte string
/// every served reply is compared against.
std::string DirectBytes(const JobSpec& spec, int threads) {
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  CVCP_CHECK(data.ok());
  JobContext context;
  context.exec.threads = threads;
  auto report = RunJob(**data, spec, context);
  CVCP_CHECK(report.ok());
  return EncodeCvcpReport(report.value());
}

/// Submit + wait over a fresh connection; returns the stored report
/// bytes exactly as the server sent them.
std::string SubmitAndWait(const std::string& socket, const JobSpec& spec) {
  auto client = Client::Connect(socket);
  CVCP_CHECK(client.ok());
  auto submitted = client->Submit(spec);
  CVCP_CHECK(submitted.ok());
  auto reply = client->Wait(submitted->job_id);
  CVCP_CHECK(reply.ok());
  return reply->report_bytes;
}

TEST(ServiceDeterminismTest, ServedMatchesDirectAcrossThreadWidths) {
  const JobSpec spec = SmallJobSpec();
  const std::string direct = DirectBytes(spec, /*threads=*/1);
  // The direct baseline itself must be width-independent.
  EXPECT_EQ(DirectBytes(spec, /*threads=*/2), direct);

  for (int threads : {1, 2, 8}) {
    ServiceScratch scratch = MakeServiceScratch();
    ServerConfig config = ScratchServerConfig(scratch);
    config.threads = threads;
    Server server(config);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct)
        << "server threads=" << threads;
    server.Stop(/*drain=*/true);
  }
}

TEST(ServiceDeterminismTest, FourConcurrentClientsAllMatchDirect) {
  const JobSpec spec = SmallJobSpec();
  const std::string direct = DirectBytes(spec, /*threads=*/0);

  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 2;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> sessions;
  sessions.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    sessions.emplace_back([&, c] {
      // Vary only the per-client connection, never the spec: all four
      // race through the shared cache pool and must agree anyway.
      replies[static_cast<size_t>(c)] =
          SubmitAndWait(scratch.socket, spec);
    });
  }
  for (std::thread& t : sessions) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(replies[static_cast<size_t>(c)], direct) << "client " << c;
  }

  // Four admissions of the same spec = versions 1..4 on one chain.
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());
  auto versions = client->Versions(JobSpecHash(spec));
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 4u);
  server.Stop(/*drain=*/true);
}

TEST(ServiceDeterminismTest, WarmArtifactStoreServesModelsWithoutRebuilds) {
  const JobSpec spec = SmallJobSpec();
  const std::string direct = DirectBytes(spec, /*threads=*/0);
  ServiceScratch scratch = MakeServiceScratch();

  // First server: cold caches, must build models.
  {
    Server server(ScratchServerConfig(scratch));
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct);
    const StatsReply stats = server.Stats();
    EXPECT_GT(stats.model_builds, 0u);
    EXPECT_EQ(stats.completed, 1u);
    server.Stop(/*drain=*/true);
  }

  // Second server over the same store: every model comes off disk.
  {
    Server server(ScratchServerConfig(scratch));
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct);
    const StatsReply stats = server.Stats();
    EXPECT_EQ(stats.model_builds, 0u)
        << "warm acceptance: the second submission must not rebuild";
    EXPECT_GT(stats.model_loads, 0u);
    server.Stop(/*drain=*/true);
  }
}

TEST(ServiceDeterminismTest, InMemoryWarmResubmissionMatchesAndSkipsBuilds) {
  const JobSpec spec = SmallJobSpec();
  const std::string direct = DirectBytes(spec, /*threads=*/0);
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.store_dir.clear();  // memory tier only
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct);
  const StatsReply cold = server.Stats();
  EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct);
  const StatsReply warm = server.Stats();
  EXPECT_EQ(warm.model_builds, cold.model_builds)
      << "resubmission must be served from the memory cache";
  EXPECT_GT(warm.model_hits, cold.model_hits);
  server.Stop(/*drain=*/true);
}

TEST(ServiceDeterminismTest, VersionChainsAndFetchOfOlderVersions) {
  const JobSpec spec = SmallJobSpec();
  JobSpec other = spec;
  other.cvcp_seed = 99;

  ServiceScratch scratch = MakeServiceScratch();
  Server server(ScratchServerConfig(scratch));
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  auto first = client->Submit(spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->version, 1u);
  auto first_reply = client->Wait(first->job_id);
  ASSERT_TRUE(first_reply.ok());

  auto second = client->Submit(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->version, 2u) << "same spec → next version on the chain";
  EXPECT_EQ(second->spec_hash, first->spec_hash);
  auto second_reply = client->Wait(second->job_id);
  ASSERT_TRUE(second_reply.ok());

  auto unrelated = client->Submit(other);
  ASSERT_TRUE(unrelated.ok());
  EXPECT_EQ(unrelated->version, 1u) << "different spec → its own chain";
  EXPECT_NE(unrelated->spec_hash, first->spec_hash);
  ASSERT_TRUE(client->Wait(unrelated->job_id).ok());

  auto versions = client->Versions(first->spec_hash);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0], first->job_id);
  EXPECT_EQ((*versions)[1], second->job_id);

  // Any prior version is still fetchable, byte-identical to when it was
  // stored (and to every sibling on the chain — same spec, same bytes).
  auto refetched = client->Fetch(first->job_id);
  ASSERT_TRUE(refetched.ok());
  EXPECT_EQ(refetched->report_bytes, first_reply->report_bytes);
  EXPECT_EQ(refetched->report_bytes, second_reply->report_bytes);
  EXPECT_EQ(refetched->version, 1u);

  auto missing = client->Fetch(999999);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  server.Stop(/*drain=*/true);
}

TEST(ServiceDeterminismTest, LabelScenarioAndOtherClusterersMatchDirect) {
  // A second spec shape through the full stack: Scenario I (labels) with
  // the partitional clusterer, so the service determinism contract is
  // pinned on both supervision paths.
  JobSpec spec = SmallJobSpec();
  spec.clusterer = "mpck";
  spec.scenario = SupervisionKind::kLabels;
  spec.param_grid = {2, 3};
  const std::string direct = DirectBytes(spec, /*threads=*/0);

  ServiceScratch scratch = MakeServiceScratch();
  Server server(ScratchServerConfig(scratch));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(SubmitAndWait(scratch.socket, spec), direct);
  server.Stop(/*drain=*/true);
}

}  // namespace
}  // namespace cvcp
