// The paper's motivating contrast: density-based semi-supervised clustering
// recovers arbitrarily-shaped clusters where centroid methods cannot, and
// internal relative criteria (silhouette) mislead on such shapes. These
// tests pin that behaviour on moons/rings/expression-ray data.

#include <gtest/gtest.h>

#include "cluster/dendrogram.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/optics.h"
#include "cluster/silhouette.h"
#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "data/generators.h"
#include "data/paper_suites.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

/// FOSC-OPTICSDend with ground-truth constraints from `fraction` labels.
double FoscQuality(const Dataset& data, int min_pts, double fraction,
                   uint64_t seed) {
  Rng rng(seed);
  auto labeled = SampleLabeledObjects(data, fraction, &rng);
  CVCP_CHECK(labeled.ok());
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), labeled.value());
  OpticsConfig oc;
  oc.min_pts = min_pts;
  auto optics = RunOptics(data.points(), oc);
  CVCP_CHECK(optics.ok());
  Dendrogram dg = Dendrogram::FromReachability(optics.value());
  auto fosc = ExtractClusters(dg, constraints, FoscConfig{});
  CVCP_CHECK(fosc.ok());
  return AdjustedRandIndex(data.labels(), fosc->clustering);
}

double KMeansQuality(const Dataset& data, int k, uint64_t seed) {
  Rng rng(seed);
  KMeansConfig config;
  config.k = k;
  config.n_init = 10;
  auto result = RunKMeans(data.points(), config, &rng);
  CVCP_CHECK(result.ok());
  return AdjustedRandIndex(data.labels(), result->clustering);
}

TEST(NonConvexTest, MoonsDensityBeatsCentroid) {
  Rng rng(1);
  Dataset moons = MakeTwoMoons("moons", 120, 0.06, &rng);
  const double fosc = FoscQuality(moons, 5, 0.10, 2);
  const double km = KMeansQuality(moons, 2, 2);
  EXPECT_GT(fosc, 0.9);
  EXPECT_LT(km, 0.7);
  EXPECT_GT(fosc, km);
}

TEST(NonConvexTest, RingsDensityBeatsCentroid) {
  Rng rng(3);
  Dataset rings = MakeRings("rings", {1.0, 4.0, 8.0}, 80, 0.08, &rng);
  const double fosc = FoscQuality(rings, 5, 0.10, 4);
  const double km = KMeansQuality(rings, 3, 4);
  EXPECT_GT(fosc, 0.9);
  EXPECT_LT(km, 0.5);
}

TEST(NonConvexTest, ZyeastLikeReproducesParadigmGap) {
  // The paper's Tables 5-16: FOSC-OPTICSDend scores much higher than
  // MPCKMeans on Zyeast. Check with ground-truth-derived supervision.
  Dataset zyeast = MakeZyeastLike(20140324);
  const double fosc = FoscQuality(zyeast, 3, 0.10, 5);

  Rng rng(6);
  auto labeled = SampleLabeledObjects(zyeast, 0.10, &rng);
  ASSERT_TRUE(labeled.ok());
  ConstraintSet constraints =
      ConstraintSet::FromLabels(zyeast.labels(), labeled.value());
  MpckMeansConfig config;
  config.k = 4;
  auto mpck = RunMpckMeans(zyeast.points(), constraints, config, &rng);
  ASSERT_TRUE(mpck.ok());
  const double mpck_ari = AdjustedRandIndex(zyeast.labels(), mpck->clustering);

  EXPECT_GT(fosc, mpck_ari);
  EXPECT_GT(fosc, 0.8);
}

TEST(NonConvexTest, SilhouetteMisleadsOnMoons) {
  // Silhouette prefers a convex split of the moons over the true one —
  // the paper's argument for why internal criteria cannot replace CVCP on
  // arbitrary shapes.
  Rng rng(7);
  Dataset moons = MakeTwoMoons("moons", 120, 0.06, &rng);
  Clustering truth(moons.labels());
  KMeansConfig config;
  config.k = 2;
  config.n_init = 10;
  auto km = RunKMeans(moons.points(), config, &rng);
  ASSERT_TRUE(km.ok());
  const double sil_truth = SilhouetteCoefficient(moons.points(), truth);
  const double sil_kmeans =
      SilhouetteCoefficient(moons.points(), km->clustering);
  EXPECT_GT(sil_kmeans, sil_truth);
}

TEST(NonConvexTest, CvcpPicksWorkingMinPtsOnMoons) {
  Rng rng(8);
  Dataset moons = MakeTwoMoons("moons", 120, 0.06, &rng);
  auto labeled = SampleLabeledObjects(moons, 0.15, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(moons, labeled.value());
  FoscOpticsDendClusterer clusterer;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = DefaultMinPtsGrid();
  auto report = RunCvcp(moons, supervision, clusterer, config, &rng);
  ASSERT_TRUE(report.ok());
  std::vector<bool> exclude = supervision.InvolvementMask(moons.size());
  const double f =
      OverallFMeasure(moons.labels(), report->final_clustering, &exclude);
  EXPECT_GT(f, 0.85);
}

}  // namespace
}  // namespace cvcp
