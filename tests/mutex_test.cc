#include "common/mutex.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cvcp {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  // A held mutex refuses TryLock from another thread (same-thread
  // try_lock on a held std::mutex is UB, so probe cross-thread).
  bool acquired = true;
  std::thread probe([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST(MutexTest, CondVarWaitObservesNotifiedChange) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    mu.Lock();
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
    mu.Unlock();
  }
  producer.join();
}

TEST(MutexTest, CondVarNotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    mu.Lock();
    while (stage == 0) cv.Wait(&mu);
    stage = 2;
    mu.Unlock();
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    stage = 1;
  }
  cv.NotifyOne();
  {
    mu.Lock();
    while (stage != 2) cv.Wait(&mu);
    mu.Unlock();
  }
  waiter.join();
  EXPECT_EQ(stage, 2);
}

}  // namespace
}  // namespace cvcp
