#include "constraints/folds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "constraints/transitive_closure.h"
#include "data/generators.h"

namespace cvcp {
namespace {

std::vector<int> MakeLabels(size_t n, int classes) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % classes);
  return labels;
}

TEST(LabelFoldsTest, PartitionsObjectsExactly) {
  Rng rng(1);
  std::vector<int> labels = MakeLabels(40, 4);
  std::vector<size_t> objects;
  for (size_t i = 0; i < 40; i += 2) objects.push_back(i);  // 20 labeled

  auto folds = MakeLabelFolds(objects, labels, 40, {.n_folds = 5}, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);

  std::multiset<size_t> all_test;
  for (const FoldSplit& f : *folds) {
    // Train and test partition the labeled objects.
    EXPECT_EQ(f.train_objects.size() + f.test_objects.size(), 20u);
    std::set<size_t> train(f.train_objects.begin(), f.train_objects.end());
    for (size_t o : f.test_objects) EXPECT_FALSE(train.count(o));
    for (size_t o : f.test_objects) all_test.insert(o);
    // Fold sizes within 1 of each other.
    EXPECT_GE(f.test_objects.size(), 4u);
    EXPECT_LE(f.test_objects.size(), 4u);
  }
  // Every labeled object is in exactly one test fold.
  EXPECT_EQ(all_test.size(), 20u);
  EXPECT_EQ(std::set<size_t>(all_test.begin(), all_test.end()).size(), 20u);
}

TEST(LabelFoldsTest, TrainLabelsMatchTrainObjectsOnly) {
  Rng rng(2);
  std::vector<int> labels = MakeLabels(30, 3);
  std::vector<size_t> objects;
  for (size_t i = 0; i < 30; ++i) objects.push_back(i);
  auto folds = MakeLabelFolds(objects, labels, 30, {.n_folds = 3}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& f : *folds) {
    ASSERT_EQ(f.train_labels.size(), 30u);
    for (size_t o = 0; o < 30; ++o) {
      const bool in_train = std::binary_search(f.train_objects.begin(),
                                               f.train_objects.end(), o);
      if (in_train) {
        EXPECT_EQ(f.train_labels[o], labels[o]);
      } else {
        EXPECT_EQ(f.train_labels[o], -1);
      }
    }
  }
}

TEST(LabelFoldsTest, ConstraintsDerivedPerSide) {
  Rng rng(3);
  std::vector<int> labels = MakeLabels(12, 2);
  std::vector<size_t> objects(12);
  for (size_t i = 0; i < 12; ++i) objects[i] = i;
  auto folds = MakeLabelFolds(objects, labels, 12, {.n_folds = 4}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& f : *folds) {
    const size_t tr = f.train_objects.size();
    const size_t te = f.test_objects.size();
    EXPECT_EQ(f.train_constraints.size(), tr * (tr - 1) / 2);
    EXPECT_EQ(f.test_constraints.size(), te * (te - 1) / 2);
  }
}

TEST(LabelFoldsTest, StratifiedKeepsClassBalancePerFold) {
  Rng rng(4);
  // 4 classes x 10 objects, 5 folds => exactly 2 per class per fold.
  std::vector<int> labels(40);
  for (size_t i = 0; i < 40; ++i) labels[i] = static_cast<int>(i / 10);
  std::vector<size_t> objects(40);
  for (size_t i = 0; i < 40; ++i) objects[i] = i;
  auto folds =
      MakeLabelFolds(objects, labels, 40,
                     {.n_folds = 5, .stratified = true}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& f : *folds) {
    std::vector<int> per_class(4, 0);
    for (size_t o : f.test_objects) per_class[static_cast<size_t>(labels[o])]++;
    for (int c = 0; c < 4; ++c) EXPECT_EQ(per_class[static_cast<size_t>(c)], 2);
  }
}

TEST(LabelFoldsTest, RejectsBadArguments) {
  Rng rng(5);
  std::vector<int> labels = MakeLabels(10, 2);
  std::vector<size_t> objects = {0, 1, 2};
  EXPECT_FALSE(MakeLabelFolds(objects, labels, 10, {.n_folds = 1}, &rng).ok());
  EXPECT_FALSE(MakeLabelFolds(objects, labels, 10, {.n_folds = 4}, &rng).ok());
}

// --- Scenario II ---

ConstraintSet Fig2Constraints() {
  ConstraintSet cs;
  CVCP_CHECK(cs.AddMustLink(0, 1).ok());
  CVCP_CHECK(cs.AddMustLink(2, 3).ok());
  CVCP_CHECK(cs.AddCannotLink(1, 2).ok());
  return cs;
}

TEST(ConstraintFoldsTest, ObjectsPartitionedAndConstraintsCut) {
  Rng rng(6);
  ConstraintSet cs = Fig2Constraints();
  auto folds = MakeConstraintFolds(cs, {.n_folds = 2}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& f : *folds) {
    std::set<size_t> train(f.train_objects.begin(), f.train_objects.end());
    std::set<size_t> test(f.test_objects.begin(), f.test_objects.end());
    // Disjoint cover of the 4 involved objects.
    EXPECT_EQ(train.size() + test.size(), 4u);
    for (size_t o : test) EXPECT_FALSE(train.count(o));
    // No constraint crosses the cut.
    for (const Constraint& c : f.train_constraints.all()) {
      EXPECT_TRUE(train.count(c.a) && train.count(c.b))
          << ConstraintToString(c);
    }
    for (const Constraint& c : f.test_constraints.all()) {
      EXPECT_TRUE(test.count(c.a) && test.count(c.b))
          << ConstraintToString(c);
    }
  }
}

/// The paper's soundness invariant: the closure of the training constraints
/// and the closure of the test constraints share no pair — nothing in the
/// test fold is derivable from the training information.
void CheckIndependence(const std::vector<FoldSplit>& folds) {
  for (const FoldSplit& f : folds) {
    auto train_closure = TransitiveClosure(f.train_constraints);
    auto test_closure = TransitiveClosure(f.test_constraints);
    ASSERT_TRUE(train_closure.ok());
    ASSERT_TRUE(test_closure.ok());
    for (const Constraint& c : test_closure->all()) {
      EXPECT_FALSE(train_closure->Lookup(c.a, c.b).has_value())
          << "leaked pair " << ConstraintToString(c);
    }
  }
}

TEST(ConstraintFoldsTest, IndependencePropertyAcrossRandomInstances) {
  // Property sweep: random constraint pools from random labeled data.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Dataset data = MakeBlobs("prop", 4, 15, 3, 10.0, 1.0, &rng);
    auto pool = BuildConstraintPool(data, 0.4, &rng);
    ASSERT_TRUE(pool.ok());
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    ASSERT_TRUE(sampled.ok());
    auto folds = MakeConstraintFolds(sampled.value(), {.n_folds = 4}, &rng);
    ASSERT_TRUE(folds.ok());
    CheckIndependence(*folds);
  }
}

TEST(LabelFoldsTest, IndependencePropertyHoldsByConstruction) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 100);
    Dataset data = MakeBlobs("prop", 3, 20, 3, 10.0, 1.0, &rng);
    auto labeled = SampleLabeledObjects(data, 0.3, &rng);
    ASSERT_TRUE(labeled.ok());
    auto folds = MakeLabelFolds(labeled.value(), data.labels(), data.size(),
                                {.n_folds = 3}, &rng);
    ASSERT_TRUE(folds.ok());
    CheckIndependence(*folds);
  }
}

TEST(ConstraintFoldsTest, ClosureExtendsBeforeSplitting) {
  // ML(0,1), ML(1,2): closure adds ML(0,2). With 3 objects and 3 folds each
  // fold isolates one object, so every fold's constraint sets are empty —
  // but the split must succeed (3 involved objects >= 3 folds).
  Rng rng(7);
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(1, 2).ok());
  auto folds = MakeConstraintFolds(cs, {.n_folds = 3}, &rng);
  ASSERT_TRUE(folds.ok());
  for (const FoldSplit& f : *folds) {
    EXPECT_EQ(f.test_constraints.size(), 0u);
    EXPECT_EQ(f.train_constraints.size(), 1u);  // the surviving ML pair
  }
}

TEST(ConstraintFoldsTest, InconsistentInputRejected) {
  Rng rng(8);
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddCannotLink(0, 1).code() ==
              StatusCode::kInconsistentConstraints);
  // Build an indirectly inconsistent set instead.
  ConstraintSet bad;
  ASSERT_TRUE(bad.AddMustLink(0, 1).ok());
  ASSERT_TRUE(bad.AddMustLink(1, 2).ok());
  ASSERT_TRUE(bad.AddCannotLink(0, 2).ok());
  auto folds = MakeConstraintFolds(bad, {.n_folds = 2}, &rng);
  EXPECT_EQ(folds.status().code(), StatusCode::kInconsistentConstraints);
}

TEST(NaiveConstraintFoldsTest, LeaksDerivableInformation) {
  // With the Fig. 2 constraints closed (7 constraints over 4 objects),
  // splitting the constraint *list* must eventually put a derivable pair in
  // the test fold. We check that at least one seed exhibits the leak the
  // sound splitter provably never has.
  auto closed = TransitiveClosure(Fig2Constraints());
  ASSERT_TRUE(closed.ok());
  bool leak_found = false;
  for (uint64_t seed = 0; seed < 20 && !leak_found; ++seed) {
    Rng rng(seed);
    auto folds = MakeNaiveConstraintFolds(closed.value(), {.n_folds = 3},
                                          &rng);
    ASSERT_TRUE(folds.ok());
    for (const FoldSplit& f : *folds) {
      auto train_closure = TransitiveClosure(f.train_constraints);
      if (!train_closure.ok()) continue;
      for (const Constraint& c : f.test_constraints.all()) {
        if (train_closure->Lookup(c.a, c.b).has_value()) leak_found = true;
      }
    }
  }
  EXPECT_TRUE(leak_found);
}

}  // namespace
}  // namespace cvcp
