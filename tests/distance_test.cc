#include "common/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cvcp {
namespace {

const std::vector<double> kA = {0.0, 0.0, 0.0};
const std::vector<double> kB = {1.0, 2.0, 2.0};

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(EuclideanDistance(kA, kB), 3.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(kA, kA), 0.0);
}

TEST(DistanceTest, SquaredEuclidean) {
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(kA, kB), 9.0);
}

TEST(DistanceTest, Manhattan) {
  EXPECT_DOUBLE_EQ(ManhattanDistance(kA, kB), 5.0);
}

TEST(DistanceTest, Cosine) {
  std::vector<double> x = {1.0, 0.0};
  std::vector<double> y = {0.0, 1.0};
  std::vector<double> z = {2.0, 0.0};
  EXPECT_DOUBLE_EQ(CosineDistance(x, y), 1.0);        // orthogonal
  EXPECT_NEAR(CosineDistance(x, z), 0.0, 1e-12);      // parallel
  std::vector<double> neg = {-1.0, 0.0};
  EXPECT_NEAR(CosineDistance(x, neg), 2.0, 1e-12);    // opposite
}

TEST(DistanceTest, CosineZeroVectorConvention) {
  std::vector<double> zero = {0.0, 0.0};
  std::vector<double> x = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(CosineDistance(zero, x), 1.0);
}

TEST(DistanceTest, WeightedSquaredEuclidean) {
  std::vector<double> w = {2.0, 0.5, 1.0};
  // 2*(1)^2 + 0.5*(2)^2 + 1*(2)^2 = 2 + 2 + 4 = 8.
  EXPECT_DOUBLE_EQ(WeightedSquaredEuclidean(kA, kB, w), 8.0);
  // All-ones weights reduce to squared Euclidean.
  std::vector<double> ones = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(WeightedSquaredEuclidean(kA, kB, ones),
                   SquaredEuclideanDistance(kA, kB));
}

TEST(DistanceTest, DispatchMatchesDirectCalls) {
  EXPECT_DOUBLE_EQ(Distance(kA, kB, Metric::kEuclidean),
                   EuclideanDistance(kA, kB));
  EXPECT_DOUBLE_EQ(Distance(kA, kB, Metric::kSquaredEuclidean),
                   SquaredEuclideanDistance(kA, kB));
  EXPECT_DOUBLE_EQ(Distance(kA, kB, Metric::kManhattan),
                   ManhattanDistance(kA, kB));
  EXPECT_DOUBLE_EQ(Distance(kA, kB, Metric::kCosine), CosineDistance(kA, kB));
}

// RAII guard so a failing kernel test can't leak the process-wide
// default into unrelated tests. Saves and restores the policy itself
// (not the shim's bool): restoring via SetUnrolledDistanceKernels(false)
// would force kFixedLane and clobber an env-selected scalar-legacy
// default when this binary runs under CVCP_DISTANCE_KERNEL.
class UnrolledKernelGuard {
 public:
  explicit UnrolledKernelGuard(bool enabled)
      : previous_(DefaultDistanceKernelPolicy()) {
    SetUnrolledDistanceKernels(enabled);
  }
  ~UnrolledKernelGuard() { SetDefaultDistanceKernelPolicy(previous_); }

 private:
  DistanceKernelPolicy previous_;
};

TEST(DistanceKernelTest, ScalarIsTheDefault) {
  EXPECT_FALSE(UnrolledDistanceKernelsEnabled());
}

TEST(DistanceKernelTest, UnrolledMatchesScalarWithinRounding) {
  std::vector<double> a, b, w;
  for (int i = 0; i < 19; ++i) {  // odd length exercises the tail loop
    a.push_back(0.37 * i - 2.1);
    b.push_back(1.0 / (i + 1.0));
    w.push_back(0.5 + 0.1 * i);
  }
  const double sq_scalar = SquaredEuclideanDistance(a, b);
  const double man_scalar = ManhattanDistance(a, b);
  const double wsq_scalar = WeightedSquaredEuclidean(a, b, w);
  {
    UnrolledKernelGuard guard(true);
    EXPECT_TRUE(UnrolledDistanceKernelsEnabled());
    // The unrolled kernels reassociate the sum: equal up to rounding, not
    // necessarily bitwise (which is why they are opt-in).
    EXPECT_NEAR(SquaredEuclideanDistance(a, b), sq_scalar,
                1e-12 * std::abs(sq_scalar));
    EXPECT_NEAR(ManhattanDistance(a, b), man_scalar,
                1e-12 * std::abs(man_scalar));
    EXPECT_NEAR(WeightedSquaredEuclidean(a, b, w), wsq_scalar,
                1e-12 * std::abs(wsq_scalar));
  }
  // Guard restored the bitwise-compat default: scalar results again.
  EXPECT_FALSE(UnrolledDistanceKernelsEnabled());
  EXPECT_EQ(SquaredEuclideanDistance(a, b), sq_scalar);
}

TEST(DistanceKernelTest, UnrolledHandlesShortAndEmptyInputs) {
  UnrolledKernelGuard guard(true);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(empty, empty), 0.0);
  std::vector<double> a = {1.0, 2.0, 3.0};  // shorter than the unroll width
  std::vector<double> b = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, b), 14.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 6.0);
}

TEST(DistanceMatrixTest, MatchesDirectComputation) {
  Matrix points = Matrix::FromRows({{0, 0}, {3, 4}, {6, 8}, {-1, 0}});
  DistanceMatrix dm = DistanceMatrix::Compute(points, Metric::kEuclidean);
  EXPECT_EQ(dm.n(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(dm(i, j),
                       EuclideanDistance(points.Row(i), points.Row(j)))
          << i << "," << j;
    }
  }
}

TEST(DistanceMatrixTest, SymmetricAndZeroDiagonal) {
  Matrix points = Matrix::FromRows({{1, 2}, {5, 5}, {-3, 0}});
  DistanceMatrix dm = DistanceMatrix::Compute(points, Metric::kManhattan);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(dm(i, i), 0.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(dm(i, j), dm(j, i));
  }
}

TEST(DistanceMatrixTest, CondensedIndexExhaustiveSmallN) {
  // The condensed layout enumerates pairs (i, j), i < j, row-major: the
  // index must count 0, 1, 2, ... in that order and be order-insensitive.
  // Parallel Compute writes through exactly this addressing, so pin it.
  for (size_t n = 2; n <= 9; ++n) {
    DistanceMatrix dm = DistanceMatrix::Compute(
        Matrix(n, 1), Metric::kEuclidean);  // layout depends only on n
    ASSERT_EQ(dm.n(), n);
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j, ++expected) {
        EXPECT_EQ(dm.CondensedIndex(i, j), expected)
            << "n=" << n << " (" << i << "," << j << ")";
        EXPECT_EQ(dm.CondensedIndex(j, i), expected)
            << "n=" << n << " (" << j << "," << i << ")";
      }
    }
    // Exactly n*(n-1)/2 slots, so the last pair hits the final index.
    EXPECT_EQ(expected, n * (n - 1) / 2);
  }
}

TEST(DistanceMatrixTest, ParallelComputeBitIdenticalToSerial) {
  // Deterministic but irregular points so every entry is distinct.
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < 37; ++i) {
    const double x = static_cast<double>(i);
    rows.push_back({x * 1.7 - 3.0, x * x * 0.013, 31.0 - x});
  }
  Matrix points = Matrix::FromRows(rows);
  DistanceMatrix serial =
      DistanceMatrix::Compute(points, Metric::kEuclidean,
                              ExecutionContext::Serial());
  for (int threads : {2, 3, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    DistanceMatrix parallel =
        DistanceMatrix::Compute(points, Metric::kEuclidean, exec);
    ASSERT_EQ(parallel.n(), serial.n());
    for (size_t i = 0; i < serial.n(); ++i) {
      for (size_t j = 0; j < serial.n(); ++j) {
        EXPECT_EQ(parallel(i, j), serial(i, j))
            << "(" << i << "," << j << "), threads " << threads;
      }
    }
  }
}

// NarrowToF32 is the only sanctioned double→float path (the f32 storage
// mode); these cases pin its saturation semantics at the exact IEEE
// round-to-nearest-even boundary. An unguarded static_cast here would be
// undefined behavior for the overflowing inputs (caught by the
// float-cast-overflow sanitizer leg on Clang).
TEST(NarrowToF32Test, SaturatesExactlyAtTheIeeeOverflowThreshold) {
  constexpr double kFloatMax =
      static_cast<double>(std::numeric_limits<float>::max());
  constexpr double kThreshold = 0x1.ffffffp+127;
  const float inf = std::numeric_limits<float>::infinity();

  EXPECT_EQ(NarrowToF32(kFloatMax), std::numeric_limits<float>::max());
  // Between FLT_MAX and the threshold: rounds down to FLT_MAX, exactly
  // as hardware conversion does.
  EXPECT_EQ(NarrowToF32(0x1.fffffeffp+127),
            std::numeric_limits<float>::max());
  // At and past the threshold: saturates to infinity.
  EXPECT_EQ(NarrowToF32(kThreshold), inf);
  EXPECT_EQ(NarrowToF32(1e39), inf);
  EXPECT_EQ(NarrowToF32(-kThreshold), -inf);
  EXPECT_EQ(NarrowToF32(-1e39), -inf);
  EXPECT_EQ(NarrowToF32(std::numeric_limits<double>::infinity()), inf);
  // In-range values narrow with ordinary correct rounding.
  EXPECT_EQ(NarrowToF32(0.1), 0.1f);
  EXPECT_EQ(NarrowToF32(0.0), 0.0f);
}

TEST(DistanceMatrixTest, F32StorageSaturatesOverflowingDistances) {
  // Squared-Euclidean distances between these rows overflow float range
  // (≈1.6e39 > FLT_MAX ≈ 3.4e38) while staying finite in double. The
  // f32 storage mode must narrow them to +inf deterministically — not
  // through an out-of-range cast.
  Matrix points = Matrix::FromRows({{2e19, 0.0}, {-2e19, 0.0}, {1e19, 0.0}});
  DistanceMatrix dm = DistanceMatrix::Compute(
      points, Metric::kSquaredEuclidean, {}, DistanceStorage::kF32);
  const double inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(dm(0, 1), inf);  // (4e19)^2 = 1.6e39 overflows
  EXPECT_EQ(dm(1, 2), inf);  // (3e19)^2 = 9e38 overflows
  // (1e19)^2 = 1e38 < FLT_MAX narrows with ordinary rounding.
  EXPECT_EQ(dm(0, 2), static_cast<double>(NarrowToF32(1e38)));
  EXPECT_LT(dm(0, 2), inf);
}

TEST(DistanceMatrixTest, TinyInputs) {
  Matrix one = Matrix::FromRows({{1, 1}});
  DistanceMatrix dm1 = DistanceMatrix::Compute(one, Metric::kEuclidean);
  EXPECT_EQ(dm1.n(), 1u);
  EXPECT_DOUBLE_EQ(dm1(0, 0), 0.0);

  DistanceMatrix dm0 = DistanceMatrix::Compute(Matrix(), Metric::kEuclidean);
  EXPECT_EQ(dm0.n(), 0u);
}

}  // namespace
}  // namespace cvcp
