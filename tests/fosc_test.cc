#include "cluster/fosc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/optics.h"
#include "common/rng.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

OpticsResult FakePlot(std::vector<size_t> order, std::vector<double> reach) {
  OpticsResult r;
  r.order = std::move(order);
  r.reachability = std::move(reach);
  r.core_distance.assign(r.order.size(), 0.0);
  return r;
}

/// Two clear blobs in the plot: positions 0-2 and 3-5 separated by a big
/// jump. Objects in plot order are 0..5.
Dendrogram TwoBlobDendrogram() {
  return Dendrogram::FromReachability(
      FakePlot({0, 1, 2, 3, 4, 5}, {kInf, 1.0, 1.0, 10.0, 1.0, 1.0}));
}

TEST(FoscTest, ExtractsConstraintConsistentClusters) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddMustLink(0, 1).ok());
  ASSERT_TRUE(constraints.AddMustLink(4, 5).ok());
  ASSERT_TRUE(constraints.AddCannotLink(2, 3).ok());
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  ASSERT_TRUE(result.ok());
  const Clustering& c = result->clustering;
  EXPECT_TRUE(c.SameCluster(0, 1));
  EXPECT_TRUE(c.SameCluster(0, 2));
  EXPECT_TRUE(c.SameCluster(3, 4));
  EXPECT_FALSE(c.SameCluster(2, 3));
  EXPECT_NEAR(result->constraint_satisfaction, 1.0, 1e-12);
  EXPECT_EQ(result->selected_nodes.size(), 2u);
}

TEST(FoscTest, RootNeverSelectedByDefault) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  // Only must-links across the two blobs: the root would satisfy them, but
  // it is excluded, so the best proper selection is chosen instead.
  ASSERT_TRUE(constraints.AddMustLink(0, 5).ok());
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  ASSERT_TRUE(result.ok());
  for (int id : result->selected_nodes) EXPECT_NE(id, dg.root());
}

TEST(FoscTest, AllowRootOptIn) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddMustLink(0, 5).ok());
  FoscConfig config;
  config.allow_root = true;
  auto result = ExtractClusters(dg, constraints, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->selected_nodes.size(), 1u);
  EXPECT_EQ(result->selected_nodes[0], dg.root());
  EXPECT_TRUE(result->clustering.SameCluster(0, 5));
}

TEST(FoscTest, UnselectedObjectsAreNoise) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  // Constraints only inside the left blob: right blob earns nothing and
  // stays noise under the pure semi-supervised objective.
  ASSERT_TRUE(constraints.AddMustLink(0, 1).ok());
  ASSERT_TRUE(constraints.AddMustLink(1, 2).ok());
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->clustering.IsNoise(0));
  EXPECT_TRUE(result->clustering.IsNoise(3));
  EXPECT_TRUE(result->clustering.IsNoise(4));
  EXPECT_TRUE(result->clustering.IsNoise(5));
}

TEST(FoscTest, MinClusterSizeFiltersSmallCandidates) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddMustLink(0, 1).ok());
  FoscConfig config;
  config.min_cluster_size = 4;  // blobs have size 3 => nothing eligible
  auto result = ExtractClusters(dg, constraints, config);
  ASSERT_TRUE(result.ok());
  // Only nodes of size >= 4 are the top merge (5 or 6 objects) and root;
  // root excluded. The node covering positions {0..2,3} has size 4... in a
  // binary split of [inf,1,1,10,1,1] the root children have sizes 3 and 3,
  // so no eligible node exists and everything is noise.
  EXPECT_EQ(result->selected_nodes.size(), 0u);
  EXPECT_EQ(result->clustering.NumNoise(), 6u);
}

TEST(FoscTest, CannotLinkHalfCreditForNoisePartner) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  // CL(2,3) with only the left blob selectable-worthy: ML inside left blob
  // plus the CL. Left blob selected; 3 stays noise -> CL earns 1/2.
  ASSERT_TRUE(constraints.AddMustLink(0, 1).ok());
  ASSERT_TRUE(constraints.AddMustLink(1, 2).ok());
  ASSERT_TRUE(constraints.AddCannotLink(2, 3).ok());
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  ASSERT_TRUE(result.ok());
  // Best: select left blob (earns ML 2.0 + CL 0.5 = 2.5) and possibly the
  // right blob (adds CL's other half). Right blob has J = 0.5 > 0, so it IS
  // selected too: total = 3 constraints fully satisfied.
  EXPECT_NEAR(result->constraint_satisfaction, 1.0, 1e-12);
  EXPECT_FALSE(result->clustering.IsNoise(3));
}

/// Brute-force optimum over all valid (antichain, covering-free) selections
/// of eligible nodes, maximizing the same half-credit objective.
double BruteForceBest(const Dendrogram& dg, const ConstraintSet& constraints,
                      const FoscConfig& config) {
  const size_t num_nodes = dg.num_nodes();
  std::vector<int> eligible;
  for (size_t id = 0; id < num_nodes; ++id) {
    const DendrogramNode& nd = dg.node(static_cast<int>(id));
    if (nd.size() < config.min_cluster_size) continue;
    if (static_cast<int>(id) == dg.root() && !config.allow_root) continue;
    eligible.push_back(static_cast<int>(id));
  }
  auto j_of = [&](int id) {
    // Objects of the node.
    std::set<size_t> members;
    for (size_t o : dg.MembersOf(id)) members.insert(o);
    double j = 0.0;
    for (const Constraint& c : constraints.all()) {
      const bool a_in = members.count(c.a) > 0;
      const bool b_in = members.count(c.b) > 0;
      if (c.type == ConstraintType::kMustLink) {
        if (a_in && b_in) j += 1.0;
      } else {
        if (a_in && !b_in) j += 0.5;
        if (b_in && !a_in) j += 0.5;
      }
    }
    return j;
  };
  auto disjoint = [&](int a, int b) {
    const DendrogramNode& na = dg.node(a);
    const DendrogramNode& nb = dg.node(b);
    return na.end <= nb.begin || nb.end <= na.begin;
  };
  double best = 0.0;
  const size_t m = eligible.size();
  CVCP_CHECK_LE(m, 20u);
  for (size_t mask = 0; mask < (size_t{1} << m); ++mask) {
    std::vector<int> chosen;
    for (size_t b = 0; b < m; ++b) {
      if (mask & (size_t{1} << b)) chosen.push_back(eligible[b]);
    }
    bool valid = true;
    for (size_t i = 0; i < chosen.size() && valid; ++i) {
      for (size_t j = i + 1; j < chosen.size() && valid; ++j) {
        valid = disjoint(chosen[i], chosen[j]);
      }
    }
    if (!valid) continue;
    double total = 0.0;
    for (int id : chosen) total += j_of(id);
    best = std::max(best, total);
  }
  const double scale =
      constraints.empty() ? 1.0 : static_cast<double>(constraints.size());
  return best / scale;
}

TEST(FoscTest, DynamicProgramMatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    // Random plot over 8 objects, random constraints.
    std::vector<size_t> order = rng.Permutation(8);
    std::vector<double> reach(8);
    reach[0] = kInf;
    for (size_t i = 1; i < 8; ++i) reach[i] = rng.Uniform(0.5, 10.0);
    Dendrogram dg = Dendrogram::FromReachability(FakePlot(order, reach));
    ConstraintSet constraints;
    for (int c = 0; c < 6; ++c) {
      const size_t a = rng.Index(8);
      const size_t b = rng.Index(8);
      if (a == b) continue;
      const ConstraintType type = rng.NextDouble() < 0.5
                                      ? ConstraintType::kMustLink
                                      : ConstraintType::kCannotLink;
      (void)constraints.Add(a, b, type);  // conflicts silently skipped
    }
    FoscConfig config;
    auto result = ExtractClusters(dg, constraints, config);
    ASSERT_TRUE(result.ok());
    const double brute = BruteForceBest(dg, constraints, config);
    EXPECT_NEAR(result->objective, brute, 1e-9) << "seed " << seed;
  }
}

TEST(FoscTest, StabilityObjectiveSelectsBothBlobsUnsupervised) {
  Dendrogram dg = TwoBlobDendrogram();
  FoscConfig config;
  config.alpha = 0.0;  // pure stability
  auto result = ExtractClusters(dg, ConstraintSet{}, config);
  ASSERT_TRUE(result.ok());
  // Lifetime stability of the two tight blobs dominates: both selected.
  EXPECT_EQ(result->selected_nodes.size(), 2u);
  EXPECT_TRUE(result->clustering.SameCluster(0, 2));
  EXPECT_TRUE(result->clustering.SameCluster(3, 5));
  EXPECT_FALSE(result->clustering.SameCluster(2, 3));
}

TEST(FoscTest, AlphaBlendStillWorksWithConstraints) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddCannotLink(2, 3).ok());
  FoscConfig config;
  config.alpha = 0.5;
  auto result = ExtractClusters(dg, constraints, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->clustering.SameCluster(2, 3));
  EXPECT_EQ(result->clustering.NumClusters(), 2);
}

TEST(FoscTest, RejectsInvalidConfig) {
  Dendrogram dg = TwoBlobDendrogram();
  FoscConfig bad;
  bad.min_cluster_size = 0;
  EXPECT_FALSE(ExtractClusters(dg, ConstraintSet{}, bad).ok());
  bad = FoscConfig{};
  bad.alpha = 1.5;
  EXPECT_FALSE(ExtractClusters(dg, ConstraintSet{}, bad).ok());
}

TEST(FoscTest, ConstraintBeyondDendrogramRejected) {
  Dendrogram dg = TwoBlobDendrogram();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddMustLink(0, 99).ok());
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FoscTest, EndToEndWithOpticsOnBlobs) {
  Rng rng(42);
  Dataset data = MakeBlobs("blobs", 3, 25, 2, 30.0, 0.6, &rng);
  OpticsConfig optics_config;
  optics_config.min_pts = 4;
  auto optics = RunOptics(data.points(), optics_config);
  ASSERT_TRUE(optics.ok());
  Dendrogram dg = Dendrogram::FromReachability(optics.value());

  // Ground-truth constraints from 15 labeled objects.
  std::vector<size_t> objects;
  for (size_t i = 0; i < data.size(); i += 5) objects.push_back(i);
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);
  auto result = ExtractClusters(dg, constraints, FoscConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.NumClusters(), 3);
  EXPECT_GT(OverallFMeasure(data.labels(), result->clustering), 0.9);
}

}  // namespace
}  // namespace cvcp
