#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cvcp {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = a.NextUint64() != b.NextUint64();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, ForkIsStableRegardlessOfParentUse) {
  Rng a(42);
  Rng child_before = a.Fork(5);
  a.NextUint64();
  a.NextDouble();
  Rng child_after = a.Fork(5);
  EXPECT_EQ(child_before.seed(), child_after.seed());
}

TEST(RngTest, ForkStreamsAreDistinct) {
  Rng a(42);
  std::set<uint64_t> seeds;
  for (uint64_t s = 0; s < 100; ++s) seeds.insert(a.Fork(s).seed());
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 6));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5, 6}));
}

TEST(RngTest, IndexStaysBelowN) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Index(17), 17u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(11);
  std::vector<size_t> p = rng.Permutation(50);
  std::sort(p.begin(), p.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  std::vector<size_t> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(13);
  std::vector<size_t> s = rng.SampleWithoutReplacement(10, 10);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleFromPool) {
  Rng rng(14);
  std::vector<int> pool = {10, 20, 30, 40};
  std::vector<int> s = rng.SampleFrom(pool, 2);
  EXPECT_EQ(s.size(), 2u);
  for (int v : s) {
    EXPECT_TRUE(std::find(pool.begin(), pool.end(), v) != pool.end());
  }
  EXPECT_NE(s[0], s[1]);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(15);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(16);
  std::vector<int> v = {1, 1, 2, 3, 5, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(SplitMix64Test, KnownFirstOutputFromZeroState) {
  // SplitMix64(0) first output is the well-known constant.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace cvcp
