// Fault injection through the FileOpsHooks seam (common/file_io.h) —
// every persistent component funnels its IO through ReadFileToString /
// WriteFileAtomic, so injecting there exercises the real degradation
// paths without mocking any store API:
//
//   * WriteFileAtomic publishes atomically or not at all: a failed or
//     short or ENOSPC'd write, or a refused rename, leaves neither the
//     final file nor a stranded tmp file, and the failure is classified
//     (kResourceExhausted for a full disk, kInternal otherwise);
//   * the ArtifactStore degrades to classified, counted misses and the
//     engine recomputes: a job run with every artifact write failing
//     produces bytes identical to one with a healthy disk;
//   * the ResultStore's Put either publishes a fetchable record or
//     leaves no trace, and a retry after the fault clears succeeds;
//   * orphaned tmp files (a crash between write and rename) are swept at
//     recovery and by ArtifactStore::SweepOrphanTemps, artifacts
//     untouched.

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "core/artifact_store.h"
#include "core/dataset_cache.h"
#include "core/job.h"
#include "service/dataset_resolver.h"
#include "service/result_store.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

namespace fs = std::filesystem;

size_t CountEntries(const std::string& dir) {
  std::error_code ec;
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    (void)entry;
    ++count;
  }
  return count;
}

void Touch(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  out << "partial";
}

TEST(FileOpsTest, IsTempFileNameMatchesWritePattern) {
  EXPECT_TRUE(IsTempFileName("job-0001.cvcp.tmp.1234.0"));
  EXPECT_TRUE(IsTempFileName("x.tmp.9.9"));
  EXPECT_FALSE(IsTempFileName("job-0001.cvcp"));
  EXPECT_FALSE(IsTempFileName("tmp"));
  EXPECT_FALSE(IsTempFileName("notes.tmpl"));
}

TEST(FileOpsTest, WriteFileAtomicRoundTrips) {
  ServiceScratch scratch = MakeServiceScratch();
  ASSERT_TRUE(WriteFileAtomic(scratch.base, "a.bin", "payload", 0).ok());
  auto bytes = ReadFileToString(scratch.base + "/a.bin");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "payload");
  EXPECT_EQ(CountEntries(scratch.base), 1u);  // no tmp left behind
}

TEST(FileOpsTest, FailedWriteLeavesNothing) {
  ServiceScratch scratch = MakeServiceScratch();
  FileOpsHooks hooks;
  hooks.before_write = [](const std::string&) {
    return Status::Internal("injected write failure");
  };
  ScopedFileOpsHooks scope(&hooks);
  const Status status = WriteFileAtomic(scratch.base, "a.bin", "payload", 0);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(CountEntries(scratch.base), 0u);
}

TEST(FileOpsTest, DiskFullClassifiedResourceExhausted) {
  ServiceScratch scratch = MakeServiceScratch();
  FileOpsHooks hooks;
  hooks.before_write = [](const std::string&) {
    return Status::ResourceExhausted("injected ENOSPC");
  };
  ScopedFileOpsHooks scope(&hooks);
  const Status status = WriteFileAtomic(scratch.base, "a.bin", "payload", 0);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CountEntries(scratch.base), 0u);
}

TEST(FileOpsTest, ShortWriteDetectedAndCleaned) {
  ServiceScratch scratch = MakeServiceScratch();
  FileOpsHooks hooks;
  hooks.short_write = [](const std::string&) -> int64_t { return 3; };
  ScopedFileOpsHooks scope(&hooks);
  const Status status = WriteFileAtomic(scratch.base, "a.bin", "payload", 0);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(CountEntries(scratch.base), 0u);
}

TEST(FileOpsTest, FailedRenameLeavesNoFinalFileOrTmp) {
  ServiceScratch scratch = MakeServiceScratch();
  FileOpsHooks hooks;
  hooks.before_rename = [](const std::string&) {
    return Status::Internal("injected rename failure");
  };
  ScopedFileOpsHooks scope(&hooks);
  const Status status = WriteFileAtomic(scratch.base, "a.bin", "payload", 0);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(CountEntries(scratch.base), 0u);
}

TEST(FileOpsTest, NthWriteFailsOthersSucceed) {
  ServiceScratch scratch = MakeServiceScratch();
  int write_count = 0;
  FileOpsHooks hooks;
  hooks.before_write = [&write_count](const std::string&) {
    return ++write_count == 2 ? Status::Internal("injected: second write")
                              : Status::OK();
  };
  ScopedFileOpsHooks scope(&hooks);
  EXPECT_TRUE(WriteFileAtomic(scratch.base, "a.bin", "a", 0).ok());
  EXPECT_FALSE(WriteFileAtomic(scratch.base, "b.bin", "b", 1).ok());
  EXPECT_TRUE(WriteFileAtomic(scratch.base, "c.bin", "c", 2).ok());
  EXPECT_EQ(CountEntries(scratch.base), 2u);
}

TEST(FileOpsTest, TruncatedReadClassifiedByCaller) {
  ServiceScratch scratch = MakeServiceScratch();
  ASSERT_TRUE(WriteFileAtomic(scratch.base, "a.bin", "payload", 0).ok());
  FileOpsHooks hooks;
  hooks.truncate_read = [](const std::string&) -> int64_t { return 3; };
  ScopedFileOpsHooks scope(&hooks);
  auto bytes = ReadFileToString(scratch.base + "/a.bin");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "pay");
}

TEST(FileOpsTest, RemoveOrphanTempFilesSweepsOnlyTemps) {
  ServiceScratch scratch = MakeServiceScratch();
  ASSERT_TRUE(WriteFileAtomic(scratch.base, "keep.cvcp", "data", 0).ok());
  Touch(scratch.base + "/keep.cvcp.tmp.123.0");
  Touch(scratch.base + "/other.cvcp.tmp.99.7");
  auto swept = RemoveOrphanTempFiles(scratch.base);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 2u);
  EXPECT_EQ(CountEntries(scratch.base), 1u);
  EXPECT_TRUE(ReadFileToString(scratch.base + "/keep.cvcp").ok());
}

TEST(FileOpsTest, RemoveOrphanTempFilesMissingDirIsZero) {
  auto swept = RemoveOrphanTempFiles("/tmp/cvcp-does-not-exist-xyz");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 0u);
}

// --- ArtifactStore degradation -------------------------------------------

TEST(ArtifactFaultTest, WriteFailuresAreCountedMissesNotErrors) {
  ServiceScratch scratch = MakeServiceScratch();
  ArtifactStore store(scratch.store);
  DatasetResolver resolver;
  auto data = resolver.Resolve(SmallJobSpec());
  ASSERT_TRUE(data.ok());

  FileOpsHooks hooks;
  hooks.before_write = [](const std::string&) {
    return Status::ResourceExhausted("injected ENOSPC");
  };
  ScopedFileOpsHooks scope(&hooks);

  DatasetCacheTiers tiers;
  tiers.store = &store;
  DatasetCache cache((*data)->points(), tiers);
  JobContext context;
  context.cache = &cache;
  context.exec.threads = 1;
  auto report = RunJob(**data, SmallJobSpec(), context);
  ASSERT_TRUE(report.ok());  // computation unharmed by a dead disk tier

  const ArtifactStore::Stats stats = store.stats();
  EXPECT_GT(stats.write_errors, 0u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(CountEntries(scratch.store), 0u);
}

TEST(ArtifactFaultTest, AllWritesFailingIsByteIdenticalToHealthyDisk) {
  const JobSpec spec = SmallJobSpec();
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  ASSERT_TRUE(data.ok());

  auto run_with_store = [&](ArtifactStore* store) {
    DatasetCacheTiers tiers;
    tiers.store = store;
    DatasetCache cache((*data)->points(), tiers);
    JobContext context;
    context.cache = &cache;
    context.exec.threads = 1;
    auto report = RunJob(**data, spec, context);
    CVCP_CHECK(report.ok());
    return EncodeCvcpReport(report.value());
  };

  ServiceScratch healthy_scratch = MakeServiceScratch();
  ArtifactStore healthy(healthy_scratch.store);
  const std::string healthy_bytes = run_with_store(&healthy);

  ServiceScratch faulty_scratch = MakeServiceScratch();
  ArtifactStore faulty(faulty_scratch.store);
  FileOpsHooks hooks;
  hooks.before_write = [](const std::string&) {
    return Status::Internal("injected write failure");
  };
  ScopedFileOpsHooks scope(&hooks);
  EXPECT_EQ(run_with_store(&faulty), healthy_bytes);
  EXPECT_GT(faulty.stats().write_errors, 0u);
}

TEST(ArtifactFaultTest, TruncatedArtifactIsCorruptMissAndRecomputed) {
  const JobSpec spec = SmallJobSpec();
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  ASSERT_TRUE(data.ok());

  ServiceScratch scratch = MakeServiceScratch();
  ArtifactStore store(scratch.store);
  std::string healthy_bytes;
  {
    // Warm the store with valid artifacts.
    DatasetCacheTiers tiers;
    tiers.store = &store;
    DatasetCache cache((*data)->points(), tiers);
    JobContext context;
    context.cache = &cache;
    context.exec.threads = 1;
    auto report = RunJob(**data, spec, context);
    ASSERT_TRUE(report.ok());
    healthy_bytes = EncodeCvcpReport(report.value());
  }
  ASSERT_GT(store.stats().writes, 0u);

  // Every read now returns torn bytes: each load is a classified
  // corrupt miss, the engine recomputes, the answer does not change.
  FileOpsHooks hooks;
  hooks.truncate_read = [](const std::string&) -> int64_t { return 8; };
  ScopedFileOpsHooks scope(&hooks);
  DatasetCacheTiers tiers;
  tiers.store = &store;
  DatasetCache cache((*data)->points(), tiers);
  JobContext context;
  context.cache = &cache;
  context.exec.threads = 1;
  auto report = RunJob(**data, spec, context);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(EncodeCvcpReport(report.value()), healthy_bytes);
  EXPECT_GT(store.stats().corrupt_misses, 0u);
}

TEST(ArtifactFaultTest, SweepOrphanTempsKeepsArtifacts) {
  ServiceScratch scratch = MakeServiceScratch();
  ArtifactStore store(scratch.store);
  fs::create_directories(scratch.store);
  Touch(scratch.store + "/abc.cvcp.tmp.42.0");
  Touch(scratch.store + "/def.cvcp.tmp.42.1");
  ASSERT_TRUE(
      WriteFileAtomic(scratch.store, "keep.cvcp", "artifact", 0).ok());

  auto swept = store.SweepOrphanTemps();
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 2u);
  EXPECT_EQ(store.stats().temps_swept, 2u);
  EXPECT_EQ(CountEntries(scratch.store), 1u);
}

// --- ResultStore atomic publication --------------------------------------

StoredResult SmallStoredResult(uint64_t job_id) {
  const JobSpec spec = SmallJobSpec();
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  CVCP_CHECK(data.ok());
  JobContext context;
  context.exec.threads = 1;
  auto report = RunJob(**data, spec, context);
  CVCP_CHECK(report.ok());
  StoredResult record;
  record.job_id = job_id;
  record.version = 1;
  record.spec_hash = JobSpecHash(spec);
  record.spec_bytes = EncodeJobSpec(spec);
  record.report_bytes = EncodeCvcpReport(report.value());
  return record;
}

TEST(ResultStoreFaultTest, FailedPutPublishesNothingAndRetrySucceeds) {
  ServiceScratch scratch = MakeServiceScratch();
  const StoredResult record = SmallStoredResult(7);
  ResultStore store(scratch.results);
  ASSERT_TRUE(store.Recover().ok());

  {
    FileOpsHooks hooks;
    hooks.before_rename = [](const std::string&) {
      return Status::Internal("injected rename failure");
    };
    ScopedFileOpsHooks scope(&hooks);
    EXPECT_FALSE(store.Put(record).ok());
  }
  // Atomic or nothing: no record served, no file, no tmp.
  EXPECT_EQ(store.Get(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CountEntries(scratch.results), 0u);

  // The fault cleared; the identical Put now lands.
  ASSERT_TRUE(store.Put(record).ok());
  auto fetched = store.Get(7);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->report_bytes, record.report_bytes);
}

TEST(ResultStoreFaultTest, RecoverySweepsOrphanedTemps) {
  ServiceScratch scratch = MakeServiceScratch();
  const StoredResult record = SmallStoredResult(3);
  {
    ResultStore store(scratch.results);
    ASSERT_TRUE(store.Recover().ok());
    ASSERT_TRUE(store.Put(record).ok());
  }
  // Simulate a crash that stranded a tmp file next to the good record.
  Touch(scratch.results + "/job-0000000000000009.cvcp.tmp.777.0");

  ResultStore recovered(scratch.results);
  ASSERT_TRUE(recovered.Recover().ok());
  const ResultStore::Stats stats = recovered.stats();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.temps_swept, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(CountEntries(scratch.results), 1u);
  EXPECT_TRUE(recovered.Get(3).ok());
}

}  // namespace
}  // namespace cvcp
