// A strong joint property of OPTICS + OPTICSDend: with MinPts = 1 every
// core distance is 0, so reachability(o) = distance to the closest already
// processed point — the OPTICS walk is Prim's MST construction and the
// reachability dendrogram is exactly the single-linkage hierarchy. Cutting
// it at threshold t must therefore reproduce the connected components of
// the "distance <= t" graph, which we compute by brute force.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/dendrogram.h"
#include "cluster/optics.h"
#include "common/rng.h"
#include "common/union_find.h"
#include "data/generators.h"

namespace cvcp {
namespace {

/// Components of the graph with edges {(i,j) : d(i,j) <= t}.
std::vector<size_t> BruteForceComponents(const Matrix& points, double t) {
  const size_t n = points.rows();
  UnionFind uf(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (EuclideanDistance(points.Row(i), points.Row(j)) <= t) {
        uf.Union(i, j);
      }
    }
  }
  return uf.ComponentIds();
}

/// True if two labelings induce the same partition.
bool SamePartition(const std::vector<size_t>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      if ((a[i] == a[j]) != (b[i] == b[j])) return false;
    }
  }
  return true;
}

class SingleLinkageEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SingleLinkageEquivalence, CutMatchesThresholdGraphComponents) {
  Rng rng(GetParam());
  Dataset data = MakeBlobs("sl", 3, 12, 2, 8.0, 1.5, &rng);
  OpticsConfig config;
  config.min_pts = 1;
  auto optics = RunOptics(data.points(), config);
  ASSERT_TRUE(optics.ok());
  Dendrogram dg = Dendrogram::FromReachability(optics.value());

  // Check several thresholds, including ones straddling merge heights.
  for (double t : {0.2, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const std::vector<size_t> brute =
        BruteForceComponents(data.points(), t);
    const std::vector<int> cut = dg.CutAt(t);
    EXPECT_TRUE(SamePartition(brute, cut))
        << "seed " << GetParam() << " threshold " << t;
  }
}

TEST_P(SingleLinkageEquivalence, MergeHeightsAreMstEdgeWeights) {
  // The multiset of internal-node heights equals the MST edge weights;
  // in particular the largest merge height equals the largest MST edge,
  // and cutting just below it yields exactly 2 clusters.
  Rng rng(GetParam() + 500);
  Dataset data = MakeBlobs("sl", 2, 10, 2, 12.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 1;
  auto optics = RunOptics(data.points(), config);
  ASSERT_TRUE(optics.ok());
  Dendrogram dg = Dendrogram::FromReachability(optics.value());
  const double top = dg.node(dg.root()).height;
  std::vector<int> cut = dg.CutAt(top * (1.0 - 1e-9));
  int clusters = 0;
  for (int c : cut) clusters = std::max(clusters, c + 1);
  EXPECT_EQ(clusters, 2);
  // And the threshold-graph agrees.
  const std::vector<size_t> brute =
      BruteForceComponents(data.points(), top * (1.0 - 1e-9));
  EXPECT_TRUE(SamePartition(brute, cut));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleLinkageEquivalence,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace cvcp
