#include "common/dataset.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

Matrix TinyPoints() {
  return Matrix::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
}

TEST(DatasetTest, UnlabeledBasics) {
  Dataset d("u", TinyPoints());
  EXPECT_EQ(d.name(), "u");
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_FALSE(d.has_labels());
  EXPECT_EQ(d.NumClasses(), 0);
}

TEST(DatasetTest, LabeledBasics) {
  Dataset d("l", TinyPoints(), {0, 1, 1, 2});
  EXPECT_TRUE(d.has_labels());
  EXPECT_EQ(d.NumClasses(), 3);
  EXPECT_EQ(d.label(2), 1);
  EXPECT_EQ(d.ClassSizes(), (std::vector<size_t>{1, 2, 1}));
}

TEST(DatasetTest, ObjectsOfClass) {
  Dataset d("l", TinyPoints(), {0, 1, 1, 0});
  EXPECT_EQ(d.ObjectsOfClass(0), (std::vector<size_t>{0, 3}));
  EXPECT_EQ(d.ObjectsOfClass(1), (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(d.ObjectsOfClass(7).empty());
}

TEST(DatasetTest, SparseClassIdsCountedByMaxLabel) {
  // Class ids need not be contiguous; NumClasses = max + 1.
  Dataset d("s", TinyPoints(), {0, 3, 3, 0});
  EXPECT_EQ(d.NumClasses(), 4);
  EXPECT_EQ(d.ClassSizes(), (std::vector<size_t>{2, 0, 0, 2}));
}

TEST(DatasetTest, DefaultConstructedIsEmpty) {
  Dataset d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.has_labels());
}

}  // namespace
}  // namespace cvcp
