#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace cvcp {
namespace {

TEST(ExecutionContextTest, ZeroResolvesToHardwareConcurrency) {
  ExecutionContext context;
  EXPECT_EQ(context.threads, 0);
  EXPECT_GE(context.ResolvedThreads(), 1);
}

TEST(ExecutionContextTest, PositiveThreadsPassThrough) {
  ExecutionContext context;
  context.threads = 7;
  EXPECT_EQ(context.ResolvedThreads(), 7);
}

TEST(ExecutionContextTest, SerialForcesOneThread) {
  EXPECT_EQ(ExecutionContext::Serial().threads, 1);
  EXPECT_EQ(ExecutionContext::Serial().ResolvedThreads(), 1);
}

TEST(SplitBudgetTest, AutoSpendsBudgetAtOuterLevelWhenItCanAbsorbIt) {
  ExecutionContext exec;
  exec.threads = 4;
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/50);
  EXPECT_EQ(split.outer.threads, 4);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, AutoDropsBudgetToInnerLevelForSmallOuterLoops) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/3);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 8);
}

TEST(SplitBudgetTest, SerialBudgetStaysSerialEverywhere) {
  const NestedBudget split =
      SplitBudget(ExecutionContext::Serial(), /*outer_size=*/100);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, ForcedSerialOuterHandsBudgetInside) {
  ExecutionContext exec;
  exec.threads = 6;
  const NestedBudget split =
      SplitBudget(exec, /*outer_size=*/50, /*outer_threads=*/1);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 6);
}

TEST(SplitBudgetTest, ForcedOuterLanesAreCappedAtTheBudget) {
  ExecutionContext exec;
  exec.threads = 4;
  const NestedBudget split =
      SplitBudget(exec, /*outer_size=*/50, /*outer_threads=*/16);
  EXPECT_EQ(split.outer.threads, 4);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, ReturnsResolvedCountsForZeroThreadBudget) {
  ExecutionContext exec;  // 0 = all hardware threads
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/1'000'000);
  EXPECT_GE(split.outer.threads, 1);
  EXPECT_GE(split.inner.threads, 1);
  // Exactly one level spends the budget; the other stays serial.
  EXPECT_TRUE(split.outer.threads == 1 || split.inner.threads == 1);
}

TEST(PlanBudgetTest, SplitPolicyDelegatesToSplitBudget) {
  ExecutionContext exec;
  exec.threads = 8;
  for (size_t outer_size : {size_t{3}, size_t{50}}) {
    for (int outer_threads : {0, 1, 4}) {
      const NestedBudget plan =
          PlanBudget(exec, outer_size, outer_threads, NestingPolicy::kSplit);
      const NestedBudget split = SplitBudget(exec, outer_size, outer_threads);
      EXPECT_EQ(plan.outer.threads, split.outer.threads)
          << outer_size << "/" << outer_threads;
      EXPECT_EQ(plan.inner.threads, split.inner.threads)
          << outer_size << "/" << outer_threads;
    }
  }
}

TEST(PlanBudgetTest, NestedSharesBudgetMultiplicativelyOnNarrowOuterLoops) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget plan =
      PlanBudget(exec, /*outer_size=*/2, /*outer_threads=*/0,
                 NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 2);
  EXPECT_EQ(plan.inner.threads, 4);  // 2 lanes x 4 cells = the budget
}

TEST(PlanBudgetTest, NestedMatchesSplitOnWideOuterLoops) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget plan =
      PlanBudget(exec, /*outer_size=*/50, /*outer_threads=*/0,
                 NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 8);
  EXPECT_EQ(plan.inner.threads, 1);
}

TEST(PlanBudgetTest, NestedCeilRoundsTheInnerShareUp) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget plan =
      PlanBudget(exec, /*outer_size=*/3, /*outer_threads=*/0,
                 NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 3);
  EXPECT_EQ(plan.inner.threads, 3);  // ceil(8 / 3); never underfilled
}

TEST(PlanBudgetTest, NestedForcedLanesKeepTheirInnerShare) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget plan =
      PlanBudget(exec, /*outer_size=*/50, /*outer_threads=*/2,
                 NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 2);
  EXPECT_EQ(plan.inner.threads, 4);  // unlike kSplit, lanes stay nested
  const NestedBudget capped =
      PlanBudget(exec, /*outer_size=*/50, /*outer_threads=*/16,
                 NestingPolicy::kNested);
  EXPECT_EQ(capped.outer.threads, 8);
  EXPECT_EQ(capped.inner.threads, 1);
}

TEST(PlanBudgetTest, NestedForcedLanesNeverExceedTheOuterSize) {
  // Regression: --trial-threads 4 on a 2-trial run must not plan 4
  // phantom lanes — that would divide the inner share by 4 while
  // ParallelFor caps the real lanes at 2, stranding half the budget.
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget plan =
      PlanBudget(exec, /*outer_size=*/2, /*outer_threads=*/4,
                 NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 2);
  EXPECT_EQ(plan.inner.threads, 4);
}

TEST(PlanBudgetTest, NestedSerialBudgetStaysSerialEverywhere) {
  const NestedBudget plan =
      PlanBudget(ExecutionContext::Serial(), /*outer_size=*/100,
                 /*outer_threads=*/0, NestingPolicy::kNested);
  EXPECT_EQ(plan.outer.threads, 1);
  EXPECT_EQ(plan.inner.threads, 1);
  const NestedBudget forced_serial_outer =
      PlanBudget(ExecutionContext{.threads = 6}, /*outer_size=*/100,
                 /*outer_threads=*/1, NestingPolicy::kNested);
  EXPECT_EQ(forced_serial_outer.outer.threads, 1);
  EXPECT_EQ(forced_serial_outer.inner.threads, 6);
}

TEST(FirstErrorTrackerTest, TracksTheMinimumFailingIndex) {
  FirstErrorTracker tracker(100);
  EXPECT_FALSE(tracker.ShouldSkip(99));  // no failure yet
  tracker.Record(40);
  EXPECT_TRUE(tracker.ShouldSkip(41));
  EXPECT_FALSE(tracker.ShouldSkip(40));  // the failure itself
  EXPECT_FALSE(tracker.ShouldSkip(10));  // below: already claimed, runs
  tracker.Record(70);  // higher failure never raises the minimum
  EXPECT_TRUE(tracker.ShouldSkip(41));
  tracker.Record(5);
  EXPECT_TRUE(tracker.ShouldSkip(6));
  EXPECT_FALSE(tracker.ShouldSkip(5));
}

TEST(FirstErrorTrackerTest, SkipsNothingUnderConcurrentRecords) {
  // Records from many pool tasks must settle on the global minimum.
  FirstErrorTracker tracker(1000);
  ExecutionContext exec;
  exec.threads = 8;
  ParallelFor(exec, 1000, [&](size_t i) {
    if (i % 7 == 3) tracker.Record(i);
  });
  EXPECT_FALSE(tracker.ShouldSkip(3));
  EXPECT_TRUE(tracker.ShouldSkip(4));
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasksToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionsSurfaceThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, OnWorkerThreadFlagsPoolThreadsOnly) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(1);
  auto future = pool.Submit([] { return ThreadPool::OnWorkerThread(); });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    std::vector<int> visits(100, 0);
    ParallelFor(exec, visits.size(), [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i], 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleIterationWork) {
  ExecutionContext exec;
  exec.threads = 4;
  int calls = 0;
  ParallelFor(exec, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(exec, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ResultsMatchSerialForAnyThreadCount) {
  std::vector<double> serial(257);
  ParallelFor(ExecutionContext::Serial(), serial.size(),
              [&](size_t i) { serial[i] = static_cast<double>(i * i) / 3.0; });
  for (int threads : {2, 3, 16}) {
    ExecutionContext exec;
    exec.threads = threads;
    std::vector<double> parallel(serial.size());
    ParallelFor(exec, parallel.size(), [&](size_t i) {
      parallel[i] = static_cast<double>(i * i) / 3.0;
    });
    EXPECT_EQ(parallel, serial) << "threads " << threads;
  }
}

TEST(ParallelForTest, NestedParallelForCompletesWithoutDeadlock) {
  ExecutionContext exec;
  exec.threads = 4;
  std::vector<int> sums(8, 0);
  ParallelFor(exec, sums.size(), [&](size_t i) {
    // The inner loop's lanes queue on the same pool its caller runs on;
    // help-while-waiting (waiters execute queued tasks instead of
    // blocking) is what makes this deadlock-free even when every worker
    // is itself inside an outer iteration.
    int sum = 0;
    std::mutex mu;
    // determinism: reduction(nested-test-int-sum)
    ParallelFor(exec, 10, [&](size_t j) {
      std::lock_guard<std::mutex> lock(mu);
      sum += static_cast<int>(j);
    });
    sums[i] = sum;
  });
  for (int sum : sums) EXPECT_EQ(sum, 45);
}

// Help-while-waiting stress: three nesting levels, every level wider than
// the budget, at budgets 1, 2, and 8 — far more queued lanes than pool
// workers. Any blocking wait in the scheduler would deadlock here (a
// hung test run is the failure mode); the counts prove every innermost
// iteration ran exactly once.
TEST(ParallelForTest, DeeplyNestedFanOutsCompleteAtEveryBudget) {
  for (int threads : {1, 2, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    constexpr size_t kOuter = 6, kMid = 5, kInner = 7;
    std::vector<int> visits(kOuter * kMid * kInner, 0);
    ParallelFor(exec, kOuter, [&](size_t i) {
      ParallelFor(exec, kMid, [&](size_t j) {
        ParallelFor(exec, kInner, [&](size_t k) {
          ++visits[(i * kMid + j) * kInner + k];
        });
      });
    });
    for (size_t v = 0; v < visits.size(); ++v) {
      EXPECT_EQ(visits[v], 1) << "slot " << v << ", threads " << threads;
    }
  }
}

// The same stress through the budget planner, the way the harness nests:
// outer lanes get PlanBudget's outer context, their bodies the inner
// share. Narrow outer (2) x wide inner (32) is exactly the shape the
// nested policy exists for.
TEST(ParallelForTest, NestedPolicyBudgetsComposeWithoutDeadlock) {
  for (int threads : {1, 2, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    const NestedBudget plan =
        PlanBudget(exec, /*outer_size=*/2, /*outer_threads=*/0,
                   NestingPolicy::kNested);
    std::vector<int> visits(2 * 32, 0);
    ParallelFor(plan.outer, 2, [&](size_t i) {
      ParallelFor(plan.inner, 32, [&](size_t j) { ++visits[i * 32 + j]; });
    });
    for (size_t v = 0; v < visits.size(); ++v) {
      EXPECT_EQ(visits[v], 1) << "slot " << v << ", threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, HelpWhileWaitingRunsPostedTasksOnTheCallingThread) {
  // A 1-worker pool whose worker is pinned by a long task: the only way
  // the posted tasks can finish before the pin is released is the caller
  // executing them itself inside HelpWhileWaiting.
  ThreadPool pool(1);
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.Post([&] {
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // Only post the counted tasks once the worker is provably inside the
  // pin task, so no thread but the caller can run them — and the caller
  // adopting the pin task (which only the worker may finish) is ruled
  // out.
  while (!pinned.load()) std::this_thread::yield();
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.Post([&done, &pool] {
      done.fetch_add(1, std::memory_order_relaxed);
      pool.NotifyCompletion();
    });
  }
  pool.HelpWhileWaiting(
      [&done] { return done.load(std::memory_order_relaxed) == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
  release.store(true);
}

TEST(ThreadPoolTest, TryRunOneTaskReportsAnEmptyQueue) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.TryRunOneTask());
}

TEST(ParallelForTest, BodyExceptionPropagates) {
  ExecutionContext exec;
  exec.threads = 4;
  EXPECT_THROW(ParallelFor(exec, 16,
                           [&](size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, MoreThreadsThanIterationsIsFine) {
  ExecutionContext exec;
  exec.threads = 32;
  std::vector<int> visits(3, 0);
  ParallelFor(exec, visits.size(), [&](size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 3);
}

}  // namespace
}  // namespace cvcp
