#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace cvcp {
namespace {

TEST(ExecutionContextTest, ZeroResolvesToHardwareConcurrency) {
  ExecutionContext context;
  EXPECT_EQ(context.threads, 0);
  EXPECT_GE(context.ResolvedThreads(), 1);
}

TEST(ExecutionContextTest, PositiveThreadsPassThrough) {
  ExecutionContext context;
  context.threads = 7;
  EXPECT_EQ(context.ResolvedThreads(), 7);
}

TEST(ExecutionContextTest, SerialForcesOneThread) {
  EXPECT_EQ(ExecutionContext::Serial().threads, 1);
  EXPECT_EQ(ExecutionContext::Serial().ResolvedThreads(), 1);
}

TEST(SplitBudgetTest, AutoSpendsBudgetAtOuterLevelWhenItCanAbsorbIt) {
  ExecutionContext exec;
  exec.threads = 4;
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/50);
  EXPECT_EQ(split.outer.threads, 4);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, AutoDropsBudgetToInnerLevelForSmallOuterLoops) {
  ExecutionContext exec;
  exec.threads = 8;
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/3);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 8);
}

TEST(SplitBudgetTest, SerialBudgetStaysSerialEverywhere) {
  const NestedBudget split =
      SplitBudget(ExecutionContext::Serial(), /*outer_size=*/100);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, ForcedSerialOuterHandsBudgetInside) {
  ExecutionContext exec;
  exec.threads = 6;
  const NestedBudget split =
      SplitBudget(exec, /*outer_size=*/50, /*outer_threads=*/1);
  EXPECT_EQ(split.outer.threads, 1);
  EXPECT_EQ(split.inner.threads, 6);
}

TEST(SplitBudgetTest, ForcedOuterLanesAreCappedAtTheBudget) {
  ExecutionContext exec;
  exec.threads = 4;
  const NestedBudget split =
      SplitBudget(exec, /*outer_size=*/50, /*outer_threads=*/16);
  EXPECT_EQ(split.outer.threads, 4);
  EXPECT_EQ(split.inner.threads, 1);
}

TEST(SplitBudgetTest, ReturnsResolvedCountsForZeroThreadBudget) {
  ExecutionContext exec;  // 0 = all hardware threads
  const NestedBudget split = SplitBudget(exec, /*outer_size=*/1'000'000);
  EXPECT_GE(split.outer.threads, 1);
  EXPECT_GE(split.inner.threads, 1);
  // Exactly one level spends the budget; the other stays serial.
  EXPECT_TRUE(split.outer.threads == 1 || split.inner.threads == 1);
}

TEST(FirstErrorTrackerTest, TracksTheMinimumFailingIndex) {
  FirstErrorTracker tracker(100);
  EXPECT_FALSE(tracker.ShouldSkip(99));  // no failure yet
  tracker.Record(40);
  EXPECT_TRUE(tracker.ShouldSkip(41));
  EXPECT_FALSE(tracker.ShouldSkip(40));  // the failure itself
  EXPECT_FALSE(tracker.ShouldSkip(10));  // below: already claimed, runs
  tracker.Record(70);  // higher failure never raises the minimum
  EXPECT_TRUE(tracker.ShouldSkip(41));
  tracker.Record(5);
  EXPECT_TRUE(tracker.ShouldSkip(6));
  EXPECT_FALSE(tracker.ShouldSkip(5));
}

TEST(FirstErrorTrackerTest, SkipsNothingUnderConcurrentRecords) {
  // Records from many pool tasks must settle on the global minimum.
  FirstErrorTracker tracker(1000);
  ExecutionContext exec;
  exec.threads = 8;
  ParallelFor(exec, 1000, [&](size_t i) {
    if (i % 7 == 3) tracker.Record(i);
  });
  EXPECT_FALSE(tracker.ShouldSkip(3));
  EXPECT_TRUE(tracker.ShouldSkip(4));
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasksToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionsSurfaceThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, OnWorkerThreadFlagsPoolThreadsOnly) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(1);
  auto future = pool.Submit([] { return ThreadPool::OnWorkerThread(); });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    std::vector<int> visits(100, 0);
    ParallelFor(exec, visits.size(), [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i], 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleIterationWork) {
  ExecutionContext exec;
  exec.threads = 4;
  int calls = 0;
  ParallelFor(exec, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(exec, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ResultsMatchSerialForAnyThreadCount) {
  std::vector<double> serial(257);
  ParallelFor(ExecutionContext::Serial(), serial.size(),
              [&](size_t i) { serial[i] = static_cast<double>(i * i) / 3.0; });
  for (int threads : {2, 3, 16}) {
    ExecutionContext exec;
    exec.threads = threads;
    std::vector<double> parallel(serial.size());
    ParallelFor(exec, parallel.size(), [&](size_t i) {
      parallel[i] = static_cast<double>(i * i) / 3.0;
    });
    EXPECT_EQ(parallel, serial) << "threads " << threads;
  }
}

TEST(ParallelForTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ExecutionContext exec;
  exec.threads = 4;
  std::vector<int> sums(8, 0);
  ParallelFor(exec, sums.size(), [&](size_t i) {
    // Inner loop must detect it is on a pool worker and run inline;
    // otherwise all workers could block waiting on each other.
    int sum = 0;
    ParallelFor(exec, 10, [&](size_t j) { sum += static_cast<int>(j); });
    sums[i] = sum;
  });
  for (int sum : sums) EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, BodyExceptionPropagates) {
  ExecutionContext exec;
  exec.threads = 4;
  EXPECT_THROW(ParallelFor(exec, 16,
                           [&](size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, MoreThreadsThanIterationsIsFine) {
  ExecutionContext exec;
  exec.threads = 32;
  std::vector<int> visits(3, 0);
  ParallelFor(exec, visits.size(), [&](size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 3);
}

}  // namespace
}  // namespace cvcp
