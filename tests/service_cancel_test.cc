// Cancellation and deadlines through the service: the cancel RPC, the
// queued-deadline watchdog, socket IO timeouts, and the client's
// deterministic backpressure retry. The invariants:
//
//   * a cancelled job NEVER leaves a result record — Fetch is kNotFound,
//     Wait surfaces kCancelled / kDeadlineExceeded — and resubmitting
//     the same spec later yields bytes identical to a run that was never
//     cancelled, at every server thread width;
//   * deadlines count queue wait: an overdue queued job is failed by the
//     watchdog without ever running (fully deterministic — the test
//     holds the only executor parked the whole time);
//   * a silent client is evicted by the socket timeout instead of
//     pinning a connection thread;
//   * SubmitWithRetry retries only kResourceExhausted, on the pinned
//     doubling schedule.
//
// Choreography is condition-variable-driven through the Gate seam; the
// only sleeps are ones that wait out an already-armed deadline.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/job.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

std::string DirectBytes(const JobSpec& spec) {
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  CVCP_CHECK(data.ok());
  JobContext context;
  auto report = RunJob(**data, spec, context);
  CVCP_CHECK(report.ok());
  return EncodeCvcpReport(report.value());
}

TEST(ServiceCancelTest, RetryScheduleIsPinned) {
  RetryPolicy policy;
  policy.backoff_ms = 5;
  EXPECT_EQ(RetryDelayMs(policy, 1), 5);
  EXPECT_EQ(RetryDelayMs(policy, 2), 10);
  EXPECT_EQ(RetryDelayMs(policy, 3), 20);
  EXPECT_EQ(RetryDelayMs(policy, 7), 320);
  EXPECT_EQ(RetryDelayMs(policy, 8), 320);   // capped at 64x
  EXPECT_EQ(RetryDelayMs(policy, 50), 320);  // no overflow, ever
  policy.backoff_ms = 0;
  EXPECT_EQ(RetryDelayMs(policy, 3), 0);
}

TEST(ServiceCancelTest, CancelQueuedJobNeverRunsAndLeavesNoRecord) {
  ServiceScratch scratch = MakeServiceScratch();
  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;
  config.threads = 1;
  config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // A occupies the only executor (parked in the gate); B stays queued.
  auto a = client->Submit(SmallJobSpec());
  ASSERT_TRUE(a.ok());
  gate.AwaitParked(1);
  JobSpec spec_b = SmallJobSpec();
  spec_b.cvcp_seed = 11;
  auto b = client->Submit(spec_b);
  ASSERT_TRUE(b.ok());

  auto cancel = client->Cancel(b->job_id);
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->outcome, CancelOutcome::kCancelledWhileQueued);

  // The cancelled job is terminally failed with kCancelled and stored
  // nothing; a second cancel finds it already finished.
  auto waited = client->Wait(b->job_id);
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kCancelled);
  auto fetched = client->Fetch(b->job_id);
  EXPECT_EQ(fetched.status().code(), StatusCode::kNotFound);
  auto again = client->Cancel(b->job_id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, CancelOutcome::kAlreadyFinished);

  gate.Release();
  auto a_report = client->Wait(a->job_id);
  EXPECT_TRUE(a_report.ok());  // the survivor is unharmed

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cancelled, 1u);
  EXPECT_EQ(stats->inflight_bytes, 0u);  // the cancel discharged B
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest, CancelUnknownJobIsNotFound) {
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.threads = 1;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());
  auto cancel = client->Cancel(999);
  EXPECT_EQ(cancel.status().code(), StatusCode::kNotFound);
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest,
     CancelRunningJobLeavesNoRecordAndRerunIsByteIdentical) {
  const JobSpec spec = SmallJobSpec();
  const std::string reference = DirectBytes(spec);

  for (int threads : {1, 2, 8}) {
    ServiceScratch scratch = MakeServiceScratch();
    Gate gate;
    ServerConfig config = ScratchServerConfig(scratch);
    config.batch = 1;
    config.threads = threads;
    config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
    Server server(config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());

    auto submitted = client->Submit(spec);
    ASSERT_TRUE(submitted.ok());
    gate.AwaitParked(1);  // the job is running (parked pre-engine)

    auto cancel = client->Cancel(submitted->job_id);
    ASSERT_TRUE(cancel.ok());
    EXPECT_EQ(cancel->outcome, CancelOutcome::kSignalled);
    gate.Release();  // the engine now observes the fired token at entry

    auto waited = client->Wait(submitted->job_id);
    ASSERT_FALSE(waited.ok());
    EXPECT_EQ(waited.status().code(), StatusCode::kCancelled)
        << "threads=" << threads;
    EXPECT_EQ(client->Fetch(submitted->job_id).status().code(),
              StatusCode::kNotFound);

    // The rerun — same spec, same server, caches warmed by whatever the
    // cancelled attempt did — must be bit-identical to a direct run that
    // never saw a token.
    auto rerun = client->Submit(spec);
    ASSERT_TRUE(rerun.ok());
    auto report = client->Wait(rerun->job_id);
    ASSERT_TRUE(report.ok()) << "threads=" << threads;
    EXPECT_EQ(report->report_bytes, reference) << "threads=" << threads;
    server.Stop(/*drain=*/true);
  }
}

TEST(ServiceCancelTest, QueuedDeadlineFailedByWatchdogWithoutRunning) {
  ServiceScratch scratch = MakeServiceScratch();
  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;
  config.threads = 1;
  config.watchdog_interval_ms = 5;
  config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // A parks the only executor with no deadline; B queues behind it with
  // a deadline that expires immediately. The watchdog must fail B while
  // A is still parked — B can never have run.
  auto a = client->Submit(SmallJobSpec());
  ASSERT_TRUE(a.ok());
  gate.AwaitParked(1);
  JobSpec spec_b = SmallJobSpec();
  spec_b.cvcp_seed = 22;
  spec_b.deadline_ms = 1;
  auto b = client->Submit(spec_b);
  ASSERT_TRUE(b.ok());

  auto waited = client->Wait(b->job_id);
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client->Fetch(b->job_id).status().code(), StatusCode::kNotFound);

  gate.Release();
  ASSERT_TRUE(client->Wait(a->job_id).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deadline_exceeded, 1u);
  EXPECT_EQ(stats->inflight_bytes, 0u);
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest, RunningDeadlineObservedAtCellBoundary) {
  ServiceScratch scratch = MakeServiceScratch();
  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;
  config.threads = 1;
  config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  JobSpec spec = SmallJobSpec();
  spec.deadline_ms = 1;
  auto submitted = client->Submit(spec);
  ASSERT_TRUE(submitted.ok());
  gate.AwaitParked(1);
  // The deadline (armed at admission) expires while the job is parked
  // pre-engine; on release the first cell-boundary check fires it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.Release();

  auto waited = client->Wait(submitted->job_id);
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client->Fetch(submitted->job_id).status().code(),
            StatusCode::kNotFound);
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest, SubmitWithRetryRidesOutBackpressure) {
  ServiceScratch scratch = MakeServiceScratch();
  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;
  config.threads = 1;
  config.queue_capacity = 1;
  config.before_job_hook = [&gate](const JobSpec&) { gate.Enter(); };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // A parks the executor, B fills the 1-slot queue: the server is now
  // saturated and a plain submit must bounce with kResourceExhausted.
  auto a = client->Submit(SmallJobSpec());
  ASSERT_TRUE(a.ok());
  gate.AwaitParked(1);
  JobSpec spec_b = SmallJobSpec();
  spec_b.cvcp_seed = 33;
  auto b = client->Submit(spec_b);
  ASSERT_TRUE(b.ok());
  JobSpec spec_c = SmallJobSpec();
  spec_c.cvcp_seed = 44;
  auto rejected = client->Submit(spec_c);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // With retry, the same submission waits out the congestion: the first
  // retry callback releases the gate, the queue drains, and a later
  // attempt is admitted. The schedule gives it ~2.5s of headroom.
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.backoff_ms = 5;
  int retries = 0;
  auto c = client->SubmitWithRetry(
      spec_c, policy, [&gate, &retries](int attempt, int64_t) {
        if (++retries == 1) gate.Release();
        (void)attempt;
      });
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_GE(retries, 1);
  EXPECT_TRUE(client->Wait(c->job_id).ok());
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest, SubmitWithRetryDoesNotRetryHardFailures) {
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.threads = 1;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  JobSpec bad = SmallJobSpec();
  bad.dataset = "no-such-dataset";
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_ms = 1;
  int retries = 0;
  auto reply = client->SubmitWithRetry(
      bad, policy, [&retries](int, int64_t) { ++retries; });
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(retries, 0);  // a non-transient failure is never retried
  server.Stop(/*drain=*/true);
}

TEST(ServiceCancelTest, IoTimeoutEvictsSilentClient) {
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.threads = 1;
  config.io_timeout_ms = 100;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  // A raw connection that never sends a byte: the server's read timeout
  // must end the session (we observe the close as EOF) instead of
  // pinning the connection thread forever.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, scratch.socket.c_str(),
              scratch.socket.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  char byte = 0;
  const ssize_t got = ::recv(fd, &byte, 1, 0);  // blocks until eviction
  EXPECT_EQ(got, 0);  // clean close, not garbage
  ::close(fd);

  // A prompt client on the same server is unaffected by the armed
  // timeouts — the full submit/wait round trip still works.
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());
  auto submitted = client->Submit(SmallJobSpec());
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(client->Wait(submitted->job_id).ok());
  server.Stop(/*drain=*/true);
}

}  // namespace
}  // namespace cvcp
