// Unit tests for the checksummed block format: typed round trips
// (including NaN and infinity bit patterns), and the failure taxonomy —
// every way a file can be damaged or mismatched must surface as a
// classified non-OK Status, never as misread records.

#include "common/block_format.h"

#include <gtest/gtest.h>

#include "common/hash.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cvcp {
namespace {

constexpr uint32_t kKind = 7;

std::string SealedBlock() {
  BlockBuilder builder(kKind);
  builder.AppendU32(42);
  builder.AppendU64(0xDEADBEEFCAFEF00Dull);
  builder.AppendString("hello block");
  const std::vector<double> doubles = {1.5, -0.0,
                                       std::numeric_limits<double>::infinity(),
                                       std::nan("")};
  builder.AppendDoubles(doubles);
  const std::vector<size_t> sizes = {0, 1, 1u << 20};
  builder.AppendSizes(sizes);
  return builder.Finish();
}

TEST(BlockFormatTest, RoundTripPreservesEveryBitPattern) {
  auto reader = BlockReader::Open(SealedBlock(), kKind);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->remaining(), 5u);

  auto u32 = reader->ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(u32.value(), 42u);

  auto u64 = reader->ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(u64.value(), 0xDEADBEEFCAFEF00Dull);

  auto str = reader->ReadString();
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value(), "hello block");

  auto doubles = reader->ReadDoubles();
  ASSERT_TRUE(doubles.ok());
  ASSERT_EQ(doubles.value().size(), 4u);
  EXPECT_EQ(std::bit_cast<uint64_t>(doubles.value()[0]),
            std::bit_cast<uint64_t>(1.5));
  // -0.0 and NaN survive as exact bit patterns, not as value-equality.
  EXPECT_EQ(std::bit_cast<uint64_t>(doubles.value()[1]),
            std::bit_cast<uint64_t>(-0.0));
  EXPECT_TRUE(std::isinf(doubles.value()[2]));
  EXPECT_EQ(std::bit_cast<uint64_t>(doubles.value()[3]),
            std::bit_cast<uint64_t>(std::nan("")));

  auto sizes = reader->ReadSizes();
  ASSERT_TRUE(sizes.ok());
  EXPECT_EQ(sizes.value(), (std::vector<size_t>{0, 1, 1u << 20}));
  EXPECT_EQ(reader->remaining(), 0u);
}

TEST(BlockFormatTest, EmptyBlockRoundTrips) {
  BlockBuilder builder(kKind);
  auto reader = BlockReader::Open(builder.Finish(), kKind);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->remaining(), 0u);
}

TEST(BlockFormatTest, EveryFlippedBitFailsTheCrc) {
  const std::string sealed = SealedBlock();
  // Flip one bit in every byte position; Open must reject each mutant
  // (magic/version/kind damage included — nothing slips past the frame).
  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    std::string mutant = sealed;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    auto reader = BlockReader::Open(std::move(mutant), kKind);
    EXPECT_FALSE(reader.ok()) << "byte " << pos;
  }
}

TEST(BlockFormatTest, TruncationAtEveryLengthIsCorruption) {
  const std::string sealed = SealedBlock();
  for (size_t len = 0; len < sealed.size(); ++len) {
    auto reader = BlockReader::Open(sealed.substr(0, len), kKind);
    ASSERT_FALSE(reader.ok()) << "length " << len;
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption)
        << "length " << len;
  }
}

TEST(BlockFormatTest, TrailingGarbageIsCorruption) {
  auto reader = BlockReader::Open(SealedBlock() + "x", kKind);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(BlockFormatTest, KindMismatchIsFailedPrecondition) {
  auto reader = BlockReader::Open(SealedBlock(), kKind + 1);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BlockFormatTest, VersionSkewIsFailedPrecondition) {
  std::string sealed = SealedBlock();
  // Forge a valid file from a future format version: patch the version
  // field (bytes 8..11) and reseal the CRC, exactly what a newer writer
  // would produce. The CRC passes; the version check must still refuse.
  sealed[8] = static_cast<char>(kBlockFormatVersion + 1);
  const uint32_t crc =
      Crc32(sealed.data(), sealed.size() - 4);
  for (int i = 0; i < 4; ++i) {
    sealed[sealed.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  auto reader = BlockReader::Open(std::move(sealed), kKind);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BlockFormatTest, ReadPastEndIsCorruption) {
  BlockBuilder builder(kKind);
  builder.AppendU32(1);
  auto reader = BlockReader::Open(builder.Finish(), kKind);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->ReadU32().ok());
  EXPECT_FALSE(reader->ReadU32().ok());
}

TEST(BlockFormatTest, WrongRecordShapeIsCorruption) {
  BlockBuilder builder(kKind);
  builder.AppendString("not eight bytes wide");  // 20 bytes, not 8-aligned
  {
    auto reader = BlockReader::Open(builder.Finish(), kKind);
    ASSERT_TRUE(reader.ok());
    EXPECT_FALSE(reader->ReadU64().ok());  // exact-size mismatch
  }
  {
    auto reader = BlockReader::Open(builder.Finish(), kKind);
    ASSERT_TRUE(reader.ok());
    EXPECT_FALSE(reader->ReadDoubles().ok());  // not a multiple of 8
  }
}

TEST(BlockFormatTest, FloatRecordsRoundTripBitPatterns) {
  BlockBuilder builder(kKind);
  const std::vector<float> floats = {1.5f, -0.0f,
                                     std::numeric_limits<float>::infinity(),
                                     std::nanf("")};
  builder.AppendFloats(floats);
  auto reader = BlockReader::Open(builder.Finish(), kKind);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto loaded = reader->ReadFloats();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), floats.size());
  for (size_t i = 0; i < floats.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(loaded.value()[i]),
              std::bit_cast<uint32_t>(floats[i]))
        << "slot " << i;
  }
  EXPECT_EQ(reader->remaining(), 0u);
}

TEST(BlockFormatTest, EmptyFloatRecordRoundTrips) {
  BlockBuilder builder(kKind);
  builder.AppendFloats({});
  auto reader = BlockReader::Open(builder.Finish(), kKind);
  ASSERT_TRUE(reader.ok());
  auto loaded = reader->ReadFloats();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(BlockFormatTest, FloatReadOfWrongShapeIsCorruption) {
  BlockBuilder builder(kKind);
  builder.AppendString("xyzzy");  // 5 bytes, not a multiple of 4
  auto reader = BlockReader::Open(builder.Finish(), kKind);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->ReadFloats().ok());
}

TEST(BlockFormatTest, PeekBlockKindReadsHeaderWithoutCrc) {
  std::string sealed = SealedBlock();
  auto kind = PeekBlockKind(sealed);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), kKind);

  // Peek tolerates a damaged tail (it is for ls-style listings)...
  sealed.back() = static_cast<char>(sealed.back() ^ 0xFF);
  EXPECT_TRUE(PeekBlockKind(sealed).ok());
  // ...but not a short header or a wrong magic.
  EXPECT_FALSE(PeekBlockKind(sealed.substr(0, 10)).ok());
  sealed[0] = 'X';
  EXPECT_FALSE(PeekBlockKind(sealed).ok());
}

}  // namespace
}  // namespace cvcp
