// Unit tests for the persistent artifact store: bit-exact round trips of
// all three artifact kinds, the full damage taxonomy (truncation, flipped
// bits, version skew, key mismatch via renamed files) degrading to
// counted misses, concurrent same-key writers, and List/Purge. Every
// defect must surface as a classified miss — the store never crashes on,
// or serves, bad bytes.

#include "core/artifact_store.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/matrix.h"
#include "common/parallel.h"

namespace cvcp {
namespace {

namespace fs = std::filesystem;

// A fresh store directory per test, under the gtest scratch dir.
std::string FreshDir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "cvcp_store" / name;
  fs::remove_all(dir);
  return dir.string();
}

Matrix FixturePoints() {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 12; ++i) {
    const double x = i;
    rows.push_back({x, 0.5 * x - 3.0, x * x * 0.1});
  }
  return Matrix::FromRows(rows);
}

OpticsResult FixtureOptics() {
  OpticsResult optics;
  optics.order = {2, 0, 1, 3};
  const double inf = std::numeric_limits<double>::infinity();
  optics.reachability = {inf, 0.25, 1.5, std::nan("")};
  optics.core_distance = {0.5, inf, 0.75, 2.0};
  return optics;
}

// The one *.cvcp file in `dir` (fails the test if there are several).
std::string OnlyFile(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".cvcp") continue;
    EXPECT_TRUE(found.empty());
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(ArtifactStoreTest, DistanceMatrixRoundTripsBitExact) {
  ArtifactStore store(FreshDir("dist"));
  const Matrix points = FixturePoints();
  const uint64_t hash = HashMatrixContent(points);
  const DistanceMatrix dm = DistanceMatrix::Compute(points, Metric::kEuclidean);

  ASSERT_TRUE(store.SaveDistances(hash, Metric::kEuclidean, dm).ok());
  auto loaded = store.LoadDistances(hash, Metric::kEuclidean);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->n(), dm.n());
  ASSERT_EQ(loaded->condensed().size(), dm.condensed().size());
  for (size_t i = 0; i < dm.condensed().size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(loaded->condensed()[i]),
              std::bit_cast<uint64_t>(dm.condensed()[i]));
  }
  const auto stats = store.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST(ArtifactStoreTest, OpticsModelRoundTripsBitExact) {
  ArtifactStore store(FreshDir("optics"));
  const OpticsResult optics = FixtureOptics();
  ASSERT_TRUE(
      store.SaveOpticsModel(0xABCDEF01u, Metric::kEuclidean, 5, optics).ok());
  auto loaded = store.LoadOpticsModel(0xABCDEF01u, Metric::kEuclidean, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->order, optics.order);
  for (size_t i = 0; i < optics.reachability.size(); ++i) {
    // Bit equality keeps the +infinity sentinels and NaN payloads.
    EXPECT_EQ(std::bit_cast<uint64_t>(loaded->reachability[i]),
              std::bit_cast<uint64_t>(optics.reachability[i]));
    EXPECT_EQ(std::bit_cast<uint64_t>(loaded->core_distance[i]),
              std::bit_cast<uint64_t>(optics.core_distance[i]));
  }
}

TEST(ArtifactStoreTest, CellTimingsRoundTrip) {
  ArtifactStore store(FreshDir("timings"));
  const std::vector<CvCellTiming> timings = {
      {2, 0, 1.25}, {2, 1, 0.5}, {-3, 4, 100.0}};
  ASSERT_TRUE(store.SaveCellTimings(99, "bench tag", timings).ok());
  auto loaded = store.LoadCellTimings(99, "bench tag");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), timings.size());
  for (size_t i = 0; i < timings.size(); ++i) {
    EXPECT_EQ((*loaded)[i].param, timings[i].param);  // sign survives
    EXPECT_EQ((*loaded)[i].fold, timings[i].fold);
    EXPECT_EQ(std::bit_cast<uint64_t>((*loaded)[i].wall_ms),
              std::bit_cast<uint64_t>(timings[i].wall_ms));
  }
}

TEST(ArtifactStoreTest, ColdKeyIsNotFoundMiss) {
  ArtifactStore store(FreshDir("cold"));
  auto loaded = store.LoadOpticsModel(1, Metric::kEuclidean, 3);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  const auto stats = store.stats();
  EXPECT_EQ(stats.disk_misses, 1u);
  EXPECT_EQ(stats.corrupt_misses, 0u);
}

TEST(ArtifactStoreTest, TruncatedFileIsCountedCorruptMiss) {
  const std::string dir = FreshDir("truncated");
  ArtifactStore store(dir);
  ASSERT_TRUE(
      store.SaveOpticsModel(7, Metric::kEuclidean, 4, FixtureOptics()).ok());
  const std::string file = OnlyFile(dir);
  const auto full_size = fs::file_size(file);
  fs::resize_file(file, full_size / 2);

  auto loaded = store.LoadOpticsModel(7, Metric::kEuclidean, 4);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST(ArtifactStoreTest, FlippedBitIsCountedCorruptMiss) {
  const std::string dir = FreshDir("flipped");
  ArtifactStore store(dir);
  ASSERT_TRUE(
      store.SaveOpticsModel(8, Metric::kEuclidean, 4, FixtureOptics()).ok());
  const std::string file = OnlyFile(dir);
  {
    std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
    io.seekg(30);
    char byte = 0;
    io.get(byte);
    io.seekp(30);
    io.put(static_cast<char>(byte ^ 0x04));
  }
  auto loaded = store.LoadOpticsModel(8, Metric::kEuclidean, 4);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST(ArtifactStoreTest, RenamedFileFailsTheEmbeddedKeyCheck) {
  const std::string dir = FreshDir("renamed");
  ArtifactStore store(dir);
  // Save under MinPts 4, then move the file onto MinPts 9's name: the
  // frame is intact, but the embedded key must refuse to serve it.
  ASSERT_TRUE(
      store.SaveOpticsModel(9, Metric::kEuclidean, 4, FixtureOptics()).ok());
  const std::string mp4_file = OnlyFile(dir);
  std::string mp9_file = mp4_file;
  const size_t pos = mp9_file.find("mp004");
  ASSERT_NE(pos, std::string::npos);
  mp9_file.replace(pos, 5, "mp009");
  fs::rename(mp4_file, mp9_file);

  auto loaded = store.LoadOpticsModel(9, Metric::kEuclidean, 9);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST(ArtifactStoreTest, VersionSkewIsCountedVersionMiss) {
  const std::string dir = FreshDir("version");
  ArtifactStore store(dir);
  ASSERT_TRUE(
      store.SaveOpticsModel(10, Metric::kEuclidean, 4, FixtureOptics()).ok());
  // Re-seal the file as a future format version (patch version field,
  // recompute the CRC) — a downgrade scenario.
  const std::string file = OnlyFile(dir);
  std::string bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 24u);
  bytes[8] = static_cast<char>(bytes[8] + 1);
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = store.LoadOpticsModel(10, Metric::kEuclidean, 4);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.stats().version_misses, 1u);
  EXPECT_EQ(store.stats().corrupt_misses, 0u);
}

TEST(ArtifactStoreTest, ConcurrentSameKeyWritersConverge) {
  const std::string dir = FreshDir("racing");
  ArtifactStore store(dir);
  const OpticsResult optics = FixtureOptics();
  ExecutionContext exec;
  exec.threads = 8;
  // Deterministic artifacts: racing writers produce byte-identical files,
  // so whichever rename lands last, the stored bytes decode identically.
  ParallelFor(exec, 16, [&](size_t) {
    ASSERT_TRUE(
        store.SaveOpticsModel(11, Metric::kEuclidean, 4, optics).ok());
  });
  auto loaded = store.LoadOpticsModel(11, Metric::kEuclidean, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->order, optics.order);
  EXPECT_EQ(store.stats().writes, 16u);
  // No temp files left behind.
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".cvcp") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(ArtifactStoreTest, ListReportsKindsAndValidity) {
  const std::string dir = FreshDir("list");
  ArtifactStore store(dir);
  const Matrix points = FixturePoints();
  const uint64_t hash = HashMatrixContent(points);
  ASSERT_TRUE(store
                  .SaveDistances(hash, Metric::kEuclidean,
                                 DistanceMatrix::Compute(points,
                                                         Metric::kEuclidean))
                  .ok());
  ASSERT_TRUE(
      store.SaveOpticsModel(hash, Metric::kEuclidean, 4, FixtureOptics())
          .ok());
  ASSERT_TRUE(store.SaveCellTimings(hash, "t", {{1, 0, 2.0}}).ok());
  // Damage the optics file so List flags exactly one invalid entry.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().find("optics") == std::string::npos) continue;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) - 1);
  }

  auto listed = store.List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 3u);
  size_t valid = 0;
  for (const ArtifactFileInfo& file : *listed) {
    EXPECT_GT(file.bytes, 0u);
    if (file.valid) {
      ++valid;
    } else {
      EXPECT_EQ(file.kind,
                static_cast<uint32_t>(ArtifactKind::kOpticsModel));
      EXPECT_FALSE(file.detail.empty());
    }
  }
  EXPECT_EQ(valid, 2u);

  auto purged = store.Purge();
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(purged.value(), 3u);
  auto after = store.List();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

TEST(ArtifactStoreTest, F32DistanceMatrixRoundTripsBitExact) {
  ArtifactStore store(FreshDir("dist32"));
  const Matrix points = FixturePoints();
  const uint64_t hash = HashMatrixContent(points);
  const DistanceMatrix dm = DistanceMatrix::Compute(
      points, Metric::kEuclidean, {}, DistanceStorage::kF32);

  // SaveDistances infers the family from the matrix's storage mode.
  ASSERT_TRUE(store.SaveDistances(hash, Metric::kEuclidean, dm).ok());
  auto loaded =
      store.LoadDistances(hash, Metric::kEuclidean, DistanceStorage::kF32);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->storage(), DistanceStorage::kF32);
  ASSERT_EQ(loaded->condensed32().size(), dm.condensed32().size());
  for (size_t i = 0; i < dm.condensed32().size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(loaded->condensed32()[i]),
              std::bit_cast<uint32_t>(dm.condensed32()[i]));
  }
}

TEST(ArtifactStoreTest, MixedModeDistancesAreDisjointFamilies) {
  const std::string dir = FreshDir("mixed-dist");
  ArtifactStore store(dir);
  const Matrix points = FixturePoints();
  const uint64_t hash = HashMatrixContent(points);
  const DistanceMatrix f64 =
      DistanceMatrix::Compute(points, Metric::kEuclidean);
  const DistanceMatrix f32 = DistanceMatrix::Compute(
      points, Metric::kEuclidean, {}, DistanceStorage::kF32);

  // An f64 artifact must never satisfy an f32 request (and vice versa):
  // the whole point of the split is that a warm mixed-mode directory
  // cannot silently change a run's numerics.
  ASSERT_TRUE(store.SaveDistances(hash, Metric::kEuclidean, f64).ok());
  auto miss =
      store.LoadDistances(hash, Metric::kEuclidean, DistanceStorage::kF32);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(store.SaveDistances(hash, Metric::kEuclidean, f32).ok());
  auto miss64_check =
      store.LoadDistances(hash, Metric::kEuclidean, DistanceStorage::kF64);
  ASSERT_TRUE(miss64_check.ok());  // the f64 artifact is still its own file
  EXPECT_EQ(miss64_check->storage(), DistanceStorage::kF64);
  auto hit32 =
      store.LoadDistances(hash, Metric::kEuclidean, DistanceStorage::kF32);
  ASSERT_TRUE(hit32.ok());
  EXPECT_EQ(hit32->storage(), DistanceStorage::kF32);

  // Two files, and List decodes the storage mode of each.
  auto listed = store.List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  size_t f32_count = 0;
  for (const ArtifactFileInfo& file : *listed) {
    EXPECT_TRUE(file.valid) << file.filename << ": " << file.detail;
    EXPECT_TRUE(file.storage == "f32" || file.storage == "f64");
    if (file.storage == "f32") {
      ++f32_count;
      EXPECT_NE(file.filename.find("-f32.cvcp"), std::string::npos);
      EXPECT_EQ(file.kind,
                static_cast<uint32_t>(ArtifactKind::kDistanceMatrixF32));
    }
    EXPECT_FALSE(file.decoded_key.empty());
  }
  EXPECT_EQ(f32_count, 1u);
}

TEST(ArtifactStoreTest, OpticsStorageModesAreKeyedApart) {
  ArtifactStore store(FreshDir("optics32"));
  const OpticsResult optics = FixtureOptics();
  ASSERT_TRUE(store
                  .SaveOpticsModel(21, Metric::kEuclidean, 4, optics,
                                   DistanceStorage::kF32)
                  .ok());
  // The f64 key misses even though an f32 model for the same
  // (hash, metric, min_pts) exists.
  auto miss = store.LoadOpticsModel(21, Metric::kEuclidean, 4);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  auto hit = store.LoadOpticsModel(21, Metric::kEuclidean, 4,
                                   DistanceStorage::kF32);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->order, optics.order);
}

TEST(ArtifactStoreTest, CrossModeRenamedOpticsIsRefused) {
  const std::string dir = FreshDir("cross-mode");
  ArtifactStore store(dir);
  // Rename an f32-derived optics file onto the f64 name: the frame and
  // CRC are intact, but the trailing storage marker must refuse the f64
  // decode (remaining records after the arrays), and the reverse rename
  // must fail the marker requirement. Never served, always a counted
  // corrupt miss.
  ASSERT_TRUE(store
                  .SaveOpticsModel(22, Metric::kEuclidean, 4, FixtureOptics(),
                                   DistanceStorage::kF32)
                  .ok());
  const std::string f32_file = OnlyFile(dir);
  std::string f64_file = f32_file;
  const size_t pos = f64_file.find("-f32.cvcp");
  ASSERT_NE(pos, std::string::npos);
  f64_file.replace(pos, 9, ".cvcp");
  fs::rename(f32_file, f64_file);

  auto as_f64 = store.LoadOpticsModel(22, Metric::kEuclidean, 4);
  ASSERT_FALSE(as_f64.ok());
  EXPECT_EQ(as_f64.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(store.stats().corrupt_misses, 1u);

  // Reverse direction: a genuine f64 file renamed to the f32 name.
  fs::remove(f64_file);
  ASSERT_TRUE(
      store.SaveOpticsModel(22, Metric::kEuclidean, 4, FixtureOptics()).ok());
  fs::rename(f64_file, f32_file);
  auto as_f32 = store.LoadOpticsModel(22, Metric::kEuclidean, 4,
                                      DistanceStorage::kF32);
  ASSERT_FALSE(as_f32.ok());
  EXPECT_EQ(as_f32.status().code(), StatusCode::kCorruption);

  // List flags the mismatch between filename suffix and payload marker.
  auto listed = store.List();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_FALSE((*listed)[0].valid);
  EXPECT_FALSE((*listed)[0].detail.empty());
}

TEST(ArtifactStoreTest, ListOnAbsentDirectoryIsEmpty) {
  ArtifactStore store(FreshDir("absent"));
  auto listed = store.List();
  ASSERT_TRUE(listed.ok());
  EXPECT_TRUE(listed->empty());
  auto purged = store.Purge();
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(purged.value(), 0u);
}

}  // namespace
}  // namespace cvcp
