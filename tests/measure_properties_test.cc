// Property sweeps over the evaluation measures: bounds, degeneracy
// handling, and cross-measure consistency on randomly generated
// clusterings. Parameterized over seeds so each property is exercised on a
// spread of configurations.

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "common/rng.h"
#include "core/fmeasure.h"
#include "constraints/oracle.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

class MeasureSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    data_ = MakeBlobs("sweep", 1 + static_cast<int>(rng.Index(5)),
                      10 + rng.Index(30), 2 + rng.Index(4), 10.0, 2.0, &rng);
    // Random clustering with noise.
    std::vector<int> assignment(data_.size());
    const int k = 1 + static_cast<int>(rng.Index(6));
    for (auto& a : assignment) {
      a = rng.NextDouble() < 0.1 ? kNoise : static_cast<int>(rng.Index(k));
    }
    clustering_ = Clustering(std::move(assignment));
  }

  Dataset data_;
  Clustering clustering_;
};

TEST_P(MeasureSweep, AllMeasuresWithinBounds) {
  const auto& labels = data_.labels();
  auto in_unit = [](double v) { return std::isnan(v) || (v >= 0 && v <= 1); };
  EXPECT_TRUE(in_unit(OverallFMeasure(labels, clustering_)));
  EXPECT_TRUE(in_unit(RandIndex(labels, clustering_)));
  EXPECT_TRUE(in_unit(JaccardIndex(labels, clustering_)));
  EXPECT_TRUE(in_unit(PairwiseFMeasure(labels, clustering_)));
  EXPECT_TRUE(in_unit(Purity(labels, clustering_)));
  EXPECT_TRUE(in_unit(NormalizedMutualInformation(labels, clustering_)));
  const double ari = AdjustedRandIndex(labels, clustering_);
  EXPECT_TRUE(std::isnan(ari) || (ari >= -1.0 && ari <= 1.0));
}

TEST_P(MeasureSweep, GroundTruthClusteringIsOptimal) {
  const auto& labels = data_.labels();
  Clustering perfect(labels);
  EXPECT_DOUBLE_EQ(OverallFMeasure(labels, perfect), 1.0);
  EXPECT_DOUBLE_EQ(Purity(labels, perfect), 1.0);
  // Any other clustering cannot beat it.
  EXPECT_LE(OverallFMeasure(labels, clustering_),
            OverallFMeasure(labels, perfect) + 1e-12);
}

TEST_P(MeasureSweep, PairCountsPartitionAllPairs) {
  const auto& labels = data_.labels();
  const PairCounts pc = CountPairs(labels, clustering_);
  const size_t n = labels.size();
  EXPECT_EQ(pc.total(), n * (n - 1) / 2);
}

TEST_P(MeasureSweep, ConstraintFMeasureConsistentWithPairCounts) {
  // Build ground-truth constraints; the F-measure's raw counts must agree
  // with the pair-counting on the involved objects.
  Rng rng(GetParam() + 1000);
  auto pool = BuildConstraintPool(data_, 0.3, &rng);
  ASSERT_TRUE(pool.ok());
  const ConstraintFMeasure fm =
      EvaluateConstraintClassification(clustering_, pool.value());
  size_t ml_together = 0, ml_apart = 0, cl_together = 0, cl_apart = 0;
  for (const Constraint& c : pool->all()) {
    const bool together = clustering_.SameCluster(c.a, c.b);
    if (c.type == ConstraintType::kMustLink) {
      together ? ++ml_together : ++ml_apart;
    } else {
      together ? ++cl_together : ++cl_apart;
    }
  }
  EXPECT_EQ(fm.ml_together, ml_together);
  EXPECT_EQ(fm.ml_apart, ml_apart);
  EXPECT_EQ(fm.cl_together, cl_together);
  EXPECT_EQ(fm.cl_apart, cl_apart);
  if (!std::isnan(fm.average)) {
    EXPECT_GE(fm.average, 0.0);
    EXPECT_LE(fm.average, 1.0);
  }
}

TEST_P(MeasureSweep, ExclusionMaskNeverIncreasesPairTotal) {
  const auto& labels = data_.labels();
  Rng rng(GetParam() + 2000);
  std::vector<bool> exclude(labels.size(), false);
  for (size_t i = 0; i < exclude.size(); ++i) {
    exclude[i] = rng.NextDouble() < 0.3;
  }
  const PairCounts all = CountPairs(labels, clustering_);
  const PairCounts masked = CountPairs(labels, clustering_, &exclude);
  EXPECT_LE(masked.total(), all.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasureSweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace cvcp
