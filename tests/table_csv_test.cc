#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/table.h"

namespace cvcp {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t("Table 1: demo");
  t.SetHeader({"Data", "CVCP", "Expected"});
  t.AddRow({"ALOI", "0.7489", "0.7154"});
  t.AddRow({"Iris", "0.7251", "0.6982"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Table 1: demo"), std::string::npos);
  EXPECT_NE(out.find("Data"), std::string::npos);
  EXPECT_NE(out.find("0.7489"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Column alignment: "CVCP" and its values start at the same offset.
  const size_t header_pos = out.find("CVCP");
  const size_t value_pos = out.find("0.7489");
  const size_t header_col = header_pos - out.rfind('\n', header_pos) - 1;
  const size_t value_col = value_pos - out.rfind('\n', value_pos) - 1;
  EXPECT_EQ(header_col, value_col);
}

TEST(TextTableTest, RaggedRowsPadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3", "4"});
  const std::string out = t.Render();
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, EmptyTable) {
  TextTable t("caption only");
  EXPECT_EQ(t.Render(), "caption only\n");
}

TEST(CsvWriterTest, QuotesOnlyWhenNeeded) {
  CsvWriter w;
  w.AddRow({"plain", "with,comma", "with\"quote", "with\nnewline"});
  const std::string out = w.ToString();
  EXPECT_EQ(out,
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvRoundTripTest, WriteParseIdentity) {
  CsvWriter w;
  w.AddRow({"a", "b,c", "d\"e"});
  w.AddRow({"1", "", "3"});
  auto parsed = ParseCsv(w.ToString());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (std::vector<std::string>{"a", "b,c", "d\"e"}));
  EXPECT_EQ((*parsed)[1], (std::vector<std::string>{"1", "", "3"}));
}

TEST(ParseCsvTest, HandlesCrlfAndFinalLineWithoutNewline) {
  auto parsed = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, EmptyInput) {
  auto parsed = ParseCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ParseCsvTest, RejectsMalformed) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("a,b\"c").ok());
}

}  // namespace
}  // namespace cvcp
