// Determinism suite for the trial-level parallel experiment harness:
// RunExperiment and RunAloiExperiment must produce byte-identical
// aggregates — including the formatted table cells and boxplot renderings
// built from them — for every thread count and every nesting mode.
// Mirrors cvcp_determinism_test.cc one layer up; doubles are compared
// through their bit patterns so even sign-of-zero or NaN-payload drift
// would fail.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "eval/boxplot.h"
#include "data/generators.h"
#include "harness/experiment.h"

namespace cvcp::bench {
namespace {

Dataset FixtureData(uint64_t seed) {
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {30.0, 0.0};
  specs[2].mean = {0.0, 30.0};
  specs[3].mean = {30.0, 30.0};
  for (auto& spec : specs) {
    spec.stddevs = {0.8};
    spec.size = 20;
  }
  return MakeGaussianMixture("fixture", specs, &rng);
}

TrialSpec LabelSpec() {
  TrialSpec spec;
  spec.scenario = Scenario::kLabels;
  spec.level = 0.25;
  spec.n_folds = 3;
  spec.grid = {2, 3, 4, 5};
  spec.with_silhouette = true;
  return spec;
}

TrialSpec ConstraintSpec() {
  TrialSpec spec;
  spec.scenario = Scenario::kConstraints;
  spec.level = 0.5;
  spec.pool_fraction = 0.25;
  spec.n_folds = 3;
  spec.grid = {3, 6, 9};
  spec.with_silhouette = false;
  return spec;
}

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

void ExpectSeriesIdentical(const std::vector<double>& a,
                           const std::vector<double>& b, const char* name,
                           const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << name << ", " << where;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Bits(a[i]), Bits(b[i]))
        << name << "[" << i << "], " << where;
  }
}

void ExpectTTestsIdentical(const PairedTTestResult& a,
                           const PairedTTestResult& b, const char* name,
                           const std::string& where) {
  EXPECT_EQ(Bits(a.t_statistic), Bits(b.t_statistic)) << name << ", " << where;
  EXPECT_EQ(Bits(a.p_value), Bits(b.p_value)) << name << ", " << where;
  EXPECT_EQ(Bits(a.mean_diff), Bits(b.mean_diff)) << name << ", " << where;
  EXPECT_EQ(a.n, b.n) << name << ", " << where;
}

/// Asserts two cell aggregates are byte-identical, in the raw per-trial
/// series, every derived statistic, and the table cells formatted from
/// them.
void ExpectCellsIdentical(const CellAggregate& a, const CellAggregate& b,
                          const std::string& where) {
  EXPECT_EQ(a.trials_ok, b.trials_ok) << where;
  ExpectSeriesIdentical(a.cvcp_values, b.cvcp_values, "cvcp_values", where);
  ExpectSeriesIdentical(a.exp_values, b.exp_values, "exp_values", where);
  ExpectSeriesIdentical(a.sil_values, b.sil_values, "sil_values", where);
  ExpectSeriesIdentical(a.correlations, b.correlations, "correlations",
                        where);
  EXPECT_EQ(Bits(a.corr_mean), Bits(b.corr_mean)) << where;
  EXPECT_EQ(Bits(a.cvcp_mean), Bits(b.cvcp_mean)) << where;
  EXPECT_EQ(Bits(a.cvcp_std), Bits(b.cvcp_std)) << where;
  EXPECT_EQ(Bits(a.exp_mean), Bits(b.exp_mean)) << where;
  EXPECT_EQ(Bits(a.exp_std), Bits(b.exp_std)) << where;
  EXPECT_EQ(Bits(a.sil_mean), Bits(b.sil_mean)) << where;
  EXPECT_EQ(Bits(a.sil_std), Bits(b.sil_std)) << where;
  ExpectTTestsIdentical(a.cvcp_vs_exp, b.cvcp_vs_exp, "cvcp_vs_exp", where);
  ExpectTTestsIdentical(a.cvcp_vs_sil, b.cvcp_vs_sil, "cvcp_vs_sil", where);
  EXPECT_EQ(FormatMeanStd(a.cvcp_mean, a.cvcp_std),
            FormatMeanStd(b.cvcp_mean, b.cvcp_std))
      << where;
  EXPECT_EQ(FormatMeanStd(a.exp_mean, a.exp_std),
            FormatMeanStd(b.exp_mean, b.exp_std))
      << where;
  EXPECT_EQ(SigMarker(a.cvcp_vs_exp), SigMarker(b.cvcp_vs_exp)) << where;
}

/// The (threads, trial_threads, nesting) grid every scenario is checked
/// over: automatic widths, forced outer lanes, and forced-serial outer
/// loops, under both the all-or-nothing split and the nested-width
/// help-while-waiting scheduler.
struct EngineConfig {
  int threads;
  int trial_threads;
  NestingPolicy nesting;
};

const EngineConfig kConfigs[] = {
    {2, 0, NestingPolicy::kSplit},  {8, 0, NestingPolicy::kSplit},
    {2, 2, NestingPolicy::kSplit},  {8, 4, NestingPolicy::kSplit},
    {8, 1, NestingPolicy::kSplit},  {2, 0, NestingPolicy::kNested},
    {8, 0, NestingPolicy::kNested}, {8, 4, NestingPolicy::kNested},
    {8, 1, NestingPolicy::kNested},
};

std::string Where(const EngineConfig& config) {
  return "threads " + std::to_string(config.threads) + ", trial_threads " +
         std::to_string(config.trial_threads) + ", " +
         (config.nesting == NestingPolicy::kNested ? "nested" : "split");
}

template <typename Clusterer>
void CheckExperimentInvariance(const Dataset& data, TrialSpec spec,
                               int trials) {
  Clusterer clusterer;
  spec.exec = ExecutionContext::Serial();
  spec.trial_threads = 1;
  spec.nesting = NestingPolicy::kSplit;
  const CellAggregate serial =
      RunExperiment(data, clusterer, spec, trials, /*seed=*/77);
  ASSERT_GE(serial.trials_ok, 2);

  for (const EngineConfig& config : kConfigs) {
    spec.exec.threads = config.threads;
    spec.trial_threads = config.trial_threads;
    spec.nesting = config.nesting;
    const CellAggregate parallel =
        RunExperiment(data, clusterer, spec, trials, /*seed=*/77);
    ExpectCellsIdentical(serial, parallel, Where(config));
  }
}

TEST(ExperimentDeterminismTest, ScenarioOneLabelsMpckMeansBitIdentical) {
  CheckExperimentInvariance<MpckMeansClusterer>(FixtureData(11), LabelSpec(),
                                                /*trials=*/5);
}

TEST(ExperimentDeterminismTest, ScenarioTwoConstraintsFoscBitIdentical) {
  CheckExperimentInvariance<FoscOpticsDendClusterer>(FixtureData(12),
                                                     ConstraintSpec(),
                                                     /*trials=*/4);
}

TEST(ExperimentDeterminismTest, AloiAggregatesBitIdentical) {
  std::vector<Dataset> collection = {FixtureData(21), FixtureData(22),
                                     FixtureData(23)};
  MpckMeansClusterer clusterer;
  TrialSpec spec = LabelSpec();
  spec.exec = ExecutionContext::Serial();
  spec.trial_threads = 1;
  spec.nesting = NestingPolicy::kSplit;
  const AloiAggregate serial =
      RunAloiExperiment(collection, clusterer, spec, /*trials=*/3,
                        /*seed=*/88);
  ASSERT_EQ(serial.per_dataset.size(), collection.size());
  const std::string serial_boxes = RenderBoxplots(
      {{"CVCP", BoxplotStats::FromSamples(serial.pooled.cvcp_values)},
       {"Exp", BoxplotStats::FromSamples(serial.pooled.exp_values)},
       {"Sil", BoxplotStats::FromSamples(serial.pooled.sil_values)}},
      0.0, 1.0);

  for (const EngineConfig& config : kConfigs) {
    spec.exec.threads = config.threads;
    spec.trial_threads = config.trial_threads;
    spec.nesting = config.nesting;
    const AloiAggregate parallel =
        RunAloiExperiment(collection, clusterer, spec, /*trials=*/3,
                          /*seed=*/88);
    const std::string where = Where(config);
    EXPECT_EQ(parallel.significant_vs_expected,
              serial.significant_vs_expected)
        << where;
    EXPECT_EQ(parallel.significant_vs_silhouette,
              serial.significant_vs_silhouette)
        << where;
    ASSERT_EQ(parallel.per_dataset.size(), serial.per_dataset.size()) << where;
    for (size_t d = 0; d < serial.per_dataset.size(); ++d) {
      ExpectCellsIdentical(serial.per_dataset[d], parallel.per_dataset[d],
                           where + ", dataset " + std::to_string(d));
    }
    ExpectCellsIdentical(serial.pooled, parallel.pooled, where + ", pooled");
    // The rendered figure is a pure function of the pooled series; compare
    // it anyway so a formatting-level divergence cannot slip through.
    EXPECT_EQ(
        RenderBoxplots(
            {{"CVCP", BoxplotStats::FromSamples(parallel.pooled.cvcp_values)},
             {"Exp", BoxplotStats::FromSamples(parallel.pooled.exp_values)},
             {"Sil", BoxplotStats::FromSamples(parallel.pooled.sil_values)}},
            0.0, 1.0),
        serial_boxes)
        << where;
  }
}

}  // namespace
}  // namespace cvcp::bench
