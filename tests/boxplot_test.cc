#include "eval/boxplot.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvcp {
namespace {

TEST(BoxplotStatsTest, FiveNumberSummary) {
  BoxplotStats s = BoxplotStats::FromSamples({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_TRUE(s.outliers.empty());
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9.0);
}

TEST(BoxplotStatsTest, OutlierDetection) {
  // IQR fences at 1.5 IQR: 100 is an outlier of {1..9, 100}.
  BoxplotStats s =
      BoxplotStats::FromSamples({1, 2, 3, 4, 5, 6, 7, 8, 9, 100});
  ASSERT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers[0], 100.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(BoxplotStatsTest, EmptySampleIsNaN) {
  BoxplotStats s = BoxplotStats::FromSamples({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.n_total, 0u);
  EXPECT_TRUE(std::isnan(s.median));
}

TEST(BoxplotStatsTest, NanSamplesAreDroppedBeforeSorting) {
  // Pooled experiment series legitimately contain NaN (undefined scores);
  // sorting them is UB and used to poison every quantile.
  const double nan = std::nan("");
  BoxplotStats s =
      BoxplotStats::FromSamples({nan, 1, 2, nan, 3, 4, 5, 6, 7, 8, 9, nan});
  EXPECT_EQ(s.n, 9u);
  EXPECT_EQ(s.n_total, 12u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_TRUE(s.outliers.empty());
}

TEST(BoxplotStatsTest, AllNanSampleBehavesLikeEmpty) {
  const double nan = std::nan("");
  BoxplotStats s = BoxplotStats::FromSamples({nan, nan, nan});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.n_total, 3u);
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_TRUE(s.outliers.empty());
}

TEST(BoxplotStatsTest, SingleValue) {
  BoxplotStats s = BoxplotStats::FromSamples({0.7});
  EXPECT_DOUBLE_EQ(s.min, 0.7);
  EXPECT_DOUBLE_EQ(s.median, 0.7);
  EXPECT_DOUBLE_EQ(s.max, 0.7);
  EXPECT_TRUE(s.outliers.empty());
}

TEST(RenderBoxplotsTest, ContainsLabelsAndGlyphs) {
  std::vector<LabeledBox> boxes = {
      {"CVCP-10", BoxplotStats::FromSamples({0.7, 0.75, 0.8, 0.85, 0.9})},
      {"Exp-10", BoxplotStats::FromSamples({0.6, 0.65, 0.7, 0.72, 0.74})},
  };
  const std::string out = RenderBoxplots(boxes, 0.5, 1.0, 40);
  EXPECT_NE(out.find("CVCP-10"), std::string::npos);
  EXPECT_NE(out.find("Exp-10"), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
  EXPECT_NE(out.find(']'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("med="), std::string::npos);
}

TEST(RenderBoxplotsTest, DegenerateAxisIsWidenedInsteadOfAborting) {
  // All pooled values equal used to trip CVCP_CHECK_GT(hi, lo) and abort
  // the fig09-fig12 benches.
  std::vector<LabeledBox> boxes = {
      {"flat", BoxplotStats::FromSamples({0.7, 0.7, 0.7})}};
  const std::string out = RenderBoxplots(boxes, 0.7, 0.7, 40);
  EXPECT_NE(out.find("flat"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  // The widened axis is symmetric around the degenerate value.
  EXPECT_NE(out.find("axis: [0.665, 0.735]"), std::string::npos) << out;
}

TEST(RenderBoxplotsTest, ReportsDefinedAndTotalCounts) {
  const double nan = std::nan("");
  std::vector<LabeledBox> boxes = {
      {"sil", BoxplotStats::FromSamples({0.2, nan, 0.4, 0.6, nan})}};
  const std::string out = RenderBoxplots(boxes, 0.0, 1.0, 40);
  EXPECT_NE(out.find("n=3/5"), std::string::npos) << out;
}

TEST(RenderBoxplotsDeathTest, InvertedAxisStillChecks) {
  std::vector<LabeledBox> boxes = {
      {"box", BoxplotStats::FromSamples({0.5})}};
  EXPECT_DEATH(RenderBoxplots(boxes, 1.0, 0.0, 40), "hi");
}

TEST(RenderBoxplotsTest, EmptyBoxRendersBlank) {
  std::vector<LabeledBox> boxes = {{"empty", BoxplotStats::FromSamples({})}};
  const std::string out = RenderBoxplots(boxes, 0.0, 1.0, 30);
  EXPECT_NE(out.find("empty"), std::string::npos);
  // The box line itself (everything before the legend) has no glyphs.
  const std::string box_line = out.substr(0, out.find('\n'));
  EXPECT_EQ(box_line.find('#'), std::string::npos);
  EXPECT_EQ(box_line.find('['), std::string::npos);
}

}  // namespace
}  // namespace cvcp
