#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cvcp {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{5}), 5.0);
  EXPECT_TRUE(std::isnan(Mean(std::vector<double>{})));
}

TEST(VarianceTest, SampleVarianceUsesNMinusOne) {
  // var([1,2,3,4]) with n-1 = 5/3.
  EXPECT_NEAR(SampleVariance(std::vector<double>{1, 2, 3, 4}), 5.0 / 3.0,
              1e-12);
  EXPECT_TRUE(std::isnan(SampleVariance(std::vector<double>{1})));
  EXPECT_DOUBLE_EQ(SampleVariance(std::vector<double>{3, 3, 3}), 0.0);
}

TEST(StdDevTest, SqrtOfVariance) {
  EXPECT_NEAR(SampleStdDev(std::vector<double>{1, 2, 3, 4}),
              std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_TRUE(std::isnan(Median({})));
}

TEST(QuantileTest, LinearInterpolation) {
  std::vector<double> sorted = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.1), 0.4);
}

TEST(PearsonTest, PerfectCorrelations) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y_pos = {2, 4, 6, 8};
  std::vector<double> y_neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
}

TEST(PearsonTest, KnownModerateValue) {
  // Hand-computed: cov = 8, var_x = var_y = 10 => r = 0.8.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 1, 4, 3, 5};
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(PearsonTest, UndefinedForFlatSeries) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {1, 2, 3};
  EXPECT_TRUE(std::isnan(PearsonCorrelation(x, y)));
  EXPECT_TRUE(std::isnan(PearsonCorrelation(y, x)));
}

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);          // Gamma(1) = 1
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);          // Gamma(2) = 1
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);  // Gamma(5) = 4!
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(IncompleteBetaTest, BoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.37), 0.37, 1e-9);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = RegularizedIncompleteBeta(2.5, 4.0, 0.3);
  const double w = RegularizedIncompleteBeta(4.0, 2.5, 0.7);
  EXPECT_NEAR(v, 1.0 - w, 1e-9);
}

TEST(StudentTCdfTest, SymmetryAndKnownQuantiles) {
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-9);
  // CDF symmetry.
  EXPECT_NEAR(StudentTCdf(1.3, 7) + StudentTCdf(-1.3, 7), 1.0, 1e-9);
  // t_{0.975, 10} = 2.228139: CDF(2.228139, 10) ~= 0.975.
  EXPECT_NEAR(StudentTCdf(2.228139, 10), 0.975, 1e-4);
  // t_{0.95, 4} = 2.131847.
  EXPECT_NEAR(StudentTCdf(2.131847, 4), 0.95, 1e-4);
  // Large df approaches the normal: CDF(1.96, 1e6) ~= 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(PairedTTestTest, KnownExample) {
  // diffs = {1, 1, 1, 1, 2}: mean=1.2, sd=0.4472, t = 6.0, df = 4,
  // two-sided p ~= 0.003883.
  std::vector<double> a = {2, 3, 4, 5, 7};
  std::vector<double> b = {1, 2, 3, 4, 5};
  const PairedTTestResult r = PairedTTest(a, b);
  EXPECT_EQ(r.n, 5u);
  EXPECT_NEAR(r.mean_diff, 1.2, 1e-12);
  EXPECT_NEAR(r.t_statistic, 6.0, 1e-9);
  EXPECT_NEAR(r.p_value, 0.003883, 1e-4);
  EXPECT_TRUE(r.SignificantAt(0.05));
  EXPECT_FALSE(r.SignificantAt(0.001));
}

TEST(PairedTTestTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3};
  const PairedTTestResult r = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.SignificantAt(0.05));
}

TEST(PairedTTestTest, ConstantShiftIsMaximallySignificant) {
  std::vector<double> a = {2, 3, 4};
  std::vector<double> b = {1, 2, 3};
  const PairedTTestResult r = PairedTTest(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
  EXPECT_TRUE(r.SignificantAt(0.05));
}

TEST(PairedTTestTest, TooFewPairsUndefined) {
  std::vector<double> a = {1};
  std::vector<double> b = {2};
  const PairedTTestResult r = PairedTTest(a, b);
  EXPECT_TRUE(std::isnan(r.p_value));
  EXPECT_FALSE(r.SignificantAt(0.05));
}

TEST(PairedTTestTest, SymmetricInSign) {
  std::vector<double> a = {5, 6, 7, 9};
  std::vector<double> b = {4, 7, 6, 8};
  const PairedTTestResult ab = PairedTTest(a, b);
  const PairedTTestResult ba = PairedTTest(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.t_statistic, -ba.t_statistic, 1e-12);
}

}  // namespace
}  // namespace cvcp
