// Bitwise-equality suite for the per-dataset compute cache: running with
// the cache must produce byte-identical results to running without it —
// CvcpReports, silhouette selections, OPTICS-derived clusterings, and
// whole experiment aggregates — across 1/2/8 threads and both scheduler
// policies. Scores are compared through their bit patterns so even
// sign-of-zero or NaN-payload drift would fail.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "core/dataset_cache.h"
#include "core/selectors.h"
#include "data/generators.h"
#include "harness/experiment.h"

namespace cvcp {
namespace {

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

Dataset FixtureData(uint64_t seed) {
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {30.0, 0.0};
  specs[2].mean = {0.0, 30.0};
  specs[3].mean = {30.0, 30.0};
  for (auto& spec : specs) {
    spec.stddevs = {0.8};
    spec.size = 25;
  }
  return MakeGaussianMixture("fixture", specs, &rng);
}

/// Scenario II fixture: pairwise constraints + FOSC — the clusterer whose
/// model stage actually goes through the cache.
struct ConstraintFixture {
  Dataset data = FixtureData(601);
  Supervision supervision = [this] {
    Rng rng(602);
    auto pool = BuildConstraintPool(data, 0.25, &rng);
    CVCP_CHECK(pool.ok());
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    CVCP_CHECK(sampled.ok());
    return Supervision::FromConstraints(sampled.value());
  }();
  FoscOpticsDendClusterer clusterer;
};

/// Scenario I fixture: labels + MPCKMeans — exercises the cached
/// silhouette path (the clusterer itself ignores the cache).
struct LabelFixture {
  Dataset data = FixtureData(701);
  Supervision supervision = [this] {
    Rng rng(702);
    auto labeled = SampleLabeledObjects(data, 0.25, &rng);
    CVCP_CHECK(labeled.ok());
    return Supervision::FromLabels(data, labeled.value());
  }();
  MpckMeansClusterer clusterer;
};

void ExpectReportsIdentical(const CvcpReport& a, const CvcpReport& b,
                            int threads) {
  EXPECT_EQ(a.best_param, b.best_param) << "threads " << threads;
  EXPECT_EQ(Bits(a.best_score), Bits(b.best_score)) << "threads " << threads;
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (size_t g = 0; g < a.scores.size(); ++g) {
    EXPECT_EQ(a.scores[g].param, b.scores[g].param) << "grid " << g;
    EXPECT_EQ(a.scores[g].valid_folds, b.scores[g].valid_folds)
        << "grid " << g;
    EXPECT_EQ(Bits(a.scores[g].score), Bits(b.scores[g].score))
        << "grid " << g << ", threads " << threads;
  }
  EXPECT_EQ(a.final_clustering.assignment(), b.final_clustering.assignment())
      << "threads " << threads;
}

template <typename Fixture>
void CheckCachedCvcpBitIdentical(const Fixture& fixture,
                                 CvcpConfig config) {
  config.cv.exec = ExecutionContext::Serial();
  Rng uncached_rng(808);
  auto uncached = RunCvcp(fixture.data, fixture.supervision,
                          fixture.clusterer, config, &uncached_rng);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

  for (int threads : {1, 2, 8}) {
    config.cv.exec.threads = threads;
    // Fresh cache per configuration: lazily filled during the run, shared
    // by all of its cells.
    DatasetCache cache(fixture.data.points());
    Rng rng(808);
    auto cached = RunCvcp(fixture.data, fixture.supervision,
                          fixture.clusterer, config, &rng, &cache);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectReportsIdentical(*uncached, *cached, threads);
  }
}

TEST(CacheDeterminismTest, CvcpConstraintsFoscBitIdentical) {
  ConstraintFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {3, 6, 9, 12};
  CheckCachedCvcpBitIdentical(fixture, config);
}

TEST(CacheDeterminismTest, CvcpLabelsMpckMeansBitIdentical) {
  LabelFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6};
  CheckCachedCvcpBitIdentical(fixture, config);
}

TEST(CacheDeterminismTest, FoscClustersBitIdenticalThroughCache) {
  // The clusterer front door: cached DoCluster (memoized OPTICS over the
  // distance matrix) vs uncached DoCluster (on-the-fly distances) must
  // produce the same partition at every grid value.
  ConstraintFixture fixture;
  DatasetCache cache(fixture.data.points());
  ExecutionContext exec;
  exec.threads = 2;
  for (int min_pts : {2, 4, 8, 16}) {
    Rng rng_a(11);
    Rng rng_b(11);
    auto uncached = fixture.clusterer.Cluster(
        fixture.data, fixture.supervision, min_pts, &rng_a);
    auto cached = fixture.clusterer.Cluster(
        fixture.data, fixture.supervision, min_pts, &rng_b,
        ClusterContext{&cache, exec});
    ASSERT_TRUE(uncached.ok());
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(uncached->assignment(), cached->assignment())
        << "MinPts " << min_pts;
  }
}

TEST(CacheDeterminismTest, SilhouetteSelectionBitIdentical) {
  LabelFixture fixture;
  const std::vector<int> grid = {2, 3, 4, 5, 6};
  Rng uncached_rng(909);
  auto uncached =
      SelectBySilhouette(fixture.data, fixture.supervision, fixture.clusterer,
                         grid, &uncached_rng);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

  for (int threads : {1, 2, 8}) {
    DatasetCache cache(fixture.data.points());
    ExecutionContext exec;
    exec.threads = threads;
    Rng rng(909);
    auto cached =
        SelectBySilhouette(fixture.data, fixture.supervision,
                           fixture.clusterer, grid, &rng,
                           ClusterContext{&cache, exec});
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_EQ(cached->best_param, uncached->best_param);
    EXPECT_EQ(Bits(cached->best_silhouette), Bits(uncached->best_silhouette));
    ASSERT_EQ(cached->silhouettes.size(), uncached->silhouettes.size());
    for (size_t gi = 0; gi < grid.size(); ++gi) {
      EXPECT_EQ(Bits(cached->silhouettes[gi]), Bits(uncached->silhouettes[gi]))
          << "grid " << gi << ", threads " << threads;
    }
    EXPECT_EQ(cached->best_clustering.assignment(),
              uncached->best_clustering.assignment());
  }
}

void ExpectAggregatesIdentical(const bench::CellAggregate& a,
                               const bench::CellAggregate& b,
                               const char* label) {
  EXPECT_EQ(a.trials_ok, b.trials_ok) << label;
  EXPECT_EQ(Bits(a.corr_mean), Bits(b.corr_mean)) << label;
  EXPECT_EQ(Bits(a.cvcp_mean), Bits(b.cvcp_mean)) << label;
  EXPECT_EQ(Bits(a.cvcp_std), Bits(b.cvcp_std)) << label;
  EXPECT_EQ(Bits(a.exp_mean), Bits(b.exp_mean)) << label;
  EXPECT_EQ(Bits(a.sil_mean), Bits(b.sil_mean)) << label;
  EXPECT_EQ(Bits(a.cvcp_vs_exp.p_value), Bits(b.cvcp_vs_exp.p_value))
      << label;
  ASSERT_EQ(a.cvcp_values.size(), b.cvcp_values.size()) << label;
  for (size_t t = 0; t < a.cvcp_values.size(); ++t) {
    EXPECT_EQ(Bits(a.cvcp_values[t]), Bits(b.cvcp_values[t]))
        << label << ", trial " << t;
    EXPECT_EQ(Bits(a.sil_values[t]), Bits(b.sil_values[t]))
        << label << ", trial " << t;
  }
}

// The whole harness: cache on vs cache off must agree byte-for-byte for
// every threads × scheduler-policy combination (the cache is shared by
// concurrent trial lanes, so this also exercises cross-trial sharing).
TEST(CacheDeterminismTest, ExperimentAggregatesBitIdentical) {
  Dataset data = FixtureData(801);
  MpckMeansClusterer clusterer;
  bench::TrialSpec spec;
  spec.scenario = bench::Scenario::kLabels;
  spec.level = 0.2;
  spec.n_folds = 3;
  spec.grid = {2, 3, 4, 5};
  spec.with_silhouette = true;
  const int trials = 4;

  spec.use_cache = false;
  spec.exec = ExecutionContext::Serial();
  spec.nesting = NestingPolicy::kSplit;
  const bench::CellAggregate baseline =
      bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/99);
  ASSERT_GT(baseline.trials_ok, 0);

  for (NestingPolicy policy :
       {NestingPolicy::kNested, NestingPolicy::kSplit}) {
    for (int threads : {1, 2, 8}) {
      for (bool use_cache : {true, false}) {
        spec.use_cache = use_cache;
        spec.exec.threads = threads;
        spec.nesting = policy;
        const bench::CellAggregate agg =
            bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/99);
        const std::string label =
            std::string(use_cache ? "cache" : "no-cache") + ", threads " +
            std::to_string(threads) +
            (policy == NestingPolicy::kNested ? ", nested" : ", split");
        ExpectAggregatesIdentical(baseline, agg, label.c_str());
      }
    }
  }
}

// Same one level up for FOSC (the cache-heavy algorithm) including the
// FOSC-specific sweep and external scores.
TEST(CacheDeterminismTest, FoscExperimentAggregatesBitIdentical) {
  Dataset data = FixtureData(901);
  FoscOpticsDendClusterer clusterer;
  bench::TrialSpec spec;
  spec.scenario = bench::Scenario::kConstraints;
  spec.level = 0.5;
  spec.n_folds = 3;
  spec.grid = {3, 5, 8, 12};
  const int trials = 3;

  spec.use_cache = false;
  spec.exec = ExecutionContext::Serial();
  const bench::CellAggregate baseline =
      bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/77);
  ASSERT_GT(baseline.trials_ok, 0);

  for (NestingPolicy policy :
       {NestingPolicy::kNested, NestingPolicy::kSplit}) {
    for (int threads : {1, 2, 8}) {
      spec.use_cache = true;
      spec.exec.threads = threads;
      spec.nesting = policy;
      const bench::CellAggregate agg =
          bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/77);
      const std::string label =
          "threads " + std::to_string(threads) +
          (policy == NestingPolicy::kNested ? ", nested" : ", split");
      ExpectAggregatesIdentical(baseline, agg, label.c_str());
    }
  }
}

}  // namespace
}  // namespace cvcp
