// Tests for the bench harness itself: the §4.1 trial protocol must be
// deterministic, produce consistent aggregates, and derive the selector
// quantities (CVCP pick / Expected / Silhouette) from the same external
// score series.

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/paper_suites.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace cvcp::bench {
namespace {

TrialSpec LabelSpec() {
  TrialSpec spec;
  spec.scenario = Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 4;
  spec.grid = {2, 3, 4, 5, 6};
  spec.with_silhouette = true;
  return spec;
}

TEST(RunTrialTest, DeterministicGivenSeed) {
  Dataset data = MakeAloiK5Like(1, 0);
  MpckMeansClusterer clusterer;
  const TrialResult a = RunTrial(data, clusterer, LabelSpec(), 99);
  const TrialResult b = RunTrial(data, clusterer, LabelSpec(), 99);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.cvcp_param, b.cvcp_param);
  EXPECT_EQ(a.internal_scores.size(), b.internal_scores.size());
  for (size_t i = 0; i < a.internal_scores.size(); ++i) {
    if (std::isnan(a.internal_scores[i])) {
      EXPECT_TRUE(std::isnan(b.internal_scores[i]));
    } else {
      EXPECT_DOUBLE_EQ(a.internal_scores[i], b.internal_scores[i]);
    }
    EXPECT_DOUBLE_EQ(a.external_scores[i], b.external_scores[i]);
  }
}

TEST(RunTrialTest, SelectorQuantitiesDeriveFromExternalSeries) {
  Dataset data = MakeAloiK5Like(1, 1);
  MpckMeansClusterer clusterer;
  const TrialSpec spec = LabelSpec();
  const TrialResult t = RunTrial(data, clusterer, spec, 7);
  ASSERT_TRUE(t.ok);
  ASSERT_EQ(t.external_scores.size(), spec.grid.size());

  // cvcp_external is the external score at the picked grid value.
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    if (spec.grid[gi] == t.cvcp_param) {
      EXPECT_DOUBLE_EQ(t.cvcp_external, t.external_scores[gi]);
    }
  }
  // expected_external is the NaN-skipping mean.
  double sum = 0.0;
  size_t n = 0;
  for (double v : t.external_scores) {
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR(t.expected_external, sum / n, 1e-12);
  // Silhouette pick comes from the same series.
  if (!std::isnan(t.silhouette_external)) {
    bool found = false;
    for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
      if (spec.grid[gi] == t.silhouette_param) {
        EXPECT_DOUBLE_EQ(t.silhouette_external, t.external_scores[gi]);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RunTrialTest, FoscSkipsSilhouette) {
  Dataset data = MakeAloiK5Like(1, 2);
  FoscOpticsDendClusterer clusterer;
  TrialSpec spec = LabelSpec();
  spec.grid = DefaultMinPtsGrid();
  spec.with_silhouette = false;
  const TrialResult t = RunTrial(data, clusterer, spec, 3);
  ASSERT_TRUE(t.ok);
  EXPECT_TRUE(std::isnan(t.silhouette_external));
}

TEST(TrialResultTest, SelectorQualitiesDefaultToUndefinedNotZero) {
  // A stale 0.0 default used to be aggregated as a real score whenever a
  // quantity was never assigned, biasing means downward.
  TrialResult t;
  EXPECT_TRUE(std::isnan(t.cvcp_external));
  EXPECT_TRUE(std::isnan(t.silhouette_external));
}

TEST(CellAggregateTest, FinalizeDropsUndefinedPairsPairwise) {
  const double nan = std::nan("");
  CellAggregate agg;
  agg.cvcp_values = {0.8, nan, 0.6, 0.9};
  agg.exp_values = {0.5, 0.4, nan, 0.6};
  agg.sil_values = {0.7, 0.2, 0.5, nan};
  agg.correlations = {0.9, nan, 0.8, 0.7};
  agg.Finalize(/*with_silhouette=*/true);
  // Means/stds are over each series' defined entries.
  EXPECT_NEAR(agg.cvcp_mean, (0.8 + 0.6 + 0.9) / 3.0, 1e-12);
  EXPECT_FALSE(std::isnan(agg.cvcp_std));
  EXPECT_NEAR(agg.exp_mean, 0.5, 1e-12);
  EXPECT_NEAR(agg.corr_mean, 0.8, 1e-12);
  // T-tests keep only the positions where both sides are defined:
  // cvcp-vs-exp pairs (0.8, 0.5) and (0.9, 0.6).
  EXPECT_EQ(agg.cvcp_vs_exp.n, 2u);
  EXPECT_NEAR(agg.cvcp_vs_exp.mean_diff, 0.3, 1e-12);
  // cvcp-vs-sil pairs (0.8, 0.7) and (0.6, 0.5).
  EXPECT_EQ(agg.cvcp_vs_sil.n, 2u);
  EXPECT_NEAR(agg.cvcp_vs_sil.mean_diff, 0.1, 1e-12);
}

TEST(CellAggregateTest, FewerThanTwoDefinedPairsIsNeverSignificant) {
  const double nan = std::nan("");
  CellAggregate agg;
  agg.cvcp_values = {0.8, nan, nan};
  agg.exp_values = {0.5, 0.4, 0.3};
  agg.sil_values = {nan, nan, nan};
  agg.correlations = {nan, nan, nan};
  agg.Finalize(/*with_silhouette=*/true);
  EXPECT_TRUE(std::isnan(agg.cvcp_vs_exp.p_value));
  EXPECT_FALSE(agg.cvcp_vs_exp.SignificantAt(0.05));
  EXPECT_FALSE(agg.cvcp_vs_sil.SignificantAt(0.05));
  EXPECT_EQ(SigMarker(agg.cvcp_vs_exp), "");
  EXPECT_NEAR(agg.cvcp_mean, 0.8, 1e-12);
  EXPECT_TRUE(std::isnan(agg.cvcp_std));  // only one defined value
  EXPECT_TRUE(std::isnan(agg.sil_mean));
  EXPECT_TRUE(std::isnan(agg.corr_mean));
}

TEST(RunExperimentTest, FullSupervisionDoesNotPoisonAggregates) {
  // With every object labeled, all external F-measures are undefined; the
  // trials must still count as ok and the NaNs must stay contained ("—"
  // table cells, no significance) instead of poisoning the aggregation.
  Rng data_rng(77);
  Dataset data = MakeBlobs("blobs", 3, 12, 2, 25.0, 1.0, &data_rng);
  MpckMeansClusterer clusterer;
  TrialSpec spec = LabelSpec();
  spec.level = 1.0;
  spec.grid = {2, 3, 4};
  spec.n_folds = 3;
  const CellAggregate agg =
      RunExperiment(data, clusterer, spec, /*trials=*/3, /*seed=*/11);
  EXPECT_EQ(agg.trials_ok, 3);
  ASSERT_EQ(agg.cvcp_values.size(), 3u);
  for (double v : agg.cvcp_values) EXPECT_TRUE(std::isnan(v));
  EXPECT_TRUE(std::isnan(agg.cvcp_mean));
  EXPECT_EQ(FormatMeanStd(agg.cvcp_mean, agg.cvcp_std), "—");
  EXPECT_FALSE(agg.cvcp_vs_exp.SignificantAt(0.05));
  EXPECT_EQ(SigMarker(agg.cvcp_vs_exp), "");
}

TEST(RunExperimentTest, AggregatesMatchTrialValues) {
  Dataset data = MakeAloiK5Like(1, 3);
  MpckMeansClusterer clusterer;
  const CellAggregate agg =
      RunExperiment(data, clusterer, LabelSpec(), /*trials=*/4, /*seed=*/5);
  EXPECT_EQ(agg.trials_ok, 4);
  ASSERT_EQ(agg.cvcp_values.size(), 4u);
  double sum = 0.0;
  for (double v : agg.cvcp_values) sum += v;
  EXPECT_NEAR(agg.cvcp_mean, sum / 4.0, 1e-12);
  EXPECT_EQ(agg.cvcp_vs_exp.n, 4u);
}

TEST(RunAloiExperimentTest, PoolsAcrossCollection) {
  std::vector<Dataset> collection = MakeAloiK5Collection(1, 3);
  MpckMeansClusterer clusterer;
  const AloiAggregate agg = RunAloiExperiment(collection, clusterer,
                                              LabelSpec(), /*trials=*/3,
                                              /*seed=*/9);
  EXPECT_EQ(agg.per_dataset.size(), 3u);
  EXPECT_EQ(agg.pooled.cvcp_values.size(), 9u);  // 3 datasets x 3 trials
  EXPECT_GE(agg.significant_vs_expected, 0);
  EXPECT_LE(agg.significant_vs_expected, 3);
}

TEST(BenchOptionsTest, FlagsOverrideDefaults) {
  const char* argv[] = {"bench", "--trials", "7", "--aloi", "3",
                        "--folds", "4", "--seed", "123"};
  const BenchOptions o =
      ParseBenchOptions(9, const_cast<char**>(argv));
  EXPECT_EQ(o.trials, 7);
  EXPECT_EQ(o.aloi_datasets, 3u);
  EXPECT_EQ(o.n_folds, 4);
  EXPECT_EQ(o.seed, 123u);
}

TEST(BenchOptionsTest, TrialThreadsFlagParsedAndClamped) {
  const char* argv[] = {"bench", "--trial-threads", "4"};
  const BenchOptions o = ParseBenchOptions(3, const_cast<char**>(argv));
  EXPECT_EQ(o.trial_threads, 4);
  const char* negative[] = {"bench", "--trial-threads", "-2"};
  const BenchOptions o2 = ParseBenchOptions(3, const_cast<char**>(negative));
  EXPECT_EQ(o2.trial_threads, 0);  // 0 = automatic split
}

TEST(BenchOptionsTest, SchedulerFlagSelectsNestingPolicy) {
  const BenchOptions defaults = ParseBenchOptions(0, nullptr);
  EXPECT_EQ(defaults.nesting, NestingPolicy::kNested);
  const char* split[] = {"bench", "--scheduler", "split"};
  EXPECT_EQ(ParseBenchOptions(3, const_cast<char**>(split)).nesting,
            NestingPolicy::kSplit);
  const char* nested[] = {"bench", "--scheduler", "nested"};
  EXPECT_EQ(ParseBenchOptions(3, const_cast<char**>(nested)).nesting,
            NestingPolicy::kNested);
  // Unknown values keep the default rather than aborting a bench run.
  const char* typo[] = {"bench", "--scheduler", "sideways"};
  EXPECT_EQ(ParseBenchOptions(3, const_cast<char**>(typo)).nesting,
            NestingPolicy::kNested);
}

TEST(BenchOptionsTest, PaperFlagRestoresPaperScale) {
  const char* argv[] = {"bench", "--paper"};
  const BenchOptions o = ParseBenchOptions(2, const_cast<char**>(argv));
  EXPECT_EQ(o.trials, 50);
  EXPECT_EQ(o.aloi_datasets, 100u);
  EXPECT_EQ(o.n_folds, 10);
}

TEST(BenchOptionsTest, ClampsDegenerateValues) {
  const char* argv[] = {"bench", "--trials", "1", "--folds", "0"};
  const BenchOptions o = ParseBenchOptions(5, const_cast<char**>(argv));
  EXPECT_GE(o.trials, 2);
  EXPECT_GE(o.n_folds, 2);
}

TEST(FormattersTest, MeanStdAndSigMarker) {
  EXPECT_EQ(FormatMeanStd(0.7489, 0.0531), "0.7489 ±0.0531");
  EXPECT_EQ(FormatMeanStd(std::nan(""), 0.0), "—");
  PairedTTestResult sig;
  sig.p_value = 0.01;
  PairedTTestResult notsig;
  notsig.p_value = 0.2;
  EXPECT_EQ(SigMarker(sig), "*");
  EXPECT_EQ(SigMarker(notsig), "");
}

}  // namespace
}  // namespace cvcp::bench
