// Tests for the bench harness itself: the §4.1 trial protocol must be
// deterministic, produce consistent aggregates, and derive the selector
// quantities (CVCP pick / Expected / Silhouette) from the same external
// score series.

#include <cmath>

#include <gtest/gtest.h>

#include "data/paper_suites.h"
#include "harness/experiment.h"
#include "harness/options.h"

namespace cvcp::bench {
namespace {

TrialSpec LabelSpec() {
  TrialSpec spec;
  spec.scenario = Scenario::kLabels;
  spec.level = 0.20;
  spec.n_folds = 4;
  spec.grid = {2, 3, 4, 5, 6};
  spec.with_silhouette = true;
  return spec;
}

TEST(RunTrialTest, DeterministicGivenSeed) {
  Dataset data = MakeAloiK5Like(1, 0);
  MpckMeansClusterer clusterer;
  const TrialResult a = RunTrial(data, clusterer, LabelSpec(), 99);
  const TrialResult b = RunTrial(data, clusterer, LabelSpec(), 99);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.cvcp_param, b.cvcp_param);
  EXPECT_EQ(a.internal_scores.size(), b.internal_scores.size());
  for (size_t i = 0; i < a.internal_scores.size(); ++i) {
    if (std::isnan(a.internal_scores[i])) {
      EXPECT_TRUE(std::isnan(b.internal_scores[i]));
    } else {
      EXPECT_DOUBLE_EQ(a.internal_scores[i], b.internal_scores[i]);
    }
    EXPECT_DOUBLE_EQ(a.external_scores[i], b.external_scores[i]);
  }
}

TEST(RunTrialTest, SelectorQuantitiesDeriveFromExternalSeries) {
  Dataset data = MakeAloiK5Like(1, 1);
  MpckMeansClusterer clusterer;
  const TrialSpec spec = LabelSpec();
  const TrialResult t = RunTrial(data, clusterer, spec, 7);
  ASSERT_TRUE(t.ok);
  ASSERT_EQ(t.external_scores.size(), spec.grid.size());

  // cvcp_external is the external score at the picked grid value.
  for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
    if (spec.grid[gi] == t.cvcp_param) {
      EXPECT_DOUBLE_EQ(t.cvcp_external, t.external_scores[gi]);
    }
  }
  // expected_external is the NaN-skipping mean.
  double sum = 0.0;
  size_t n = 0;
  for (double v : t.external_scores) {
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR(t.expected_external, sum / n, 1e-12);
  // Silhouette pick comes from the same series.
  if (!std::isnan(t.silhouette_external)) {
    bool found = false;
    for (size_t gi = 0; gi < spec.grid.size(); ++gi) {
      if (spec.grid[gi] == t.silhouette_param) {
        EXPECT_DOUBLE_EQ(t.silhouette_external, t.external_scores[gi]);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RunTrialTest, FoscSkipsSilhouette) {
  Dataset data = MakeAloiK5Like(1, 2);
  FoscOpticsDendClusterer clusterer;
  TrialSpec spec = LabelSpec();
  spec.grid = DefaultMinPtsGrid();
  spec.with_silhouette = false;
  const TrialResult t = RunTrial(data, clusterer, spec, 3);
  ASSERT_TRUE(t.ok);
  EXPECT_TRUE(std::isnan(t.silhouette_external));
}

TEST(RunExperimentTest, AggregatesMatchTrialValues) {
  Dataset data = MakeAloiK5Like(1, 3);
  MpckMeansClusterer clusterer;
  const CellAggregate agg =
      RunExperiment(data, clusterer, LabelSpec(), /*trials=*/4, /*seed=*/5);
  EXPECT_EQ(agg.trials_ok, 4);
  ASSERT_EQ(agg.cvcp_values.size(), 4u);
  double sum = 0.0;
  for (double v : agg.cvcp_values) sum += v;
  EXPECT_NEAR(agg.cvcp_mean, sum / 4.0, 1e-12);
  EXPECT_EQ(agg.cvcp_vs_exp.n, 4u);
}

TEST(RunAloiExperimentTest, PoolsAcrossCollection) {
  std::vector<Dataset> collection = MakeAloiK5Collection(1, 3);
  MpckMeansClusterer clusterer;
  const AloiAggregate agg = RunAloiExperiment(collection, clusterer,
                                              LabelSpec(), /*trials=*/3,
                                              /*seed=*/9);
  EXPECT_EQ(agg.per_dataset.size(), 3u);
  EXPECT_EQ(agg.pooled.cvcp_values.size(), 9u);  // 3 datasets x 3 trials
  EXPECT_GE(agg.significant_vs_expected, 0);
  EXPECT_LE(agg.significant_vs_expected, 3);
}

TEST(BenchOptionsTest, FlagsOverrideDefaults) {
  const char* argv[] = {"bench", "--trials", "7", "--aloi", "3",
                        "--folds", "4", "--seed", "123"};
  const BenchOptions o =
      ParseBenchOptions(9, const_cast<char**>(argv));
  EXPECT_EQ(o.trials, 7);
  EXPECT_EQ(o.aloi_datasets, 3u);
  EXPECT_EQ(o.n_folds, 4);
  EXPECT_EQ(o.seed, 123u);
}

TEST(BenchOptionsTest, PaperFlagRestoresPaperScale) {
  const char* argv[] = {"bench", "--paper"};
  const BenchOptions o = ParseBenchOptions(2, const_cast<char**>(argv));
  EXPECT_EQ(o.trials, 50);
  EXPECT_EQ(o.aloi_datasets, 100u);
  EXPECT_EQ(o.n_folds, 10);
}

TEST(BenchOptionsTest, ClampsDegenerateValues) {
  const char* argv[] = {"bench", "--trials", "1", "--folds", "0"};
  const BenchOptions o = ParseBenchOptions(5, const_cast<char**>(argv));
  EXPECT_GE(o.trials, 2);
  EXPECT_GE(o.n_folds, 2);
}

TEST(FormattersTest, MeanStdAndSigMarker) {
  EXPECT_EQ(FormatMeanStd(0.7489, 0.0531), "0.7489 ±0.0531");
  EXPECT_EQ(FormatMeanStd(std::nan(""), 0.0), "—");
  PairedTTestResult sig;
  sig.p_value = 0.01;
  PairedTTestResult notsig;
  notsig.p_value = 0.2;
  EXPECT_EQ(SigMarker(sig), "*");
  EXPECT_EQ(SigMarker(notsig), "");
}

}  // namespace
}  // namespace cvcp::bench
