// Unit tests for the sharded LRU cache: first-publisher-wins publication,
// charge-based LRU eviction, stats accounting, and a concurrent hammer
// (a TSan target). Values are plain ints behind shared_ptr<const void>.

#include "common/sharded_cache.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"

namespace cvcp {
namespace {

ShardedLruCache::ValuePtr Boxed(int v) {
  return std::make_shared<const int>(v);
}

int Unbox(const ShardedLruCache::ValuePtr& p) {
  return *static_cast<const int*>(p.get());
}

TEST(ShardedLruCacheTest, InsertOrGetFirstPublisherWins) {
  ShardedLruCache cache(/*capacity_bytes=*/1024);
  auto first = cache.InsertOrGet("k", Boxed(1), 8);
  EXPECT_EQ(Unbox(first), 1);
  // The racer's value is dropped; everyone adopts the resident one.
  auto second = cache.InsertOrGet("k", Boxed(2), 8);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(Unbox(second), 1);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCacheTest, LookupHitAndMiss) {
  ShardedLruCache cache(1024);
  EXPECT_EQ(cache.Lookup("absent"), nullptr);
  cache.InsertOrGet("present", Boxed(7), 8);
  auto hit = cache.LookupAs<int>("present");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedByCharge) {
  // One shard so the recency order is global and the capacity is exact.
  ShardedLruCache cache(/*capacity_bytes=*/100, /*num_shards=*/1);
  cache.InsertOrGet("a", Boxed(1), 40);
  cache.InsertOrGet("b", Boxed(2), 40);
  // Touch "a" so "b" is now least recently used.
  ASSERT_NE(cache.Lookup("a"), nullptr);
  // 40+40+40 > 100: inserting "c" must evict "b" (LRU), then stop.
  cache.InsertOrGet("c", Boxed(3), 40);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.charge, 80u);
}

TEST(ShardedLruCacheTest, OversizedEntryEvictedButReturned) {
  ShardedLruCache cache(/*capacity_bytes=*/10, /*num_shards=*/1);
  // Charge exceeds the whole capacity: the value cannot stay resident,
  // but the caller still gets it (the build is never wasted).
  auto value = cache.InsertOrGet("big", Boxed(9), 1000);
  EXPECT_EQ(Unbox(value), 9);
  EXPECT_EQ(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.stats().charge, 0u);
}

TEST(ShardedLruCacheTest, UnboundedCapacityNeverEvicts) {
  // SIZE_MAX capacity is the dataset cache's private-tier configuration;
  // the per-shard slice must not overflow to zero.
  ShardedLruCache cache(std::numeric_limits<size_t>::max(), 4);
  for (int i = 0; i < 100; ++i) {
    cache.InsertOrGet(Format("key-%d", i), Boxed(i), 1u << 20);
  }
  EXPECT_EQ(cache.stats().entries, 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  ASSERT_NE(cache.Lookup("key-37"), nullptr);
}

TEST(ShardedLruCacheTest, EraseDropsOnlyTheCacheReference) {
  ShardedLruCache cache(1024);
  auto held = cache.InsertOrGet("k", Boxed(5), 8);
  cache.Erase("k");
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(Unbox(held), 5);  // outstanding reference stays valid
  cache.Erase("k");           // double-erase is a no-op
}

TEST(ShardedLruCacheTest, ConcurrentPublishersConvergePerKey) {
  ShardedLruCache cache(/*capacity_bytes=*/1 << 20);
  ExecutionContext exec;
  exec.threads = 8;
  constexpr int kKeys = 16;
  constexpr size_t kCallers = 64;
  std::vector<ShardedLruCache::ValuePtr> seen(kCallers);
  ParallelFor(exec, kCallers, [&](size_t i) {
    const int key_id = static_cast<int>(i) % kKeys;
    const std::string key = Format("key-%d", key_id);
    // Publish-or-adopt, then the resident value must unbox to the key id
    // no matter which caller won.
    seen[i] = cache.InsertOrGet(key, Boxed(key_id), 64);
    ASSERT_EQ(Unbox(seen[i]), key_id);
    auto hit = cache.Lookup(key);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(Unbox(hit), key_id);
  });
  // Every caller of the same key holds the same published object.
  for (size_t i = 0; i < kCallers; ++i) {
    EXPECT_EQ(seen[i].get(), seen[i % kKeys].get());
  }
  EXPECT_EQ(cache.stats().entries, static_cast<size_t>(kKeys));
  EXPECT_EQ(cache.stats().inserts, static_cast<uint64_t>(kKeys));
}

}  // namespace
}  // namespace cvcp
