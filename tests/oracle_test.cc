#include "constraints/oracle.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Dataset TestData(uint64_t seed = 1) {
  Rng rng(seed);
  return MakeBlobs("oracle-test", 4, 25, 3, 10.0, 1.0, &rng);  // 100 objects
}

TEST(SampleLabeledObjectsTest, SizeMatchesFraction) {
  Dataset data = TestData();
  Rng rng(2);
  auto s = SampleLabeledObjects(data, 0.10, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 10u);
  // Sorted, unique, in range.
  std::set<size_t> uniq(s->begin(), s->end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s->begin(), s->end()));
  EXPECT_LT(*s->rbegin(), 100u);
}

TEST(SampleLabeledObjectsTest, MinimumOfTwo) {
  Dataset data = TestData();
  Rng rng(3);
  auto s = SampleLabeledObjects(data, 0.001, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
}

TEST(SampleLabeledObjectsTest, FullFraction) {
  Dataset data = TestData();
  Rng rng(4);
  auto s = SampleLabeledObjects(data, 1.0, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 100u);
}

TEST(SampleLabeledObjectsTest, RejectsBadInput) {
  Dataset data = TestData();
  Rng rng(5);
  EXPECT_FALSE(SampleLabeledObjects(data, 0.0, &rng).ok());
  EXPECT_FALSE(SampleLabeledObjects(data, 1.5, &rng).ok());
  Dataset unlabeled("u", Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_EQ(SampleLabeledObjects(unlabeled, 0.5, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BuildConstraintPoolTest, AllPairsAmongPerClassSelection) {
  Dataset data = TestData();
  Rng rng(6);
  // 10% of each class of 25 => ceil(2.5) = 3 per class, 12 objects total,
  // C(12,2) = 66 constraints.
  auto pool = BuildConstraintPool(data, 0.10, &rng);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->size(), 66u);
  EXPECT_EQ(pool->InvolvedObjects().size(), 12u);
  // Must-links = 4 classes x C(3,2) = 12; rest cannot-links.
  EXPECT_EQ(pool->num_must_links(), 12u);
  EXPECT_EQ(pool->num_cannot_links(), 54u);
}

TEST(BuildConstraintPoolTest, PoolIsConsistentWithGroundTruth) {
  Dataset data = TestData();
  Rng rng(7);
  auto pool = BuildConstraintPool(data, 0.2, &rng);
  ASSERT_TRUE(pool.ok());
  for (const Constraint& c : pool->all()) {
    const bool same = data.label(c.a) == data.label(c.b);
    EXPECT_EQ(c.type == ConstraintType::kMustLink, same);
  }
}

TEST(SampleConstraintsTest, SubsetOfPool) {
  Dataset data = TestData();
  Rng rng(8);
  auto pool = BuildConstraintPool(data, 0.10, &rng);
  ASSERT_TRUE(pool.ok());
  auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->size(), 33u);  // round(66 * 0.5)
  for (const Constraint& c : sampled->all()) {
    EXPECT_EQ(pool->Lookup(c.a, c.b), c.type);
  }
}

TEST(SampleConstraintsTest, EdgeFractions) {
  Dataset data = TestData();
  Rng rng(9);
  auto pool = BuildConstraintPool(data, 0.10, &rng);
  ASSERT_TRUE(pool.ok());
  auto all = SampleConstraints(pool.value(), 1.0, &rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), pool->size());
  EXPECT_FALSE(SampleConstraints(pool.value(), 0.0, &rng).ok());
  EXPECT_FALSE(SampleConstraints(pool.value(), 1.0001, &rng).ok());
}

TEST(SampleConstraintsTest, TinyFractionGivesAtLeastOne) {
  Dataset data = TestData();
  Rng rng(10);
  auto pool = BuildConstraintPool(data, 0.10, &rng);
  ASSERT_TRUE(pool.ok());
  auto one = SampleConstraints(pool.value(), 0.001, &rng);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
}

TEST(SampleConstraintsTest, EmptyPoolRejected) {
  Rng rng(11);
  EXPECT_FALSE(SampleConstraints(ConstraintSet{}, 0.5, &rng).ok());
}

TEST(OracleDeterminismTest, SameSeedSameSupervision) {
  Dataset data = TestData();
  Rng rng_a(12), rng_b(12);
  auto a = SampleLabeledObjects(data, 0.2, &rng_a);
  auto b = SampleLabeledObjects(data, 0.2, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace cvcp
