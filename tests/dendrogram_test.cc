#include "cluster/dendrogram.h"

#include <gtest/gtest.h>

#include <set>

namespace cvcp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Builds a fake OPTICS result directly from an ordering and reachability
/// values (the dendrogram builder only looks at those two fields).
OpticsResult FakePlot(std::vector<size_t> order, std::vector<double> reach) {
  OpticsResult r;
  r.order = std::move(order);
  r.reachability = std::move(reach);
  r.core_distance.assign(r.order.size(), 0.0);
  return r;
}

TEST(DendrogramTest, SingleObject) {
  Dendrogram dg = Dendrogram::FromReachability(FakePlot({0}, {kInf}));
  EXPECT_EQ(dg.num_objects(), 1u);
  EXPECT_EQ(dg.num_nodes(), 1u);
  EXPECT_EQ(dg.root(), 0);
  EXPECT_TRUE(dg.node(0).is_leaf());
}

TEST(DendrogramTest, TwoObjects) {
  Dendrogram dg = Dendrogram::FromReachability(FakePlot({3, 7}, {kInf, 2.0}));
  EXPECT_EQ(dg.num_nodes(), 3u);
  const DendrogramNode& root = dg.node(dg.root());
  EXPECT_FALSE(root.is_leaf());
  EXPECT_DOUBLE_EQ(root.height, 2.0);
  EXPECT_EQ(dg.LeafObject(root.left), 3u);
  EXPECT_EQ(dg.LeafObject(root.right), 7u);
}

TEST(DendrogramTest, SplitsAtHighestReachabilityFirst) {
  // Plot: positions 0..3, reachabilities [inf, 1, 9, 1].
  // Root splits at position 2 (value 9): left = {0,1}, right = {2,3}.
  Dendrogram dg = Dendrogram::FromReachability(
      FakePlot({10, 11, 12, 13}, {kInf, 1.0, 9.0, 1.0}));
  const DendrogramNode& root = dg.node(dg.root());
  EXPECT_DOUBLE_EQ(root.height, 9.0);
  const DendrogramNode& left = dg.node(root.left);
  const DendrogramNode& right = dg.node(root.right);
  EXPECT_EQ(left.size(), 2u);
  EXPECT_EQ(right.size(), 2u);
  EXPECT_DOUBLE_EQ(left.height, 1.0);
  EXPECT_DOUBLE_EQ(right.height, 1.0);
  // Members map back to original object ids.
  auto members = dg.MembersOf(root.left);
  EXPECT_EQ(std::vector<size_t>(members.begin(), members.end()),
            (std::vector<size_t>{10, 11}));
}

TEST(DendrogramTest, NodeCountAndParentsConsistent) {
  const size_t n = 9;
  std::vector<size_t> order(n);
  std::vector<double> reach(n);
  reach[0] = kInf;
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t i = 1; i < n; ++i) reach[i] = static_cast<double>((i * 7) % 5 + 1);
  Dendrogram dg = Dendrogram::FromReachability(FakePlot(order, reach));
  EXPECT_EQ(dg.num_nodes(), 2 * n - 1);
  // Every non-root node's parent must list it as a child; spans must nest.
  for (size_t id = 0; id < dg.num_nodes(); ++id) {
    const DendrogramNode& nd = dg.node(static_cast<int>(id));
    if (static_cast<int>(id) == dg.root()) {
      EXPECT_EQ(nd.parent, -1);
      continue;
    }
    const DendrogramNode& parent = dg.node(nd.parent);
    EXPECT_TRUE(parent.left == static_cast<int>(id) ||
                parent.right == static_cast<int>(id));
    EXPECT_GE(nd.begin, parent.begin);
    EXPECT_LE(nd.end, parent.end);
    if (!nd.is_leaf()) {
      EXPECT_LE(nd.height, parent.height + 1e-12);
    }
  }
  // Children of every internal node partition its span.
  for (size_t id = 0; id < dg.num_nodes(); ++id) {
    const DendrogramNode& nd = dg.node(static_cast<int>(id));
    if (nd.is_leaf()) continue;
    const DendrogramNode& l = dg.node(nd.left);
    const DendrogramNode& r = dg.node(nd.right);
    EXPECT_EQ(l.begin, nd.begin);
    EXPECT_EQ(l.end, r.begin);
    EXPECT_EQ(r.end, nd.end);
  }
}

TEST(DendrogramTest, MonotoneHeightsAlongRootPath) {
  // Heights never increase when descending (split at max guarantees it).
  std::vector<double> reach = {kInf, 3.0, 8.0, 2.0, 5.0, 1.0};
  std::vector<size_t> order = {0, 1, 2, 3, 4, 5};
  Dendrogram dg = Dendrogram::FromReachability(FakePlot(order, reach));
  for (size_t id = 0; id < dg.num_nodes(); ++id) {
    const DendrogramNode& nd = dg.node(static_cast<int>(id));
    if (nd.is_leaf() || nd.parent < 0) continue;
    EXPECT_LE(nd.height, dg.node(nd.parent).height);
  }
}

TEST(DendrogramTest, CutAtSeparatesComponents) {
  // [inf, 1, 10, 1, 10, 1]: cutting at 5 gives 3 clusters of 2.
  std::vector<double> reach = {kInf, 1.0, 10.0, 1.0, 10.0, 1.0};
  std::vector<size_t> order = {5, 4, 3, 2, 1, 0};  // reversed object ids
  Dendrogram dg = Dendrogram::FromReachability(FakePlot(order, reach));
  std::vector<int> cut = dg.CutAt(5.0);
  ASSERT_EQ(cut.size(), 6u);
  // Pairs (5,4), (3,2), (1,0) together; across pairs separated.
  EXPECT_EQ(cut[5], cut[4]);
  EXPECT_EQ(cut[3], cut[2]);
  EXPECT_EQ(cut[1], cut[0]);
  std::set<int> distinct(cut.begin(), cut.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(DendrogramTest, CutAboveEverythingGivesOneCluster) {
  std::vector<double> reach = {kInf, 1.0, 10.0, 1.0};
  Dendrogram dg =
      Dendrogram::FromReachability(FakePlot({0, 1, 2, 3}, reach));
  std::vector<int> cut = dg.CutAt(100.0);
  std::set<int> distinct(cut.begin(), cut.end());
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(DendrogramTest, CutBelowEverythingGivesSingletons) {
  std::vector<double> reach = {kInf, 1.0, 10.0, 1.0};
  Dendrogram dg =
      Dendrogram::FromReachability(FakePlot({0, 1, 2, 3}, reach));
  std::vector<int> cut = dg.CutAt(0.5);
  std::set<int> distinct(cut.begin(), cut.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(DendrogramTest, TieBreakIsLeftmost) {
  // Two equal maxima at positions 1 and 3: split must happen at 1.
  std::vector<double> reach = {kInf, 7.0, 1.0, 7.0};
  Dendrogram dg =
      Dendrogram::FromReachability(FakePlot({0, 1, 2, 3}, reach));
  const DendrogramNode& root = dg.node(dg.root());
  EXPECT_EQ(dg.node(root.left).size(), 1u);   // {0}
  EXPECT_EQ(dg.node(root.right).size(), 3u);  // {1,2,3}
}

}  // namespace
}  // namespace cvcp
