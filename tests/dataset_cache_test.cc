// Unit tests for the per-dataset compute cache: lazy builds, memo hits,
// error memoization, per-metric separation, and safety under concurrent
// access (the concurrency tests double as TSan targets). The cache never
// blocks — first-touch races duplicate the build and the first publisher
// wins — so the concurrency assertions are on convergence (everyone ends
// up with the published object) rather than on exactly-one build.

#include "core/dataset_cache.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/optics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/sharded_cache.h"
#include "core/artifact_store.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Matrix FixturePoints(size_t n) {
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    rows.push_back({x * 1.3 - 2.0, 0.02 * x * x, 17.0 - x});
  }
  return Matrix::FromRows(rows);
}

TEST(DatasetCacheTest, DistancesBuiltOnceAndMatchDirectCompute) {
  Matrix points = FixturePoints(20);
  DatasetCache cache(points);
  const auto first =
      cache.Distances(Metric::kEuclidean, ExecutionContext::Serial());
  const auto second =
      cache.Distances(Metric::kEuclidean, ExecutionContext::Serial());
  EXPECT_EQ(first.get(), second.get());  // one build, shared object

  const DistanceMatrix direct =
      DistanceMatrix::Compute(points, Metric::kEuclidean);
  ASSERT_EQ(first->n(), direct.n());
  for (size_t i = 0; i < direct.n(); ++i) {
    for (size_t j = 0; j < direct.n(); ++j) {
      EXPECT_EQ(std::bit_cast<uint64_t>((*first)(i, j)),
                std::bit_cast<uint64_t>(direct(i, j)))
          << i << "," << j;
    }
  }

  const DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.distance_builds, 1u);
  EXPECT_EQ(stats.distance_hits, 1u);
  EXPECT_GE(stats.distance_build_ms, 0.0);
}

TEST(DatasetCacheTest, DistancesKeyedByMetric) {
  Matrix points = FixturePoints(10);
  DatasetCache cache(points);
  const auto euclid =
      cache.Distances(Metric::kEuclidean, ExecutionContext::Serial());
  const auto manhattan =
      cache.Distances(Metric::kManhattan, ExecutionContext::Serial());
  EXPECT_NE(euclid.get(), manhattan.get());
  EXPECT_EQ(cache.stats().distance_builds, 2u);
  EXPECT_EQ(std::bit_cast<uint64_t>((*manhattan)(0, 1)),
            std::bit_cast<uint64_t>(
                ManhattanDistance(points.Row(0), points.Row(1))));
}

TEST(DatasetCacheTest, MatrixOutlivesReleasedCacheEntry) {
  Matrix points = FixturePoints(8);
  std::shared_ptr<const DistanceMatrix> kept;
  {
    DatasetCache cache(points);
    kept = cache.Distances(Metric::kEuclidean, ExecutionContext::Serial());
  }
  // The shared_ptr keeps the matrix alive past the cache's lifetime.
  EXPECT_EQ(kept->n(), 8u);
  EXPECT_GT((*kept)(0, 7), 0.0);
}

TEST(DatasetCacheTest, FoscModelMemoizedAndIdenticalToDirectOptics) {
  Matrix points = FixturePoints(30);
  DatasetCache cache(points);
  auto first = cache.FoscModel(Metric::kEuclidean, 4,
                               ExecutionContext::Serial());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.FoscModel(Metric::kEuclidean, 4,
                                ExecutionContext::Serial());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());  // same model object

  // The cached model is the exact OPTICS result the uncached
  // points-overload computes: same ordering, bit-identical reachability
  // and core distances.
  OpticsConfig config;
  config.min_pts = 4;
  auto direct = RunOptics(points, config);
  ASSERT_TRUE(direct.ok());
  const OpticsResult& cached = first.value()->optics;
  EXPECT_EQ(cached.order, direct->order);
  ASSERT_EQ(cached.reachability.size(), direct->reachability.size());
  for (size_t i = 0; i < cached.reachability.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(cached.reachability[i]),
              std::bit_cast<uint64_t>(direct->reachability[i]))
        << "position " << i;
  }
  ASSERT_EQ(cached.core_distance.size(), direct->core_distance.size());
  for (size_t i = 0; i < cached.core_distance.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(cached.core_distance[i]),
              std::bit_cast<uint64_t>(direct->core_distance[i]))
        << "object " << i;
  }
  EXPECT_EQ(first.value()->dendrogram.num_objects(), points.rows());

  const DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.model_builds, 1u);
  EXPECT_EQ(stats.model_hits, 1u);
  EXPECT_EQ(stats.distance_builds, 1u);  // the model build shares it
}

TEST(DatasetCacheTest, ModelsKeyedByMinPts) {
  Matrix points = FixturePoints(15);
  DatasetCache cache(points);
  auto a = cache.FoscModel(Metric::kEuclidean, 2, ExecutionContext::Serial());
  auto b = cache.FoscModel(Metric::kEuclidean, 5, ExecutionContext::Serial());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().get(), b.value().get());
  const DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.model_builds, 2u);
  EXPECT_EQ(stats.distance_builds, 1u);  // shared across params
  EXPECT_EQ(stats.distance_hits, 1u);
}

TEST(DatasetCacheTest, ErrorsMemoizedWithUncachedStatus) {
  Matrix points = FixturePoints(5);
  DatasetCache cache(points);
  // min_pts > n: the uncached path rejects this; the cache must return
  // exactly the same status, on the build and on every hit.
  OpticsConfig config;
  config.min_pts = 99;
  const Status direct = RunOptics(points, config).status();
  auto first =
      cache.FoscModel(Metric::kEuclidean, 99, ExecutionContext::Serial());
  auto second =
      cache.FoscModel(Metric::kEuclidean, 99, ExecutionContext::Serial());
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status(), direct);
  EXPECT_EQ(second.status(), direct);
  // Failed builds count as errors, not builds; the memoized status is
  // served as a hit.
  EXPECT_EQ(cache.stats().model_builds, 0u);
  EXPECT_EQ(cache.stats().model_errors, 1u);
  EXPECT_EQ(cache.stats().model_hits, 1u);
}

TEST(DatasetCachePoolTest, SharesGeometryAcrossCacheFrontEnds) {
  Matrix points = FixturePoints(20);
  DatasetCachePool pool(/*memory_capacity_bytes=*/64 * 1024 * 1024);
  DatasetCache* a = pool.For(points);
  DatasetCache* b = pool.For(points);
  EXPECT_EQ(a, b);  // same matrix address -> same front-end

  const auto built = a->Distances(Metric::kEuclidean,
                                  ExecutionContext::Serial());
  const auto reused = b->Distances(Metric::kEuclidean,
                                   ExecutionContext::Serial());
  EXPECT_EQ(built.get(), reused.get());

  // A bitwise-identical copy of the points is a *different* front-end but
  // hashes to the same content key, so it reuses the resident artifact
  // instead of rebuilding — the cross-supervision-level sharing the pool
  // exists for.
  Matrix copy = FixturePoints(20);
  DatasetCache* c = pool.For(copy);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->content_hash(), c->content_hash());
  const auto shared = c->Distances(Metric::kEuclidean,
                                   ExecutionContext::Serial());
  EXPECT_EQ(shared.get(), built.get());

  const DatasetCache::Stats stats = pool.AggregateStats();
  EXPECT_EQ(stats.distance_builds, 1u);
  EXPECT_EQ(stats.distance_hits, 2u);
  EXPECT_EQ(pool.memory().stats().entries, 1u);
}

TEST(DatasetCachePoolTest, EvictionRecomputesDeterministically) {
  Matrix points = FixturePoints(25);
  // Capacity far below one condensed matrix: every insert evicts the
  // previous resident, so each request recomputes — results must not
  // change, only the counters.
  DatasetCachePool pool(/*memory_capacity_bytes=*/1);
  DatasetCache* cache = pool.For(points);
  const auto first = cache->Distances(Metric::kEuclidean,
                                      ExecutionContext::Serial());
  const auto second = cache->Distances(Metric::kEuclidean,
                                       ExecutionContext::Serial());
  EXPECT_NE(first.get(), second.get());  // evicted between calls
  ASSERT_EQ(first->n(), second->n());
  for (size_t i = 0; i < first->n(); ++i) {
    for (size_t j = 0; j < first->n(); ++j) {
      EXPECT_EQ(std::bit_cast<uint64_t>((*first)(i, j)),
                std::bit_cast<uint64_t>((*second)(i, j)));
    }
  }
  EXPECT_EQ(pool.AggregateStats().distance_builds, 2u);
  EXPECT_GE(pool.memory().stats().evictions, 1u);
}

TEST(DatasetCacheTest, F32StorageBuildsNarrowedMatrices) {
  Matrix points = FixturePoints(20);
  DatasetCacheTiers tiers;
  tiers.storage = DistanceStorage::kF32;
  DatasetCache cache(points, tiers);
  EXPECT_EQ(cache.storage(), DistanceStorage::kF32);
  const auto dm = cache.Distances(Metric::kEuclidean,
                                  ExecutionContext::Serial());
  EXPECT_EQ(dm->storage(), DistanceStorage::kF32);
  // Each value is the f64 value narrowed on store, not computed in float.
  const DistanceMatrix direct =
      DistanceMatrix::Compute(points, Metric::kEuclidean);
  ASSERT_EQ(dm->n(), direct.n());
  for (size_t i = 0; i < direct.condensed().size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(dm->condensed32()[i]),
              std::bit_cast<uint32_t>(
                  static_cast<float>(direct.condensed()[i])));
  }
}

TEST(DatasetCacheTest, StorageModesHaveDisjointMemoryKeys) {
  Matrix points = FixturePoints(20);
  // Two caches over the same points and the same shared memory tier, one
  // per storage mode: each mode must resolve to its own artifact, never
  // the other's.
  ShardedLruCache memory(/*capacity_bytes=*/64 * 1024 * 1024);
  DatasetCacheTiers tiers64{&memory, nullptr, DistanceStorage::kF64};
  DatasetCacheTiers tiers32{&memory, nullptr, DistanceStorage::kF32};
  DatasetCache cache64(points, tiers64);
  DatasetCache cache32(points, tiers32);
  const auto dm64 = cache64.Distances(Metric::kEuclidean,
                                      ExecutionContext::Serial());
  const auto dm32 = cache32.Distances(Metric::kEuclidean,
                                      ExecutionContext::Serial());
  EXPECT_EQ(dm64->storage(), DistanceStorage::kF64);
  EXPECT_EQ(dm32->storage(), DistanceStorage::kF32);
  EXPECT_NE(static_cast<const void*>(dm64.get()),
            static_cast<const void*>(dm32.get()));
  EXPECT_EQ(memory.stats().entries, 2u);  // disjoint keys, both resident
  // Both builds happened; neither mode hit the other's entry.
  EXPECT_EQ(cache64.stats().distance_builds, 1u);
  EXPECT_EQ(cache32.stats().distance_builds, 1u);
}

TEST(DatasetCacheTest, F32WarmStartsFromDiskBitExact) {
  Matrix points = FixturePoints(20);
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "cvcp_cache_f32").string();
  std::filesystem::remove_all(dir);
  ArtifactStore store(dir);
  DatasetCacheTiers tiers{nullptr, &store, DistanceStorage::kF32};
  std::vector<float> cold_bits;
  {
    DatasetCache cold(points, tiers);
    const auto dm = cold.Distances(Metric::kEuclidean,
                                   ExecutionContext::Serial());
    cold_bits = dm->condensed32();
    EXPECT_EQ(cold.stats().distance_builds, 1u);
  }
  DatasetCache warm(points, tiers);
  const auto dm = warm.Distances(Metric::kEuclidean,
                                 ExecutionContext::Serial());
  // Served from the persisted f32 artifact, not recomputed.
  EXPECT_EQ(warm.stats().distance_builds, 0u);
  EXPECT_EQ(dm->storage(), DistanceStorage::kF32);
  ASSERT_EQ(dm->condensed32().size(), cold_bits.size());
  for (size_t i = 0; i < cold_bits.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(dm->condensed32()[i]),
              std::bit_cast<uint32_t>(cold_bits[i]));
  }
}

TEST(DatasetCacheTest, ConcurrentRequestsConvergeOnOnePublishedObject) {
  Matrix points = FixturePoints(40);
  DatasetCache cache(points);
  ExecutionContext exec;
  exec.threads = 8;
  constexpr size_t kCallers = 16;
  std::vector<std::shared_ptr<const FoscOpticsModel>> models(kCallers);
  std::vector<std::shared_ptr<const DistanceMatrix>> matrices(kCallers);
  ParallelFor(exec, kCallers, [&](size_t i) {
    matrices[i] = cache.Distances(Metric::kEuclidean, exec);
    auto model = cache.FoscModel(Metric::kEuclidean, 3, exec);
    ASSERT_TRUE(model.ok());
    models[i] = model.value();
  });
  // First publisher wins: racing callers may each have built, but every
  // *returned* object is the published one.
  for (size_t i = 1; i < kCallers; ++i) {
    EXPECT_EQ(matrices[i].get(), matrices[0].get());
    EXPECT_EQ(models[i].get(), models[0].get());
  }
  const DatasetCache::Stats stats = cache.stats();
  EXPECT_GE(stats.distance_builds, 1u);
  EXPECT_GE(stats.model_builds, 1u);
  // Every call either built or hit (the model build's internal Distances
  // call adds one distance access).
  EXPECT_EQ(stats.distance_builds + stats.distance_hits,
            kCallers + stats.model_builds);
  EXPECT_EQ(stats.model_builds + stats.model_hits, kCallers);
}

}  // namespace
}  // namespace cvcp
