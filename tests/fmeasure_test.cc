#include "core/fmeasure.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvcp {
namespace {

TEST(FMeasureTest, PerfectClassifier) {
  Clustering c({0, 0, 1, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 1).ok());
  ASSERT_TRUE(test.AddMustLink(2, 3).ok());
  ASSERT_TRUE(test.AddCannotLink(0, 2).ok());
  ASSERT_TRUE(test.AddCannotLink(1, 3).ok());
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_EQ(r.ml_together, 2u);
  EXPECT_EQ(r.ml_apart, 0u);
  EXPECT_EQ(r.cl_apart, 2u);
  EXPECT_EQ(r.cl_together, 0u);
  EXPECT_DOUBLE_EQ(r.f_must, 1.0);
  EXPECT_DOUBLE_EQ(r.f_cannot, 1.0);
  EXPECT_DOUBLE_EQ(r.average, 1.0);
}

TEST(FMeasureTest, WorstClassifier) {
  Clustering c({0, 1, 0, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 1).ok());    // apart -> FN1
  ASSERT_TRUE(test.AddCannotLink(0, 2).ok());  // together -> FN0
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_DOUBLE_EQ(r.f_must, 0.0);
  EXPECT_DOUBLE_EQ(r.f_cannot, 0.0);
  EXPECT_DOUBLE_EQ(r.average, 0.0);
}

TEST(FMeasureTest, HandComputedMixedCase) {
  // Clusters: {0,1,2} -> 0, {3,4} -> 1.
  Clustering c({0, 0, 0, 1, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 1).ok());    // together  TP1
  ASSERT_TRUE(test.AddMustLink(0, 3).ok());    // apart     FN1
  ASSERT_TRUE(test.AddCannotLink(1, 2).ok());  // together  FN0
  ASSERT_TRUE(test.AddCannotLink(2, 3).ok());  // apart     TP0
  ASSERT_TRUE(test.AddCannotLink(0, 4).ok());  // apart     TP0
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  // Class 1 (must): TP=1, FP=1 (CL together), FN=1.
  // precision = 1/2, recall = 1/2, F = 1/2.
  EXPECT_DOUBLE_EQ(r.precision_must, 0.5);
  EXPECT_DOUBLE_EQ(r.recall_must, 0.5);
  EXPECT_DOUBLE_EQ(r.f_must, 0.5);
  // Class 0 (cannot): TP=2 (apart), FP=1 (ML apart), FN=1 (CL together).
  // precision = 2/3, recall = 2/3, F = 2/3.
  EXPECT_NEAR(r.precision_cannot, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.recall_cannot, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.f_cannot, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.average, 0.5 * (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(FMeasureTest, NoisePairsNeverTogether) {
  Clustering c({0, kNoise, kNoise, 0});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(1, 2).ok());    // both noise -> apart
  ASSERT_TRUE(test.AddCannotLink(0, 1).ok());  // noise vs clustered -> apart
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_EQ(r.ml_apart, 1u);
  EXPECT_EQ(r.cl_apart, 1u);
  EXPECT_DOUBLE_EQ(r.f_must, 0.0);
  // Cannot-link class: TP=1, FP=1 (the ML pair predicted apart), FN=0.
  EXPECT_DOUBLE_EQ(r.precision_cannot, 0.5);
  EXPECT_DOUBLE_EQ(r.recall_cannot, 1.0);
}

TEST(FMeasureTest, OnlyMustLinksAverageIsMustF) {
  Clustering c({0, 0, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 1).ok());
  ASSERT_TRUE(test.AddMustLink(0, 2).ok());
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_TRUE(std::isnan(r.f_cannot));
  // TP=1, FN=1, FP=0: precision 1, recall 1/2, F = 2/3.
  EXPECT_NEAR(r.f_must, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.average, 2.0 / 3.0, 1e-12);
}

TEST(FMeasureTest, OnlyCannotLinksAverageIsCannotF) {
  Clustering c({0, 0, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddCannotLink(0, 1).ok());  // violated
  ASSERT_TRUE(test.AddCannotLink(0, 2).ok());  // satisfied
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_TRUE(std::isnan(r.f_must));
  // TP=1, FN=1, FP=0 -> F = 2/3.
  EXPECT_NEAR(r.average, 2.0 / 3.0, 1e-12);
}

TEST(FMeasureTest, EmptyTestFoldIsNaN) {
  Clustering c({0, 1});
  const ConstraintFMeasure r =
      EvaluateConstraintClassification(c, ConstraintSet{});
  EXPECT_TRUE(std::isnan(r.average));
}

TEST(FMeasureTest, AllTogetherClusteringMaxesRecallOfMust) {
  Clustering c({0, 0, 0, 0});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 1).ok());
  ASSERT_TRUE(test.AddCannotLink(2, 3).ok());
  const ConstraintFMeasure r = EvaluateConstraintClassification(c, test);
  EXPECT_DOUBLE_EQ(r.recall_must, 1.0);
  EXPECT_DOUBLE_EQ(r.precision_must, 0.5);
  EXPECT_DOUBLE_EQ(r.f_cannot, 0.0);  // no pair predicted apart
  EXPECT_NEAR(r.average, 0.5 * (2.0 / 3.0 + 0.0), 1e-12);
}

// Regression: both constraint endpoints must be validated against the
// clustering size. The seed only checked c.b, so a constraint whose low
// endpoint was out of range indexed out of bounds silently.
TEST(FMeasureDeathTest, RejectsLowEndpointBeyondClustering) {
  Clustering c({0, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(5, 7).ok());  // both endpoints out of range
  EXPECT_DEATH(EvaluateConstraintClassification(c, test), "c\\.a");
}

TEST(FMeasureDeathTest, RejectsHighEndpointBeyondClustering) {
  Clustering c({0, 1});
  ConstraintSet test;
  ASSERT_TRUE(test.AddMustLink(0, 7).ok());  // only c.b out of range
  EXPECT_DEATH(EvaluateConstraintClassification(c, test), "c\\.b");
}

}  // namespace
}  // namespace cvcp
