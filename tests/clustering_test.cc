#include "cluster/clustering.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

TEST(ClusteringTest, BasicAccessors) {
  Clustering c({0, 0, 1, kNoise, 1});
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.NumClusters(), 2);
  EXPECT_EQ(c.NumNoise(), 1u);
  EXPECT_TRUE(c.IsNoise(3));
  EXPECT_FALSE(c.IsNoise(0));
}

TEST(ClusteringTest, SameClusterSemantics) {
  Clustering c({0, 0, 1, kNoise, kNoise});
  EXPECT_TRUE(c.SameCluster(0, 1));
  EXPECT_FALSE(c.SameCluster(0, 2));
  // Noise is never together with anything — including other noise.
  EXPECT_FALSE(c.SameCluster(3, 4));
  EXPECT_FALSE(c.SameCluster(0, 3));
  // Reflexivity holds for clustered objects, not for noise.
  EXPECT_TRUE(c.SameCluster(0, 0));
  EXPECT_FALSE(c.SameCluster(3, 3));
}

TEST(ClusteringTest, GroupsExcludeNoise) {
  Clustering c({2, 2, 7, kNoise, 7});
  auto groups = c.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{2, 4}));
}

TEST(ClusteringTest, RelabelConsecutive) {
  Clustering c({5, 5, 9, kNoise, 2});
  c.RelabelConsecutive();
  EXPECT_EQ(c.assignment(), (std::vector<int>{0, 0, 1, kNoise, 2}));
}

TEST(ClusteringTest, AllNoiseFactory) {
  Clustering c = Clustering::AllNoise(4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.NumClusters(), 0);
  EXPECT_EQ(c.NumNoise(), 4u);
}

TEST(ClusteringTest, EmptyClustering) {
  Clustering c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.NumClusters(), 0);
  EXPECT_TRUE(c.Groups().empty());
}

}  // namespace
}  // namespace cvcp
