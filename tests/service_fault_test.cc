// Fault injection for the service layer's durability story:
//
//   * a server killed with jobs still queued (Stop(drain=false) — the
//     in-process stand-in for SIGKILL, identical from the store's point
//     of view) loses nothing that completed: a successor server over the
//     same directories recovers every published record byte-identically,
//     and the abandoned job's spec is simply re-runnable;
//   * a truncated or bit-flipped record file is a *classified* error —
//     counted at recovery, kNotFound at fetch — never garbage served;
//   * the record codec itself rejects damage, cross-linked spec hashes,
//     and truncation at every length.
//
// All choreography is condition-variable-driven through the Gate test
// seam (no sleeps): the test decides exactly when the parked job may run.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "common/strings.h"
#include "core/job.h"
#include "service/client.h"
#include "service/result_store.h"
#include "service/server.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

std::string RecordPath(const std::string& results_dir, uint64_t job_id) {
  return Format("%s/job-%016llx.cvcp", results_dir.c_str(),
                static_cast<unsigned long long>(job_id));
}

void TruncateFile(const std::string& path, size_t keep) {
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_LT(keep, bytes->size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes->data(), 1, keep, f), keep);
  std::fclose(f);
}

void FlipBit(const std::string& path, size_t byte, int bit) {
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_LT(byte, bytes->size());
  std::string damaged = std::move(bytes).value();
  damaged[byte] = static_cast<char>(
      static_cast<unsigned char>(damaged[byte]) ^ (1u << bit));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), f),
            damaged.size());
  std::fclose(f);
}

std::string DirectBytes(const JobSpec& spec) {
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  CVCP_CHECK(data.ok());
  JobContext context;
  auto report = RunJob(**data, spec, context);
  CVCP_CHECK(report.ok());
  return EncodeCvcpReport(report.value());
}

TEST(ServiceFaultTest, KillMidQueueCompletedRecordsSurviveAbandonedRerun) {
  ServiceScratch scratch = MakeServiceScratch();
  const JobSpec spec_a = SmallJobSpec();
  JobSpec spec_b = SmallJobSpec();
  spec_b.cvcp_seed = 42;  // the marker the gate hook parks on
  JobSpec spec_c = SmallJobSpec();
  spec_c.cvcp_seed = 7;

  Gate gate;
  ServerConfig config = ScratchServerConfig(scratch);
  config.batch = 1;  // one executor, so C necessarily queues behind B
  config.before_job_hook = [&gate](const JobSpec& spec) {
    if (spec.cvcp_seed == 42) gate.Enter();
  };

  uint64_t id_a = 0;
  uint64_t id_b = 0;
  uint64_t id_c = 0;
  std::string reply_a;
  {
    Server server(config);
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());

    // A completes normally and is published.
    auto a = client->Submit(spec_a);
    ASSERT_TRUE(a.ok());
    id_a = a->job_id;
    auto a_reply = client->Wait(id_a);
    ASSERT_TRUE(a_reply.ok());
    reply_a = a_reply->report_bytes;

    // B is picked up by the sole executor and parks in the hook; C lands
    // behind it in the queue.
    auto b = client->Submit(spec_b);
    ASSERT_TRUE(b.ok());
    id_b = b->job_id;
    gate.AwaitParked(1);
    auto c = client->Submit(spec_c);
    ASSERT_TRUE(c.ok());
    id_c = c->job_id;

    // "Kill" the server: Stop(drain=false) abandons the queue where it
    // stands. It blocks joining the parked executor, so it runs on a
    // helper thread; the test waits for the queue to be discarded before
    // letting B proceed, so C can never sneak into execution.
    std::thread killer([&server] { server.Stop(/*drain=*/false); });
    while (server.Stats().queue_depth != 0) std::this_thread::yield();
    gate.Release();
    killer.join();
  }

  // Successor server over the same directories.
  ServerConfig successor_config = ScratchServerConfig(scratch);
  Server successor(successor_config);
  ASSERT_TRUE(successor.Start().ok());
  {
    const StatsReply stats = successor.Stats();
    EXPECT_EQ(stats.results_recovered, 2u) << "A and B were published";
    EXPECT_EQ(stats.results_corrupt, 0u);
  }
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // Completed records survived byte-identically and CRC-verified.
  auto a_again = client->Fetch(id_a);
  ASSERT_TRUE(a_again.ok());
  EXPECT_EQ(a_again->report_bytes, reply_a);
  auto b_again = client->Fetch(id_b);
  ASSERT_TRUE(b_again.ok());
  EXPECT_EQ(b_again->report_bytes, DirectBytes(spec_b))
      << "B finished (was in flight, not queued) and must have stored";

  // The abandoned queued job left no record — and its spec is simply
  // re-runnable, producing the exact direct bytes.
  auto c_missing = client->Fetch(id_c);
  ASSERT_FALSE(c_missing.ok());
  EXPECT_EQ(c_missing.status().code(), StatusCode::kNotFound);
  auto c_redo = client->Submit(spec_c);
  ASSERT_TRUE(c_redo.ok());
  auto c_reply = client->Wait(c_redo->job_id);
  ASSERT_TRUE(c_reply.ok());
  EXPECT_EQ(c_reply->report_bytes, DirectBytes(spec_c));

  successor.Stop(/*drain=*/true);
}

TEST(ServiceFaultTest, VersionChainsContinueAcrossRestart) {
  ServiceScratch scratch = MakeServiceScratch();
  const JobSpec spec = SmallJobSpec();
  uint64_t first_id = 0;
  {
    Server server(ScratchServerConfig(scratch));
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());
    auto submitted = client->Submit(spec);
    ASSERT_TRUE(submitted.ok());
    EXPECT_EQ(submitted->version, 1u);
    first_id = submitted->job_id;
    ASSERT_TRUE(client->Wait(first_id).ok());
    server.Stop(/*drain=*/true);
  }
  {
    Server server(ScratchServerConfig(scratch));
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());
    auto submitted = client->Submit(spec);
    ASSERT_TRUE(submitted.ok());
    EXPECT_EQ(submitted->version, 2u)
        << "the chain resumes where the previous server left it";
    EXPECT_GT(submitted->job_id, first_id) << "job ids stay monotonic";
    ASSERT_TRUE(client->Wait(submitted->job_id).ok());
    auto versions = client->Versions(JobSpecHash(spec));
    ASSERT_TRUE(versions.ok());
    ASSERT_EQ(versions->size(), 2u);
    EXPECT_EQ((*versions)[0], first_id);
    server.Stop(/*drain=*/true);
  }
}

TEST(ServiceFaultTest, TruncatedAndBitFlippedRecordsAreClassified) {
  ServiceScratch scratch = MakeServiceScratch();
  const JobSpec spec_a = SmallJobSpec();
  JobSpec spec_b = SmallJobSpec();
  spec_b.cvcp_seed = 2;
  JobSpec spec_c = SmallJobSpec();
  spec_c.cvcp_seed = 3;

  uint64_t id_a = 0;
  uint64_t id_b = 0;
  uint64_t id_c = 0;
  std::string reply_c;
  {
    Server server(ScratchServerConfig(scratch));
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(scratch.socket);
    ASSERT_TRUE(client.ok());
    for (auto* pair : {&id_a, &id_b, &id_c}) {
      const JobSpec& spec =
          pair == &id_a ? spec_a : pair == &id_b ? spec_b : spec_c;
      auto submitted = client->Submit(spec);
      ASSERT_TRUE(submitted.ok());
      *pair = submitted->job_id;
      auto reply = client->Wait(*pair);
      ASSERT_TRUE(reply.ok());
      if (pair == &id_c) reply_c = reply->report_bytes;
    }
    server.Stop(/*drain=*/true);
  }

  // Damage two of the three records on disk.
  TruncateFile(RecordPath(scratch.results, id_a), /*keep=*/40);
  FlipBit(RecordPath(scratch.results, id_b), /*byte=*/64, /*bit=*/3);

  Server server(ScratchServerConfig(scratch));
  ASSERT_TRUE(server.Start().ok());
  const StatsReply stats = server.Stats();
  EXPECT_EQ(stats.results_recovered, 1u);
  EXPECT_EQ(stats.results_corrupt, 2u)
      << "both damaged files counted, neither indexed";

  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());
  for (uint64_t damaged : {id_a, id_b}) {
    auto fetched = client->Fetch(damaged);
    ASSERT_FALSE(fetched.ok()) << "job " << damaged;
    EXPECT_EQ(fetched.status().code(), StatusCode::kNotFound)
        << "damage is classified at recovery, never served as garbage";
  }
  auto intact = client->Fetch(id_c);
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ(intact->report_bytes, reply_c);
  server.Stop(/*drain=*/true);
}

// --- the record codec directly -------------------------------------------

StoredResult FixtureRecord() {
  StoredResult record;
  record.job_id = 7;
  record.version = 3;
  JobSpec spec = SmallJobSpec();
  record.spec_bytes = EncodeJobSpec(spec);
  record.spec_hash = JobSpecHash(spec);
  CvcpReport report;
  report.scores = {{3, 0.5, 3}};
  report.best_param = 3;
  report.best_score = 0.5;
  report.final_clustering = Clustering({0, 0, 1});
  record.report_bytes = EncodeCvcpReport(report);
  return record;
}

TEST(ServiceFaultTest, StoredResultRoundTripsBitExact) {
  const StoredResult record = FixtureRecord();
  const std::string bytes = EncodeStoredResult(record);
  auto decoded = DecodeStoredResult(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->job_id, record.job_id);
  EXPECT_EQ(decoded->version, record.version);
  EXPECT_EQ(decoded->spec_hash, record.spec_hash);
  EXPECT_EQ(decoded->spec_bytes, record.spec_bytes);
  EXPECT_EQ(decoded->report_bytes, record.report_bytes);
  EXPECT_EQ(EncodeStoredResult(*decoded), bytes);
}

TEST(ServiceFaultTest, PreDeadlineRecordSurvivesRecovery) {
  // Upgrade compatibility: a record persisted before JobSpec::deadline_ms
  // existed embeds spec bytes with no trailing deadline record and a
  // spec hash computed over those bytes. EncodeJobSpec of a
  // deadline-free spec is pinned byte-identical to that legacy encoding
  // (service_protocol_test PreDeadlineSpecBytesDecodeAndHashIdentically),
  // so this record is an authentic pre-upgrade fixture; Recover must
  // index it, never count it corrupt and drop it.
  ServiceScratch scratch = MakeServiceScratch();
  StoredResult record = FixtureRecord();
  record.job_id = 1;
  record.version = 1;
  ASSERT_TRUE(WriteFileAtomic(
                  scratch.results,
                  Format("job-%016llx.cvcp",
                         static_cast<unsigned long long>(record.job_id)),
                  EncodeStoredResult(record), /*temp_seq=*/0)
                  .ok());
  ResultStore store(scratch.results);
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.stats().recovered, 1u);
  EXPECT_EQ(store.stats().corrupt, 0u);
  auto fetched = store.Get(record.job_id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->spec_bytes, record.spec_bytes);
  EXPECT_EQ(fetched->report_bytes, record.report_bytes);
}

TEST(ServiceFaultTest, StoredResultRejectsEveryTruncation) {
  const std::string bytes = EncodeStoredResult(FixtureRecord());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeStoredResult(bytes.substr(0, len)).ok());
  }
}

TEST(ServiceFaultTest, StoredResultRejectsCrossLinkedSpecHash) {
  StoredResult record = FixtureRecord();
  record.spec_hash ^= 1;  // points at a different spec than it embeds
  auto decoded = DecodeStoredResult(EncodeStoredResult(record));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ServiceFaultTest, StoredResultRejectsZeroVersion) {
  StoredResult record = FixtureRecord();
  record.version = 0;
  auto decoded = DecodeStoredResult(EncodeStoredResult(record));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ServiceFaultTest, ResultStorePutIsWriteOnce) {
  ServiceScratch scratch = MakeServiceScratch();
  ResultStore store(scratch.results);
  ASSERT_TRUE(store.Recover().ok());
  StoredResult record = FixtureRecord();
  record.job_id = store.AllocateJobId();
  record.version = store.AllocateVersion(record.spec_hash);
  ASSERT_TRUE(store.Put(record).ok());
  const Status again = store.Put(record);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cvcp
