#include "core/cross_validation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Dataset EasyData(uint64_t seed = 1) {
  Rng rng(seed);
  return MakeBlobs("easy", 3, 25, 2, 25.0, 0.8, &rng);
}

TEST(MakeSupervisionFoldsTest, DispatchesByKind) {
  Dataset data = EasyData();
  Rng rng(2);
  // Scenario I.
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision by_labels = Supervision::FromLabels(data, labeled.value());
  auto folds_l = MakeSupervisionFolds(data, by_labels, {.n_folds = 4}, &rng);
  ASSERT_TRUE(folds_l.ok());
  EXPECT_EQ(folds_l->size(), 4u);
  EXPECT_FALSE((*folds_l)[0].train_labels.empty());

  // Scenario II.
  auto pool = BuildConstraintPool(data, 0.2, &rng);
  ASSERT_TRUE(pool.ok());
  Supervision by_constraints = Supervision::FromConstraints(pool.value());
  auto folds_c =
      MakeSupervisionFolds(data, by_constraints, {.n_folds = 4}, &rng);
  ASSERT_TRUE(folds_c.ok());
  EXPECT_EQ(folds_c->size(), 4u);
  EXPECT_TRUE((*folds_c)[0].train_labels.empty());
}

TEST(ScoreParamOnFoldsTest, GoodParamScoresHighOnEasyData) {
  Dataset data = EasyData();
  Rng rng(3);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  auto folds = MakeSupervisionFolds(data, supervision, {.n_folds = 5}, &rng);
  ASSERT_TRUE(folds.ok());

  MpckMeansClusterer clusterer;
  auto score = ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer,
                                 /*param=*/3, &rng);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score->fold_scores.size(), 5u);
  EXPECT_EQ(score->valid_folds, 5);
  EXPECT_GT(score->mean_f, 0.9);
}

TEST(ScoreParamOnFoldsTest, BadParamScoresLower) {
  Dataset data = EasyData();
  Rng rng(4);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  auto folds = MakeSupervisionFolds(data, supervision, {.n_folds = 5}, &rng);
  ASSERT_TRUE(folds.ok());

  MpckMeansClusterer clusterer;
  Rng rng_good(5), rng_bad(5);
  auto good = ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer,
                                3, &rng_good);
  auto bad = ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer,
                               10, &rng_bad);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_GT(good->mean_f, bad->mean_f);
}

TEST(ScoreParamOnFoldsTest, DeterministicGivenSameRngSeed) {
  Dataset data = EasyData();
  Rng rng(6);
  auto labeled = SampleLabeledObjects(data, 0.2, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  auto folds = MakeSupervisionFolds(data, supervision, {.n_folds = 3}, &rng);
  ASSERT_TRUE(folds.ok());
  MpckMeansClusterer clusterer;
  Rng a(7), b(7);
  auto ra =
      ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer, 3, &a);
  auto rb =
      ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer, 3, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->fold_scores, rb->fold_scores);
}

TEST(CrossValidateParamTest, EndToEndConstraintScenario) {
  Dataset data = EasyData();
  Rng rng(8);
  auto pool = BuildConstraintPool(data, 0.25, &rng);
  ASSERT_TRUE(pool.ok());
  Supervision supervision = Supervision::FromConstraints(pool.value());
  FoscOpticsDendClusterer clusterer;
  auto score = CrossValidateParam(data, supervision, clusterer, /*MinPts=*/4,
                                  {.n_folds = 4}, &rng);
  ASSERT_TRUE(score.ok());
  EXPECT_GE(score->valid_folds, 1);
  EXPECT_GT(score->mean_f, 0.5);
}

TEST(CrossValidateParamTest, AgreesWithRunCvcpOnIdenticalInputs) {
  // Regression test: CrossValidateParam must fork its fold/score RNG
  // streams exactly like RunCvcp (kFoldStreamId / kScoreStreamId), so the
  // convenience entry point reproduces the corresponding grid entry of the
  // full driver bit-for-bit.
  Dataset data = EasyData();
  Rng rng(10);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  MpckMeansClusterer clusterer;

  CvcpConfig cvcp_config;
  cvcp_config.cv.n_folds = 4;
  cvcp_config.param_grid = {3};
  Rng cvcp_rng(11);
  auto report = RunCvcp(data, supervision, clusterer, cvcp_config, &cvcp_rng);
  ASSERT_TRUE(report.ok());

  Rng cv_rng(11);
  auto score = CrossValidateParam(data, supervision, clusterer, /*param=*/3,
                                  cvcp_config.cv, &cv_rng);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score->valid_folds, report->scores[0].valid_folds);
  EXPECT_DOUBLE_EQ(score->mean_f, report->scores[0].score);
}

TEST(ScoreGridOnFoldsTest, MatchesPerParamScoringForEveryThreadCount) {
  Dataset data = EasyData();
  Rng rng(12);
  auto labeled = SampleLabeledObjects(data, 0.3, &rng);
  ASSERT_TRUE(labeled.ok());
  Supervision supervision = Supervision::FromLabels(data, labeled.value());
  auto folds = MakeSupervisionFolds(data, supervision, {.n_folds = 4}, &rng);
  ASSERT_TRUE(folds.ok());
  MpckMeansClusterer clusterer;
  const std::vector<int> grid = {2, 3, 5};

  // Reference: the serial per-param path.
  std::vector<CvScore> expected;
  for (int param : grid) {
    Rng param_rng(13);
    auto score = ScoreParamOnFolds(data, *folds, supervision.kind(), clusterer,
                                   param, &param_rng);
    ASSERT_TRUE(score.ok());
    expected.push_back(*score);
  }

  for (int threads : {1, 2, 8}) {
    ExecutionContext exec;
    exec.threads = threads;
    Rng grid_rng(13);
    auto scores = ScoreGridOnFolds(data, *folds, supervision.kind(), clusterer,
                                   grid, &grid_rng, exec);
    ASSERT_TRUE(scores.ok());
    ASSERT_EQ(scores->size(), grid.size());
    for (size_t g = 0; g < grid.size(); ++g) {
      EXPECT_EQ((*scores)[g].fold_scores, expected[g].fold_scores)
          << "param " << grid[g] << ", threads " << threads;
      EXPECT_EQ((*scores)[g].valid_folds, expected[g].valid_folds);
      EXPECT_DOUBLE_EQ((*scores)[g].mean_f, expected[g].mean_f);
    }
  }
}

TEST(CrossValidateParamTest, TooFewObjectsForFoldsErrors) {
  Dataset data = EasyData();
  Rng rng(9);
  Supervision supervision = Supervision::FromLabels(data, {0, 1, 2});
  MpckMeansClusterer clusterer;
  auto score =
      CrossValidateParam(data, supervision, clusterer, 3, {.n_folds = 10},
                         &rng);
  EXPECT_EQ(score.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cvcp
