// Protocol tests for the cvcp_serve wire format: bit-exact
// encode→decode→encode round trips for every message kind, the job-spec
// and report codecs (NaN scores, noise ids, negative grid entries), and
// the fuzz armor — random bytes, truncations, single-bit flips, and
// hostile length prefixes must come back as classified Statuses, never
// as crashes or misreads (CI runs this suite under ASan/UBSan and TSan).

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/job.h"

namespace cvcp {
namespace {

JobSpec FixtureSpec() {
  JobSpec spec;
  spec.dataset = "aloi";
  spec.dataset_seed = 77;
  spec.dataset_index = 3;
  spec.clusterer = "mpck";
  spec.scenario = SupervisionKind::kLabels;
  spec.label_fraction = 0.25;
  spec.pool_fraction = 0.5;
  spec.constraint_fraction = 0.75;
  spec.supervision_seed = 11;
  spec.param_grid = {2, 3, 5, 8};
  spec.n_folds = 10;
  spec.stratified = true;
  spec.cvcp_seed = 13;
  return spec;
}

CvcpReport FixtureReport() {
  CvcpReport report;
  report.scores = {{3, 0.75, 3},
                   {6, std::nan(""), 0},
                   {-2, -0.0, 2}};
  report.best_param = 3;
  report.best_score = 0.75;
  report.final_clustering = Clustering({0, 1, -1, 0, 2, -1});
  return report;
}

TEST(ServiceProtocolTest, JobSpecRoundTripsBitExact) {
  const JobSpec spec = FixtureSpec();
  const std::string bytes = EncodeJobSpec(spec);
  auto decoded = DecodeJobSpec(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, spec);
  EXPECT_EQ(EncodeJobSpec(*decoded), bytes);
}

TEST(ServiceProtocolTest, JobSpecHashIsContentHash) {
  const JobSpec spec = FixtureSpec();
  EXPECT_EQ(JobSpecHash(spec), JobSpecHash(FixtureSpec()));
  JobSpec other = spec;
  other.cvcp_seed ^= 1;
  EXPECT_NE(JobSpecHash(other), JobSpecHash(spec));
}

TEST(ServiceProtocolTest, ReportRoundTripsBitExactIncludingNaN) {
  const CvcpReport report = FixtureReport();
  const std::string bytes = EncodeCvcpReport(report);
  auto decoded = DecodeCvcpReport(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Equality at the bit level: a NaN score must survive.
  EXPECT_EQ(EncodeCvcpReport(*decoded), bytes);
  EXPECT_EQ(decoded->final_clustering.assignment(),
            report.final_clustering.assignment());
}

TEST(ServiceProtocolTest, ReportDropsTimingsByDesign) {
  CvcpReport report = FixtureReport();
  std::string without = EncodeCvcpReport(report);
  report.cell_timings.push_back(CvCellTiming{});
  EXPECT_EQ(EncodeCvcpReport(report), without)
      << "cell_timings is nondeterministic and must not affect the bytes";
}

TEST(ServiceProtocolTest, EveryMessageKindRoundTrips) {
  const SubmitRequest submit{FixtureSpec()};
  {
    const std::string bytes = EncodeSubmitRequest(submit);
    auto kind = PeekMessageKind(bytes);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, MessageKind::kSubmitRequest);
    auto decoded = DecodeSubmitRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->spec, submit.spec);
    EXPECT_EQ(EncodeSubmitRequest(*decoded), bytes);
  }
  {
    const SubmitReply reply{42, 7, 0xDEADBEEFCAFEF00Dull};
    const std::string bytes = EncodeSubmitReply(reply);
    auto decoded = DecodeSubmitReply(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->job_id, reply.job_id);
    EXPECT_EQ(decoded->version, reply.version);
    EXPECT_EQ(decoded->spec_hash, reply.spec_hash);
  }
  {
    const std::string bytes = EncodeWaitRequest(WaitRequest{99});
    auto decoded = DecodeWaitRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->job_id, 99u);
  }
  {
    const std::string bytes = EncodeFetchRequest(FetchRequest{100});
    auto decoded = DecodeFetchRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->job_id, 100u);
  }
  {
    ReportReply reply;
    reply.job_id = 5;
    reply.version = 2;
    reply.spec_hash = 17;
    reply.report_bytes = EncodeCvcpReport(FixtureReport());
    const std::string bytes = EncodeReportReply(reply);
    auto decoded = DecodeReportReply(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->report_bytes, reply.report_bytes)
        << "nested report block must cross the wire byte-identically";
    EXPECT_EQ(EncodeReportReply(*decoded), bytes);
  }
  {
    const std::string bytes = EncodeVersionsRequest(VersionsRequest{31});
    auto decoded = DecodeVersionsRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->spec_hash, 31u);
  }
  {
    VersionsReply reply;
    reply.job_ids = {3, 9, 27};
    auto decoded = DecodeVersionsReply(EncodeVersionsReply(reply));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->job_ids, reply.job_ids);
  }
  {
    StatsReply stats;
    stats.queue_depth = 1;
    stats.accepted = 2;
    stats.model_builds = 3;
    stats.results_stored = 4;
    auto decoded = DecodeStatsReply(EncodeStatsReply(stats));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->queue_depth, 1u);
    EXPECT_EQ(decoded->accepted, 2u);
    EXPECT_EQ(decoded->model_builds, 3u);
    EXPECT_EQ(decoded->results_stored, 4u);
  }
  {
    EXPECT_TRUE(DecodeStatsRequest(EncodeStatsRequest()).ok());
    EXPECT_TRUE(DecodeShutdownRequest(EncodeShutdownRequest()).ok());
    EXPECT_TRUE(DecodeShutdownReply(EncodeShutdownReply()).ok());
  }
  {
    const ErrorReply error{Status::ResourceExhausted("queue full")};
    auto decoded = DecodeErrorReply(EncodeErrorReply(error));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(decoded->status.message(), "queue full");
  }
  {
    const std::string bytes = EncodeCancelRequest(CancelRequest{77});
    auto kind = PeekMessageKind(bytes);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, MessageKind::kCancelRequest);
    auto decoded = DecodeCancelRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->job_id, 77u);
  }
  for (CancelOutcome outcome :
       {CancelOutcome::kCancelledWhileQueued, CancelOutcome::kSignalled,
        CancelOutcome::kAlreadyFinished}) {
    auto decoded = DecodeCancelReply(EncodeCancelReply(CancelReply{outcome}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->outcome, outcome);
  }
}

TEST(ServiceProtocolTest, CancelAndDeadlineStatusCodesCrossTheWire) {
  // The two new StatusCode values are appended, never inserted — pin
  // that they survive an ErrorReply round trip with their identity.
  for (const Status& status :
       {Status::Cancelled("cancelled by caller"),
        Status::DeadlineExceeded("deadline exceeded")}) {
    auto decoded = DecodeErrorReply(EncodeErrorReply(ErrorReply{status}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), status.code());
    EXPECT_EQ(decoded->status.message(), status.message());
  }
}

TEST(ServiceProtocolTest, BadCancelOutcomeIsCorruption) {
  // The decoder must classify an out-of-range outcome value, never cast
  // blindly into the enum. Rather than poke at encoder internals, fuzz
  // every byte: no single byte change may decode to an outcome outside
  // the enum.
  const std::string bytes = EncodeCancelReply(CancelReply{});
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int delta : {1, 128}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(
          static_cast<unsigned char>(mutated[i]) + delta);
      auto decoded = DecodeCancelReply(mutated);
      if (!decoded.ok()) continue;  // classified rejection: fine
      EXPECT_LE(static_cast<uint32_t>(decoded->outcome),
                static_cast<uint32_t>(CancelOutcome::kAlreadyFinished));
    }
  }
}

TEST(ServiceProtocolTest, SpecDeadlineRoundTripsAndIsNotIdentity) {
  JobSpec spec = FixtureSpec();
  spec.deadline_ms = 1500;
  auto decoded = DecodeJobSpec(EncodeJobSpec(spec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline_ms, 1500u);
  // The deadline is execution metadata, not identity: the same logical
  // job with a different (or no) deadline shares one version chain.
  JobSpec no_deadline = spec;
  no_deadline.deadline_ms = 0;
  EXPECT_EQ(JobSpecHash(spec), JobSpecHash(no_deadline));
}

TEST(ServiceProtocolTest, PreDeadlineSpecBytesDecodeAndHashIdentically) {
  // A spec block written before deadline_ms existed has no trailing
  // deadline record. It must still decode (deadline 0) and its stored
  // hash must keep verifying, or ResultStore::Recover would classify
  // every pre-upgrade record as corrupt and drop it on upgrade.
  const JobSpec spec = FixtureSpec();
  BlockBuilder legacy(kJobSpecBlockKind);  // the pre-deadline encoding
  legacy.AppendString(spec.dataset);
  legacy.AppendU64(spec.dataset_seed);
  legacy.AppendU64(spec.dataset_index);
  legacy.AppendString(spec.clusterer);
  legacy.AppendU32(static_cast<uint32_t>(spec.scenario));
  const double fractions[] = {spec.label_fraction, spec.pool_fraction,
                              spec.constraint_fraction};
  legacy.AppendDoubles(fractions);
  legacy.AppendU64(spec.supervision_seed);
  std::vector<size_t> grid(spec.param_grid.begin(), spec.param_grid.end());
  legacy.AppendSizes(grid);
  legacy.AppendU32(static_cast<uint32_t>(spec.n_folds));
  legacy.AppendU32(spec.stratified ? 1 : 0);
  legacy.AppendU64(spec.cvcp_seed);
  const std::string legacy_bytes = legacy.Finish();

  auto decoded = DecodeJobSpec(legacy_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, spec);
  EXPECT_EQ(decoded->deadline_ms, 0u);
  // A deadline-free spec must re-encode to the legacy bytes exactly —
  // that byte identity is what keeps legacy spec hashes verifying.
  EXPECT_EQ(EncodeJobSpec(*decoded), legacy_bytes);
  JobSpec with_deadline = spec;
  with_deadline.deadline_ms = 2500;
  EXPECT_EQ(JobSpecHash(with_deadline), JobSpecHash(*decoded));
}

TEST(ServiceProtocolTest, WrongKindIsRejectedBeforeRecords) {
  // A valid frame of the wrong kind must not decode as another message.
  const std::string bytes = EncodeWaitRequest(WaitRequest{1});
  auto decoded = DecodeFetchRequest(bytes);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceProtocolTest, PeekRejectsUnknownKind) {
  BlockBuilder builder(0x12345678);
  builder.AppendU64(1);
  auto kind = PeekMessageKind(builder.Finish());
  EXPECT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kCorruption);
}

TEST(ServiceProtocolTest, ValidateFrameLengthBounds) {
  EXPECT_FALSE(ValidateFrameLength(0).ok());
  EXPECT_TRUE(ValidateFrameLength(1).ok());
  EXPECT_TRUE(ValidateFrameLength(kMaxFrameBytes).ok());
  EXPECT_FALSE(ValidateFrameLength(kMaxFrameBytes + 1).ok());
  EXPECT_FALSE(
      ValidateFrameLength(std::numeric_limits<uint64_t>::max()).ok());
}

// --- fuzz armor -----------------------------------------------------------

// Each decoder over random bytes: must return a Status, never crash or
// misread (ASan/UBSan guard the "never crash" half in CI).
TEST(ServiceProtocolTest, FuzzRandomBytesAreClassified) {
  Rng rng(2024);
  for (int round = 0; round < 500; ++round) {
    const size_t len = rng.Index(256);
    std::string bytes(len, '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.Index(256));
    }
    EXPECT_FALSE(DecodeSubmitRequest(bytes).ok());
    EXPECT_FALSE(DecodeReportReply(bytes).ok());
    EXPECT_FALSE(DecodeStatsReply(bytes).ok());
    EXPECT_FALSE(DecodeErrorReply(bytes).ok());
    EXPECT_FALSE(DecodeJobSpec(bytes).ok());
    EXPECT_FALSE(DecodeCvcpReport(bytes).ok());
  }
}

// Any single-bit flip anywhere in a valid message must fail the CRC (or a
// later structural check) — a damaged frame is never interpreted.
TEST(ServiceProtocolTest, FuzzBitFlipsNeverDecode) {
  const std::string valid = EncodeSubmitRequest(SubmitRequest{FixtureSpec()});
  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    std::string damaged = valid;
    const size_t byte = rng.Index(damaged.size());
    damaged[byte] = static_cast<char>(
        static_cast<unsigned char>(damaged[byte]) ^ (1u << rng.Index(8)));
    EXPECT_FALSE(DecodeSubmitRequest(damaged).ok())
        << "bit flip at byte " << byte << " decoded successfully";
  }
}

TEST(ServiceProtocolTest, FuzzTruncationsNeverDecode) {
  const std::string valid = EncodeReportReply(
      ReportReply{1, 1, 2, EncodeCvcpReport(FixtureReport())});
  for (size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(DecodeReportReply(valid.substr(0, len)).ok());
  }
}

// A report whose assignment contains ids below -1 must be rejected as
// corruption, not fed to Clustering (whose constructor enforces the
// invariant fatally).
TEST(ServiceProtocolTest, HostileAssignmentIdsAreCorruption) {
  BlockBuilder builder(kCvcpReportBlockKind);
  const std::vector<size_t> params = {3};
  const std::vector<double> scores = {0.5};
  const std::vector<size_t> valid_folds = {1};
  builder.AppendSizes(params);
  builder.AppendDoubles(scores);
  builder.AppendSizes(valid_folds);
  builder.AppendU64(3);
  const std::vector<double> best = {0.5};
  builder.AppendDoubles(best);
  // Assignment record with id -5 (encoded two's-complement as u64).
  const std::vector<size_t> assignment = {
      static_cast<size_t>(static_cast<uint64_t>(int64_t{-5}))};
  builder.AppendSizes(assignment);
  auto decoded = DecodeCvcpReport(builder.Finish());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// --- frame IO over a real socketpair --------------------------------------

struct FdPair {
  int a = -1;
  int b = -1;
  FdPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(ServiceProtocolTest, FrameRoundTripsOverSocket) {
  FdPair pair;
  const std::string payload = EncodeSubmitRequest(SubmitRequest{FixtureSpec()});
  ASSERT_TRUE(WriteFrame(pair.a, payload).ok());
  auto read = ReadFrame(pair.b);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST(ServiceProtocolTest, CleanEofIsNotFound) {
  FdPair pair;
  ::close(pair.a);
  pair.a = -1;
  auto read = ReadFrame(pair.b);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(ServiceProtocolTest, MidFrameEofIsCorruption) {
  FdPair pair;
  // A 100-byte length prefix followed by only 3 payload bytes, then EOF.
  const char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ASSERT_EQ(::send(pair.a, "abc", 3, 0), 3);
  ::close(pair.a);
  pair.a = -1;
  auto read = ReadFrame(pair.b);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(ServiceProtocolTest, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  FdPair pair;
  // 0xFFFFFFFF-byte frame announcement: must be refused at the header.
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  auto read = ReadFrame(pair.b);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceProtocolTest, ZeroLengthFrameIsRejected) {
  FdPair pair;
  const char header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  auto read = ReadFrame(pair.b);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(WriteFrame(pair.a, "").ok());
}

// Frames larger than the socket buffer force partial writes/reads; the
// loops must reassemble them exactly.
TEST(ServiceProtocolTest, LargeFrameSurvivesPartialIo) {
  FdPair pair;
  Rng rng(5);
  std::string payload(1u << 20, '\0');
  for (char& c : payload) c = static_cast<char>(rng.Index(256));
  std::string received;
  std::thread reader([&] {
    auto read = ReadFrame(pair.b);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    received = std::move(read).value();
  });
  ASSERT_TRUE(WriteFrame(pair.a, payload).ok());
  reader.join();
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace cvcp
