#include "cluster/mpckmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fmeasure.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

TEST(MpckMeansTest, RecoversSeparatedBlobsWithoutConstraints) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 3, 25, 2, 30.0, 0.5, &rng);
  MpckMeansConfig config;
  config.k = 3;
  auto result = RunMpckMeans(data.points(), ConstraintSet{}, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(AdjustedRandIndex(data.labels(), result->clustering), 0.99);
}

TEST(MpckMeansTest, SatisfiesMostConstraintsOnEasyData) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 3, 25, 2, 20.0, 1.0, &rng);
  // Derive 40 ground-truth constraints.
  std::vector<size_t> objects;
  for (size_t i = 0; i < data.size(); i += 5) objects.push_back(i);
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);
  MpckMeansConfig config;
  config.k = 3;
  auto result = RunMpckMeans(data.points(), constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  const ConstraintFMeasure fm =
      EvaluateConstraintClassification(result->clustering, constraints);
  EXPECT_GT(fm.average, 0.95);
}

TEST(MpckMeansTest, ConstraintsRescueAmbiguousStructure) {
  // Two elongated clusters that plain k-means splits the wrong way:
  // constraints must push MPCKMeans (via penalties + metric learning)
  // toward the ground truth more often than not.
  Rng rng(3);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0};
  specs[0].stddevs = {8.0, 0.6};  // wide in x, thin in y
  specs[0].size = 60;
  specs[1].mean = {0.0, 3.0};
  specs[1].stddevs = {8.0, 0.6};
  specs[1].size = 60;
  Dataset data = MakeGaussianMixture("stripes", specs, &rng);

  // Unconstrained baseline.
  MpckMeansConfig config;
  config.k = 2;
  Rng rng_a(4);
  auto base = RunMpckMeans(data.points(), ConstraintSet{}, config, &rng_a);
  ASSERT_TRUE(base.ok());

  // Supervised: 30 labeled objects -> all-pairs constraints. (With only a
  // dozen labeled objects the greedy ICM provably sticks in the x-split
  // fixed point; the rescue needs enough constraint mass to matter.)
  std::vector<size_t> objects;
  for (size_t i = 0; i < data.size(); i += 4) objects.push_back(i);
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);
  Rng rng_b(4);
  auto guided = RunMpckMeans(data.points(), constraints, config, &rng_b);
  ASSERT_TRUE(guided.ok());

  const double ari_base = AdjustedRandIndex(data.labels(), base->clustering);
  const double ari_guided =
      AdjustedRandIndex(data.labels(), guided->clustering);
  EXPECT_GT(ari_guided, ari_base - 0.05);
  EXPECT_GT(ari_guided, 0.5);
}

TEST(MpckMeansTest, MetricLearningDownweightsNoiseDimension) {
  // Informative dimension 0, pure-noise high-variance dimension 1. The
  // learned diagonal metric must weight dim 0 above dim 1.
  Rng rng(5);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0};
  specs[0].stddevs = {0.5, 20.0};
  specs[0].size = 50;
  specs[1].mean = {6.0, 0.0};
  specs[1].stddevs = {0.5, 20.0};
  specs[1].size = 50;
  Dataset data = MakeGaussianMixture("noisy-dim", specs, &rng);

  std::vector<size_t> objects;
  for (size_t i = 0; i < data.size(); i += 4) objects.push_back(i);
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);

  MpckMeansConfig config;
  config.k = 2;
  config.metric_mode = MetricMode::kSingleDiagonal;
  auto result = RunMpckMeans(data.points(), constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metric_weights.At(0, 0), result->metric_weights.At(0, 1));
}

TEST(MpckMeansTest, MetricModeNoneKeepsUnitWeights) {
  Rng rng(6);
  Dataset data = MakeBlobs("blobs", 2, 20, 3, 10.0, 1.0, &rng);
  MpckMeansConfig config;
  config.k = 2;
  config.metric_mode = MetricMode::kNone;
  auto result = RunMpckMeans(data.points(), ConstraintSet{}, config, &rng);
  ASSERT_TRUE(result.ok());
  for (size_t h = 0; h < 2; ++h) {
    for (size_t m = 0; m < 3; ++m) {
      EXPECT_DOUBLE_EQ(result->metric_weights.At(h, m), 1.0);
    }
  }
}

TEST(MpckMeansTest, NeighborhoodInitUsesMustLinkComponents) {
  // Two clean must-link neighborhoods should seed k=2 so well that the
  // first assignment already matches the ground truth.
  Rng rng(7);
  Dataset data = MakeBlobs("blobs", 2, 30, 2, 25.0, 0.8, &rng);
  ConstraintSet constraints;
  // Chain 5 must-links within each class.
  auto objs0 = data.ObjectsOfClass(0);
  auto objs1 = data.ObjectsOfClass(1);
  for (size_t i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(constraints.AddMustLink(objs0[i], objs0[i + 1]).ok());
    ASSERT_TRUE(constraints.AddMustLink(objs1[i], objs1[i + 1]).ok());
  }
  MpckMeansConfig config;
  config.k = 2;
  auto result = RunMpckMeans(data.points(), constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(AdjustedRandIndex(data.labels(), result->clustering), 0.99);
}

TEST(MpckMeansTest, InconsistentConstraintsRejected) {
  Rng rng(8);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  ConstraintSet bad;
  ASSERT_TRUE(bad.AddMustLink(0, 1).ok());
  ASSERT_TRUE(bad.AddMustLink(1, 2).ok());
  ASSERT_TRUE(bad.AddCannotLink(0, 2).ok());
  MpckMeansConfig config;
  config.k = 2;
  auto result = RunMpckMeans(points, bad, config, &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistentConstraints);
}

TEST(MpckMeansTest, RejectsInvalidArguments) {
  Rng rng(9);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 1}});
  MpckMeansConfig config;
  config.k = 5;  // > n
  EXPECT_FALSE(RunMpckMeans(points, ConstraintSet{}, config, &rng).ok());
  config.k = 0;
  EXPECT_FALSE(RunMpckMeans(points, ConstraintSet{}, config, &rng).ok());
  config.k = 2;
  ConstraintSet out_of_range;
  ASSERT_TRUE(out_of_range.AddMustLink(0, 7).ok());
  EXPECT_FALSE(RunMpckMeans(points, out_of_range, config, &rng).ok());
}

TEST(MpckMeansTest, DeterministicGivenSeed) {
  Rng data_rng(10);
  Dataset data = MakeBlobs("blobs", 3, 20, 3, 12.0, 1.0, &data_rng);
  std::vector<size_t> objects = {0, 5, 12, 25, 33, 41, 50, 55};
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);
  MpckMeansConfig config;
  config.k = 3;
  Rng a(11), b(11);
  auto ra = RunMpckMeans(data.points(), constraints, config, &a);
  auto rb = RunMpckMeans(data.points(), constraints, config, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->clustering.assignment(), rb->clustering.assignment());
  EXPECT_DOUBLE_EQ(ra->objective, rb->objective);
}

TEST(MpckMeansTest, PerClusterMetricsCanDiffer) {
  // Cluster 0 is tight in dim 0 / loose in dim 1; cluster 1 the reverse.
  Rng rng(12);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0};
  specs[0].stddevs = {0.3, 5.0};
  specs[0].size = 60;
  specs[1].mean = {30.0, 0.0};
  specs[1].stddevs = {5.0, 0.3};
  specs[1].size = 60;
  Dataset data = MakeGaussianMixture("aniso", specs, &rng);
  MpckMeansConfig config;
  config.k = 2;
  config.metric_mode = MetricMode::kPerClusterDiagonal;
  auto result = RunMpckMeans(data.points(), ConstraintSet{}, config, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clustering.NumClusters(), 2);
  // Identify which centroid is near x=0.
  const size_t c0 = result->centroids.At(0, 0) < 15.0 ? 0 : 1;
  const size_t c1 = 1 - c0;
  // Tight dimension gets the larger weight within each cluster.
  EXPECT_GT(result->metric_weights.At(c0, 0), result->metric_weights.At(c0, 1));
  EXPECT_GT(result->metric_weights.At(c1, 1), result->metric_weights.At(c1, 0));
}

}  // namespace
}  // namespace cvcp
