// Admission control and scheduling fairness for cvcp_serve:
//
//   * a full queue (capacity k, job k+1) answers with an immediate
//     kResourceExhausted *reply* — backpressure, never a hang;
//   * the in-flight memory budget rejects the same way while jobs hold
//     their charge, and re-admits once the charge is discharged;
//   * with batch > 1 a parked slow job does not starve a small job —
//     the second executor lane serves it to completion while the first
//     is still held.
//
// Every "while X is held" step is driven by the Gate seam, so the suite
// is sleep-free and exact: the rejected submission returns while the
// executor is provably parked.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/job.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

constexpr uint64_t kParkSeed = 42;  // the gate hook parks on this seed

JobSpec ParkedSpec() {
  JobSpec spec = SmallJobSpec();
  spec.cvcp_seed = kParkSeed;
  return spec;
}

JobSpec SeededSpec(uint64_t seed) {
  JobSpec spec = SmallJobSpec();
  spec.cvcp_seed = seed;
  return spec;
}

TEST(ServiceAdmissionTest, FullQueueRejectsImmediatelyWithBackpressure) {
  constexpr size_t kCapacity = 2;
  Gate gate;
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.store_dir.clear();
  config.batch = 1;
  config.queue_capacity = kCapacity;
  config.before_job_hook = [&gate](const JobSpec& spec) {
    if (spec.cvcp_seed == kParkSeed) gate.Enter();
  };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // The parked job occupies the only executor; the queue is then filled
  // to exactly its capacity.
  ASSERT_TRUE(client->Submit(ParkedSpec()).ok());
  gate.AwaitParked(1);
  std::vector<uint64_t> queued_ids;
  for (size_t i = 0; i < kCapacity; ++i) {
    auto submitted = client->Submit(SeededSpec(100 + i));
    ASSERT_TRUE(submitted.ok());
    queued_ids.push_back(submitted->job_id);
  }
  EXPECT_EQ(server.Stats().queue_depth, kCapacity);

  // Job k+1: an immediate, classified rejection — this call returning at
  // all (while the executor is provably parked) is the no-hang property.
  auto rejected = client->Submit(SeededSpec(999));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  {
    const StatsReply stats = server.Stats();
    EXPECT_EQ(stats.rejected_queue_full, 1u);
    EXPECT_EQ(stats.accepted, 1u + kCapacity);
    EXPECT_EQ(stats.queue_depth, kCapacity) << "rejection queued nothing";
  }

  // Backpressure means "retry later": after release, the queue drains
  // and the same spec is admitted.
  gate.Release();
  for (uint64_t id : queued_ids) {
    EXPECT_TRUE(client->Wait(id).ok());
  }
  auto retried = client->Submit(SeededSpec(999));
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(client->Wait(retried->job_id).ok());
  server.Stop(/*drain=*/true);
}

TEST(ServiceAdmissionTest, MemoryBudgetRejectsAndReadmitsAfterDischarge) {
  // Budget sized for one iris job in flight, not two: the charge is
  // deterministic (EstimateJobBytes), so 1.5× one charge is exact.
  const uint64_t charge =
      EstimateJobBytes(/*n=*/150, SmallJobSpec().param_grid.size());
  Gate gate;
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.store_dir.clear();
  config.batch = 1;
  config.memory_limit_bytes = charge + charge / 2;
  config.before_job_hook = [&gate](const JobSpec& spec) {
    if (spec.cvcp_seed == kParkSeed) gate.Enter();
  };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  auto parked = client->Submit(ParkedSpec());
  ASSERT_TRUE(parked.ok());
  gate.AwaitParked(1);

  // The second job's charge would exceed the budget while the first
  // still holds its own: rejected, classified, counted.
  auto rejected = client->Submit(SeededSpec(2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  {
    const StatsReply stats = server.Stats();
    EXPECT_EQ(stats.rejected_memory, 1u);
    EXPECT_EQ(stats.inflight_bytes, charge);
  }

  // Completion discharges the charge; the same spec is then admitted.
  gate.Release();
  ASSERT_TRUE(client->Wait(parked->job_id).ok());
  EXPECT_EQ(server.Stats().inflight_bytes, 0u);
  auto retried = client->Submit(SeededSpec(2));
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(client->Wait(retried->job_id).ok());
  server.Stop(/*drain=*/true);
}

TEST(ServiceAdmissionTest, SlowJobDoesNotStarveSmallJobsWhenBatching) {
  Gate gate;
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.store_dir.clear();
  config.batch = 2;  // two executor lanes share the thread budget
  config.before_job_hook = [&gate](const JobSpec& spec) {
    if (spec.cvcp_seed == kParkSeed) gate.Enter();
  };
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  // The "slow" job parks one lane indefinitely.
  auto slow = client->Submit(ParkedSpec());
  ASSERT_TRUE(slow.ok());
  gate.AwaitParked(1);

  // The small job must complete on the other lane while the slow one is
  // still parked — this Wait returning before Release() *is* the
  // no-starvation property (a starved job would hang the test here).
  auto small = client->Submit(SeededSpec(5));
  ASSERT_TRUE(small.ok());
  auto small_reply = client->Wait(small->job_id);
  ASSERT_TRUE(small_reply.ok());
  {
    const StatsReply stats = server.Stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.running, 1u) << "the slow job is still parked";
  }

  gate.Release();
  auto slow_reply = client->Wait(slow->job_id);
  ASSERT_TRUE(slow_reply.ok());
  server.Stop(/*drain=*/true);
}

TEST(ServiceAdmissionTest, InvalidSpecsAreRejectedAtAdmission) {
  ServiceScratch scratch = MakeServiceScratch();
  ServerConfig config = ScratchServerConfig(scratch);
  config.store_dir.clear();
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(scratch.socket);
  ASSERT_TRUE(client.ok());

  JobSpec bad_dataset = SmallJobSpec();
  bad_dataset.dataset = "no-such-dataset";
  auto rejected = client->Submit(bad_dataset);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  JobSpec bad_grid = SmallJobSpec();
  bad_grid.param_grid.clear();
  auto rejected2 = client->Submit(bad_grid);
  ASSERT_FALSE(rejected2.ok());
  EXPECT_EQ(rejected2.status().code(), StatusCode::kInvalidArgument);

  // Nothing was admitted, charged, or queued.
  const StatsReply stats = server.Stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.inflight_bytes, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  server.Stop(/*drain=*/true);
}

}  // namespace
}  // namespace cvcp
