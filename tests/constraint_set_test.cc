#include "constraints/constraint_set.h"

#include <gtest/gtest.h>

namespace cvcp {
namespace {

TEST(ConstraintSetTest, AddAndCounts) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(0, 3).ok());
  EXPECT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.num_must_links(), 1u);
  EXPECT_EQ(cs.num_cannot_links(), 2u);
  EXPECT_FALSE(cs.empty());
}

TEST(ConstraintSetTest, NormalizesEndpointOrder) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(7, 2).ok());
  const Constraint& c = cs.all()[0];
  EXPECT_EQ(c.a, 2u);
  EXPECT_EQ(c.b, 7u);
  EXPECT_EQ(cs.Lookup(7, 2), ConstraintType::kMustLink);
  EXPECT_EQ(cs.Lookup(2, 7), ConstraintType::kMustLink);
}

TEST(ConstraintSetTest, DuplicateIsNoOp) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddMustLink(1, 0).ok());
  EXPECT_EQ(cs.size(), 1u);
}

TEST(ConstraintSetTest, ConflictingTypeErrors) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  const Status s = cs.AddCannotLink(0, 1);
  EXPECT_EQ(s.code(), StatusCode::kInconsistentConstraints);
  EXPECT_EQ(cs.size(), 1u);  // unchanged
}

TEST(ConstraintSetTest, SelfPairRejected) {
  ConstraintSet cs;
  EXPECT_EQ(cs.AddMustLink(3, 3).code(), StatusCode::kInvalidArgument);
}

TEST(ConstraintSetTest, LookupMissing) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  EXPECT_FALSE(cs.Lookup(0, 2).has_value());
  EXPECT_FALSE(cs.Lookup(5, 5).has_value());
}

TEST(ConstraintSetTest, InvolvedObjectsSortedUnique) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(9, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(2, 5).ok());
  EXPECT_EQ(cs.InvolvedObjects(), (std::vector<size_t>{2, 5, 9}));
}

TEST(ConstraintSetTest, InvolvementMask) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddCannotLink(1, 3).ok());
  std::vector<bool> mask = cs.InvolvementMask(5);
  EXPECT_EQ(mask, (std::vector<bool>{false, true, false, true, false}));
}

// Regression: InvolvementMask must validate both endpoints before indexing.
// The seed only checked c.b, so an undersized mask was written out of
// bounds through c.a.
TEST(ConstraintSetDeathTest, InvolvementMaskRejectsLowEndpointBeyondN) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddCannotLink(6, 8).ok());  // both endpoints beyond n=2
  EXPECT_DEATH(cs.InvolvementMask(2), "c\\.a");
}

TEST(ConstraintSetDeathTest, InvolvementMaskRejectsHighEndpointBeyondN) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddCannotLink(1, 8).ok());  // only c.b beyond n=4
  EXPECT_DEATH(cs.InvolvementMask(4), "c\\.b");
}

TEST(ConstraintSetTest, RestrictedToKeepsFullyInternalPairs) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  ASSERT_TRUE(cs.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(cs.AddCannotLink(3, 4).ok());
  std::vector<size_t> keep = {0, 1, 4};
  ConstraintSet r = cs.RestrictedTo(keep);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Lookup(0, 1), ConstraintType::kMustLink);
  EXPECT_FALSE(r.Lookup(1, 2).has_value());
  EXPECT_FALSE(r.Lookup(3, 4).has_value());
}

TEST(ConstraintSetTest, RestrictedToIgnoresObjectsBeyondAnyConstraint) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 1).ok());
  // Object ids beyond every constrained id must be harmless, not an
  // out-of-bounds write into the keep array.
  std::vector<size_t> keep = {0, 1, 100};
  ConstraintSet r = cs.RestrictedTo(keep);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Lookup(0, 1), ConstraintType::kMustLink);
}

TEST(ConstraintSetTest, FromLabelsAllPairs) {
  // labels: 0->A, 1->A, 2->B.
  std::vector<int> labels = {0, 0, 1};
  std::vector<size_t> objects = {0, 1, 2};
  ConstraintSet cs = ConstraintSet::FromLabels(labels, objects);
  EXPECT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.Lookup(0, 1), ConstraintType::kMustLink);
  EXPECT_EQ(cs.Lookup(0, 2), ConstraintType::kCannotLink);
  EXPECT_EQ(cs.Lookup(1, 2), ConstraintType::kCannotLink);
}

TEST(ConstraintSetTest, FromLabelsSubsetOnly) {
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<size_t> objects = {0, 2};  // both class 0
  ConstraintSet cs = ConstraintSet::FromLabels(labels, objects);
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.num_must_links(), 1u);
}

TEST(ConstraintSetTest, AddAllMerges) {
  ConstraintSet a, b;
  ASSERT_TRUE(a.AddMustLink(0, 1).ok());
  ASSERT_TRUE(b.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(b.AddMustLink(0, 1).ok());  // duplicate across sets
  ASSERT_TRUE(a.AddAll(b).ok());
  EXPECT_EQ(a.size(), 2u);
}

TEST(ConstraintSetTest, AddAllPropagatesConflict) {
  ConstraintSet a, b;
  ASSERT_TRUE(a.AddMustLink(0, 1).ok());
  ASSERT_TRUE(b.AddCannotLink(0, 1).ok());
  EXPECT_EQ(a.AddAll(b).code(), StatusCode::kInconsistentConstraints);
}

TEST(ConstraintSetTest, ToStringForms) {
  EXPECT_EQ(ConstraintToString({1, 2, ConstraintType::kMustLink}), "ML(1,2)");
  EXPECT_EQ(ConstraintToString({0, 9, ConstraintType::kCannotLink}),
            "CL(0,9)");
}

}  // namespace
}  // namespace cvcp
