#include "cluster/copkmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

TEST(CopKMeansTest, BehavesLikeKMeansWithoutConstraints) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 3, 25, 2, 30.0, 0.5, &rng);
  CopKMeansConfig config;
  config.k = 3;
  auto result = RunCopKMeans(data.points(), ConstraintSet{}, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(AdjustedRandIndex(data.labels(), result->clustering), 0.99);
}

TEST(CopKMeansTest, HardConstraintsAlwaysSatisfied) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 3, 20, 2, 8.0, 2.0, &rng);  // overlapping
  std::vector<size_t> objects;
  for (size_t i = 0; i < data.size(); i += 4) objects.push_back(i);
  ConstraintSet constraints =
      ConstraintSet::FromLabels(data.labels(), objects);
  CopKMeansConfig config;
  config.k = 3;
  auto result = RunCopKMeans(data.points(), constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  for (const Constraint& c : constraints.all()) {
    const bool together = result->clustering.SameCluster(c.a, c.b);
    if (c.type == ConstraintType::kMustLink) {
      EXPECT_TRUE(together) << ConstraintToString(c);
    } else {
      EXPECT_FALSE(together) << ConstraintToString(c);
    }
  }
}

TEST(CopKMeansTest, MustLinkComponentsMoveAtomically) {
  Rng rng(3);
  Dataset data = MakeBlobs("blobs", 2, 15, 2, 20.0, 1.0, &rng);
  ConstraintSet constraints;
  // Chain three objects of class 0 with one of class 1: they must all land
  // in the same cluster regardless.
  auto c0 = data.ObjectsOfClass(0);
  auto c1 = data.ObjectsOfClass(1);
  ASSERT_TRUE(constraints.AddMustLink(c0[0], c0[1]).ok());
  ASSERT_TRUE(constraints.AddMustLink(c0[1], c1[0]).ok());
  CopKMeansConfig config;
  config.k = 2;
  auto result = RunCopKMeans(data.points(), constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->clustering.SameCluster(c0[0], c0[1]));
  EXPECT_TRUE(result->clustering.SameCluster(c0[1], c1[0]));
}

TEST(CopKMeansTest, InfeasibleWhenCannotLinksExceedK) {
  // 3 mutually cannot-linked objects cannot fit in 2 clusters.
  Rng rng(4);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddCannotLink(0, 1).ok());
  ASSERT_TRUE(constraints.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(constraints.AddCannotLink(0, 2).ok());
  CopKMeansConfig config;
  config.k = 2;
  config.max_restarts = 3;
  auto result = RunCopKMeans(points, constraints, config, &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(CopKMeansTest, FeasibleWithEnoughClusters) {
  Rng rng(5);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  ConstraintSet constraints;
  ASSERT_TRUE(constraints.AddCannotLink(0, 1).ok());
  ASSERT_TRUE(constraints.AddCannotLink(1, 2).ok());
  ASSERT_TRUE(constraints.AddCannotLink(0, 2).ok());
  CopKMeansConfig config;
  config.k = 3;
  auto result = RunCopKMeans(points, constraints, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->clustering.SameCluster(0, 1));
  EXPECT_FALSE(result->clustering.SameCluster(1, 2));
  EXPECT_FALSE(result->clustering.SameCluster(0, 2));
}

TEST(CopKMeansTest, InconsistentConstraintsRejected) {
  Rng rng(6);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}});
  ConstraintSet bad;
  ASSERT_TRUE(bad.AddMustLink(0, 1).ok());
  ASSERT_TRUE(bad.AddMustLink(1, 2).ok());
  ASSERT_TRUE(bad.AddCannotLink(0, 2).ok());
  CopKMeansConfig config;
  config.k = 2;
  auto result = RunCopKMeans(points, bad, config, &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistentConstraints);
}

TEST(CopKMeansTest, RejectsInvalidArguments) {
  Rng rng(7);
  Matrix points = Matrix::FromRows({{0, 0}, {1, 1}});
  CopKMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(RunCopKMeans(points, ConstraintSet{}, config, &rng).ok());
  config.k = 3;
  EXPECT_FALSE(RunCopKMeans(points, ConstraintSet{}, config, &rng).ok());
  config.k = 2;
  ConstraintSet oob;
  ASSERT_TRUE(oob.AddCannotLink(0, 5).ok());
  EXPECT_FALSE(RunCopKMeans(points, oob, config, &rng).ok());
}

}  // namespace
}  // namespace cvcp
