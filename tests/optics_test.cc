#include "cluster/optics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(OpticsTest, OrderIsPermutationOfAllObjects) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 3, 20, 2, 10.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 4;
  auto result = RunOptics(data.points(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order.size(), data.size());
  std::set<size_t> seen(result->order.begin(), result->order.end());
  EXPECT_EQ(seen.size(), data.size());
  EXPECT_EQ(result->reachability.size(), data.size());
  EXPECT_EQ(result->core_distance.size(), data.size());
}

TEST(OpticsTest, FirstReachabilityIsInfinite) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 1, 15, 2, 1.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 3;
  auto result = RunOptics(data.points(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reachability[0], kInf);
  // Single dense blob: everything after the first point is reachable.
  for (size_t i = 1; i < result->reachability.size(); ++i) {
    EXPECT_LT(result->reachability[i], kInf) << i;
  }
}

TEST(OpticsTest, CoreDistanceMatchesBruteForce) {
  Rng rng(3);
  Dataset data = MakeBlobs("blobs", 2, 12, 2, 6.0, 1.5, &rng);
  OpticsConfig config;
  config.min_pts = 5;
  auto result = RunOptics(data.points(), config);
  ASSERT_TRUE(result.ok());
  const size_t n = data.size();
  for (size_t p = 0; p < n; ++p) {
    std::vector<double> dists;
    for (size_t o = 0; o < n; ++o) {
      if (o == p) continue;
      dists.push_back(
          EuclideanDistance(data.points().Row(p), data.points().Row(o)));
    }
    std::sort(dists.begin(), dists.end());
    // min_pts-th neighbor including the point itself = 4th other point.
    EXPECT_DOUBLE_EQ(result->core_distance[p], dists[3]) << "point " << p;
  }
}

TEST(OpticsTest, MinPtsOneGivesZeroCoreDistance) {
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {5, 0}});
  OpticsConfig config;
  config.min_pts = 1;
  auto result = RunOptics(points, config);
  ASSERT_TRUE(result.ok());
  for (double cd : result->core_distance) EXPECT_DOUBLE_EQ(cd, 0.0);
}

TEST(OpticsTest, ReachabilityLowerBoundedByCoreDistanceOfPredecessors) {
  // Reachability(o) = max(core(p), d(p, o)) >= min core distance overall.
  Rng rng(4);
  Dataset data = MakeBlobs("blobs", 2, 15, 2, 8.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 4;
  auto result = RunOptics(data.points(), config);
  ASSERT_TRUE(result.ok());
  double min_core = kInf;
  for (double cd : result->core_distance) min_core = std::min(min_core, cd);
  for (size_t i = 1; i < result->reachability.size(); ++i) {
    if (result->reachability[i] < kInf) {
      EXPECT_GE(result->reachability[i], min_core);
    }
  }
}

TEST(OpticsTest, TwoFarBlobsShowReachabilityJump) {
  // Two tight blobs far apart: exactly one interior position has a huge
  // reachability (the jump between blobs).
  Rng rng(5);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0};
  specs[0].stddevs = {0.3};
  specs[0].size = 20;
  specs[1].mean = {100.0, 0.0};
  specs[1].stddevs = {0.3};
  specs[1].size = 20;
  Dataset data = MakeGaussianMixture("two-far", specs, &rng);
  OpticsConfig config;
  config.min_pts = 4;
  auto result = RunOptics(data.points(), config);
  ASSERT_TRUE(result.ok());
  size_t jumps = 0;
  for (size_t i = 1; i < result->reachability.size(); ++i) {
    if (result->reachability[i] > 50.0) ++jumps;
  }
  EXPECT_EQ(jumps, 1u);
  // And the two blobs are contiguous in the ordering.
  const auto blob_of = [&](size_t obj) { return data.label(obj); };
  size_t switches = 0;
  for (size_t i = 1; i < result->order.size(); ++i) {
    if (blob_of(result->order[i]) != blob_of(result->order[i - 1])) {
      ++switches;
    }
  }
  EXPECT_EQ(switches, 1u);
}

TEST(OpticsTest, FiniteEpsLeavesSparsePointsUnreachable) {
  Matrix points = Matrix::FromRows(
      {{0, 0}, {0.5, 0}, {1, 0}, {1.5, 0}, {100, 0}});
  OpticsConfig config;
  config.min_pts = 2;
  config.eps = 2.0;
  auto result = RunOptics(points, config);
  ASSERT_TRUE(result.ok());
  // The isolated point starts its own walk with infinite reachability and
  // has infinite core distance (no neighbors within eps).
  size_t inf_reach = 0;
  for (double r : result->reachability) {
    if (r == kInf) ++inf_reach;
  }
  EXPECT_EQ(inf_reach, 2u);  // first point of each of the two components
  EXPECT_EQ(result->core_distance[4], kInf);
}

TEST(OpticsTest, DistanceMatrixVariantAgreesWithDirect) {
  Rng rng(6);
  Dataset data = MakeBlobs("blobs", 2, 15, 3, 10.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 3;
  auto direct = RunOptics(data.points(), config);
  auto via_dm = RunOptics(
      DistanceMatrix::Compute(data.points(), Metric::kEuclidean), config);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_dm.ok());
  EXPECT_EQ(direct->order, via_dm->order);
  EXPECT_EQ(direct->reachability, via_dm->reachability);
  EXPECT_EQ(direct->core_distance, via_dm->core_distance);
}

TEST(OpticsTest, RejectsInvalidMinPts) {
  Matrix points = Matrix::FromRows({{0, 0}, {1, 1}});
  OpticsConfig config;
  config.min_pts = 0;
  EXPECT_FALSE(RunOptics(points, config).ok());
  config.min_pts = 3;
  EXPECT_FALSE(RunOptics(points, config).ok());
}

TEST(OpticsTest, DeterministicOrdering) {
  Rng rng(7);
  Dataset data = MakeBlobs("blobs", 3, 15, 2, 10.0, 1.0, &rng);
  OpticsConfig config;
  config.min_pts = 4;
  auto a = RunOptics(data.points(), config);
  auto b = RunOptics(data.points(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->order, b->order);
}

}  // namespace
}  // namespace cvcp
