// Bitwise-equality suite for the persistent artifact store: reports must
// be byte-identical whether the geometry was recomputed, memory-cached,
// stored cold (computing and persisting), or served from a warm store —
// across 1/2/8 threads and both scheduler policies — and a warm store
// must satisfy every model request with zero OPTICS rebuilds (the
// cross-process warm-start guarantee, rehearsed in-process with fresh
// cache front-ends over one store directory).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/artifact_store.h"
#include "core/cvcp.h"
#include "core/dataset_cache.h"
#include "data/generators.h"
#include "harness/experiment.h"

namespace cvcp {
namespace {

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }

std::string FreshStoreDir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cvcp_store_det" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

Dataset FixtureData(uint64_t seed) {
  Rng rng(seed);
  std::vector<GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {30.0, 0.0};
  specs[2].mean = {0.0, 30.0};
  specs[3].mean = {30.0, 30.0};
  for (auto& spec : specs) {
    spec.stddevs = {0.8};
    spec.size = 25;
  }
  return MakeGaussianMixture("fixture", specs, &rng);
}

/// Constraints + FOSC: the pipeline whose OPTICS models the store
/// actually persists.
struct StoreFixture {
  Dataset data = FixtureData(611);
  Supervision supervision = [this] {
    Rng rng(612);
    auto pool = BuildConstraintPool(data, 0.25, &rng);
    CVCP_CHECK(pool.ok());
    auto sampled = SampleConstraints(pool.value(), 0.5, &rng);
    CVCP_CHECK(sampled.ok());
    return Supervision::FromConstraints(sampled.value());
  }();
  FoscOpticsDendClusterer clusterer;
};

void ExpectReportsIdentical(const CvcpReport& a, const CvcpReport& b,
                            const std::string& label) {
  EXPECT_EQ(a.best_param, b.best_param) << label;
  EXPECT_EQ(Bits(a.best_score), Bits(b.best_score)) << label;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (size_t g = 0; g < a.scores.size(); ++g) {
    EXPECT_EQ(Bits(a.scores[g].score), Bits(b.scores[g].score))
        << label << ", grid " << g;
  }
  EXPECT_EQ(a.final_clustering.assignment(), b.final_clustering.assignment())
      << label;
}

TEST(StoreDeterminismTest, CvcpColdAndWarmBitIdenticalAcrossThreads) {
  StoreFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 4;
  config.param_grid = {3, 6, 9, 12};

  // Recomputed-from-scratch baseline, no cache at all.
  config.cv.exec = ExecutionContext::Serial();
  Rng baseline_rng(818);
  auto baseline = RunCvcp(fixture.data, fixture.supervision,
                          fixture.clusterer, config, &baseline_rng);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ArtifactStore store(FreshStoreDir("cvcp"));
  for (int threads : {1, 2, 8}) {
    config.cv.exec.threads = threads;

    // Cold pass: purge the directory, run with a fresh cache, persist.
    ASSERT_TRUE(store.Purge().ok());
    DatasetCache cold(fixture.data.points(),
                      DatasetCacheTiers{nullptr, &store});
    Rng cold_rng(818);
    auto cold_report = RunCvcp(fixture.data, fixture.supervision,
                               fixture.clusterer, config, &cold_rng, &cold);
    ASSERT_TRUE(cold_report.ok()) << cold_report.status().ToString();
    ExpectReportsIdentical(*baseline, *cold_report,
                           "cold, threads " + std::to_string(threads));
    EXPECT_GE(cold.stats().model_builds, config.param_grid.size())
        << "cold run must compute (and persist) every grid model";

    // Warm pass: a *fresh* front-end over the now-populated directory —
    // the stand-in for a second process. Zero rebuilds allowed.
    DatasetCache warm(fixture.data.points(),
                      DatasetCacheTiers{nullptr, &store});
    Rng warm_rng(818);
    auto warm_report = RunCvcp(fixture.data, fixture.supervision,
                               fixture.clusterer, config, &warm_rng, &warm);
    ASSERT_TRUE(warm_report.ok()) << warm_report.status().ToString();
    ExpectReportsIdentical(*baseline, *warm_report,
                           "warm, threads " + std::to_string(threads));
    const DatasetCache::Stats stats = warm.stats();
    EXPECT_EQ(stats.model_builds, 0u) << "threads " << threads;
    EXPECT_EQ(stats.distance_builds, 0u) << "threads " << threads;
    EXPECT_GE(stats.model_loads, config.param_grid.size())
        << "threads " << threads;
  }
}

TEST(StoreDeterminismTest, PrewarmedGridServesEveryCellFromMemory) {
  StoreFixture fixture;
  ArtifactStore store(FreshStoreDir("prewarm"));
  const std::vector<int> grid = {3, 6, 9, 12};

  {
    DatasetCache cache(fixture.data.points(),
                       DatasetCacheTiers{nullptr, &store});
    ExecutionContext exec;
    exec.threads = 4;
    cache.Prewarm(Metric::kEuclidean, grid, exec);
  }
  // The second front-end prewarm loads everything from disk...
  DatasetCache warm(fixture.data.points(),
                    DatasetCacheTiers{nullptr, &store});
  warm.Prewarm(Metric::kEuclidean, grid, ExecutionContext::Serial());
  EXPECT_EQ(warm.stats().model_builds, 0u);
  EXPECT_EQ(warm.stats().model_loads, grid.size());
  // ...and every later model request is a pure memory hit.
  for (int min_pts : grid) {
    auto model =
        warm.FoscModel(Metric::kEuclidean, min_pts, ExecutionContext::Serial());
    ASSERT_TRUE(model.ok());
  }
  EXPECT_EQ(warm.stats().model_hits, grid.size());
}

void ExpectAggregatesIdentical(const bench::CellAggregate& a,
                               const bench::CellAggregate& b,
                               const std::string& label) {
  EXPECT_EQ(a.trials_ok, b.trials_ok) << label;
  EXPECT_EQ(Bits(a.corr_mean), Bits(b.corr_mean)) << label;
  EXPECT_EQ(Bits(a.cvcp_mean), Bits(b.cvcp_mean)) << label;
  EXPECT_EQ(Bits(a.cvcp_std), Bits(b.cvcp_std)) << label;
  EXPECT_EQ(Bits(a.exp_mean), Bits(b.exp_mean)) << label;
  ASSERT_EQ(a.cvcp_values.size(), b.cvcp_values.size()) << label;
  for (size_t t = 0; t < a.cvcp_values.size(); ++t) {
    EXPECT_EQ(Bits(a.cvcp_values[t]), Bits(b.cvcp_values[t]))
        << label << ", trial " << t;
  }
}

// The whole harness through a pool + store: every threads ×
// scheduler-policy combination, cold and warm, must reproduce the
// no-cache serial aggregates byte for byte — and once the store is warm,
// a fresh pool must run the experiment with zero OPTICS rebuilds.
TEST(StoreDeterminismTest, ExperimentAggregatesBitIdenticalThroughStore) {
  Dataset data = FixtureData(911);
  FoscOpticsDendClusterer clusterer;
  bench::TrialSpec spec;
  spec.scenario = bench::Scenario::kConstraints;
  spec.level = 0.5;
  spec.n_folds = 3;
  spec.grid = {3, 5, 8, 12};
  const int trials = 3;

  spec.use_cache = false;
  spec.exec = ExecutionContext::Serial();
  const bench::CellAggregate baseline =
      bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/78);
  ASSERT_GT(baseline.trials_ok, 0);

  ArtifactStore store(FreshStoreDir("experiment"));
  spec.use_cache = true;
  for (NestingPolicy policy :
       {NestingPolicy::kNested, NestingPolicy::kSplit}) {
    for (int threads : {1, 2, 8}) {
      spec.exec.threads = threads;
      spec.nesting = policy;
      DatasetCachePool pool(/*memory_capacity_bytes=*/64 * 1024 * 1024,
                            &store);
      spec.cache_pool = &pool;
      const bench::CellAggregate agg =
          bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/78);
      const std::string label =
          "threads " + std::to_string(threads) +
          (policy == NestingPolicy::kNested ? ", nested" : ", split");
      ExpectAggregatesIdentical(baseline, agg, label);
    }
  }

  // Fresh pool over the warm store: the aggregate is the same and no
  // OPTICS model is ever rebuilt.
  DatasetCachePool warm_pool(/*memory_capacity_bytes=*/64 * 1024 * 1024,
                             &store);
  spec.cache_pool = &warm_pool;
  spec.exec = ExecutionContext::Serial();
  spec.nesting = NestingPolicy::kSplit;
  const bench::CellAggregate warm =
      bench::RunExperiment(data, clusterer, spec, trials, /*seed=*/78);
  ExpectAggregatesIdentical(baseline, warm, "warm pool");
  const DatasetCache::Stats stats = warm_pool.AggregateStats();
  EXPECT_EQ(stats.model_builds, 0u);
  EXPECT_EQ(stats.distance_builds, 0u);
  EXPECT_GT(stats.model_loads, 0u);
}

// Damage injected mid-store degrades to recompute with identical bytes:
// corrupt every artifact, rerun, and the report must not change (the
// corrupt files are simply recomputed and rewritten).
TEST(StoreDeterminismTest, CorruptedStoreFallsBackToIdenticalRecompute) {
  StoreFixture fixture;
  CvcpConfig config;
  config.cv.n_folds = 3;
  config.param_grid = {3, 6, 9};
  config.cv.exec = ExecutionContext::Serial();

  const std::string dir = FreshStoreDir("corrupt");
  ArtifactStore store(dir);
  DatasetCache cold(fixture.data.points(), DatasetCacheTiers{nullptr, &store});
  Rng cold_rng(828);
  auto cold_report = RunCvcp(fixture.data, fixture.supervision,
                             fixture.clusterer, config, &cold_rng, &cold);
  ASSERT_TRUE(cold_report.ok());

  // Truncate every stored artifact to half size.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::resize_file(entry.path(),
                                 std::filesystem::file_size(entry.path()) / 2);
  }

  DatasetCache recovered(fixture.data.points(),
                         DatasetCacheTiers{nullptr, &store});
  Rng rng(828);
  auto report = RunCvcp(fixture.data, fixture.supervision, fixture.clusterer,
                        config, &rng, &recovered);
  ASSERT_TRUE(report.ok());
  ExpectReportsIdentical(*cold_report, *report, "recovered");
  EXPECT_GT(recovered.stats().model_builds, 0u);  // recomputed, not served
  EXPECT_GT(store.stats().corrupt_misses, 0u);    // and counted

  // The rewritten artifacts serve a warm run again.
  DatasetCache warm(fixture.data.points(),
                    DatasetCacheTiers{nullptr, &store});
  Rng warm_rng(828);
  auto warm_report = RunCvcp(fixture.data, fixture.supervision,
                             fixture.clusterer, config, &warm_rng, &warm);
  ASSERT_TRUE(warm_report.ok());
  ExpectReportsIdentical(*cold_report, *warm_report, "rewarmed");
  EXPECT_EQ(warm.stats().model_builds, 0u);
}

}  // namespace
}  // namespace cvcp
