#include "common/strings.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvcp {
namespace {

TEST(FormatTest, BasicSubstitution) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%.2f", 1.005), "1.00");
  EXPECT_EQ(Format("no args"), "no args");
}

TEST(FormatTest, LongOutput) {
  std::string long_str(500, 'a');
  EXPECT_EQ(Format("%s", long_str.c_str()).size(), 500u);
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("x,", ',').size(), 2u);
}

TEST(TrimTest, AllWhitespaceKinds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(FormatDoubleTest, DigitsAndNaN) {
  EXPECT_EQ(FormatDouble(0.74891, 4), "0.7489");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(std::nan(""), 4), "—");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace cvcp
