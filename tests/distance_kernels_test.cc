// Pinning tests for the distance-kernel layer (common/distance_kernels.h):
//
//  * the fixed-lane contract — the dispatched native table (AVX2/NEON
//    when the CPU has it) must be *bitwise* equal to the portable scalar
//    reference for every kernel, at every vector length around the lane
//    width (0..2*width+3 pins the tail handling);
//  * the strided x4 batch must be bitwise equal to four single-pair
//    calls, packed or padded stride;
//  * fixed-lane vs the legacy left-to-right kernels: equal within
//    rounding (they reassociate), never relied on for bit equality;
//  * policy parsing/naming, the env-independent process default
//    machinery, and the deprecated SetUnrolledDistanceKernels shim
//    (true -> kUnrolled, false -> kFixedLane — pinned so old callers
//    keep their exact behavior);
//  * the tiled DistanceMatrix::Compute against the untiled oracle:
//    bitwise per policy, for ragged multi-tile sizes and any thread
//    count, and the f32 storage mode holds exactly float(f64 value).

#include "common/distance_kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/distance.h"
#include "common/matrix.h"
#include "common/parallel.h"

namespace cvcp {
namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

// Deterministic, irregular values: no two entries equal, mixed signs and
// magnitudes so reassociation would actually change low bits.
std::vector<double> Irregular(size_t n, double seed) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) + seed;
    v[i] = std::sin(x * 12.9898) * 43758.5453 - std::floor(x * 0.37);
  }
  return v;
}

// Restores the process-default kernel policy on scope exit — whatever it
// was, including an env-selected scalar-legacy (the CI sweep runs this
// whole binary under CVCP_DISTANCE_KERNEL=scalar-legacy, and a guard
// that "restored" a hardcoded default would clobber that mid-binary).
class PolicyGuard {
 public:
  PolicyGuard() : previous_(DefaultDistanceKernelPolicy()) {}
  ~PolicyGuard() { SetDefaultDistanceKernelPolicy(previous_); }

 private:
  DistanceKernelPolicy previous_;
};

TEST(DistanceKernelsFixedLane, NativeBitwiseEqualsPortableAllLengths) {
  const DistanceKernels& native = FixedLaneKernelsNative();
  const DistanceKernels& portable = FixedLaneKernelsPortable();
  for (size_t n = 0; n <= 2 * kFixedLaneWidth + 3; ++n) {
    const std::vector<double> a = Irregular(n, 0.3);
    const std::vector<double> b = Irregular(n, 1.7);
    const std::vector<double> w = Irregular(n, 2.9);
    EXPECT_EQ(Bits(native.squared_euclidean(a.data(), b.data(), n)),
              Bits(portable.squared_euclidean(a.data(), b.data(), n)))
        << "squared_euclidean n=" << n;
    EXPECT_EQ(Bits(native.manhattan(a.data(), b.data(), n)),
              Bits(portable.manhattan(a.data(), b.data(), n)))
        << "manhattan n=" << n;
    EXPECT_EQ(Bits(native.cosine(a.data(), b.data(), n)),
              Bits(portable.cosine(a.data(), b.data(), n)))
        << "cosine n=" << n;
    EXPECT_EQ(
        Bits(native.weighted_squared_euclidean(a.data(), b.data(), w.data(),
                                               n)),
        Bits(portable.weighted_squared_euclidean(a.data(), b.data(), w.data(),
                                                 n)))
        << "weighted n=" << n;
  }
}

TEST(DistanceKernelsFixedLane, BatchX4BitwiseEqualsFourSingleCalls) {
  for (const DistanceKernels* table :
       {&FixedLaneKernelsNative(), &FixedLaneKernelsPortable()}) {
    ASSERT_NE(table->squared_euclidean_x4, nullptr);
    for (size_t n = 0; n <= 2 * kFixedLaneWidth + 3; ++n) {
      // Packed (stride == n) and padded (stride > n) column layouts.
      for (size_t stride : {n, n + 3}) {
        const std::vector<double> a = Irregular(n, 0.5);
        const std::vector<double> b = Irregular(4 * stride + n, 4.2);
        double batch[4];
        table->squared_euclidean_x4(a.data(), b.data(), stride, n, batch);
        for (size_t k = 0; k < 4; ++k) {
          EXPECT_EQ(Bits(batch[k]), Bits(table->squared_euclidean(
                                        a.data(), b.data() + k * stride, n)))
              << "n=" << n << " stride=" << stride << " k=" << k;
        }
      }
    }
  }
}

TEST(DistanceKernelsFixedLane, MatchesLegacyWithinRounding) {
  const DistanceKernels& fixed = GetDistanceKernels(
      DistanceKernelPolicy::kFixedLane);
  const DistanceKernels& legacy = GetDistanceKernels(
      DistanceKernelPolicy::kScalarLegacy);
  const size_t n = 19;
  const std::vector<double> a = Irregular(n, 0.3);
  const std::vector<double> b = Irregular(n, 1.7);
  const std::vector<double> w = Irregular(n, 5.5);
  std::vector<double> w_pos = w;
  for (double& x : w_pos) x = std::fabs(x);
  const double sq = legacy.squared_euclidean(a.data(), b.data(), n);
  EXPECT_NEAR(fixed.squared_euclidean(a.data(), b.data(), n), sq,
              1e-12 * std::fabs(sq));
  const double man = legacy.manhattan(a.data(), b.data(), n);
  EXPECT_NEAR(fixed.manhattan(a.data(), b.data(), n), man,
              1e-12 * std::fabs(man));
  const double cos = legacy.cosine(a.data(), b.data(), n);
  EXPECT_NEAR(fixed.cosine(a.data(), b.data(), n), cos, 1e-12);
  const double wsq =
      legacy.weighted_squared_euclidean(a.data(), b.data(), w_pos.data(), n);
  EXPECT_NEAR(
      fixed.weighted_squared_euclidean(a.data(), b.data(), w_pos.data(), n),
      wsq, 1e-12 * std::fabs(wsq));
}

TEST(DistanceKernelsDispatch, ArchIsKnownAndFixedLaneUsesNativeTable) {
  const std::string arch = DistanceKernelArch();
  EXPECT_TRUE(arch == "avx2" || arch == "neon" || arch == "portable") << arch;
  EXPECT_EQ(&GetDistanceKernels(DistanceKernelPolicy::kFixedLane),
            &FixedLaneKernelsNative());
  // Legacy and unrolled tables have no batched form; the matrix build
  // falls back to single-pair calls for them.
  EXPECT_EQ(GetDistanceKernels(DistanceKernelPolicy::kScalarLegacy)
                .squared_euclidean_x4,
            nullptr);
  EXPECT_EQ(
      GetDistanceKernels(DistanceKernelPolicy::kUnrolled).squared_euclidean_x4,
      nullptr);
}

TEST(DistanceKernelsPolicy, ParseNamesRoundTrip) {
  DistanceKernelPolicy p = DistanceKernelPolicy::kDefault;
  EXPECT_TRUE(ParseDistanceKernelPolicy("fixed-lane", &p));
  EXPECT_EQ(p, DistanceKernelPolicy::kFixedLane);
  EXPECT_TRUE(ParseDistanceKernelPolicy("scalar-legacy", &p));
  EXPECT_EQ(p, DistanceKernelPolicy::kScalarLegacy);
  EXPECT_TRUE(ParseDistanceKernelPolicy("unrolled", &p));
  EXPECT_EQ(p, DistanceKernelPolicy::kUnrolled);
  EXPECT_FALSE(ParseDistanceKernelPolicy("turbo", &p));
  EXPECT_EQ(p, DistanceKernelPolicy::kUnrolled);  // unchanged on failure

  DistanceStorage s = DistanceStorage::kF64;
  EXPECT_TRUE(ParseDistanceStorage("f32", &s));
  EXPECT_EQ(s, DistanceStorage::kF32);
  EXPECT_TRUE(ParseDistanceStorage("f64", &s));
  EXPECT_EQ(s, DistanceStorage::kF64);
  EXPECT_FALSE(ParseDistanceStorage("f16", &s));

  EXPECT_STREQ(DistanceKernelPolicyName(DistanceKernelPolicy::kFixedLane),
               "fixed-lane");
  EXPECT_STREQ(DistanceKernelPolicyName(DistanceKernelPolicy::kScalarLegacy),
               "scalar-legacy");
  EXPECT_STREQ(DistanceStorageName(DistanceStorage::kF32), "f32");
  EXPECT_STREQ(DistanceStorageName(DistanceStorage::kF64), "f64");
}

TEST(DistanceKernelsPolicy, DefaultSlotResolvesAndIgnoresKDefault) {
  PolicyGuard guard;
  SetDefaultDistanceKernelPolicy(DistanceKernelPolicy::kScalarLegacy);
  EXPECT_EQ(DefaultDistanceKernelPolicy(),
            DistanceKernelPolicy::kScalarLegacy);
  EXPECT_EQ(ResolveDistanceKernelPolicy(DistanceKernelPolicy::kDefault),
            DistanceKernelPolicy::kScalarLegacy);
  EXPECT_EQ(ResolveDistanceKernelPolicy(DistanceKernelPolicy::kFixedLane),
            DistanceKernelPolicy::kFixedLane);
  // Setting kDefault is a no-op: there is nothing to resolve it to.
  SetDefaultDistanceKernelPolicy(DistanceKernelPolicy::kDefault);
  EXPECT_EQ(DefaultDistanceKernelPolicy(),
            DistanceKernelPolicy::kScalarLegacy);
}

TEST(DistanceKernelsShim, SetUnrolledPinnedToPolicyValues) {
  PolicyGuard guard;
  SetUnrolledDistanceKernels(true);
  EXPECT_EQ(DefaultDistanceKernelPolicy(), DistanceKernelPolicy::kUnrolled);
  EXPECT_TRUE(UnrolledDistanceKernelsEnabled());
  // The shim's "off" state is the modern default, not the legacy scalar:
  // callers that toggled the old global get the SIMD default back.
  SetUnrolledDistanceKernels(false);
  EXPECT_EQ(DefaultDistanceKernelPolicy(), DistanceKernelPolicy::kFixedLane);
  EXPECT_FALSE(UnrolledDistanceKernelsEnabled());
}

// ---------------------------------------------------------------------------
// Tiled matrix build vs the untiled oracle
// ---------------------------------------------------------------------------

// Ragged multi-tile geometry: d=96 gives ~170-row panels, so n=401 spans
// three ragged panels (170, 170, 61) including diagonal and off-diagonal
// tiles with partial edges.
Matrix TilingFixture() {
  const size_t n = 401, d = 96;
  std::vector<double> flat = Irregular(n * d, 7.7);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m.At(i, j) = flat[i * d + j];
  }
  return m;
}

TEST(DistanceMatrixTiled, BitwiseEqualsUntiledPerPolicyAndThreads) {
  const Matrix points = TilingFixture();
  for (DistanceKernelPolicy policy : {DistanceKernelPolicy::kFixedLane,
                                      DistanceKernelPolicy::kScalarLegacy}) {
    ExecutionContext serial = ExecutionContext::Serial();
    serial.distance_kernel = policy;
    const DistanceMatrix oracle =
        DistanceMatrix::ComputeUntiled(points, Metric::kEuclidean, serial);
    for (int threads : {1, 2, 8}) {
      ExecutionContext exec = serial;
      exec.threads = threads;
      const DistanceMatrix tiled =
          DistanceMatrix::Compute(points, Metric::kEuclidean, exec);
      ASSERT_EQ(tiled.n(), oracle.n());
      ASSERT_EQ(tiled.condensed().size(), oracle.condensed().size());
      for (size_t i = 0; i < oracle.condensed().size(); ++i) {
        ASSERT_EQ(Bits(tiled.condensed()[i]), Bits(oracle.condensed()[i]))
            << "policy=" << DistanceKernelPolicyName(policy)
            << " threads=" << threads << " slot=" << i;
      }
    }
  }
}

TEST(DistanceMatrixTiled, F32StorageIsExactlyNarrowedF64) {
  const Matrix points = TilingFixture();
  ExecutionContext exec = ExecutionContext::Serial();
  exec.distance_kernel = DistanceKernelPolicy::kFixedLane;
  const DistanceMatrix f64 =
      DistanceMatrix::Compute(points, Metric::kEuclidean, exec);
  const DistanceMatrix f32 = DistanceMatrix::Compute(
      points, Metric::kEuclidean, exec, DistanceStorage::kF32);
  EXPECT_EQ(f32.storage(), DistanceStorage::kF32);
  ASSERT_EQ(f32.condensed32().size(), f64.condensed().size());
  for (size_t i = 0; i < f64.condensed().size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(f32.condensed32()[i]),
              std::bit_cast<uint32_t>(
                  static_cast<float>(f64.condensed()[i])))
        << "slot=" << i;
  }
  // The accessor widens; reads agree with the narrowed doubles.
  EXPECT_EQ(f32(0, 0), 0.0);
  EXPECT_EQ(f32(3, 7), static_cast<double>(static_cast<float>(f64(3, 7))));
  // Half the bytes (modulo the vector headers the charge model ignores).
  EXPECT_EQ(f32.MemoryBytes() * 2, f64.MemoryBytes());
}

TEST(DistanceMatrixTiled, F32RoundTripsThroughFromCondensed32) {
  std::vector<float> values = {1.5f, 2.25f, std::nanf("1")};
  const DistanceMatrix dm = DistanceMatrix::FromCondensed32(3, values);
  EXPECT_EQ(dm.storage(), DistanceStorage::kF32);
  EXPECT_EQ(dm(0, 1), 1.5);
  EXPECT_EQ(dm(0, 2), 2.25);
  EXPECT_TRUE(std::isnan(dm(1, 2)));  // NaN survives the widening read
}

}  // namespace
}  // namespace cvcp
