#include "eval/external_measures.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cvcp {
namespace {

TEST(OverallFMeasureTest, PerfectMatchIsOne) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  Clustering c({5, 5, 3, 3, 9, 9});  // same partition, different ids
  EXPECT_DOUBLE_EQ(OverallFMeasure(labels, c), 1.0);
}

TEST(OverallFMeasureTest, HandComputedSplitClass) {
  // Class 0 = {0,1,2,3} split into clusters {0,1} and {2,3};
  // class 1 = {4,5} exactly cluster 2.
  std::vector<int> labels = {0, 0, 0, 0, 1, 1};
  Clustering c({0, 0, 1, 1, 2, 2});
  // Class 0 best F: vs cluster 0: p=1, r=1/2, F=2/3. Same vs cluster 1.
  // Class 1 best F = 1. Weighted: (4/6)*(2/3) + (2/6)*1 = 4/9 + 1/3 = 7/9.
  EXPECT_NEAR(OverallFMeasure(labels, c), 7.0 / 9.0, 1e-12);
}

TEST(OverallFMeasureTest, MergedClassesPenalized) {
  // Both classes in one cluster: per class p=1/2, r=1, F=2/3.
  std::vector<int> labels = {0, 0, 1, 1};
  Clustering c({0, 0, 0, 0});
  EXPECT_NEAR(OverallFMeasure(labels, c), 2.0 / 3.0, 1e-12);
}

TEST(OverallFMeasureTest, ExclusionMaskRemovesObjects) {
  std::vector<int> labels = {0, 0, 1, 1};
  Clustering c({0, 1, 1, 0});  // everything wrong
  // Exclude the two wrong objects 1 and 3: remaining {0} in cluster 0 and
  // {2} in cluster 1 are both perfect singletons.
  std::vector<bool> exclude = {false, true, false, true};
  EXPECT_DOUBLE_EQ(OverallFMeasure(labels, c, &exclude), 1.0);
}

TEST(OverallFMeasureTest, NoiseBecomesSingletons) {
  std::vector<int> labels = {0, 0, 0};
  Clustering c({kNoise, kNoise, kNoise});
  // Each singleton vs class of size 3: p=1, r=1/3, F=1/2.
  EXPECT_NEAR(OverallFMeasure(labels, c), 0.5, 1e-12);
}

TEST(OverallFMeasureTest, AllExcludedIsNaN) {
  std::vector<int> labels = {0, 1};
  Clustering c({0, 1});
  std::vector<bool> exclude = {true, true};
  EXPECT_TRUE(std::isnan(OverallFMeasure(labels, c, &exclude)));
}

TEST(PairCountsTest, HandComputed) {
  std::vector<int> labels = {0, 0, 1, 1};
  Clustering c({0, 0, 0, 1});
  const PairCounts pc = CountPairs(labels, c);
  // Pairs: (0,1) ss; (0,2) ds; (0,3) dd; (1,2) ds; (1,3) dd; (2,3) sd.
  EXPECT_EQ(pc.same_same, 1u);
  EXPECT_EQ(pc.same_diff, 1u);
  EXPECT_EQ(pc.diff_same, 2u);
  EXPECT_EQ(pc.diff_diff, 2u);
  EXPECT_EQ(pc.total(), 6u);
}

TEST(RandIndexTest, PerfectAndHandValue) {
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RandIndex(labels, Clustering({1, 1, 0, 0})), 1.0);
  // From PairCountsTest: (1 + 2) / 6.
  EXPECT_NEAR(RandIndex(labels, Clustering({0, 0, 0, 1})), 0.5, 1e-12);
}

TEST(AdjustedRandIndexTest, PerfectIsOneRandomNearZero) {
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(labels, Clustering({2, 2, 2, 0, 0, 0})),
                   1.0);
  // A "random-looking" partition should be far below 1 (can be negative).
  EXPECT_LT(AdjustedRandIndex(labels, Clustering({0, 1, 0, 1, 0, 1})), 0.1);
}

TEST(AdjustedRandIndexTest, KnownSmallExample) {
  // Classic example: labels {0,0,1,1}, clusters {0,0,0,1}.
  // sum_ij C(n_ij,2): n = [[2,0],[1,1]] -> C(2,2)=1.
  // sum_a = C(2,2)+C(2,2) = 2; sum_b = C(3,2)+C(1,2) = 3; total = C(4,2)=6.
  // expected = 2*3/6 = 1; max = 2.5; ARI = (1-1)/(2.5-1) = 0.
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(AdjustedRandIndex(labels, Clustering({0, 0, 0, 1})), 0.0,
              1e-12);
}

TEST(JaccardIndexTest, HandComputed) {
  std::vector<int> labels = {0, 0, 1, 1};
  Clustering c({0, 0, 0, 1});
  // ss=1, sd=1, ds=2 -> 1/4.
  EXPECT_NEAR(JaccardIndex(labels, c), 0.25, 1e-12);
}

TEST(PairwiseFMeasureTest, HandComputed) {
  std::vector<int> labels = {0, 0, 1, 1};
  Clustering c({0, 0, 0, 1});
  // tp=1, fp=2, fn=1: p=1/3, r=1/2, F=0.4.
  EXPECT_NEAR(PairwiseFMeasure(labels, c), 0.4, 1e-12);
}

TEST(PurityTest, HandComputed) {
  std::vector<int> labels = {0, 0, 1, 1, 1};
  Clustering c({0, 0, 0, 1, 1});
  // Cluster 0: majority class 0 (2 of 3); cluster 1: class 1 (2 of 2).
  EXPECT_NEAR(Purity(labels, c), 4.0 / 5.0, 1e-12);
}

TEST(NmiTest, PerfectAndIndependent) {
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(NormalizedMutualInformation(labels, Clustering({1, 1, 0, 0})),
              1.0, 1e-12);
  // One big cluster carries no information: MI = 0 but H(cluster) = 0 too;
  // arithmetic normalization uses (H1+H2)/2 > 0 => NMI = 0.
  EXPECT_NEAR(NormalizedMutualInformation(labels, Clustering({0, 0, 0, 0})),
              0.0, 1e-12);
}

TEST(ExternalMeasuresTest, ExclusionConsistentAcrossMeasures) {
  std::vector<int> labels = {0, 0, 1, 1, 2};
  Clustering c({0, 0, 1, 1, 2});
  std::vector<bool> exclude = {false, false, false, false, true};
  EXPECT_DOUBLE_EQ(OverallFMeasure(labels, c, &exclude), 1.0);
  EXPECT_DOUBLE_EQ(RandIndex(labels, c, &exclude), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(labels, c, &exclude), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex(labels, c, &exclude), 1.0);
  EXPECT_DOUBLE_EQ(Purity(labels, c, &exclude), 1.0);
}

}  // namespace
}  // namespace cvcp
