#include "core/supervision.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

Dataset TinyData() {
  Matrix points = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  return Dataset("tiny", std::move(points), {0, 0, 1, 1, 0});
}

TEST(SupervisionTest, FromLabelsDerivesAllPairs) {
  Dataset data = TinyData();
  Supervision s = Supervision::FromLabels(data, {0, 2, 4});
  EXPECT_EQ(s.kind(), SupervisionKind::kLabels);
  EXPECT_EQ(s.involved_objects(), (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(s.constraints().size(), 3u);
  EXPECT_EQ(s.constraints().Lookup(0, 4), ConstraintType::kMustLink);
  EXPECT_EQ(s.constraints().Lookup(0, 2), ConstraintType::kCannotLink);
  EXPECT_EQ(s.constraints().Lookup(2, 4), ConstraintType::kCannotLink);
}

TEST(SupervisionTest, FromLabelsSparseArray) {
  Dataset data = TinyData();
  Supervision s = Supervision::FromLabels(data, {1, 3});
  ASSERT_EQ(s.sparse_labels().size(), 5u);
  EXPECT_EQ(s.sparse_labels()[1], 0);
  EXPECT_EQ(s.sparse_labels()[3], 1);
  EXPECT_EQ(s.sparse_labels()[0], -1);
  EXPECT_EQ(s.sparse_labels()[2], -1);
}

TEST(SupervisionTest, FromLabelArray) {
  Supervision s = Supervision::FromLabelArray({-1, 0, -1, 0, 1});
  EXPECT_EQ(s.kind(), SupervisionKind::kLabels);
  EXPECT_EQ(s.involved_objects(), (std::vector<size_t>{1, 3, 4}));
  EXPECT_EQ(s.constraints().Lookup(1, 3), ConstraintType::kMustLink);
  EXPECT_EQ(s.constraints().Lookup(1, 4), ConstraintType::kCannotLink);
}

TEST(SupervisionTest, FromConstraints) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(1, 4).ok());
  ASSERT_TRUE(cs.AddCannotLink(2, 4).ok());
  Supervision s = Supervision::FromConstraints(cs);
  EXPECT_EQ(s.kind(), SupervisionKind::kConstraints);
  EXPECT_EQ(s.involved_objects(), (std::vector<size_t>{1, 2, 4}));
  EXPECT_TRUE(s.sparse_labels().empty());
  EXPECT_EQ(s.constraints().size(), 2u);
}

TEST(SupervisionTest, InvolvementMask) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.AddMustLink(0, 3).ok());
  Supervision s = Supervision::FromConstraints(cs);
  EXPECT_EQ(s.InvolvementMask(5),
            (std::vector<bool>{true, false, false, true, false}));
}

TEST(SupervisionTest, UnsortedLabeledObjectsAreSorted) {
  Dataset data = TinyData();
  Supervision s = Supervision::FromLabels(data, {4, 0, 2});
  EXPECT_EQ(s.involved_objects(), (std::vector<size_t>{0, 2, 4}));
}

}  // namespace
}  // namespace cvcp
