#ifndef CVCP_TESTS_SERVICE_TEST_UTIL_H_
#define CVCP_TESTS_SERVICE_TEST_UTIL_H_

// Shared fixtures for the Service* suites: a scratch directory tree with
// a *short* socket path (AF_UNIX caps sun_path around 108 bytes, so the
// gtest scratch dir — which nests deeply under some runners — is unsafe;
// mkdtemp under /tmp is not), a small fast job spec, and a Gate that
// parks executor threads deterministically through the server's
// before_job_hook (no sleeps — the admission and fault tests control
// exactly when a job may proceed).

#include <stdlib.h>

#include <string>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/job.h"
#include "service/server.h"

namespace cvcp {

struct ServiceScratch {
  std::string base;
  std::string socket;
  std::string results;
  std::string store;
};

inline ServiceScratch MakeServiceScratch() {
  char tmpl[] = "/tmp/cvcp_svc.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  CVCP_CHECK(dir != nullptr);
  ServiceScratch scratch;
  scratch.base = dir;
  scratch.socket = scratch.base + "/sock";
  scratch.results = scratch.base + "/results";
  scratch.store = scratch.base + "/store";
  return scratch;
}

/// A small job that exercises the full pipeline in milliseconds: Iris,
/// FOSC-OPTICSDend, Scenario II, a 3-value MinPts grid.
inline JobSpec SmallJobSpec() {
  JobSpec spec;
  spec.dataset = "iris";
  spec.clusterer = "fosc";
  spec.scenario = SupervisionKind::kConstraints;
  spec.param_grid = {3, 6, 9};
  spec.n_folds = 3;
  return spec;
}

inline ServerConfig ScratchServerConfig(const ServiceScratch& scratch) {
  ServerConfig config;
  config.socket_path = scratch.socket;
  config.results_dir = scratch.results;
  config.store_dir = scratch.store;
  return config;
}

/// Parks threads until released. Jobs whose hook calls Enter() block on
/// the gate; the test observes how many are parked, does its asserts,
/// and releases them — all condition-variable-driven, no timing.
class Gate {
 public:
  /// Called from the server's before_job_hook: registers as parked,
  /// blocks until Release().
  void Enter() {
    MutexLock lock(&mu_);
    ++parked_;
    cv_.NotifyAll();
    while (!released_) cv_.Wait(&mu_);
  }

  /// Blocks until at least `count` threads are parked in Enter().
  void AwaitParked(int count) {
    MutexLock lock(&mu_);
    while (parked_ < count) cv_.Wait(&mu_);
  }

  void Release() {
    {
      MutexLock lock(&mu_);
      released_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int parked_ GUARDED_BY(mu_) = 0;
  bool released_ GUARDED_BY(mu_) = false;
};

}  // namespace cvcp

#endif  // CVCP_TESTS_SERVICE_TEST_UTIL_H_
