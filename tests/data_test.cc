#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/iris.h"
#include "data/paper_suites.h"
#include "eval/external_measures.h"

namespace cvcp {
namespace {

TEST(IrisTest, ShapeAndClasses) {
  Dataset iris = MakeIris();
  EXPECT_EQ(iris.size(), 150u);
  EXPECT_EQ(iris.dims(), 4u);
  EXPECT_EQ(iris.NumClasses(), 3);
  EXPECT_EQ(iris.ClassSizes(), (std::vector<size_t>{50, 50, 50}));
}

TEST(IrisTest, KnownRows) {
  Dataset iris = MakeIris();
  // First setosa row.
  EXPECT_DOUBLE_EQ(iris.points().At(0, 0), 5.1);
  EXPECT_DOUBLE_EQ(iris.points().At(0, 3), 0.2);
  // First versicolor row (index 50).
  EXPECT_DOUBLE_EQ(iris.points().At(50, 0), 7.0);
  EXPECT_DOUBLE_EQ(iris.points().At(50, 2), 4.7);
  // First virginica row (index 100).
  EXPECT_DOUBLE_EQ(iris.points().At(100, 2), 6.0);
  EXPECT_DOUBLE_EQ(iris.points().At(100, 3), 2.5);
}

TEST(IrisTest, SetosaIsLinearlySeparableByPetalLength) {
  Dataset iris = MakeIris();
  // Classic property: every setosa petal length < every other petal length.
  double setosa_max = 0.0, others_min = 1e9;
  for (size_t i = 0; i < 150; ++i) {
    const double petal = iris.points().At(i, 2);
    if (iris.label(i) == 0) {
      setosa_max = std::max(setosa_max, petal);
    } else {
      others_min = std::min(others_min, petal);
    }
  }
  EXPECT_LT(setosa_max, others_min);
}

TEST(IrisTest, VersicolorVirginicaOverlap) {
  // The two non-setosa classes are not separable by any single attribute:
  // k-means with k=3 cannot reach a near-perfect ARI.
  Dataset iris = MakeIris();
  Rng rng(1);
  KMeansConfig config;
  config.k = 3;
  config.n_init = 10;
  auto result = RunKMeans(iris.points(), config, &rng);
  ASSERT_TRUE(result.ok());
  const double ari = AdjustedRandIndex(iris.labels(), result->clustering);
  EXPECT_GT(ari, 0.5);
  EXPECT_LT(ari, 0.95);
}

TEST(GeneratorTest, GaussianMixtureShapes) {
  Rng rng(2);
  std::vector<GaussianClusterSpec> specs(2);
  specs[0].mean = {0.0, 0.0, 0.0};
  specs[0].stddevs = {1.0};
  specs[0].size = 30;
  specs[1].mean = {10.0, 10.0, 10.0};
  specs[1].stddevs = {0.5, 1.0, 2.0};
  specs[1].size = 20;
  Dataset data = MakeGaussianMixture("gm", specs, &rng);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.dims(), 3u);
  EXPECT_EQ(data.ClassSizes(), (std::vector<size_t>{30, 20}));
}

TEST(GeneratorTest, BlobsSeparationControlsDifficulty) {
  Rng rng_far(3), rng_near(3);
  Dataset far = MakeBlobs("far", 3, 30, 2, 50.0, 1.0, &rng_far);
  Dataset near = MakeBlobs("near", 3, 30, 2, 2.0, 1.0, &rng_near);
  Rng km_rng(4);
  KMeansConfig config;
  config.k = 3;
  auto far_result = RunKMeans(far.points(), config, &km_rng);
  auto near_result = RunKMeans(near.points(), config, &km_rng);
  ASSERT_TRUE(far_result.ok());
  ASSERT_TRUE(near_result.ok());
  EXPECT_GT(AdjustedRandIndex(far.labels(), far_result->clustering),
            AdjustedRandIndex(near.labels(), near_result->clustering));
}

TEST(GeneratorTest, TwoMoonsNotLinearlyClusterable) {
  Rng rng(5);
  Dataset moons = MakeTwoMoons("moons", 100, 0.05, &rng);
  EXPECT_EQ(moons.size(), 200u);
  EXPECT_EQ(moons.NumClasses(), 2);
  // k-means fails on moons (that is their purpose).
  Rng km_rng(6);
  KMeansConfig config;
  config.k = 2;
  auto result = RunKMeans(moons.points(), config, &km_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(AdjustedRandIndex(moons.labels(), result->clustering), 0.7);
}

TEST(GeneratorTest, RingsRadiiRespected) {
  Rng rng(7);
  Dataset rings = MakeRings("rings", {1.0, 5.0}, 50, 0.05, &rng);
  EXPECT_EQ(rings.size(), 100u);
  for (size_t i = 0; i < rings.size(); ++i) {
    const double r = std::hypot(rings.points().At(i, 0),
                                rings.points().At(i, 1));
    const double target = rings.label(i) == 0 ? 1.0 : 5.0;
    EXPECT_NEAR(r, target, 0.5);
  }
}

TEST(GeneratorTest, ExpressionProfilesPhaseStructure) {
  Rng rng(8);
  Dataset expr =
      MakeExpressionProfiles("expr", {30, 30}, 20, 1.0, 1.0, 0.01, &rng);
  EXPECT_EQ(expr.size(), 60u);
  EXPECT_EQ(expr.dims(), 20u);
  // With fixed amplitude and near-zero noise, profiles within a class are
  // nearly parallel: correlation of two same-class rows >> two cross-class.
  auto row_corr = [&](size_t i, size_t j) {
    double si = 0, sj = 0, sij = 0, sii = 0, sjj = 0;
    for (size_t t = 0; t < 20; ++t) {
      const double a = expr.points().At(i, t);
      const double b = expr.points().At(j, t);
      si += a;
      sj += b;
      sij += a * b;
      sii += a * a;
      sjj += b * b;
    }
    const double n = 20.0;
    const double cov = sij / n - (si / n) * (sj / n);
    const double va = sii / n - (si / n) * (si / n);
    const double vb = sjj / n - (sj / n) * (sj / n);
    return cov / std::sqrt(va * vb);
  };
  EXPECT_GT(row_corr(0, 1), 0.9);    // same class
  EXPECT_LT(row_corr(0, 35), 0.5);   // phase-shifted class
}

TEST(PaperSuiteTest, AloiCollectionShape) {
  std::vector<Dataset> aloi = MakeAloiK5Collection(99, 5);
  ASSERT_EQ(aloi.size(), 5u);
  std::set<std::string> names;
  for (const Dataset& d : aloi) {
    EXPECT_EQ(d.size(), 125u);
    EXPECT_EQ(d.dims(), 144u);
    EXPECT_EQ(d.NumClasses(), 5);
    EXPECT_EQ(d.ClassSizes(), (std::vector<size_t>(5, 25)));
    names.insert(d.name());
    // Bounded colour-moment-style features.
    for (size_t i = 0; i < d.size(); ++i) {
      for (size_t m = 0; m < d.dims(); ++m) {
        EXPECT_GE(d.points().At(i, m), 0.0);
        EXPECT_LE(d.points().At(i, m), 1.0);
      }
    }
  }
  EXPECT_EQ(names.size(), 5u);  // distinct datasets
}

TEST(PaperSuiteTest, AloiDeterministicPerIndex) {
  Dataset a = MakeAloiK5Like(7, 3);
  Dataset b = MakeAloiK5Like(7, 3);
  EXPECT_TRUE(a.points() == b.points());
  Dataset c = MakeAloiK5Like(7, 4);
  EXPECT_FALSE(a.points() == c.points());
}

TEST(PaperSuiteTest, SimulatedShapesMatchOriginals) {
  Dataset wine = MakeWineLike(1);
  EXPECT_EQ(wine.size(), 178u);
  EXPECT_EQ(wine.dims(), 13u);
  EXPECT_EQ(wine.NumClasses(), 3);

  Dataset iono = MakeIonosphereLike(1);
  EXPECT_EQ(iono.size(), 351u);
  EXPECT_EQ(iono.dims(), 34u);
  EXPECT_EQ(iono.NumClasses(), 2);
  EXPECT_EQ(iono.ClassSizes(), (std::vector<size_t>{225, 126}));

  Dataset ecoli = MakeEcoliLike(1);
  EXPECT_EQ(ecoli.size(), 336u);
  EXPECT_EQ(ecoli.dims(), 7u);
  EXPECT_EQ(ecoli.NumClasses(), 8);
  EXPECT_EQ(ecoli.ClassSizes(),
            (std::vector<size_t>{143, 77, 52, 35, 20, 5, 2, 2}));

  Dataset zyeast = MakeZyeastLike(1);
  EXPECT_EQ(zyeast.size(), 205u);
  EXPECT_EQ(zyeast.dims(), 20u);
  EXPECT_EQ(zyeast.NumClasses(), 4);
}

TEST(PaperSuiteTest, GridsMatchPaper) {
  EXPECT_EQ(DefaultMinPtsGrid(),
            (std::vector<int>{3, 6, 9, 12, 15, 18, 21, 24}));
  std::vector<int> k5 = MakeKGrid(5);
  EXPECT_EQ(k5.front(), 2);
  EXPECT_EQ(k5.back(), 10);
  EXPECT_EQ(MakeKGrid(2).back(), 7);
  EXPECT_EQ(MakeKGrid(20).back(), 12);  // capped
}

TEST(PaperSuiteTest, SuiteHasFiveDatasetsInPaperOrder) {
  std::vector<SuiteEntry> suite = MakePaperSuite(5);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].data.name(), "Iris");
  EXPECT_EQ(suite[1].data.name(), "Wine-like");
  EXPECT_EQ(suite[2].data.name(), "Ionosphere-like");
  EXPECT_EQ(suite[3].data.name(), "Ecoli-like");
  EXPECT_EQ(suite[4].data.name(), "Zyeast-like");
  for (const SuiteEntry& e : suite) {
    EXPECT_FALSE(e.minpts_grid.empty());
    EXPECT_FALSE(e.k_grid.empty());
  }
}

}  // namespace
}  // namespace cvcp
