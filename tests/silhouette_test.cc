#include "cluster/silhouette.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

/// Naive per-object rescan silhouette — the pre-optimization
/// implementation, kept verbatim as the bitwise reference for the
/// group-sum single-pass rewrite in silhouette.cc.
double ReferenceSilhouette(const Matrix& points, const Clustering& clustering,
                           Metric metric = Metric::kEuclidean) {
  const size_t n = points.rows();
  const std::vector<std::vector<size_t>> groups = clustering.Groups();
  if (groups.size() < 2) return std::numeric_limits<double>::quiet_NaN();
  std::vector<int> group_of(n, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t o : groups[g]) group_of[o] = static_cast<int>(g);
  }
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    const int gi = group_of[i];
    if (gi < 0) continue;
    ++counted;
    if (groups[static_cast<size_t>(gi)].size() == 1) continue;
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (size_t g = 0; g < groups.size(); ++g) {
      double sum = 0.0;
      size_t cnt = 0;
      for (size_t o : groups[g]) {
        if (o == i) continue;
        sum += Distance(points.Row(i), points.Row(o), metric);
        ++cnt;
      }
      if (cnt == 0) continue;
      const double mean = sum / static_cast<double>(cnt);
      if (static_cast<int>(g) == gi) {
        a = mean;
      } else {
        b = std::min(b, mean);
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  if (counted == 0) return std::numeric_limits<double>::quiet_NaN();
  return total / static_cast<double>(counted);
}

TEST(SilhouetteTest, HandComputedTwoClusters) {
  // Points: {0}, {1} in cluster 0; {10}, {11} in cluster 1 (1-d).
  Matrix points = Matrix::FromRows({{0}, {1}, {10}, {11}});
  Clustering c({0, 0, 1, 1});
  // For point 0: a = 1, b = (10+11)/2 = 10.5, s = (10.5-1)/10.5.
  // Symmetric for the others with b = 9.5 or 10.5.
  const double s0 = (10.5 - 1.0) / 10.5;
  const double s1 = (9.5 - 1.0) / 9.5;
  const double expected = 0.5 * (s0 + s1);
  EXPECT_NEAR(SilhouetteCoefficient(points, c), expected, 1e-12);
}

TEST(SilhouetteTest, PerfectSeparationNearOne) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 2, 30, 2, 100.0, 0.5, &rng);
  Clustering c(data.labels());
  EXPECT_GT(SilhouetteCoefficient(data.points(), c), 0.95);
}

TEST(SilhouetteTest, RandomAssignmentNearZeroOrNegative) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 1, 60, 2, 1.0, 1.0, &rng);
  std::vector<int> random_assign(60);
  for (auto& a : random_assign) a = static_cast<int>(rng.Index(3));
  Clustering c(random_assign);
  EXPECT_LT(SilhouetteCoefficient(data.points(), c), 0.2);
}

TEST(SilhouetteTest, UndefinedForSingleCluster) {
  Matrix points = Matrix::FromRows({{0}, {1}, {2}});
  Clustering c({0, 0, 0});
  EXPECT_TRUE(std::isnan(SilhouetteCoefficient(points, c)));
}

TEST(SilhouetteTest, NoiseIgnored) {
  Matrix points = Matrix::FromRows({{0}, {1}, {10}, {11}, {500}});
  Clustering with_noise({0, 0, 1, 1, kNoise});
  Clustering without({0, 0, 1, 1});
  Matrix first4 = Matrix::FromRows({{0}, {1}, {10}, {11}});
  EXPECT_NEAR(SilhouetteCoefficient(points, with_noise),
              SilhouetteCoefficient(first4, without), 1e-12);
}

TEST(SilhouetteTest, SingletonClusterContributesZero) {
  // Cluster 1 is a singleton: s = 0 by convention; it still counts in the
  // denominator.
  Matrix points = Matrix::FromRows({{0}, {1}, {100}});
  Clustering c({0, 0, 1});
  // Points 0,1: a = 1, b = 100 or 99 -> s ~= 0.99; point 2: s = 0.
  const double s0 = (100.0 - 1.0) / 100.0;
  const double s1 = (99.0 - 1.0) / 99.0;
  EXPECT_NEAR(SilhouetteCoefficient(points, c), (s0 + s1 + 0.0) / 3.0,
              1e-12);
}

TEST(SilhouetteTest, DistanceMatrixVariantAgrees) {
  Rng rng(3);
  Dataset data = MakeBlobs("blobs", 3, 15, 3, 10.0, 1.0, &rng);
  Clustering c(data.labels());
  const double direct = SilhouetteCoefficient(data.points(), c);
  const double via_dm = SilhouetteCoefficient(
      DistanceMatrix::Compute(data.points(), Metric::kEuclidean), c);
  EXPECT_NEAR(direct, via_dm, 1e-12);
}

TEST(SilhouetteTest, GroupSumRewriteBitIdenticalToRescan) {
  // The single-pass group-sum implementation claims bitwise equality with
  // the naive per-object rescan (same summation order, argument-symmetric
  // metrics). Pin it on irregular data with noise, singletons, and
  // duplicate points, under every metric.
  Rng rng(71);
  Dataset data = MakeBlobs("pin", 4, 20, 3, 8.0, 2.0, &rng);
  std::vector<int> assignment = data.labels();
  ASSERT_EQ(assignment.size(), 80u);
  // Sprinkle noise, a singleton cluster, and an imbalanced relabel.
  assignment[3] = kNoise;
  assignment[17] = kNoise;
  assignment[41] = 7;  // singleton cluster id
  for (size_t i = 60; i < 70 && i < assignment.size(); ++i) {
    assignment[i] = 0;
  }
  Clustering clustering(assignment);
  for (Metric metric : {Metric::kEuclidean, Metric::kSquaredEuclidean,
                        Metric::kManhattan, Metric::kCosine}) {
    const double fast =
        SilhouetteCoefficient(data.points(), clustering, metric);
    const double reference =
        ReferenceSilhouette(data.points(), clustering, metric);
    EXPECT_EQ(std::bit_cast<uint64_t>(fast),
              std::bit_cast<uint64_t>(reference))
        << "metric " << static_cast<int>(metric);
  }
  // And the DistanceMatrix overload against the same reference.
  const double via_dm = SilhouetteCoefficient(
      DistanceMatrix::Compute(data.points(), Metric::kEuclidean), clustering);
  EXPECT_EQ(std::bit_cast<uint64_t>(via_dm),
            std::bit_cast<uint64_t>(
                ReferenceSilhouette(data.points(), clustering)));
}

TEST(SilhouetteTest, GroupSumRewriteBitIdenticalOnRandomClusterings) {
  Rng rng(72);
  Dataset data = MakeBlobs("rand", 3, 15, 2, 5.0, 1.5, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> assignment(data.size());
    for (auto& a : assignment) {
      const size_t draw = rng.Index(5);
      a = draw == 4 ? kNoise : static_cast<int>(draw);
    }
    Clustering clustering(assignment);
    const double fast = SilhouetteCoefficient(data.points(), clustering);
    const double reference = ReferenceSilhouette(data.points(), clustering);
    EXPECT_EQ(std::bit_cast<uint64_t>(fast),
              std::bit_cast<uint64_t>(reference))
        << "trial " << trial;
  }
}

TEST(SimplifiedSilhouetteTest, TracksExactOnSeparatedData) {
  Rng rng(4);
  std::vector<GaussianClusterSpec> specs(3);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {50.0, 0.0};
  specs[2].mean = {0.0, 50.0};
  for (auto& s : specs) {
    s.stddevs = {1.0};
    s.size = 20;
  }
  Dataset data = MakeGaussianMixture("separated", specs, &rng);
  Clustering c(data.labels());
  const double exact = SilhouetteCoefficient(data.points(), c);
  const double simplified = SimplifiedSilhouette(data.points(), c);
  EXPECT_GT(simplified, 0.9);
  EXPECT_NEAR(simplified, exact, 0.1);
}

TEST(SimplifiedSilhouetteTest, UndefinedForSingleCluster) {
  Matrix points = Matrix::FromRows({{0}, {1}});
  Clustering c({0, 0});
  EXPECT_TRUE(std::isnan(SimplifiedSilhouette(points, c)));
}

}  // namespace
}  // namespace cvcp
