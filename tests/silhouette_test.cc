#include "cluster/silhouette.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

TEST(SilhouetteTest, HandComputedTwoClusters) {
  // Points: {0}, {1} in cluster 0; {10}, {11} in cluster 1 (1-d).
  Matrix points = Matrix::FromRows({{0}, {1}, {10}, {11}});
  Clustering c({0, 0, 1, 1});
  // For point 0: a = 1, b = (10+11)/2 = 10.5, s = (10.5-1)/10.5.
  // Symmetric for the others with b = 9.5 or 10.5.
  const double s0 = (10.5 - 1.0) / 10.5;
  const double s1 = (9.5 - 1.0) / 9.5;
  const double expected = 0.5 * (s0 + s1);
  EXPECT_NEAR(SilhouetteCoefficient(points, c), expected, 1e-12);
}

TEST(SilhouetteTest, PerfectSeparationNearOne) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 2, 30, 2, 100.0, 0.5, &rng);
  Clustering c(data.labels());
  EXPECT_GT(SilhouetteCoefficient(data.points(), c), 0.95);
}

TEST(SilhouetteTest, RandomAssignmentNearZeroOrNegative) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 1, 60, 2, 1.0, 1.0, &rng);
  std::vector<int> random_assign(60);
  for (auto& a : random_assign) a = static_cast<int>(rng.Index(3));
  Clustering c(random_assign);
  EXPECT_LT(SilhouetteCoefficient(data.points(), c), 0.2);
}

TEST(SilhouetteTest, UndefinedForSingleCluster) {
  Matrix points = Matrix::FromRows({{0}, {1}, {2}});
  Clustering c({0, 0, 0});
  EXPECT_TRUE(std::isnan(SilhouetteCoefficient(points, c)));
}

TEST(SilhouetteTest, NoiseIgnored) {
  Matrix points = Matrix::FromRows({{0}, {1}, {10}, {11}, {500}});
  Clustering with_noise({0, 0, 1, 1, kNoise});
  Clustering without({0, 0, 1, 1});
  Matrix first4 = Matrix::FromRows({{0}, {1}, {10}, {11}});
  EXPECT_NEAR(SilhouetteCoefficient(points, with_noise),
              SilhouetteCoefficient(first4, without), 1e-12);
}

TEST(SilhouetteTest, SingletonClusterContributesZero) {
  // Cluster 1 is a singleton: s = 0 by convention; it still counts in the
  // denominator.
  Matrix points = Matrix::FromRows({{0}, {1}, {100}});
  Clustering c({0, 0, 1});
  // Points 0,1: a = 1, b = 100 or 99 -> s ~= 0.99; point 2: s = 0.
  const double s0 = (100.0 - 1.0) / 100.0;
  const double s1 = (99.0 - 1.0) / 99.0;
  EXPECT_NEAR(SilhouetteCoefficient(points, c), (s0 + s1 + 0.0) / 3.0,
              1e-12);
}

TEST(SilhouetteTest, DistanceMatrixVariantAgrees) {
  Rng rng(3);
  Dataset data = MakeBlobs("blobs", 3, 15, 3, 10.0, 1.0, &rng);
  Clustering c(data.labels());
  const double direct = SilhouetteCoefficient(data.points(), c);
  const double via_dm = SilhouetteCoefficient(
      DistanceMatrix::Compute(data.points(), Metric::kEuclidean), c);
  EXPECT_NEAR(direct, via_dm, 1e-12);
}

TEST(SimplifiedSilhouetteTest, TracksExactOnSeparatedData) {
  Rng rng(4);
  std::vector<GaussianClusterSpec> specs(3);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {50.0, 0.0};
  specs[2].mean = {0.0, 50.0};
  for (auto& s : specs) {
    s.stddevs = {1.0};
    s.size = 20;
  }
  Dataset data = MakeGaussianMixture("separated", specs, &rng);
  Clustering c(data.labels());
  const double exact = SilhouetteCoefficient(data.points(), c);
  const double simplified = SimplifiedSilhouette(data.points(), c);
  EXPECT_GT(simplified, 0.9);
  EXPECT_NEAR(simplified, exact, 0.1);
}

TEST(SimplifiedSilhouetteTest, UndefinedForSingleCluster) {
  Matrix points = Matrix::FromRows({{0}, {1}});
  Clustering c({0, 0});
  EXPECT_TRUE(std::isnan(SimplifiedSilhouette(points, c)));
}

}  // namespace
}  // namespace cvcp
