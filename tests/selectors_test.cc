#include "core/selectors.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "cluster/silhouette.h"
#include "common/rng.h"
#include "data/generators.h"

namespace cvcp {
namespace {

TEST(SelectBySilhouetteTest, PicksTrueKOnSeparatedBlobs) {
  Rng rng(1);
  Dataset data = MakeBlobs("blobs", 3, 30, 2, 40.0, 0.8, &rng);
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  KMeansClusterer clusterer;
  std::vector<int> grid = {2, 3, 4, 5, 6};
  auto sel = SelectBySilhouette(data, supervision, clusterer, grid, &rng);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->best_param, 3);
  EXPECT_GT(sel->best_silhouette, 0.7);
  EXPECT_EQ(sel->silhouettes.size(), 5u);
  EXPECT_EQ(sel->best_clustering.NumClusters(), 3);
}

TEST(SelectBySilhouetteTest, EmptyGridRejected) {
  Rng rng(2);
  Dataset data = MakeBlobs("blobs", 2, 10, 2, 10.0, 1.0, &rng);
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  KMeansClusterer clusterer;
  auto sel = SelectBySilhouette(data, supervision, clusterer, {}, &rng);
  EXPECT_EQ(sel.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectBySilhouetteTest, SkipsUndefinedSilhouettes) {
  Rng rng(3);
  Dataset data = MakeBlobs("blobs", 2, 15, 2, 20.0, 1.0, &rng);
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  KMeansClusterer clusterer;
  // k=1 yields an undefined silhouette; selection must still succeed.
  std::vector<int> grid = {1, 2};
  auto sel = SelectBySilhouette(data, supervision, clusterer, grid, &rng);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->best_param, 2);
  EXPECT_TRUE(std::isnan(sel->silhouettes[0]));
}

TEST(SelectBySilhouetteTest, ForksByGridIndexMatchingTheHarnessSweep) {
  Rng data_rng(5);
  Dataset data = MakeBlobs("blobs", 3, 25, 2, 30.0, 1.0, &data_rng);
  Supervision supervision = Supervision::FromConstraints(ConstraintSet{});
  KMeansClusterer clusterer;
  // Duplicates and unsorted entries on purpose: forking by grid *value*
  // used to give duplicate entries identical streams and disagree with the
  // harness sweep, which forks by grid index.
  std::vector<int> grid = {4, 2, 3, 2};
  Rng sel_rng(42);
  auto sel = SelectBySilhouette(data, supervision, clusterer, grid, &sel_rng);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->silhouettes.size(), grid.size());

  // The harness's full-supervision sweep: same rng seed, fork by index.
  // Every per-position silhouette must agree bitwise.
  for (size_t gi = 0; gi < grid.size(); ++gi) {
    Rng run_rng = Rng(42).Fork(gi);
    auto clustering =
        clusterer.Cluster(data, supervision, grid[gi], &run_rng);
    ASSERT_TRUE(clustering.ok()) << "grid index " << gi;
    const double sil =
        SilhouetteCoefficient(data.points(), clustering.value());
    EXPECT_EQ(std::bit_cast<uint64_t>(sil),
              std::bit_cast<uint64_t>(sel->silhouettes[gi]))
        << "grid index " << gi;
  }
}

TEST(ExpectedQualityTest, MeanOverDefinedEntries) {
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(ExpectedQuality(std::vector<double>{0.2, 0.4, 0.6}), 0.4);
  EXPECT_DOUBLE_EQ(ExpectedQuality(std::vector<double>{0.5, nan, 0.7}), 0.6);
  EXPECT_TRUE(std::isnan(ExpectedQuality(std::vector<double>{nan, nan})));
  EXPECT_TRUE(std::isnan(ExpectedQuality(std::vector<double>{})));
}

TEST(OracleIndexTest, MaxWithNaNs) {
  const double nan = std::nan("");
  EXPECT_EQ(OracleIndex(std::vector<double>{0.2, 0.9, 0.5}), 1);
  EXPECT_EQ(OracleIndex(std::vector<double>{nan, 0.1, nan}), 1);
  EXPECT_EQ(OracleIndex(std::vector<double>{nan, nan}), -1);
  EXPECT_EQ(OracleIndex(std::vector<double>{}), -1);
}

}  // namespace
}  // namespace cvcp
