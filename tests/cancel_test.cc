// Cooperative cancellation at the engine level:
//
//   * token semantics — a default token never fires and costs a null
//     check; a fired source reports kCancelled; an expired deadline
//     reports kDeadlineExceeded; when both fire, cancel wins (pinned so
//     the raced status is deterministic);
//   * ParallelFor stops claiming work once the context's token fires —
//     a pre-cancelled fan-out executes nothing on both the serial and
//     the pooled path;
//   * RunJob fails promptly (kCancelled / kDeadlineExceeded) without
//     publishing anything, and a rerun of the same spec — over the same
//     shared DatasetCache the cancelled attempt touched — is
//     byte-identical to a run that was never cancelled, for thread
//     widths 1, 2, and 8. Cancellation changes *whether* a run
//     completes, never the bytes of one that does.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/parallel.h"
#include "core/dataset_cache.h"
#include "core/job.h"
#include "service/dataset_resolver.h"
#include "tests/service_test_util.h"

namespace cvcp {
namespace {

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.Cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, RequestCancelFires) {
  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.CanBeCancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(source.CancelRequested());

  source.RequestCancel();
  EXPECT_TRUE(source.CancelRequested());
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineFires) {
  CancelSource source;
  CancelToken token = source.token();
  source.SetDeadlineAfterMs(0);  // already expired
  EXPECT_TRUE(source.DeadlineExpired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FarDeadlineDoesNotFire) {
  CancelSource source;
  source.SetDeadlineAfterMs(1000 * 60 * 60);  // one hour
  EXPECT_FALSE(source.DeadlineExpired());
  EXPECT_TRUE(source.token().Check().ok());
}

TEST(CancelTokenTest, HugeDeadlineSaturatesToNoDeadline) {
  // deadline_ms arrives as a client-controlled u64 off the wire; a value
  // too large to represent as steady-clock nanoseconds must behave as
  // "effectively no deadline", not overflow (UB) into an
  // already-expired one. Under UBSan the unsaturated arithmetic traps.
  for (uint64_t ms : {std::numeric_limits<uint64_t>::max(),
                      std::numeric_limits<uint64_t>::max() / 1000000,
                      uint64_t{1} << 53}) {
    CancelSource source;
    source.SetDeadlineAfterMs(ms);
    EXPECT_FALSE(source.DeadlineExpired()) << "ms=" << ms;
    EXPECT_TRUE(source.token().Check().ok()) << "ms=" << ms;
  }
}

TEST(CancelTokenTest, CancelBeatsDeadline) {
  // When both an explicit cancel and an expired deadline are observable,
  // the status is pinned to kCancelled so racing the two cannot make a
  // run's failure code flap.
  CancelSource source;
  source.SetDeadlineAfterMs(0);
  source.RequestCancel();
  EXPECT_EQ(source.token().Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, TokensShareOneState) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = source.token();
  EXPECT_TRUE(a == b);
  source.RequestCancel();
  EXPECT_TRUE(a.Cancelled());
  EXPECT_TRUE(b.Cancelled());
}

TEST(CancelParallelForTest, PreCancelledExecutesNothingSerial) {
  CancelSource source;
  source.RequestCancel();
  ExecutionContext exec;
  exec.threads = 1;
  exec.cancel = source.token();
  std::atomic<size_t> executed{0};
  // determinism: reduction(cancel-test-executed-count)
  ParallelFor(exec, 1000, [&](size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 0u);
}

TEST(CancelParallelForTest, PreCancelledExecutesNothingPooled) {
  CancelSource source;
  source.RequestCancel();
  ExecutionContext exec;
  exec.threads = 4;
  exec.cancel = source.token();
  std::atomic<size_t> executed{0};
  // determinism: reduction(cancel-test-executed-count)
  ParallelFor(exec, 1000, [&](size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 0u);
}

TEST(CancelParallelForTest, MidFlightCancelStopsClaiming) {
  // Fire the token from inside iteration 0 (the serial path claims in
  // order): every later index must be skipped.
  CancelSource source;
  ExecutionContext exec;
  exec.threads = 1;
  exec.cancel = source.token();
  std::atomic<size_t> executed{0};
  // determinism: reduction(cancel-test-executed-count)
  ParallelFor(exec, 1000, [&](size_t i) {
    if (i == 0) source.RequestCancel();
    executed.fetch_add(1);
  });
  EXPECT_EQ(executed.load(), 1u);
}

TEST(CancelJobTest, PreCancelledJobFailsWithoutRunning) {
  DatasetResolver resolver;
  auto data = resolver.Resolve(SmallJobSpec());
  ASSERT_TRUE(data.ok());

  CancelSource source;
  source.RequestCancel();
  JobContext context;
  context.exec.cancel = source.token();
  auto report = RunJob(**data, SmallJobSpec(), context);
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
}

TEST(CancelJobTest, ExpiredDeadlineFailsJob) {
  DatasetResolver resolver;
  auto data = resolver.Resolve(SmallJobSpec());
  ASSERT_TRUE(data.ok());

  CancelSource source;
  source.SetDeadlineAfterMs(0);
  JobContext context;
  context.exec.cancel = source.token();
  auto report = RunJob(**data, SmallJobSpec(), context);
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelJobTest, RerunAfterCancelIsByteIdenticalAcrossWidths) {
  const JobSpec spec = SmallJobSpec();
  DatasetResolver resolver;
  auto data = resolver.Resolve(spec);
  ASSERT_TRUE(data.ok());

  // Reference: a clean run that never saw a token.
  std::string reference;
  {
    JobContext context;
    context.exec.threads = 1;
    auto report = RunJob(**data, spec, context);
    ASSERT_TRUE(report.ok());
    reference = EncodeCvcpReport(report.value());
  }

  for (int threads : {1, 2, 8}) {
    // The cancelled attempt and the rerun share one compute cache, so
    // anything the doomed attempt warmed (distances are computed
    // token-free precisely for this) is what the rerun reads.
    DatasetCache cache((*data)->points());
    {
      CancelSource source;
      source.SetDeadlineAfterMs(0);
      JobContext context;
      context.cache = &cache;
      context.exec.threads = threads;
      context.exec.cancel = source.token();
      auto doomed = RunJob(**data, spec, context);
      ASSERT_FALSE(doomed.ok());
      EXPECT_EQ(doomed.status().code(), StatusCode::kDeadlineExceeded);
    }
    JobContext context;
    context.cache = &cache;
    context.exec.threads = threads;
    auto rerun = RunJob(**data, spec, context);
    ASSERT_TRUE(rerun.ok()) << "threads=" << threads;
    EXPECT_EQ(EncodeCvcpReport(rerun.value()), reference)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cvcp
