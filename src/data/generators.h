#ifndef CVCP_DATA_GENERATORS_H_
#define CVCP_DATA_GENERATORS_H_

/// \file
/// Synthetic dataset generators. Two families:
///  * convex (Gaussian mixtures, with controllable separation, imbalance,
///    anisotropy and scale skew) — the regime where k-means-style methods
///    are adequate;
///  * non-convex (moons, rings, elongated rays) — the regime where only
///    density-based methods recover the ground truth, used to reproduce
///    the paper's Zyeast behaviour (negative CVCP correlation for
///    MPCKMeans).

#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"

namespace cvcp {

/// One Gaussian component of a mixture.
struct GaussianClusterSpec {
  std::vector<double> mean;
  /// Per-dimension standard deviations; if a single value is given it is
  /// broadcast to every dimension.
  std::vector<double> stddevs;
  size_t size = 0;
};

/// Samples a labeled mixture; class c = spec index c.
Dataset MakeGaussianMixture(const std::string& name,
                            const std::vector<GaussianClusterSpec>& specs,
                            Rng* rng);

/// k spherical Gaussian blobs with means sampled uniformly in
/// [0, separation]^dims and common standard deviation `spread`.
Dataset MakeBlobs(const std::string& name, int k, size_t per_cluster,
                  size_t dims, double separation, double spread, Rng* rng);

/// Two interleaved half-moons in 2-d with Gaussian jitter `noise`.
Dataset MakeTwoMoons(const std::string& name, size_t per_moon, double noise,
                     Rng* rng);

/// Concentric rings in 2-d (class = ring index) with radial jitter.
Dataset MakeRings(const std::string& name, const std::vector<double>& radii,
                  size_t per_ring, double noise, Rng* rng);

/// Phase-shifted sinusoidal "expression profiles": each class shares a
/// phase, each object gets a random amplitude in [amp_lo, amp_hi], a random
/// baseline and i.i.d. Gaussian noise per condition. Classes are elongated
/// amplitude rays — non-convex for centroid methods, connected for density
/// methods.
Dataset MakeExpressionProfiles(const std::string& name,
                               const std::vector<size_t>& class_sizes,
                               size_t conditions, double amp_lo, double amp_hi,
                               double noise, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_DATA_GENERATORS_H_
