#ifndef CVCP_DATA_IRIS_H_
#define CVCP_DATA_IRIS_H_

/// \file
/// The classic Fisher/Anderson Iris data (UCI ML repository): 150 flowers,
/// 4 measurements (sepal length/width, petal length/width in cm), 3 classes
/// of 50 (setosa, versicolor, virginica). Embedded because the paper's UCI
/// experiments need at least one genuine dataset and Iris is public-domain
/// and tiny. Transcribed offline from the canonical table; the defining
/// structure — setosa linearly separable, versicolor/virginica overlapping —
/// is verified by tests/data_test.cc.

#include "common/dataset.h"

namespace cvcp {

/// Returns the embedded Iris dataset (classes: 0=setosa, 1=versicolor,
/// 2=virginica).
Dataset MakeIris();

}  // namespace cvcp

#endif  // CVCP_DATA_IRIS_H_
