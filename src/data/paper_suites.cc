#include "data/paper_suites.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "data/generators.h"
#include "data/iris.h"

namespace cvcp {

namespace {

/// Clamps every feature into [lo, hi] (bounded descriptors like colour
/// moments).
void ClipFeatures(Dataset* data, double lo, double hi) {
  Matrix points = data->points();
  for (size_t i = 0; i < points.rows(); ++i) {
    for (size_t m = 0; m < points.cols(); ++m) {
      points.At(i, m) = std::clamp(points.At(i, m), lo, hi);
    }
  }
  *data = Dataset(data->name(), std::move(points), data->labels());
}

}  // namespace

Dataset MakeAloiK5Like(uint64_t master_seed, size_t index) {
  Rng rng = Rng(master_seed).Fork(0x41'4C'4F'49ULL).Fork(index);
  constexpr size_t kDims = 144;
  constexpr size_t kPerClass = 25;
  constexpr int kClasses = 5;

  // Difficulty varies across the collection: tight, well-separated image
  // clusters for most sets, genuinely overlapping ones for a minority —
  // mirroring a collection of random 5-category ALOI samples where some
  // category combinations are visually similar. In 144-d, distances
  // concentrate (intra-cluster pairs sit at ~sqrt(2 d) sigma almost
  // surely), so difficulty must be dialed as the *ratio* of inter-centroid
  // distance to that intra-cluster distance: ratio < 1 overlaps, > 1.3 is
  // clean. Centroids are placed along near-orthogonal random directions
  // from the hypercube center, which pins their pairwise distances.
  const double spread = 0.12;
  const double ratio = rng.Uniform(0.40, 1.10);
  const double intra = std::sqrt(2.0 * static_cast<double>(kDims)) * spread;
  const double delta = ratio * intra;

  Matrix points;
  std::vector<int> labels;
  std::vector<double> sub_mean(kDims);
  std::vector<double> row(kDims);
  for (int c = 0; c < kClasses; ++c) {
    // Random direction; in 144-d two such directions are ~orthogonal, so
    // all pairwise centroid distances are ~delta.
    std::vector<double> dir(kDims);
    double norm = 0.0;
    for (double& v : dir) {
      v = rng.Gaussian(0.0, 1.0);
      norm += v * v;
    }
    norm = std::sqrt(norm);
    std::vector<double> mean(kDims);
    for (size_t m = 0; m < kDims; ++m) {
      mean[m] = 0.5 + (delta / std::sqrt(2.0)) * dir[m] / norm;
    }
    const double class_spread = spread * rng.Uniform(0.7, 1.3);
    // Viewing-angle substructure: each object category photographs as 1-3
    // clumps (orientation groups) around the category centroid. Low MinPts
    // fragments these; high MinPts blurs across categories — the lever
    // that makes the MinPts choice matter, as in the real collection.
    const int sub_modes = rng.UniformInt(1, 3);
    for (size_t i = 0; i < kPerClass; ++i) {
      const int mode = static_cast<int>(i) % sub_modes;
      // Deterministic per-mode offset derived from (class, mode).
      Rng mode_rng = rng.Fork(static_cast<uint64_t>(c * 8 + mode));
      for (size_t m = 0; m < kDims; ++m) {
        sub_mean[m] = mean[m] + mode_rng.Gaussian(0.0, 0.6 * class_spread);
      }
      for (size_t m = 0; m < kDims; ++m) {
        row[m] = sub_mean[m] + rng.Gaussian(0.0, class_spread);
      }
      points.AppendRow(row);
      labels.push_back(c);
    }
  }
  Dataset data(Format("ALOI-k5-%03zu", index), std::move(points),
               std::move(labels));
  ClipFeatures(&data, 0.0, 1.0);
  return data;
}

std::vector<Dataset> MakeAloiK5Collection(uint64_t master_seed, size_t count) {
  std::vector<Dataset> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(MakeAloiK5Like(master_seed, i));
  }
  return out;
}

Dataset MakeWineLike(uint64_t seed) {
  Rng rng = Rng(seed).Fork(0x57'49'4E'45ULL);
  constexpr size_t kDims = 13;
  // Per-dimension scales mimicking unstandardized chemistry attributes:
  // most O(1), one O(10), one O(100) (the "proline" effect).
  std::vector<double> scale(kDims, 1.0);
  scale[3] = 20.0;    // alcalinity-like
  scale[4] = 100.0;   // magnesium-like
  scale[12] = 700.0;  // proline-like
  const std::vector<size_t> sizes = {59, 71, 48};

  std::vector<GaussianClusterSpec> specs;
  for (size_t c = 0; c < sizes.size(); ++c) {
    GaussianClusterSpec spec;
    spec.mean.resize(kDims);
    spec.stddevs.resize(kDims);
    for (size_t m = 0; m < kDims; ++m) {
      // Class means differ by ~1.2 sigma in every dimension: overlapping
      // but recoverable with an adapted metric.
      spec.mean[m] = scale[m] * (1.0 + 0.45 * static_cast<double>(c) +
                                 rng.Uniform(-0.1, 0.1));
      spec.stddevs[m] = scale[m] * rng.Uniform(0.25, 0.45);
    }
    spec.size = sizes[c];
    specs.push_back(std::move(spec));
  }
  return MakeGaussianMixture("Wine-like", specs, &rng);
}

Dataset MakeIonosphereLike(uint64_t seed) {
  Rng rng = Rng(seed).Fork(0x49'4F'4E'4FULL);
  // 34 raw attributes but — like the real radar returns — only a handful
  // of *intrinsic* degrees of freedom. Structure lives in a 6-d signal
  // subspace (where density geometry behaves intuitively instead of
  // concentrating); the remaining 28 dims carry small ambient noise.
  constexpr size_t kDims = 34;
  constexpr size_t kSignalDims = 6;
  constexpr double kSigmaGood = 0.15;

  Matrix points;
  std::vector<int> labels;
  std::vector<double> row(kDims);

  auto emit = [&](const std::vector<double>& signal, int label) {
    for (size_t m = 0; m < kSignalDims; ++m) row[m] = signal[m];
    for (size_t m = kSignalDims; m < kDims; ++m) {
      row[m] = rng.Gaussian(0.0, 0.25 * kSigmaGood);
    }
    points.AppendRow(row);
    labels.push_back(label);
  };

  // "Good" returns: one coherent cloud at the origin of the signal space.
  std::vector<double> signal(kSignalDims);
  for (size_t i = 0; i < 225; ++i) {
    for (double& v : signal) v = rng.Gaussian(0.0, kSigmaGood);
    emit(signal, 0);
  }

  // "Bad" returns: four tight modes pressed against the good cloud plus
  // broad scatter across the signal box. Small MinPts keeps the modes as
  // crisp density peaks; as MinPts approaches a mode's population its
  // core distances reach through the good cloud and the structure blurs —
  // the MinPts dependence the paper's curves show.
  std::vector<std::vector<double>> bad_centers;
  for (int mode = 0; mode < 4; ++mode) {
    std::vector<double> c(kSignalDims);
    double norm = 0.0;
    for (double& v : c) {
      v = rng.Gaussian(0.0, 1.0);
      norm += v * v;
    }
    norm = std::sqrt(norm);
    const double radius = kSigmaGood * rng.Uniform(2.6, 3.8);
    for (double& v : c) v = radius * v / norm;
    bad_centers.push_back(std::move(c));
  }
  for (size_t i = 0; i < 126; ++i) {
    if (i < 88) {
      const auto& bc = bad_centers[i % 4];
      for (size_t m = 0; m < kSignalDims; ++m) {
        signal[m] = bc[m] + rng.Gaussian(0.0, 0.55 * kSigmaGood);
      }
    } else {
      for (double& v : signal) {
        v = rng.Uniform(-4.5 * kSigmaGood, 4.5 * kSigmaGood);
      }
    }
    emit(signal, 1);
  }
  return Dataset("Ionosphere-like", std::move(points), std::move(labels));
}

Dataset MakeEcoliLike(uint64_t seed) {
  Rng rng = Rng(seed).Fork(0x45'43'4F'4CULL);
  constexpr size_t kDims = 7;
  const std::vector<size_t> sizes = {143, 77, 52, 35, 20, 5, 2, 2};
  constexpr double kSigma = 0.13;
  // Keep the large localization classes at partial overlap (ratio < 1 of
  // the intra-cluster distance scale) — the real Ecoli classes share
  // attribute ranges, which is what keeps quality near 0.6 and makes the
  // tiny classes effectively unrecoverable.
  const double intra = std::sqrt(2.0 * kDims) * kSigma;

  std::vector<GaussianClusterSpec> specs;
  for (size_t c = 0; c < sizes.size(); ++c) {
    GaussianClusterSpec spec;
    spec.mean.resize(kDims);
    std::vector<double> dir(kDims);
    double norm = 0.0;
    for (double& v : dir) {
      v = rng.Gaussian(0.0, 1.0);
      norm += v * v;
    }
    norm = std::sqrt(norm);
    const double radius = intra * rng.Uniform(0.95, 1.45) / std::sqrt(2.0);
    for (size_t m = 0; m < kDims; ++m) {
      spec.mean[m] = 0.5 + radius * dir[m] / norm;
    }
    double sd = c < 4 ? kSigma * rng.Uniform(0.9, 1.3)
                      : kSigma * rng.Uniform(0.5, 0.8);
    if (c >= 5) {
      // Embed the rare classes inside class 0's cloud.
      for (size_t m = 0; m < kDims; ++m) {
        spec.mean[m] = specs[0].mean[m] + rng.Uniform(-0.1, 0.1);
      }
    }
    spec.stddevs = {sd};
    spec.size = sizes[c];
    specs.push_back(std::move(spec));
  }
  return MakeGaussianMixture("Ecoli-like", specs, &rng);
}

Dataset MakeZyeastLike(uint64_t seed) {
  Rng rng = Rng(seed).Fork(0x5A'59'53'54ULL);
  // 4 phase classes, 205 genes total, 20 conditions; amplitudes span
  // [0.6, 3.0] so each class is an elongated ray (non-convex for k-means,
  // connected for density methods).
  return MakeExpressionProfiles("Zyeast-like", {67, 58, 45, 35}, 20, 0.6, 3.0,
                                0.12, &rng);
}

std::vector<int> DefaultMinPtsGrid() { return {3, 6, 9, 12, 15, 18, 21, 24}; }

std::vector<int> MakeKGrid(int num_classes) {
  // Paper: k in [2, M], M a reasonable user-chosen upper bound; Figs. 6/8
  // show M ~= 10 for ALOI (5 classes). Use M = num_classes + 5, in [6, 12].
  const int m = std::clamp(num_classes + 5, 6, 12);
  std::vector<int> grid;
  for (int k = 2; k <= m; ++k) grid.push_back(k);
  return grid;
}

std::vector<SuiteEntry> MakePaperSuite(uint64_t seed) {
  std::vector<SuiteEntry> suite;
  auto add = [&suite](Dataset data) {
    SuiteEntry entry;
    entry.minpts_grid = DefaultMinPtsGrid();
    entry.k_grid = MakeKGrid(data.NumClasses());
    entry.data = std::move(data);
    suite.push_back(std::move(entry));
  };
  add(MakeIris());
  add(MakeWineLike(seed));
  add(MakeIonosphereLike(seed));
  add(MakeEcoliLike(seed));
  add(MakeZyeastLike(seed));
  return suite;
}

}  // namespace cvcp
