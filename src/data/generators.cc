#include "data/generators.h"

#include <cmath>

#include "common/check.h"

namespace cvcp {

Dataset MakeGaussianMixture(const std::string& name,
                            const std::vector<GaussianClusterSpec>& specs,
                            Rng* rng) {
  CVCP_CHECK(!specs.empty());
  const size_t dims = specs.front().mean.size();
  Matrix points;
  std::vector<int> labels;
  for (size_t c = 0; c < specs.size(); ++c) {
    const GaussianClusterSpec& spec = specs[c];
    CVCP_CHECK_EQ(spec.mean.size(), dims);
    CVCP_CHECK(!spec.stddevs.empty());
    std::vector<double> row(dims);
    for (size_t i = 0; i < spec.size; ++i) {
      for (size_t m = 0; m < dims; ++m) {
        const double sd =
            spec.stddevs.size() == 1 ? spec.stddevs[0] : spec.stddevs[m];
        row[m] = rng->Gaussian(spec.mean[m], sd);
      }
      points.AppendRow(row);
      labels.push_back(static_cast<int>(c));
    }
  }
  return Dataset(name, std::move(points), std::move(labels));
}

Dataset MakeBlobs(const std::string& name, int k, size_t per_cluster,
                  size_t dims, double separation, double spread, Rng* rng) {
  CVCP_CHECK_GE(k, 1);
  std::vector<GaussianClusterSpec> specs;
  for (int c = 0; c < k; ++c) {
    GaussianClusterSpec spec;
    spec.mean.resize(dims);
    for (double& m : spec.mean) m = rng->Uniform(0.0, separation);
    spec.stddevs = {spread};
    spec.size = per_cluster;
    specs.push_back(std::move(spec));
  }
  return MakeGaussianMixture(name, specs, rng);
}

Dataset MakeTwoMoons(const std::string& name, size_t per_moon, double noise,
                     Rng* rng) {
  Matrix points;
  std::vector<int> labels;
  for (size_t i = 0; i < per_moon; ++i) {
    const double t = M_PI * rng->NextDouble();
    points.AppendRow(std::vector<double>{
        std::cos(t) + rng->Gaussian(0.0, noise),
        std::sin(t) + rng->Gaussian(0.0, noise)});
    labels.push_back(0);
  }
  for (size_t i = 0; i < per_moon; ++i) {
    const double t = M_PI * rng->NextDouble();
    points.AppendRow(std::vector<double>{
        1.0 - std::cos(t) + rng->Gaussian(0.0, noise),
        0.5 - std::sin(t) + rng->Gaussian(0.0, noise)});
    labels.push_back(1);
  }
  return Dataset(name, std::move(points), std::move(labels));
}

Dataset MakeRings(const std::string& name, const std::vector<double>& radii,
                  size_t per_ring, double noise, Rng* rng) {
  CVCP_CHECK(!radii.empty());
  Matrix points;
  std::vector<int> labels;
  for (size_t r = 0; r < radii.size(); ++r) {
    for (size_t i = 0; i < per_ring; ++i) {
      const double theta = 2.0 * M_PI * rng->NextDouble();
      const double radius = radii[r] + rng->Gaussian(0.0, noise);
      points.AppendRow(std::vector<double>{radius * std::cos(theta),
                                           radius * std::sin(theta)});
      labels.push_back(static_cast<int>(r));
    }
  }
  return Dataset(name, std::move(points), std::move(labels));
}

Dataset MakeExpressionProfiles(const std::string& name,
                               const std::vector<size_t>& class_sizes,
                               size_t conditions, double amp_lo, double amp_hi,
                               double noise, Rng* rng) {
  CVCP_CHECK(!class_sizes.empty());
  CVCP_CHECK_GE(conditions, 2u);
  Matrix points;
  std::vector<int> labels;
  std::vector<double> row(conditions);
  for (size_t c = 0; c < class_sizes.size(); ++c) {
    // Classes are *adjacent* phases within one cycle (cell-cycle waves
    // peak in consecutive stages), not opposite ones: profile directions
    // form a tight fan, so the dominant variance direction is amplitude —
    // shared across classes — which is exactly what makes centroid methods
    // carve the data into amplitude bands instead of phase classes.
    const double phase = (M_PI * 0.75) * static_cast<double>(c) /
                         static_cast<double>(class_sizes.size());
    for (size_t g = 0; g < class_sizes[c]; ++g) {
      const double amp = rng->Uniform(amp_lo, amp_hi);
      const double baseline = rng->Uniform(-0.3, 0.3);
      for (size_t t = 0; t < conditions; ++t) {
        const double angle = 2.0 * M_PI * static_cast<double>(t) /
                                 static_cast<double>(conditions) +
                             phase;
        row[t] = amp * std::sin(angle) + baseline + rng->Gaussian(0.0, noise);
      }
      points.AppendRow(row);
      labels.push_back(static_cast<int>(c));
    }
  }
  return Dataset(name, std::move(points), std::move(labels));
}

}  // namespace cvcp
