#ifndef CVCP_DATA_PAPER_SUITES_H_
#define CVCP_DATA_PAPER_SUITES_H_

/// \file
/// Simulated stand-ins for the paper's evaluation datasets (§4.1). The
/// real ALOI image collection, UCI Wine/Ionosphere/Ecoli and the Zyeast
/// gene-expression set are not available offline; each generator below
/// matches its original's object count, dimensionality, class structure
/// and — most importantly — the *clusterability regime* that drives the
/// paper's results (see DESIGN.md §5 for the substitution rationale).
/// Iris is genuine (iris.h).

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"

namespace cvcp {

/// One ALOI-k5-like set: 125 objects, 5 classes x 25, 144 bounded
/// colour-moment-style attributes. `index` selects the collection member;
/// difficulty (cluster spread/overlap) varies deterministically with it.
Dataset MakeAloiK5Like(uint64_t master_seed, size_t index);

/// The whole collection (paper: 100 sets).
std::vector<Dataset> MakeAloiK5Collection(uint64_t master_seed, size_t count);

/// Wine-like: 178 objects, 13 attributes with strongly skewed scales,
/// 3 classes (59/71/48). Convex but scale-distorted: centroid methods with
/// metric learning cope, raw-Euclidean density methods score lower — the
/// paper's Wine inversion.
Dataset MakeWineLike(uint64_t seed);

/// Ionosphere-like: 351 objects, 34 attributes, 2 classes (225 "good"
/// compact vs 126 "bad" diffuse/multi-modal).
Dataset MakeIonosphereLike(uint64_t seed);

/// Ecoli-like: 336 objects, 7 attributes, 8 classes with the original's
/// heavy imbalance (143/77/52/35/20/5/2/2).
Dataset MakeEcoliLike(uint64_t seed);

/// Zyeast-like: 205 genes x 20 conditions, 4 phase classes of sinusoidal
/// expression profiles with widely varying amplitudes — non-convex
/// elongated clusters where k-means mis-models the structure (the paper's
/// negative-correlation case) while density methods excel.
Dataset MakeZyeastLike(uint64_t seed);

/// The paper's parameter grids (§4.1).
std::vector<int> DefaultMinPtsGrid();               ///< {3,6,9,...,24}
std::vector<int> MakeKGrid(int num_classes);        ///< {2..M}, small M

/// One dataset of the evaluation suite with its grids.
struct SuiteEntry {
  Dataset data;
  std::vector<int> minpts_grid;
  std::vector<int> k_grid;
};

/// The five non-ALOI datasets (Iris real, the rest simulated), in the
/// paper's order: Iris, Wine, Ionosphere, Ecoli, Zyeast.
std::vector<SuiteEntry> MakePaperSuite(uint64_t seed);

}  // namespace cvcp

#endif  // CVCP_DATA_PAPER_SUITES_H_
