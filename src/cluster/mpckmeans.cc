#include "cluster/mpckmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/distance.h"
#include "common/strings.h"
#include "constraints/transitive_closure.h"

namespace cvcp {

namespace {

constexpr double kMinWeight = 1e-9;
constexpr double kMaxWeight = 1e9;

struct Pair {
  size_t other;
  double weight;
};

/// Constraint adjacency: for each object, the must-link and cannot-link
/// partners with their violation weights.
struct Adjacency {
  std::vector<std::vector<Pair>> must;
  std::vector<std::vector<Pair>> cannot;
};

Adjacency BuildAdjacency(const ConstraintSet& constraints, size_t n,
                         const MpckMeansConfig& config) {
  Adjacency adj;
  adj.must.resize(n);
  adj.cannot.resize(n);
  for (const Constraint& c : constraints.all()) {
    if (c.type == ConstraintType::kMustLink) {
      adj.must[c.a].push_back({c.b, config.must_link_weight});
      adj.must[c.b].push_back({c.a, config.must_link_weight});
    } else {
      adj.cannot[c.a].push_back({c.b, config.cannot_link_weight});
      adj.cannot[c.b].push_back({c.a, config.cannot_link_weight});
    }
  }
  return adj;
}

/// Per-dimension squared data range: the separable stand-in for the
/// "maximally separated pair" in the cannot-link penalty.
std::vector<double> SquaredRanges(const Matrix& points) {
  const size_t d = points.cols();
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < points.rows(); ++i) {
    auto row = points.Row(i);
    for (size_t m = 0; m < d; ++m) {
      lo[m] = std::min(lo[m], row[m]);
      hi[m] = std::max(hi[m], row[m]);
    }
  }
  std::vector<double> out(d);
  for (size_t m = 0; m < d; ++m) {
    const double r = hi[m] - lo[m];
    out[m] = r * r;
  }
  return out;
}

class MpckState {
 public:
  MpckState(const Matrix& points, const ConstraintSet& constraints,
            const MpckMeansConfig& config)
      : points_(points),
        config_(config),
        n_(points.rows()),
        d_(points.cols()),
        k_(static_cast<size_t>(config.k)),
        adj_(BuildAdjacency(constraints, n_, config)),
        sq_range_(SquaredRanges(points)),
        centroids_(k_, d_),
        weights_(k_, d_, 1.0),
        log_det_(k_, 0.0),
        assignment_(n_, 0) {
    RecomputeMaxSeparations();
  }

  void SetCentroids(Matrix init) { centroids_ = std::move(init); }

  double WeightedDist(std::span<const double> a, std::span<const double> b,
                      size_t cluster) const {
    return WeightedSquaredEuclidean(a, b, weights_.Row(cluster),
                                    config_.kernel);
  }

  /// Cannot-link penalty scale for a cluster: metric-weighted squared
  /// range. The value only changes when the metric weights do (the
  /// M-step), so it is cached per cluster by RecomputeMaxSeparations and
  /// this is an O(1) read inside the per-pair cannot-link loops instead of
  /// an O(d) sum per violated pair.
  double MaxSeparation(size_t cluster) const { return max_sep_[cluster]; }

  /// Cost of putting object i into cluster h given current assignments.
  double AssignmentCost(size_t i, size_t h) const {
    double cost = WeightedDist(points_.Row(i), centroids_.Row(h), h) -
                  log_det_[h];
    for (const Pair& p : adj_.must[i]) {
      const size_t lj = static_cast<size_t>(assignment_[p.other]);
      if (lj != h) {
        // Violated must-link: average of the penalty under both metrics.
        const double f_h = WeightedDist(points_.Row(i), points_.Row(p.other), h);
        const double f_j =
            WeightedDist(points_.Row(i), points_.Row(p.other), lj);
        cost += p.weight * 0.5 * (f_h + f_j);
      }
    }
    for (const Pair& p : adj_.cannot[i]) {
      if (static_cast<size_t>(assignment_[p.other]) == h) {
        // Violated cannot-link: the closer the pair, the larger the penalty.
        const double f =
            WeightedDist(points_.Row(i), points_.Row(p.other), h);
        cost += p.weight * std::max(0.0, MaxSeparation(h) - f);
      }
    }
    return cost;
  }

  /// Greedy ICM assignment pass in the given order. Returns #changes.
  size_t AssignStep(const std::vector<size_t>& order) {
    size_t changes = 0;
    for (size_t i : order) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_h = 0;
      for (size_t h = 0; h < k_; ++h) {
        const double c = AssignmentCost(i, h);
        if (c < best) {
          best = c;
          best_h = h;
        }
      }
      if (assignment_[i] != static_cast<int>(best_h)) {
        assignment_[i] = static_cast<int>(best_h);
        ++changes;
      }
    }
    return changes;
  }

  /// Recomputes centroids; empty clusters are re-seeded at a random point.
  void UpdateCentroids(Rng* rng) {
    Matrix sums(k_, d_, 0.0);
    std::vector<size_t> counts(k_, 0);
    for (size_t i = 0; i < n_; ++i) {
      const size_t h = static_cast<size_t>(assignment_[i]);
      auto row = points_.Row(i);
      auto acc = sums.MutableRow(h);
      for (size_t m = 0; m < d_; ++m) acc[m] += row[m];
      ++counts[h];
    }
    for (size_t h = 0; h < k_; ++h) {
      if (counts[h] == 0) {
        centroids_.SetRow(h, points_.Row(rng->Index(n_)));
        continue;
      }
      auto acc = sums.MutableRow(h);
      for (size_t m = 0; m < d_; ++m) acc[m] /= static_cast<double>(counts[h]);
      centroids_.SetRow(h, sums.Row(h));
    }
  }

  /// Re-estimates diagonal metric weights from scatter + violation terms.
  void UpdateMetrics() {
    if (config_.metric_mode == MetricMode::kNone) return;

    // Per-cluster, per-dimension denominators.
    Matrix denom(k_, d_, 0.0);
    std::vector<double> counts(k_, 0.0);
    for (size_t i = 0; i < n_; ++i) {
      const size_t h = static_cast<size_t>(assignment_[i]);
      auto row = points_.Row(i);
      auto mu = centroids_.Row(h);
      auto acc = denom.MutableRow(h);
      for (size_t m = 0; m < d_; ++m) {
        const double diff = row[m] - mu[m];
        acc[m] += diff * diff;
      }
      counts[h] += 1.0;
    }
    // Violation contributions (each constraint visited once via i < other).
    for (size_t i = 0; i < n_; ++i) {
      const size_t li = static_cast<size_t>(assignment_[i]);
      for (const Pair& p : adj_.must[i]) {
        if (i > p.other) continue;
        const size_t lj = static_cast<size_t>(assignment_[p.other]);
        if (li == lj) continue;
        auto xi = points_.Row(i);
        auto xj = points_.Row(p.other);
        for (size_t m = 0; m < d_; ++m) {
          const double diff = xi[m] - xj[m];
          const double contrib = p.weight * 0.5 * diff * diff;
          denom.At(li, m) += 0.5 * contrib;
          denom.At(lj, m) += 0.5 * contrib;
        }
      }
      for (const Pair& p : adj_.cannot[i]) {
        if (i > p.other) continue;
        const size_t lj = static_cast<size_t>(assignment_[p.other]);
        if (li != lj) continue;
        auto xi = points_.Row(i);
        auto xj = points_.Row(p.other);
        for (size_t m = 0; m < d_; ++m) {
          const double diff = xi[m] - xj[m];
          denom.At(li, m) +=
              p.weight * std::max(0.0, sq_range_[m] - diff * diff);
        }
      }
    }

    if (config_.metric_mode == MetricMode::kSingleDiagonal) {
      // Pool all clusters into one metric.
      std::vector<double> pooled(d_, 0.0);
      double total = 0.0;
      for (size_t h = 0; h < k_; ++h) {
        auto row = denom.Row(h);
        for (size_t m = 0; m < d_; ++m) pooled[m] += row[m];
        total += counts[h];
      }
      for (size_t m = 0; m < d_; ++m) {
        const double w =
            std::clamp(total / std::max(pooled[m], kMinWeight), kMinWeight,
                       kMaxWeight);
        for (size_t h = 0; h < k_; ++h) weights_.At(h, m) = w;
      }
    } else {
      for (size_t h = 0; h < k_; ++h) {
        auto dn = denom.Row(h);
        for (size_t m = 0; m < d_; ++m) {
          weights_.At(h, m) =
              std::clamp(counts[h] / std::max(dn[m], kMinWeight), kMinWeight,
                         kMaxWeight);
        }
      }
    }
    for (size_t h = 0; h < k_; ++h) {
      double ld = 0.0;
      auto w = weights_.Row(h);
      for (size_t m = 0; m < d_; ++m) ld += std::log(w[m]);
      log_det_[h] = ld;
    }
    RecomputeMaxSeparations();
  }

  /// Full objective at the current state.
  double Objective() const {
    double obj = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      const size_t h = static_cast<size_t>(assignment_[i]);
      obj += WeightedDist(points_.Row(i), centroids_.Row(h), h) - log_det_[h];
    }
    for (size_t i = 0; i < n_; ++i) {
      const size_t li = static_cast<size_t>(assignment_[i]);
      for (const Pair& p : adj_.must[i]) {
        if (i > p.other) continue;
        const size_t lj = static_cast<size_t>(assignment_[p.other]);
        if (li == lj) continue;
        const double f_i =
            WeightedDist(points_.Row(i), points_.Row(p.other), li);
        const double f_j =
            WeightedDist(points_.Row(i), points_.Row(p.other), lj);
        obj += p.weight * 0.5 * (f_i + f_j);
      }
      for (const Pair& p : adj_.cannot[i]) {
        if (i > p.other) continue;
        if (static_cast<size_t>(assignment_[p.other]) != li) continue;
        const double f =
            WeightedDist(points_.Row(i), points_.Row(p.other), li);
        obj += p.weight * std::max(0.0, MaxSeparation(li) - f);
      }
    }
    return obj;
  }

  const std::vector<int>& assignment() const { return assignment_; }
  const Matrix& centroids() const { return centroids_; }
  const Matrix& weights() const { return weights_; }
  size_t n() const { return n_; }

 private:
  /// Refreshes the cached per-cluster MaxSeparation values. Same loop,
  /// same summation order as the old per-call computation, so the cached
  /// doubles are bitwise-identical to computing on demand; it just runs
  /// once per M-step instead of once per violated cannot-link pair.
  void RecomputeMaxSeparations() {
    max_sep_.assign(k_, 0.0);
    for (size_t h = 0; h < k_; ++h) {
      double s = 0.0;
      auto w = weights_.Row(h);
      for (size_t m = 0; m < d_; ++m) s += w[m] * sq_range_[m];
      max_sep_[h] = s;
    }
  }

  const Matrix& points_;
  const MpckMeansConfig& config_;
  size_t n_, d_, k_;
  Adjacency adj_;
  std::vector<double> sq_range_;
  Matrix centroids_;
  Matrix weights_;
  std::vector<double> log_det_;
  std::vector<double> max_sep_;  ///< cached MaxSeparation per cluster
  std::vector<int> assignment_;
};

/// Neighborhood-based initialization: centroids of the lambda largest
/// must-link neighborhoods, topped up by D^2-weighted sampling.
Result<Matrix> NeighborhoodInit(const Matrix& points,
                                DistanceKernelPolicy kernel,
                                const ConstraintSet& constraints, int k,
                                Rng* rng) {
  CVCP_ASSIGN_OR_RETURN(ConstraintComponents comps,
                        BuildConstraintComponents(constraints));
  // Only multi-object components are informative neighborhoods.
  std::vector<const std::vector<size_t>*> hoods;
  for (const auto& members : comps.components) {
    if (members.size() >= 2) hoods.push_back(&members);
  }
  std::sort(hoods.begin(), hoods.end(),
            [](const auto* a, const auto* b) { return a->size() > b->size(); });

  const size_t uk = static_cast<size_t>(k);
  Matrix centroids(uk, points.cols());
  size_t filled = std::min(uk, hoods.size());
  for (size_t h = 0; h < filled; ++h) {
    std::vector<double> mean = points.ColumnMeans(*hoods[h]);
    centroids.SetRow(h, mean);
  }
  if (filled < uk) {
    // Top up with D^2 sampling relative to the centroids chosen so far.
    const size_t n = points.rows();
    std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
    if (filled == 0) {
      centroids.SetRow(0, points.Row(rng->Index(n)));
      filled = 1;
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t h = 0; h < filled; ++h) {
        min_d2[i] = std::min(
            min_d2[i], SquaredEuclideanDistance(points.Row(i),
                                                centroids.Row(h), kernel));
      }
    }
    while (filled < uk) {
      double total = 0.0;
      for (double v : min_d2) total += v;
      size_t chosen;
      if (total <= 0.0) {
        chosen = rng->Index(n);
      } else {
        double r = rng->NextDouble() * total;
        chosen = n - 1;
        for (size_t i = 0; i < n; ++i) {
          r -= min_d2[i];
          if (r <= 0.0) {
            chosen = i;
            break;
          }
        }
      }
      centroids.SetRow(filled, points.Row(chosen));
      for (size_t i = 0; i < n; ++i) {
        min_d2[i] =
            std::min(min_d2[i],
                     SquaredEuclideanDistance(points.Row(i),
                                              points.Row(chosen), kernel));
      }
      ++filled;
    }
  }
  return centroids;
}

}  // namespace

Result<MpckMeansResult> RunMpckMeans(const Matrix& points,
                                     const ConstraintSet& constraints,
                                     const MpckMeansConfig& config, Rng* rng) {
  if (config.k < 1) {
    return Status::InvalidArgument(Format("k must be >= 1, got %d", config.k));
  }
  if (static_cast<size_t>(config.k) > points.rows()) {
    return Status::InvalidArgument(
        Format("k=%d exceeds number of points (%zu)", config.k,
               points.rows()));
  }
  if (config.max_iters < 1) {
    return Status::InvalidArgument("max_iters must be >= 1");
  }
  for (const Constraint& c : constraints.all()) {
    if (c.a >= points.rows() || c.b >= points.rows()) {
      return Status::InvalidArgument(
          Format("constraint %s references object beyond dataset size %zu",
                 ConstraintToString(c).c_str(), points.rows()));
    }
  }

  MpckState state(points, constraints, config);
  if (config.neighborhood_init) {
    CVCP_ASSIGN_OR_RETURN(Matrix init,
                          NeighborhoodInit(points, config.kernel, constraints,
                                           config.k, rng));
    state.SetCentroids(std::move(init));
  } else {
    state.SetCentroids(KMeansPlusPlusInit(points, config.k, rng,
                                          config.kernel));
  }

  double prev_obj = std::numeric_limits<double>::infinity();
  double obj = prev_obj;
  int iter = 0;
  bool converged = false;
  for (iter = 0; iter < config.max_iters; ++iter) {
    std::vector<size_t> order = rng->Permutation(state.n());
    const size_t changes = state.AssignStep(order);
    state.UpdateCentroids(rng);
    state.UpdateMetrics();
    obj = state.Objective();
    const bool obj_converged =
        std::isfinite(prev_obj) &&
        std::fabs(prev_obj - obj) <=
            config.tol * std::max(std::fabs(prev_obj), 1.0);
    if (changes == 0 || obj_converged) {
      converged = true;
      ++iter;
      break;
    }
    prev_obj = obj;
  }

  MpckMeansResult result;
  result.clustering = Clustering(state.assignment());
  result.centroids = state.centroids();
  result.metric_weights = state.weights();
  result.objective = obj;
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace cvcp
