#include "cluster/dendrogram.h"

#include <vector>

namespace cvcp {

Dendrogram Dendrogram::FromReachability(const OpticsResult& optics) {
  Dendrogram dg;
  dg.n_ = optics.order.size();
  dg.order_ = optics.order;
  CVCP_CHECK_GE(dg.n_, 1u);
  CVCP_CHECK_EQ(optics.reachability.size(), dg.n_);

  const size_t n = dg.n_;
  dg.nodes_.resize(n);  // leaves first; internal nodes appended
  for (size_t i = 0; i < n; ++i) {
    DendrogramNode& leaf = dg.nodes_[i];
    leaf.begin = i;
    leaf.end = i + 1;
    leaf.height = 0.0;
  }
  if (n == 1) {
    dg.root_ = 0;
    return dg;
  }

  // Pre-order construction with an explicit stack: each frame materializes
  // the node covering plot span [begin, end) and hooks it to its parent.
  struct Frame {
    size_t begin;
    size_t end;
    int parent;
  };
  std::vector<Frame> stack;
  stack.push_back({0, n, -1});
  dg.nodes_.reserve(2 * n - 1);

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    int id;
    if (f.end - f.begin == 1) {
      id = static_cast<int>(f.begin);  // leaf
    } else {
      // Split at the highest interior reachability (leftmost on ties, for
      // determinism). Interior positions are begin+1 .. end-1.
      size_t split = f.begin + 1;
      double best = optics.reachability[split];
      for (size_t i = f.begin + 2; i < f.end; ++i) {
        if (optics.reachability[i] > best) {
          best = optics.reachability[i];
          split = i;
        }
      }
      id = static_cast<int>(dg.nodes_.size());
      DendrogramNode node;
      node.begin = f.begin;
      node.end = f.end;
      node.height = best;
      dg.nodes_.push_back(node);
      // Children frames; left pushed last so it materializes first.
      stack.push_back({split, f.end, id});
      stack.push_back({f.begin, split, id});
    }

    DendrogramNode& node = dg.nodes_[static_cast<size_t>(id)];
    node.parent = f.parent;
    if (f.parent >= 0) {
      DendrogramNode& parent = dg.nodes_[static_cast<size_t>(f.parent)];
      if (parent.left < 0) {
        parent.left = id;
      } else {
        CVCP_CHECK_LT(parent.right, 0);
        parent.right = id;
      }
    } else {
      dg.root_ = id;
    }
  }

  CVCP_CHECK_EQ(dg.nodes_.size(), 2 * n - 1);
  return dg;
}

std::vector<int> Dendrogram::CutAt(double height) const {
  std::vector<int> assignment(n_, -1);
  int next_cluster = 0;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const DendrogramNode& nd = node(id);
    if (nd.is_leaf() || nd.height <= height) {
      const int cluster = next_cluster++;
      for (size_t pos = nd.begin; pos < nd.end; ++pos) {
        assignment[order_[pos]] = cluster;
      }
    } else {
      stack.push_back(nd.right);
      stack.push_back(nd.left);
    }
  }
  return assignment;
}

}  // namespace cvcp
