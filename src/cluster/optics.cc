#include "cluster/optics.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace cvcp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Generic OPTICS over any "distance(i, j)" callable.
template <typename DistFn>
Result<OpticsResult> OpticsImpl(size_t n, const OpticsConfig& config,
                                DistFn&& dist) {
  if (config.min_pts < 1) {
    return Status::InvalidArgument(
        Format("min_pts must be >= 1, got %d", config.min_pts));
  }
  if (static_cast<size_t>(config.min_pts) > n) {
    return Status::InvalidArgument(
        Format("min_pts=%d exceeds number of points (%zu)", config.min_pts,
               n));
  }

  OpticsResult result;
  result.order.reserve(n);
  result.reachability.reserve(n);
  result.core_distance.assign(n, kInf);

  const size_t min_pts = static_cast<size_t>(config.min_pts);
  std::vector<bool> processed(n, false);
  // reach[o]: current best-known reachability of unprocessed object o.
  std::vector<double> reach(n, kInf);

  // Core distance of `p` = distance to its min_pts-th neighbor
  // (the point itself counts as its first neighbor, as in the original
  // paper's eps-neighborhood semantics).
  auto core_distance_of = [&](size_t p) {
    std::vector<double> dists;
    dists.reserve(n);
    for (size_t o = 0; o < n; ++o) {
      if (o == p) continue;
      const double d = dist(p, o);
      if (d <= config.eps) dists.push_back(d);
    }
    if (dists.size() + 1 < min_pts) return kInf;
    if (min_pts == 1) return 0.0;
    std::nth_element(dists.begin(), dists.begin() + (min_pts - 2),
                     dists.end());
    return dists[min_pts - 2];
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Begin a new component: seed with `start` at infinite reachability.
    reach[start] = kInf;
    size_t current = start;
    bool first = true;
    while (true) {
      processed[current] = true;
      result.order.push_back(current);
      result.reachability.push_back(first ? kInf : reach[current]);
      first = false;

      const double core = core_distance_of(current);
      result.core_distance[current] = core;
      if (core != kInf) {
        for (size_t o = 0; o < n; ++o) {
          if (processed[o] || o == current) continue;
          const double d = dist(current, o);
          if (d > config.eps) continue;
          const double new_reach = std::max(core, d);
          if (new_reach < reach[o]) reach[o] = new_reach;
        }
      }

      // Pick the unprocessed point with smallest reachability (linear scan —
      // fine for n <= a few thousand). Stop the walk when nothing is
      // reachable (all remaining have infinite reachability): the outer loop
      // will open the next component.
      double best = kInf;
      size_t next = SIZE_MAX;
      for (size_t o = 0; o < n; ++o) {
        if (processed[o]) continue;
        if (reach[o] < best) {
          best = reach[o];
          next = o;
        }
      }
      if (next == SIZE_MAX) break;
      current = next;
    }
  }

  CVCP_CHECK_EQ(result.order.size(), n);
  return result;
}

}  // namespace

Result<OpticsResult> RunOptics(const Matrix& points,
                               const OpticsConfig& config) {
  const Metric metric = config.metric;
  const DistanceKernelPolicy kernel = config.kernel;
  return OpticsImpl(points.rows(), config, [&](size_t i, size_t j) {
    return Distance(points.Row(i), points.Row(j), metric, kernel);
  });
}

Result<OpticsResult> RunOptics(const DistanceMatrix& distances,
                               const OpticsConfig& config) {
  return OpticsImpl(distances.n(), config,
                    [&](size_t i, size_t j) { return distances(i, j); });
}

}  // namespace cvcp
