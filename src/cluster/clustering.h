#ifndef CVCP_CLUSTER_CLUSTERING_H_
#define CVCP_CLUSTER_CLUSTERING_H_

/// \file
/// A flat clustering: one cluster id per object, with -1 marking noise
/// (objects left unclustered by density-based extraction). Throughout the
/// library, noise objects are treated as *singletons*: a noise object is
/// never "in the same cluster" as anything, including another noise object.
/// DESIGN.md §6 records this decision; bench_ablation_noise measures the
/// alternative.

#include <vector>

#include "common/check.h"

namespace cvcp {

/// Cluster id used for unclustered (noise) objects.
inline constexpr int kNoise = -1;

/// Flat partition (plus optional noise) over objects {0, ..., n-1}.
class Clustering {
 public:
  Clustering() = default;

  /// Takes an assignment vector; ids must be >= -1.
  explicit Clustering(std::vector<int> assignment);

  /// n objects, all noise.
  static Clustering AllNoise(size_t n) {
    return Clustering(std::vector<int>(n, kNoise));
  }

  size_t size() const { return assignment_.size(); }
  const std::vector<int>& assignment() const { return assignment_; }

  int cluster_of(size_t i) const {
    CVCP_DCHECK_LT(i, assignment_.size());
    return assignment_[i];
  }

  bool IsNoise(size_t i) const { return cluster_of(i) == kNoise; }

  /// True iff both objects are clustered and share a cluster id. Noise
  /// objects are never together (singleton semantics).
  bool SameCluster(size_t i, size_t j) const {
    const int a = cluster_of(i);
    return a != kNoise && a == cluster_of(j);
  }

  /// Number of distinct non-noise cluster ids.
  int NumClusters() const;

  /// Number of noise objects.
  size_t NumNoise() const;

  /// Object ids grouped by cluster, indexed by a compacted cluster id
  /// (0..k-1, in order of first appearance). Noise objects are excluded.
  std::vector<std::vector<size_t>> Groups() const;

  /// Remaps cluster ids to 0..k-1 in order of first appearance
  /// (noise stays -1).
  void RelabelConsecutive();

 private:
  std::vector<int> assignment_;
};

}  // namespace cvcp

#endif  // CVCP_CLUSTER_CLUSTERING_H_
