#ifndef CVCP_CLUSTER_DENDROGRAM_H_
#define CVCP_CLUSTER_DENDROGRAM_H_

/// \file
/// OPTICSDend: converts an OPTICS reachability plot into a dendrogram
/// (Sander et al., PAKDD 2003 / Campello et al., DMKD 2013). The
/// reachability plot is recursively split at its highest reachability
/// value: the split position separates the plot into a left and a right
/// subtree, and the reachability value becomes the merge height. Leaves are
/// single objects. The resulting hierarchy is what FOSC extracts a flat
/// semi-supervised clustering from.

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/optics.h"
#include "common/check.h"

namespace cvcp {

/// One dendrogram node. Leaves are object singletons; internal nodes merge
/// exactly two children at `height`. Node ids: leaves occupy [0, n), in
/// *reachability-plot order* (leaf i covers plot position i); internal nodes
/// occupy [n, 2n-1).
struct DendrogramNode {
  int left = -1;    ///< child node id, -1 for leaves
  int right = -1;   ///< child node id, -1 for leaves
  int parent = -1;  ///< -1 for the root
  double height = 0.0;
  size_t begin = 0;  ///< first covered plot position
  size_t end = 0;    ///< one past the last covered plot position

  size_t size() const { return end - begin; }
  bool is_leaf() const { return left < 0; }
};

/// Binary hierarchy over the objects of a reachability plot.
class Dendrogram {
 public:
  /// Builds the dendrogram for an OPTICS result (n >= 1 objects).
  static Dendrogram FromReachability(const OpticsResult& optics);

  size_t num_objects() const { return n_; }
  size_t num_nodes() const { return nodes_.size(); }
  int root() const { return root_; }

  const DendrogramNode& node(int id) const {
    CVCP_DCHECK_LT(static_cast<size_t>(id), nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }

  /// Object ids (original dataset indices) covered by a node, i.e. the
  /// OPTICS-order slice [begin, end).
  std::span<const size_t> MembersOf(int id) const {
    const DendrogramNode& nd = node(id);
    return std::span<const size_t>(order_).subspan(nd.begin, nd.size());
  }

  /// The object id of a leaf node.
  size_t LeafObject(int leaf_id) const {
    CVCP_DCHECK(node(leaf_id).is_leaf());
    return order_[node(leaf_id).begin];
  }

  /// Cuts the tree at `height`: objects grouped by the maximal nodes whose
  /// merge height is <= the cut. Returns cluster ids per object (no noise).
  /// Mainly for tests and examples; FOSC does the real extraction.
  std::vector<int> CutAt(double height) const;

 private:
  size_t n_ = 0;
  int root_ = -1;
  std::vector<size_t> order_;          ///< plot position -> object id
  std::vector<DendrogramNode> nodes_;  ///< leaves [0,n), internal [n, 2n-1)
};

}  // namespace cvcp

#endif  // CVCP_CLUSTER_DENDROGRAM_H_
