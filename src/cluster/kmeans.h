#ifndef CVCP_CLUSTER_KMEANS_H_
#define CVCP_CLUSTER_KMEANS_H_

/// \file
/// Lloyd's k-means with k-means++ seeding and multi-restart. Serves as the
/// unsupervised baseline and as the structural template MPCKMeans and
/// COP-KMeans build on.

#include "cluster/clustering.h"
#include "common/kernel_policy.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace cvcp {

/// k-means configuration.
struct KMeansConfig {
  int k = 2;
  int max_iters = 100;
  /// Convergence threshold on the relative inertia improvement.
  double tol = 1e-6;
  /// Independent restarts; the run with the lowest inertia wins.
  int n_init = 5;
  /// k-means++ seeding (true) or uniform random points (false).
  bool kmeanspp = true;
  /// Distance-kernel implementation for the assignment/seeding loops
  /// (common/kernel_policy.h); kDefault = the process default.
  DistanceKernelPolicy kernel = DistanceKernelPolicy::kDefault;
};

/// Output of a k-means run.
struct KMeansResult {
  Clustering clustering;
  Matrix centroids;   ///< k x d
  double inertia;     ///< sum of squared distances to assigned centroids
  int iterations;     ///< of the winning restart
  bool converged;
};

/// Seeds `k` centroids with the k-means++ D^2 weighting.
Matrix KMeansPlusPlusInit(const Matrix& points, int k, Rng* rng,
                          DistanceKernelPolicy kernel =
                              DistanceKernelPolicy::kDefault);

/// Runs k-means. Errors with kInvalidArgument if k < 1, k > n, or the
/// config is malformed.
Result<KMeansResult> RunKMeans(const Matrix& points, const KMeansConfig& config,
                               Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_KMEANS_H_
