#ifndef CVCP_CLUSTER_SILHOUETTE_H_
#define CVCP_CLUSTER_SILHOUETTE_H_

/// \file
/// Silhouette coefficient (Kaufman & Rousseeuw 1990) — the paper's baseline
/// for selecting k for MPCKMeans (§4.3): among candidate k values, pick the
/// clustering with the highest mean silhouette. Exact O(n^2) form plus the
/// centroid-based "simplified silhouette" as a cheaper variant.

#include "cluster/clustering.h"
#include "common/distance.h"
#include "common/matrix.h"

namespace cvcp {

/// Mean silhouette over all clustered objects. Conventions:
///  * noise objects are ignored;
///  * objects in singleton clusters get s(i) = 0 (Kaufman & Rousseeuw);
///  * returns NaN when fewer than 2 clusters have members (silhouette
///    undefined), which makes a k=1 candidate never win model selection.
double SilhouetteCoefficient(const Matrix& points, const Clustering& clustering,
                             Metric metric = Metric::kEuclidean,
                             DistanceKernelPolicy kernel =
                                 DistanceKernelPolicy::kDefault);

/// Same, against a precomputed distance matrix.
double SilhouetteCoefficient(const DistanceMatrix& distances,
                             const Clustering& clustering);

/// Simplified silhouette: distances to cluster centroids instead of mean
/// pairwise distances. O(n k d).
double SimplifiedSilhouette(const Matrix& points, const Clustering& clustering,
                            DistanceKernelPolicy kernel =
                                DistanceKernelPolicy::kDefault);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_SILHOUETTE_H_
