#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/strings.h"

namespace cvcp {

namespace {

Status ValidateConfig(const Matrix& points, const KMeansConfig& config) {
  if (config.k < 1) {
    return Status::InvalidArgument(Format("k must be >= 1, got %d", config.k));
  }
  if (static_cast<size_t>(config.k) > points.rows()) {
    return Status::InvalidArgument(
        Format("k=%d exceeds number of points (%zu)", config.k,
               points.rows()));
  }
  if (config.max_iters < 1) {
    return Status::InvalidArgument("max_iters must be >= 1");
  }
  if (config.n_init < 1) {
    return Status::InvalidArgument("n_init must be >= 1");
  }
  return Status::OK();
}

/// One Lloyd run from the given initial centroids.
KMeansResult LloydFromInit(const Matrix& points, const KMeansConfig& config,
                           Matrix centroids, Rng* rng) {
  const size_t n = points.rows();
  const size_t k = static_cast<size_t>(config.k);
  std::vector<int> assignment(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();
  double inertia = prev_inertia;
  int iter = 0;
  bool converged = false;

  for (iter = 0; iter < config.max_iters; ++iter) {
    // Assignment step.
    inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredEuclideanDistance(points.Row(i),
                                                  centroids.Row(c),
                                                  config.kernel);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      assignment[i] = best_c;
      inertia += best;
    }

    // Update step.
    Matrix sums(k, points.cols(), 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(assignment[i]);
      auto row = points.Row(i);
      auto acc = sums.MutableRow(c);
      for (size_t m = 0; m < row.size(); ++m) acc[m] += row[m];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        centroids.SetRow(c, points.Row(rng->Index(n)));
        continue;
      }
      auto acc = sums.MutableRow(c);
      for (size_t m = 0; m < acc.size(); ++m) {
        acc[m] /= static_cast<double>(counts[c]);
      }
      centroids.SetRow(c, sums.Row(c));
    }

    if (std::isfinite(prev_inertia) &&
        prev_inertia - inertia <=
            config.tol * std::max(prev_inertia, 1e-12)) {
      converged = true;
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }

  KMeansResult result;
  result.clustering = Clustering(std::move(assignment));
  result.centroids = std::move(centroids);
  result.inertia = inertia;
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace

Matrix KMeansPlusPlusInit(const Matrix& points, int k, Rng* rng,
                          DistanceKernelPolicy kernel) {
  const size_t n = points.rows();
  CVCP_CHECK_GE(k, 1);
  CVCP_CHECK_LE(static_cast<size_t>(k), n);

  Matrix centroids(static_cast<size_t>(k), points.cols());
  centroids.SetRow(0, points.Row(rng->Index(n)));

  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d2 = SquaredEuclideanDistance(
          points.Row(i), centroids.Row(static_cast<size_t>(c - 1)), kernel);
      min_d2[i] = std::min(min_d2[i], d2);
      total += min_d2[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng->Index(n);  // all points coincide with chosen centroids
    } else {
      double r = rng->NextDouble() * total;
      chosen = n - 1;
      for (size_t i = 0; i < n; ++i) {
        r -= min_d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids.SetRow(static_cast<size_t>(c), points.Row(chosen));
  }
  return centroids;
}

Result<KMeansResult> RunKMeans(const Matrix& points,
                               const KMeansConfig& config, Rng* rng) {
  CVCP_RETURN_IF_ERROR(ValidateConfig(points, config));

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < config.n_init; ++attempt) {
    Matrix init =
        config.kmeanspp
            ? KMeansPlusPlusInit(points, config.k, rng, config.kernel)
            : [&] {
                Matrix m(static_cast<size_t>(config.k), points.cols());
                std::vector<size_t> idx = rng->SampleWithoutReplacement(
                    points.rows(), static_cast<size_t>(config.k));
                for (size_t c = 0; c < idx.size(); ++c) {
                  m.SetRow(c, points.Row(idx[c]));
                }
                return m;
              }();
    KMeansResult run = LloydFromInit(points, config, std::move(init), rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace cvcp
