#ifndef CVCP_CLUSTER_COPKMEANS_H_
#define CVCP_CLUSTER_COPKMEANS_H_

/// \file
/// COP-KMeans (Wagstaff, Cardie, Rogers & Schrödl, ICML 2001): k-means with
/// *hard* constraint satisfaction — a point may only join the nearest
/// cluster that violates none of its must-/cannot-links given the
/// assignments made so far; if no cluster is feasible the pass fails and the
/// run is restarted with a different order/seeding. Included as the
/// extension algorithm for the "CVCP with other methods" future-work
/// experiment (bench_ablation_copkmeans).

#include "cluster/clustering.h"
#include "common/kernel_policy.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// COP-KMeans configuration.
struct CopKMeansConfig {
  int k = 2;
  int max_iters = 100;
  /// Restarts attempted before reporting infeasibility.
  int max_restarts = 10;
  double tol = 1e-6;
  /// Distance-kernel implementation for the assignment loops
  /// (common/kernel_policy.h); kDefault = the process default.
  DistanceKernelPolicy kernel = DistanceKernelPolicy::kDefault;
};

/// Output of a successful COP-KMeans run.
struct CopKMeansResult {
  Clustering clustering;
  Matrix centroids;
  double inertia;
  int iterations;
  int restarts_used;
};

/// Runs COP-KMeans. The must-link transitive closure is honored by
/// assigning whole must-components atomically. Errors with kInfeasible if
/// no constraint-respecting assignment is found within max_restarts, and
/// propagates kInconsistentConstraints for contradictory input.
Result<CopKMeansResult> RunCopKMeans(const Matrix& points,
                                     const ConstraintSet& constraints,
                                     const CopKMeansConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_COPKMEANS_H_
