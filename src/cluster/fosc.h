#ifndef CVCP_CLUSTER_FOSC_H_
#define CVCP_CLUSTER_FOSC_H_

/// \file
/// FOSC — Framework for Optimal Selection of Clusters from hierarchies
/// (Campello, Moulavi, Zimek & Sander, DMKD 2013). Given a dendrogram,
/// selects the set of non-overlapping candidate clusters (subtrees) that
/// maximizes a per-cluster objective, by an exact bottom-up dynamic
/// program. Combined with the OPTICSDend hierarchy this is the
/// FOSC-OPTICSDend algorithm the paper evaluates CVCP with.
///
/// Semi-supervised objective (per candidate cluster C, half-credit per
/// constraint endpoint, which makes the objective additive over disjoint
/// selected clusters):
///   * must-link (a,b): +1/2 for each endpoint in C whose partner is
///     also in C (so a fully honored must-link earns 1.0);
///   * cannot-link (a,b): +1/2 for each endpoint in C whose partner is
///     *not* in C.
/// Objects covered by no selected cluster are noise; their endpoints earn
/// nothing (DESIGN.md §6).
///
/// The unsupervised objective is the classic lifetime stability
/// |C| * (h(parent) - h(C)); `alpha` blends the two (1.0 = pure
/// semi-supervised, the paper's setting).

#include <vector>

#include "cluster/clustering.h"
#include "cluster/dendrogram.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// FOSC configuration.
struct FoscConfig {
  /// Subtrees smaller than this are not candidate clusters (their objects
  /// become noise unless an ancestor is selected).
  size_t min_cluster_size = 2;
  /// Weight of the constraint-satisfaction objective vs. stability.
  double alpha = 1.0;
  /// Whether the root (the all-inclusive "cluster") may be selected.
  bool allow_root = false;
};

/// Output of a FOSC extraction.
struct FoscResult {
  Clustering clustering;
  /// Ids of the selected dendrogram nodes.
  std::vector<int> selected_nodes;
  /// Total blended objective achieved by the selection.
  double objective = 0.0;
  /// Fraction of constraints satisfied by the selection under the
  /// half-credit semantics; NaN when no constraints were given.
  double constraint_satisfaction = 0.0;
};

/// Runs the FOSC dynamic program. Errors with kInvalidArgument if
/// min_cluster_size < 1, alpha outside [0, 1], or a constraint references
/// an object the dendrogram does not cover.
Result<FoscResult> ExtractClusters(const Dendrogram& dendrogram,
                                   const ConstraintSet& constraints,
                                   const FoscConfig& config);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_FOSC_H_
