#include "cluster/fosc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace cvcp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Replaces infinite merge heights (component boundaries in the
/// reachability plot) by a finite cap so lifetime stability stays finite.
double FiniteHeightCap(const Dendrogram& dg) {
  double max_finite = 0.0;
  for (size_t id = 0; id < dg.num_nodes(); ++id) {
    const double h = dg.node(static_cast<int>(id)).height;
    if (std::isfinite(h)) max_finite = std::max(max_finite, h);
  }
  return max_finite > 0.0 ? 1.5 * max_finite : 1.0;
}

}  // namespace

Result<FoscResult> ExtractClusters(const Dendrogram& dendrogram,
                                   const ConstraintSet& constraints,
                                   const FoscConfig& config) {
  if (config.min_cluster_size < 1) {
    return Status::InvalidArgument("min_cluster_size must be >= 1");
  }
  if (config.alpha < 0.0 || config.alpha > 1.0) {
    return Status::InvalidArgument(
        Format("alpha must be in [0, 1], got %f", config.alpha));
  }
  const size_t n = dendrogram.num_objects();
  const size_t num_nodes = dendrogram.num_nodes();

  // Object id -> plot position (leaf node id).
  std::vector<size_t> pos_of(n, SIZE_MAX);
  for (size_t leaf = 0; leaf < n; ++leaf) {
    const size_t obj = dendrogram.LeafObject(static_cast<int>(leaf));
    if (obj >= n || pos_of[obj] != SIZE_MAX) {
      return Status::Internal("dendrogram leaf order is not a permutation");
    }
    pos_of[obj] = leaf;
  }

  // --- Constraint objective J per node, via path accumulation. ---
  std::vector<double> j_value(num_nodes, 0.0);
  auto contains = [&](int id, size_t pos) {
    const DendrogramNode& nd = dendrogram.node(id);
    return nd.begin <= pos && pos < nd.end;
  };
  for (const Constraint& c : constraints.all()) {
    if (c.a >= n || c.b >= n) {
      return Status::InvalidArgument(
          Format("constraint %s outside dendrogram of %zu objects",
                 ConstraintToString(c).c_str(), n));
    }
    const size_t pa = pos_of[c.a];
    const size_t pb = pos_of[c.b];
    if (c.type == ConstraintType::kMustLink) {
      // +1 on every node containing both endpoints: the path from the
      // smallest common node up to the root.
      int id = static_cast<int>(pa);
      while (!contains(id, pb)) id = dendrogram.node(id).parent;
      for (; id >= 0; id = dendrogram.node(id).parent) j_value[id] += 1.0;
    } else {
      // +1/2 on every node containing exactly one endpoint: the two paths
      // from each leaf up to (excluding) the smallest common node.
      int id = static_cast<int>(pa);
      while (!contains(id, pb)) {
        j_value[id] += 0.5;
        id = dendrogram.node(id).parent;
      }
      id = static_cast<int>(pb);
      while (!contains(id, pa)) {
        j_value[id] += 0.5;
        id = dendrogram.node(id).parent;
      }
    }
  }

  // --- Stability (lifetime) per node. ---
  std::vector<double> stability(num_nodes, 0.0);
  const double cap = FiniteHeightCap(dendrogram);
  for (size_t id = 0; id < num_nodes; ++id) {
    const DendrogramNode& nd = dendrogram.node(static_cast<int>(id));
    if (nd.parent < 0) continue;  // root has no lifetime
    double h_parent = dendrogram.node(nd.parent).height;
    double h_node = nd.is_leaf() ? 0.0 : nd.height;
    if (!std::isfinite(h_parent)) h_parent = cap;
    if (!std::isfinite(h_node)) h_node = cap;
    stability[id] =
        static_cast<double>(nd.size()) * std::max(0.0, h_parent - h_node);
  }

  const double j_scale =
      constraints.empty() ? 1.0 : static_cast<double>(constraints.size());

  auto eligible = [&](int id) {
    const DendrogramNode& nd = dendrogram.node(id);
    if (nd.size() < config.min_cluster_size) return false;
    if (id == dendrogram.root() && !config.allow_root) return false;
    return true;
  };

  // Post-order DP. value[id] = best achievable in the subtree; selection
  // rule (incl. tie handling) is documented at the sweep below.
  std::vector<double> best(num_nodes, 0.0);
  std::vector<bool> take(num_nodes, false);

  // Bottom-up order: leaves (ids [0, n)) first — they have no children —
  // then internal nodes from high id to low. Internal nodes are created
  // pre-order, so every internal child has a larger id than its parent.
  std::vector<size_t> bottom_up;
  bottom_up.reserve(num_nodes);
  for (size_t id = 0; id < n; ++id) bottom_up.push_back(id);
  for (size_t id = num_nodes; id-- > n;) bottom_up.push_back(id);

  // Normalize stability by the best unsupervised selection so alpha mixes
  // two [0, 1]-scale terms. First pass computes that normalizer.
  double stability_norm = 1.0;
  if (config.alpha < 1.0) {
    std::vector<double> sbest(num_nodes, 0.0);
    for (size_t id : bottom_up) {
      const DendrogramNode& nd = dendrogram.node(static_cast<int>(id));
      const double children = nd.is_leaf()
                                  ? 0.0
                                  : sbest[static_cast<size_t>(nd.left)] +
                                        sbest[static_cast<size_t>(nd.right)];
      const double own =
          eligible(static_cast<int>(id)) ? stability[id] : -kInf;
      sbest[id] = std::max(children, own);
    }
    if (sbest[static_cast<size_t>(dendrogram.root())] > 0.0) {
      stability_norm = sbest[static_cast<size_t>(dendrogram.root())];
    }
  }

  auto blended = [&](size_t id) {
    const double j_term = j_value[id] / j_scale;
    const double s_term = stability[id] / stability_norm;
    return config.alpha * j_term + (1.0 - config.alpha) * s_term;
  };

  // Tie-break: a node with the same value as its children's best selection
  // wins if it carries actual evidence (own > 0). Objects that are not
  // constraint endpoints contribute nothing to J, so without this rule the
  // DP would select the *minimal* subtrees containing the endpoints and
  // leave the rest of every natural cluster as noise; with it, selection
  // climbs to the maximal subtree whose merge does not lose objective value
  // (i.e. up to the first merge that traps a cannot-link or crosses
  // evidence boundaries). Zero-evidence subtrees still stay noise.
  constexpr double kTieEps = 1e-9;
  for (size_t id : bottom_up) {
    const DendrogramNode& nd = dendrogram.node(static_cast<int>(id));
    const double children = nd.is_leaf()
                                ? 0.0
                                : best[static_cast<size_t>(nd.left)] +
                                      best[static_cast<size_t>(nd.right)];
    double own = -kInf;
    if (eligible(static_cast<int>(id))) own = blended(id);
    const bool take_node =
        own > children + kTieEps ||
        (own > kTieEps && own >= children - kTieEps);
    if (take_node) {
      best[id] = std::max(own, children);
      take[id] = true;
    } else {
      best[id] = children;
      take[id] = false;
    }
  }

  // Backtrack the selection from the root.
  FoscResult result;
  std::vector<int> assignment(n, kNoise);
  std::vector<int> stack = {dendrogram.root()};
  double selected_j = 0.0;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (take[static_cast<size_t>(id)]) {
      const int cluster = static_cast<int>(result.selected_nodes.size());
      result.selected_nodes.push_back(id);
      selected_j += j_value[static_cast<size_t>(id)];
      for (size_t obj : dendrogram.MembersOf(id)) {
        assignment[obj] = cluster;
      }
      continue;
    }
    const DendrogramNode& nd = dendrogram.node(id);
    if (!nd.is_leaf()) {
      stack.push_back(nd.right);
      stack.push_back(nd.left);
    }
  }

  result.clustering = Clustering(std::move(assignment));
  result.objective = best[static_cast<size_t>(dendrogram.root())];
  result.constraint_satisfaction =
      constraints.empty()
          ? std::numeric_limits<double>::quiet_NaN()
          : selected_j / static_cast<double>(constraints.size());
  return result;
}

}  // namespace cvcp
