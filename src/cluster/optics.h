#ifndef CVCP_CLUSTER_OPTICS_H_
#define CVCP_CLUSTER_OPTICS_H_

/// \file
/// OPTICS (Ankerst, Breunig, Kriegel & Sander, SIGMOD 1999): computes a
/// density-based cluster ordering with reachability distances. Run with
/// eps = infinity (the default here) the ordering covers the whole dataset
/// in one walk, which is what the OPTICSDend dendrogram construction
/// (dendrogram.h) consumes. O(n^2) scan — no spatial index; the paper's
/// datasets are all n <= 351.

#include <limits>
#include <vector>

#include "common/distance.h"
#include "common/matrix.h"
#include "common/status.h"

namespace cvcp {

/// OPTICS configuration.
struct OpticsConfig {
  /// MinPts: neighborhood size that makes a point a core point. This is the
  /// parameter CVCP selects for FOSC-OPTICSDend.
  int min_pts = 5;
  /// Generating radius; infinity processes everything in one component.
  double eps = std::numeric_limits<double>::infinity();
  Metric metric = Metric::kEuclidean;
  /// Distance-kernel implementation for the point-matrix overload (the
  /// DistanceMatrix overload inherits the matrix's kernel). Callers
  /// running against a cached matrix must pass the same policy the
  /// matrix was built with to keep cached and uncached paths
  /// byte-identical.
  DistanceKernelPolicy kernel = DistanceKernelPolicy::kDefault;
};

/// The cluster ordering.
struct OpticsResult {
  /// Object ids in processing order.
  std::vector<size_t> order;
  /// Reachability distance of order[i] at its position; order[0] (and every
  /// point starting a new connected component) has +infinity.
  std::vector<double> reachability;
  /// Core distance per *object id* (not order position); +infinity when the
  /// point never had MinPts neighbors within eps.
  std::vector<double> core_distance;
};

/// Runs OPTICS over all rows of `points`. Errors with kInvalidArgument for
/// min_pts < 1 or min_pts > n.
Result<OpticsResult> RunOptics(const Matrix& points,
                               const OpticsConfig& config);

/// Same, but against a precomputed distance matrix (used when sweeping
/// MinPts over a fixed dataset — distances are computed once).
Result<OpticsResult> RunOptics(const DistanceMatrix& distances,
                               const OpticsConfig& config);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_OPTICS_H_
