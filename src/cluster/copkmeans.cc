#include "cluster/copkmeans.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "cluster/kmeans.h"
#include "common/distance.h"
#include "common/strings.h"
#include "constraints/transitive_closure.h"

namespace cvcp {

namespace {

/// Groups objects into must-link components over the full dataset;
/// unconstrained objects are singletons. Also produces, per component, the
/// set of cannot-linked components.
struct ComponentView {
  std::vector<size_t> comp_of;                     // object -> component
  std::vector<std::vector<size_t>> members;        // component -> objects
  std::vector<std::vector<size_t>> cannot_comps;   // component -> components
};

Result<ComponentView> BuildView(const ConstraintSet& constraints, size_t n) {
  CVCP_ASSIGN_OR_RETURN(ConstraintComponents comps,
                        BuildConstraintComponents(constraints));
  ComponentView view;
  view.comp_of.resize(n, SIZE_MAX);
  // Components over involved objects keep their index; unconstrained objects
  // get fresh singleton components after them.
  view.members = comps.components;
  for (size_t i = 0; i < comps.involved_objects.size(); ++i) {
    view.comp_of[comps.involved_objects[i]] = comps.component_of[i];
  }
  for (size_t o = 0; o < n; ++o) {
    if (view.comp_of[o] == SIZE_MAX) {
      view.comp_of[o] = view.members.size();
      view.members.push_back({o});
    }
  }
  view.cannot_comps.resize(view.members.size());
  for (const auto& [ca, cb] : comps.cannot_edges) {
    view.cannot_comps[ca].push_back(cb);
    view.cannot_comps[cb].push_back(ca);
  }
  return view;
}

}  // namespace

Result<CopKMeansResult> RunCopKMeans(const Matrix& points,
                                     const ConstraintSet& constraints,
                                     const CopKMeansConfig& config, Rng* rng) {
  const size_t n = points.rows();
  if (config.k < 1) {
    return Status::InvalidArgument(Format("k must be >= 1, got %d", config.k));
  }
  if (static_cast<size_t>(config.k) > n) {
    return Status::InvalidArgument(
        Format("k=%d exceeds number of points (%zu)", config.k, n));
  }
  for (const Constraint& c : constraints.all()) {
    if (c.a >= n || c.b >= n) {
      return Status::InvalidArgument(
          Format("constraint %s references object beyond dataset size %zu",
                 ConstraintToString(c).c_str(), n));
    }
  }
  CVCP_ASSIGN_OR_RETURN(ComponentView view, BuildView(constraints, n));
  const size_t k = static_cast<size_t>(config.k);

  for (int restart = 0; restart < config.max_restarts; ++restart) {
    Matrix centroids = KMeansPlusPlusInit(points, config.k, rng, config.kernel);
    std::vector<int> comp_assign(view.members.size(), -1);
    double inertia = std::numeric_limits<double>::infinity();
    double prev_inertia = inertia;
    bool feasible = true;
    int iter = 0;
    bool converged = false;

    for (iter = 0; iter < config.max_iters && feasible; ++iter) {
      // Assign whole components in random order; a component may only take
      // a cluster not used by any cannot-linked component this pass.
      std::fill(comp_assign.begin(), comp_assign.end(), -1);
      std::vector<size_t> order = rng->Permutation(view.members.size());
      inertia = 0.0;
      for (size_t ci : order) {
        const auto& members = view.members[ci];
        std::vector<bool> banned(k, false);
        for (size_t cj : view.cannot_comps[ci]) {
          if (comp_assign[cj] >= 0) banned[static_cast<size_t>(comp_assign[cj])] = true;
        }
        double best = std::numeric_limits<double>::infinity();
        int best_h = -1;
        for (size_t h = 0; h < k; ++h) {
          if (banned[h]) continue;
          double cost = 0.0;
          for (size_t o : members) {
            cost += SquaredEuclideanDistance(points.Row(o), centroids.Row(h),
                                             config.kernel);
          }
          if (cost < best) {
            best = cost;
            best_h = static_cast<int>(h);
          }
        }
        if (best_h < 0) {
          feasible = false;  // dead end: every cluster banned
          break;
        }
        comp_assign[ci] = best_h;
        inertia += best;
      }
      if (!feasible) break;

      // Update centroids from component assignments.
      Matrix sums(k, points.cols(), 0.0);
      std::vector<size_t> counts(k, 0);
      for (size_t ci = 0; ci < view.members.size(); ++ci) {
        const size_t h = static_cast<size_t>(comp_assign[ci]);
        for (size_t o : view.members[ci]) {
          auto row = points.Row(o);
          auto acc = sums.MutableRow(h);
          for (size_t m = 0; m < row.size(); ++m) acc[m] += row[m];
          ++counts[h];
        }
      }
      for (size_t h = 0; h < k; ++h) {
        if (counts[h] == 0) {
          centroids.SetRow(h, points.Row(rng->Index(n)));
          continue;
        }
        auto acc = sums.MutableRow(h);
        for (size_t m = 0; m < acc.size(); ++m) {
          acc[m] /= static_cast<double>(counts[h]);
        }
        centroids.SetRow(h, sums.Row(h));
      }

      if (std::isfinite(prev_inertia) &&
          prev_inertia - inertia <=
              config.tol * std::max(prev_inertia, 1e-12)) {
        converged = true;
        ++iter;
        break;
      }
      prev_inertia = inertia;
    }

    if (feasible && (converged || iter == config.max_iters)) {
      std::vector<int> assignment(n);
      for (size_t o = 0; o < n; ++o) {
        assignment[o] = comp_assign[view.comp_of[o]];
      }
      CopKMeansResult result;
      result.clustering = Clustering(std::move(assignment));
      result.centroids = std::move(centroids);
      result.inertia = inertia;
      result.iterations = iter;
      result.restarts_used = restart;
      return result;
    }
  }
  return Status::Infeasible(
      Format("no constraint-respecting assignment found in %d restarts",
             config.max_restarts));
}

}  // namespace cvcp
