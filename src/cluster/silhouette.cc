#include "cluster/silhouette.h"

#include <cmath>
#include <limits>
#include <vector>

namespace cvcp {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Shared implementation over any distance callable.
///
/// Object-to-group distance sums are precomputed in ONE pass over the
/// (i < j) pairs — each pairwise distance is evaluated once instead of
/// twice, and instead of rescanning every group per object the scoring
/// loop reads O(#groups) accumulated sums. The result is bitwise-identical
/// to the naive per-object rescan (pinned by silhouette_test.cc): for a
/// fixed object x and group g, the rescan added members in ascending-id
/// order skipping x, i.e. all o < x ascending, then all o > x ascending —
/// exactly the order the pair pass feeds sums[x][g] (contributions from
/// pairs (o, x), o ascending, then pairs (x, j), j ascending), and every
/// metric shipped here is argument-symmetric down to the bit.
template <typename DistFn>
double SilhouetteImpl(size_t n, const Clustering& clustering, DistFn&& dist) {
  const std::vector<std::vector<size_t>> groups = clustering.Groups();
  const size_t n_groups = groups.size();
  if (n_groups < 2) return kNaN;

  // Compacted cluster index per object (-1 = noise).
  std::vector<int> group_of(n, -1);
  for (size_t g = 0; g < n_groups; ++g) {
    for (size_t o : groups[g]) group_of[o] = static_cast<int>(g);
  }

  // sums[i * n_groups + g] = sum of dist(i, o) over o in groups[g], o != i.
  // Noise objects contribute to no group and are never scored, so pairs
  // with a noise endpoint are skipped entirely (the rescan never touched
  // them either).
  std::vector<double> sums(n * n_groups, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) {
    const int gi = group_of[i];
    if (gi < 0) continue;
    double* sums_i = &sums[i * n_groups];
    for (size_t j = i + 1; j < n; ++j) {
      const int gj = group_of[j];
      if (gj < 0) continue;
      const double d = dist(i, j);
      sums_i[gj] += d;
      sums[j * n_groups + static_cast<size_t>(gi)] += d;
    }
  }

  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    const int gi = group_of[i];
    if (gi < 0) continue;
    ++counted;
    if (groups[static_cast<size_t>(gi)].size() == 1) {
      continue;  // s(i) = 0 for singletons
    }
    // Mean distance to own cluster (a) and nearest other cluster (b).
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (size_t g = 0; g < n_groups; ++g) {
      const size_t cnt =
          groups[g].size() - (static_cast<int>(g) == gi ? 1 : 0);
      if (cnt == 0) continue;
      const double mean =
          sums[i * n_groups + g] / static_cast<double>(cnt);
      if (static_cast<int>(g) == gi) {
        a = mean;
      } else {
        b = std::min(b, mean);
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  if (counted == 0) return kNaN;
  return total / static_cast<double>(counted);
}

}  // namespace

double SilhouetteCoefficient(const Matrix& points,
                             const Clustering& clustering, Metric metric,
                             DistanceKernelPolicy kernel) {
  CVCP_CHECK_EQ(points.rows(), clustering.size());
  return SilhouetteImpl(points.rows(), clustering, [&](size_t i, size_t j) {
    return Distance(points.Row(i), points.Row(j), metric, kernel);
  });
}

double SilhouetteCoefficient(const DistanceMatrix& distances,
                             const Clustering& clustering) {
  CVCP_CHECK_EQ(distances.n(), clustering.size());
  return SilhouetteImpl(distances.n(), clustering,
                        [&](size_t i, size_t j) { return distances(i, j); });
}

double SimplifiedSilhouette(const Matrix& points,
                            const Clustering& clustering,
                            DistanceKernelPolicy kernel) {
  CVCP_CHECK_EQ(points.rows(), clustering.size());
  const std::vector<std::vector<size_t>> groups = clustering.Groups();
  if (groups.size() < 2) return kNaN;

  Matrix centroids(groups.size(), points.cols());
  for (size_t g = 0; g < groups.size(); ++g) {
    centroids.SetRow(g, points.ColumnMeans(groups[g]));
  }

  std::vector<int> group_of(points.rows(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t o : groups[g]) group_of[o] = static_cast<int>(g);
  }

  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const int gi = group_of[i];
    if (gi < 0) continue;
    ++counted;
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (size_t g = 0; g < groups.size(); ++g) {
      const double d = EuclideanDistance(points.Row(i), centroids.Row(g),
                                         kernel);
      if (static_cast<int>(g) == gi) {
        a = d;
      } else {
        b = std::min(b, d);
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  if (counted == 0) return kNaN;
  return total / static_cast<double>(counted);
}

}  // namespace cvcp
