#include "cluster/clustering.h"

#include <unordered_map>

namespace cvcp {

Clustering::Clustering(std::vector<int> assignment)
    : assignment_(std::move(assignment)) {
  for (int id : assignment_) CVCP_CHECK_GE(id, kNoise);
}

int Clustering::NumClusters() const {
  std::unordered_map<int, bool> seen;
  for (int id : assignment_) {
    if (id != kNoise) seen[id] = true;
  }
  return static_cast<int>(seen.size());
}

size_t Clustering::NumNoise() const {
  size_t count = 0;
  for (int id : assignment_) {
    if (id == kNoise) ++count;
  }
  return count;
}

std::vector<std::vector<size_t>> Clustering::Groups() const {
  std::unordered_map<int, size_t> compact;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < assignment_.size(); ++i) {
    const int id = assignment_[i];
    if (id == kNoise) continue;
    auto [it, inserted] = compact.emplace(id, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

void Clustering::RelabelConsecutive() {
  std::unordered_map<int, int> remap;
  int next = 0;
  for (int& id : assignment_) {
    if (id == kNoise) continue;
    auto [it, inserted] = remap.emplace(id, next);
    if (inserted) ++next;
    id = it->second;
  }
}

}  // namespace cvcp
