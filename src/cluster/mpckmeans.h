#ifndef CVCP_CLUSTER_MPCKMEANS_H_
#define CVCP_CLUSTER_MPCKMEANS_H_

/// \file
/// MPCKMeans — Metric Pairwise Constrained K-Means (Bilenko, Basu & Mooney,
/// ICML 2004), the partitional semi-supervised clusterer the paper evaluates
/// CVCP with. Integrates constraints two ways:
///
///   * soft penalties: violated must-links add a metric-scaled distance
///     penalty, violated cannot-links add a "how far from maximally
///     separated" penalty;
///   * metric learning: per-cluster (or shared) diagonal Mahalanobis
///     weights are re-estimated every M-step from cluster scatter plus the
///     violation terms.
///
/// The maximally-separated pair in the cannot-link penalty is approximated
/// per dimension by the data range, which keeps the penalty separable — the
/// same simplification the reference WekaUT implementation makes for the
/// diagonal case. Initialization seeds centroids from the must-link
/// neighborhood closure (lambda largest neighborhoods), topped up with
/// D^2-weighted sampling when there are fewer neighborhoods than k.

#include <vector>

#include "cluster/clustering.h"
#include "common/kernel_policy.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// Which Mahalanobis weights MPCKMeans learns.
enum class MetricMode {
  kNone,                ///< plain Euclidean, no learning (PCKMeans)
  kSingleDiagonal,      ///< one diagonal metric shared by all clusters
  kPerClusterDiagonal,  ///< one diagonal metric per cluster (full MPCK)
};

/// MPCKMeans configuration.
struct MpckMeansConfig {
  int k = 2;
  int max_iters = 50;
  /// Convergence threshold on the relative objective change.
  double tol = 1e-5;
  /// Weight of each violated must-link / cannot-link in the objective.
  double must_link_weight = 1.0;
  double cannot_link_weight = 1.0;
  MetricMode metric_mode = MetricMode::kPerClusterDiagonal;
  /// Seed centroids from must-link neighborhoods (paper's initialization);
  /// false falls back to k-means++.
  bool neighborhood_init = true;
  /// Distance-kernel implementation for the assignment/metric loops
  /// (common/kernel_policy.h); kDefault = the process default.
  DistanceKernelPolicy kernel = DistanceKernelPolicy::kDefault;
};

/// Output of an MPCKMeans run.
struct MpckMeansResult {
  Clustering clustering;
  Matrix centroids;  ///< k x d
  /// Learned diagonal metric weights, one row per cluster (identical rows in
  /// kSingleDiagonal mode; all-ones in kNone mode).
  Matrix metric_weights;
  double objective;
  int iterations;
  bool converged;
};

/// Runs MPCKMeans on `points` with the given (train) constraints.
/// Errors with kInvalidArgument on malformed config or constraint indices
/// out of range; propagates kInconsistentConstraints from the must-link
/// closure used for initialization.
Result<MpckMeansResult> RunMpckMeans(const Matrix& points,
                                     const ConstraintSet& constraints,
                                     const MpckMeansConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CLUSTER_MPCKMEANS_H_
