#ifndef CVCP_COMMON_STATUS_H_
#define CVCP_COMMON_STATUS_H_

/// \file
/// RocksDB-style error handling: fallible public APIs return `Status` or
/// `Result<T>` instead of throwing. Internal invariant violations use the
/// CVCP_CHECK macros instead (check.h).

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace cvcp {

/// Machine-inspectable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInconsistentConstraints,  ///< must-link and cannot-link contradict
  kInfeasible,               ///< no solution exists (e.g. COP-KMeans dead end)
  kCorruption,               ///< stored bytes fail validation (CRC, framing)
  kResourceExhausted,        ///< admission control says try later (backpressure)
  kInternal,
  kUnimplemented,
  // New codes are appended (never inserted) — the numeric values cross the
  // service wire inside ErrorReply frames and must stay stable.
  kCancelled,         ///< caller requested cooperative cancellation
  kDeadlineExceeded,  ///< monotonic deadline passed before completion
};

/// Returns a stable human-readable name for a code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success/error type. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status InconsistentConstraints(std::string msg) {
    return Status(StatusCode::kInconsistentConstraints, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a fatal programming error (checked).
template <typename T>
class Result {
 public:
  /// Implicit from value — enables `return some_t;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error — enables `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    CVCP_CHECK_MSG(!std::get<Status>(payload_).ok(),
                   "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    CVCP_CHECK_MSG(ok(), "Result::value() on error: ", status().ToString());
    return std::get<T>(payload_);
  }
  T& value() & {
    CVCP_CHECK_MSG(ok(), "Result::value() on error: ", status().ToString());
    return std::get<T>(payload_);
  }
  T&& value() && {
    CVCP_CHECK_MSG(ok(), "Result::value() on error: ", status().ToString());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace cvcp

/// Propagates a non-OK Status from the current function.
#define CVCP_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::cvcp::Status _cvcp_status = (expr);       \
    if (!_cvcp_status.ok()) return _cvcp_status; \
  } while (false)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define CVCP_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  CVCP_ASSIGN_OR_RETURN_IMPL_(                              \
      CVCP_STATUS_CONCAT_(_cvcp_result, __LINE__), lhs, rexpr)

#define CVCP_STATUS_CONCAT_INNER_(a, b) a##b
#define CVCP_STATUS_CONCAT_(a, b) CVCP_STATUS_CONCAT_INNER_(a, b)
#define CVCP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // CVCP_COMMON_STATUS_H_
