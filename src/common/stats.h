#ifndef CVCP_COMMON_STATS_H_
#define CVCP_COMMON_STATS_H_

/// \file
/// Descriptive statistics and the inferential tools the paper's evaluation
/// uses: Pearson correlation (Tables 1-4), sample mean/std (Tables 5-16),
/// quartiles (Figures 9-12 boxplots), and the paired two-sided t-test at
/// alpha = 0.05 used for the significance claims in every table caption.
/// The Student-t CDF is computed from scratch via the regularized
/// incomplete beta function (continued fraction; Lentz's algorithm).

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace cvcp {

/// Arithmetic mean; NaN for empty input.
double Mean(std::span<const double> v);

/// Unbiased sample variance (n-1 denominator); NaN for n < 2.
double SampleVariance(std::span<const double> v);

/// sqrt(SampleVariance).
double SampleStdDev(std::span<const double> v);

/// Median (averaging the two middle elements for even n); NaN for empty.
double Median(std::vector<double> v);

/// Linear-interpolation quantile of *sorted* data, q in [0, 1].
double QuantileSorted(std::span<const double> sorted, double q);

/// Pearson product-moment correlation. Returns NaN if either side has zero
/// variance (correlation undefined), matching how the paper's per-trial
/// correlations must be skipped when a score series is flat.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b).
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Result of a paired two-sided t-test between two equal-length samples.
/// Default-constructed, every statistic is NaN ("no test ran"), so
/// SignificantAt is false — never treat an absent test as significant.
struct PairedTTestResult {
  /// NaN when undefined (n < 2 or zero-variance diffs).
  double t_statistic = std::numeric_limits<double>::quiet_NaN();
  double p_value = std::numeric_limits<double>::quiet_NaN();  ///< two-sided
  double mean_diff = std::numeric_limits<double>::quiet_NaN();  ///< mean(a-b)
  size_t n = 0;  ///< number of pairs

  /// True if the difference is significant at level `alpha`.
  bool SignificantAt(double alpha) const;
};

/// Paired two-sided t-test of H0: mean(a - b) == 0.
PairedTTestResult PairedTTest(std::span<const double> a,
                              std::span<const double> b);

}  // namespace cvcp

#endif  // CVCP_COMMON_STATS_H_
