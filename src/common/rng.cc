#include "common/rng.h"

#include <numeric>

namespace cvcp {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng Rng::Fork(uint64_t stream_id) const {
  uint64_t state = seed_ ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  uint64_t derived = SplitMix64(state);
  derived ^= SplitMix64(state);
  return Rng(derived);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> out(n);
  std::iota(out.begin(), out.end(), size_t{0});
  Shuffle(out);
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CVCP_CHECK_LE(k, n);
  // Partial Fisher–Yates: O(n) memory, O(n + k) time. Fine at our scales.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + Index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace cvcp
