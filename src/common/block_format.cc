#include "common/block_format.h"

#include <bit>
#include <cstring>

#include "common/hash.h"
#include "common/strings.h"

namespace cvcp {

namespace {

// Fixed little-endian integer codecs. Byte-by-byte shifts (not memcpy)
// so the on-disk layout is identical on any host endianness.
void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::span<const std::byte> bytes) {
  return static_cast<uint32_t>(bytes[0]) |
         (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

uint64_t GetU64(std::span<const std::byte> bytes) {
  return static_cast<uint64_t>(GetU32(bytes)) |
         (static_cast<uint64_t>(GetU32(bytes.subspan(4))) << 32);
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Header: magic(8) + version(4) + kind(4) + record count(4).
constexpr size_t kHeaderSize = 8 + 4 + 4 + 4;
constexpr size_t kCrcSize = 4;

}  // namespace

void BlockBuilder::AppendRecord(std::span<const std::byte> bytes) {
  records_.emplace_back(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size());
}

void BlockBuilder::AppendU32(uint32_t v) {
  std::string record;
  PutU32(&record, v);
  records_.push_back(std::move(record));
}

void BlockBuilder::AppendU64(uint64_t v) {
  std::string record;
  PutU64(&record, v);
  records_.push_back(std::move(record));
}

void BlockBuilder::AppendDoubles(std::span<const double> values) {
  std::string record;
  record.reserve(values.size() * 8);
  for (double v : values) PutU64(&record, std::bit_cast<uint64_t>(v));
  records_.push_back(std::move(record));
}

void BlockBuilder::AppendFloats(std::span<const float> values) {
  std::string record;
  record.reserve(values.size() * 4);
  for (float v : values) PutU32(&record, std::bit_cast<uint32_t>(v));
  records_.push_back(std::move(record));
}

void BlockBuilder::AppendSizes(std::span<const size_t> values) {
  std::string record;
  record.reserve(values.size() * 8);
  for (size_t v : values) PutU64(&record, static_cast<uint64_t>(v));
  records_.push_back(std::move(record));
}

void BlockBuilder::AppendString(std::string_view s) {
  records_.emplace_back(s);
}

std::string BlockBuilder::Finish() const {
  std::string out;
  size_t payload = 0;
  for (const std::string& r : records_) payload += 4 + r.size();
  out.reserve(kHeaderSize + payload + kCrcSize);
  PutU64(&out, kBlockMagic);
  PutU32(&out, kBlockFormatVersion);
  PutU32(&out, kind_);
  PutU32(&out, static_cast<uint32_t>(records_.size()));
  for (const std::string& r : records_) {
    PutU32(&out, static_cast<uint32_t>(r.size()));
    out.append(r);
  }
  PutU32(&out, Crc32(AsBytes(out)));
  return out;
}

Result<uint32_t> PeekBlockKind(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption(
        Format("block truncated: %zu bytes, header needs %zu", bytes.size(),
               kHeaderSize));
  }
  const std::span<const std::byte> view{
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()};
  if (GetU64(view) != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  return GetU32(view.subspan(12));
}

Result<BlockReader> BlockReader::Open(std::string bytes,
                                      uint32_t expected_kind) {
  const std::span<const std::byte> view = AsBytes(bytes);
  if (view.size() < kHeaderSize + kCrcSize) {
    return Status::Corruption(
        Format("block truncated: %zu bytes, header needs %zu", view.size(),
               kHeaderSize + kCrcSize));
  }
  if (GetU64(view) != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  // CRC before anything else that trusts the bytes — but after the magic,
  // so "not one of our files at all" reads differently than "our file,
  // damaged".
  const uint32_t stored_crc = GetU32(view.subspan(view.size() - kCrcSize));
  const uint32_t actual_crc = Crc32(view.first(view.size() - kCrcSize));
  if (stored_crc != actual_crc) {
    return Status::Corruption(Format("block CRC mismatch: stored %08x, "
                                     "computed %08x",
                                     stored_crc, actual_crc));
  }
  const uint32_t version = GetU32(view.subspan(8));
  if (version != kBlockFormatVersion) {
    return Status::FailedPrecondition(
        Format("block format version %u, this build reads %u", version,
               kBlockFormatVersion));
  }
  const uint32_t kind = GetU32(view.subspan(12));
  if (kind != expected_kind) {
    return Status::FailedPrecondition(
        Format("block kind %u, expected %u", kind, expected_kind));
  }
  const uint32_t record_count = GetU32(view.subspan(16));

  BlockReader reader;
  reader.records_.reserve(record_count);
  size_t offset = kHeaderSize;
  const size_t payload_end = view.size() - kCrcSize;
  for (uint32_t i = 0; i < record_count; ++i) {
    if (offset + 4 > payload_end) {
      return Status::Corruption(
          Format("record %u length prefix overruns the block", i));
    }
    const uint32_t length = GetU32(view.subspan(offset));
    offset += 4;
    if (offset + length > payload_end) {
      return Status::Corruption(
          Format("record %u (%u bytes) overruns the block", i, length));
    }
    reader.records_.emplace_back(offset, length);
    offset += length;
  }
  if (offset != payload_end) {
    return Status::Corruption(
        Format("block has %zu trailing payload bytes", payload_end - offset));
  }
  reader.payload_ = std::move(bytes);
  return reader;
}

Result<std::span<const std::byte>> BlockReader::NextRecord(
    int64_t exact_size) {
  if (next_ >= records_.size()) {
    return Status::Corruption("read past the last record");
  }
  const auto [offset, length] = records_[next_];
  if (exact_size >= 0 && length != static_cast<size_t>(exact_size)) {
    return Status::Corruption(Format("record %zu is %zu bytes, expected %lld",
                                     next_, length,
                                     static_cast<long long>(exact_size)));
  }
  ++next_;
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(payload_.data()) + offset, length);
}

Result<uint32_t> BlockReader::ReadU32() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(4));
  return GetU32(record);
}

Result<uint64_t> BlockReader::ReadU64() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(8));
  return GetU64(record);
}

Result<std::vector<double>> BlockReader::ReadDoubles() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(-1));
  if (record.size() % 8 != 0) {
    return Status::Corruption(
        Format("double record of %zu bytes is not a multiple of 8",
               record.size()));
  }
  std::vector<double> out(record.size() / 8);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::bit_cast<double>(GetU64(record.subspan(i * 8)));
  }
  return out;
}

Result<std::vector<float>> BlockReader::ReadFloats() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(-1));
  if (record.size() % 4 != 0) {
    return Status::Corruption(
        Format("float record of %zu bytes is not a multiple of 4",
               record.size()));
  }
  std::vector<float> out(record.size() / 4);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::bit_cast<float>(GetU32(record.subspan(i * 4)));
  }
  return out;
}

Result<std::vector<size_t>> BlockReader::ReadSizes() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(-1));
  if (record.size() % 8 != 0) {
    return Status::Corruption(
        Format("size record of %zu bytes is not a multiple of 8",
               record.size()));
  }
  std::vector<size_t> out(record.size() / 8);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<size_t>(GetU64(record.subspan(i * 8)));
  }
  return out;
}

Result<std::string> BlockReader::ReadString() {
  CVCP_ASSIGN_OR_RETURN(std::span<const std::byte> record, NextRecord(-1));
  return std::string(reinterpret_cast<const char*>(record.data()),
                     record.size());
}

}  // namespace cvcp
