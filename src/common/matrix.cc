#include "common/matrix.h"

namespace cvcp {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& row : rows) {
    m.AppendRow(row);
  }
  return m;
}

void Matrix::SetRow(size_t r, std::span<const double> values) {
  CVCP_CHECK_LT(r, rows_);
  CVCP_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void Matrix::AppendRow(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  }
  CVCP_CHECK_EQ(values.size(), cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::vector<double> Matrix::ColumnMeans() const {
  if (rows_ == 0) return {};
  std::vector<double> means(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) means[c] += row[c];
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::ColumnMeans(
    std::span<const size_t> row_indices) const {
  std::vector<double> means(cols_, 0.0);
  if (row_indices.empty()) return means;
  for (size_t r : row_indices) {
    CVCP_CHECK_LT(r, rows_);
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) means[c] += row[c];
  }
  for (double& m : means) m /= static_cast<double>(row_indices.size());
  return means;
}

Matrix Matrix::SelectRows(std::span<const size_t> row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    out.SetRow(i, Row(row_indices[i]));
  }
  return out;
}

}  // namespace cvcp
