#ifndef CVCP_COMMON_THREAD_POOL_H_
#define CVCP_COMMON_THREAD_POOL_H_

/// \file
/// Fixed-size worker thread pool with help-while-waiting scheduling. This
/// is the process's parallel execution substrate: higher layers never
/// spawn raw threads, they submit tasks here (usually via ParallelFor,
/// parallel.h).
///
/// Nesting contract: the pool is *help-while-waiting* — a thread that has
/// to wait for submitted tasks (HelpWhileWaiting) pops queued tasks and
/// executes them on its own stack instead of blocking. Because every
/// waiting thread is also an executor, tasks may freely submit more tasks
/// and wait for them from any thread, including pool workers; nested
/// fan-outs can never deadlock (any unfinished task is either queued —
/// and will be picked up by a waiter — or already running on a thread
/// that makes progress the same way). The number of OS threads is fixed
/// at construction, so arbitrarily deep nesting queues work instead of
/// oversubscribing the machine.
///
/// Determinism contract: the pool schedules tasks in an arbitrary order on
/// an arbitrary thread (workers drain oldest-first; helping waiters drain
/// newest-first), so tasks must not depend on execution order and must
/// write to disjoint, pre-allocated result slots. Under that discipline a
/// fan-out produces bit-identical results for any worker count, which is
/// what lets CVCP guarantee parallel == serial output.

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cvcp {

/// Fixed-size worker pool. Workers are started in the constructor and
/// joined in the destructor; tasks submitted after shutdown begins are a
/// programming error (checked).
class ThreadPool {
 public:
  /// Starts `num_threads` (> 0) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Fire-and-forget enqueue: no future, no exception channel — `fn` must
  /// not throw (enforced: a task that leaks an exception into a helping
  /// waiter aborts with a diagnostic rather than unwinding the waiter's
  /// stack frame, which other lanes still reference). This is what
  /// ParallelFor uses for its claim-loop lanes
  /// (completion is signalled through the loop's own counter +
  /// NotifyCompletion, which is cheaper than one promise per lane and
  /// composes with HelpWhileWaiting).
  void Post(std::function<void()> fn) { Enqueue(std::move(fn)); }

  /// Pops one queued task (newest first) and runs it on the calling
  /// thread; returns false when the queue was empty. Waiters drain
  /// newest-first because the newest tasks belong to the deepest,
  /// finest-grained fan-outs — short tasks that keep the adopted-work
  /// latency low — while workers drain oldest-first (coarse outer lanes).
  bool TryRunOneTask();

  /// Help-while-waiting: runs queued tasks on the calling thread until
  /// `done()` returns true, blocking on the pool's condition variable when
  /// the queue is empty. `done` must be a cheap, thread-safe predicate
  /// (typically a relaxed/acquire atomic load); whoever makes it true must
  /// call NotifyCompletion() afterwards. Note the latency caveat: once a
  /// task is adopted it runs to completion, so the caller may return
  /// after `done()` became true by up to one adopted task's duration.
  void HelpWhileWaiting(const std::function<bool()>& done);

  /// Wakes threads blocked in HelpWhileWaiting so they re-check their
  /// predicate. Must be called after the change that makes a waiter's
  /// `done()` true.
  void NotifyCompletion();

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// Diagnostic only since the help-while-waiting scheduler landed:
  /// ParallelFor no longer needs to special-case worker threads (nested
  /// fan-outs enqueue like any other and waiters help), so nothing
  /// load-bearing reads this anymore.
  static bool OnWorkerThread();

  /// Process-wide shared pool, sized to the hardware concurrency (at least
  /// one worker), created on first use and intentionally kept alive for
  /// the process lifetime.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// Only written in the constructor, before any worker exists, and read
  /// lock-free afterwards (num_threads, destructor join) — immutable for
  /// the pool's concurrent lifetime, hence not guarded.
  std::vector<std::thread> workers_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_THREAD_POOL_H_
