#ifndef CVCP_COMMON_THREAD_POOL_H_
#define CVCP_COMMON_THREAD_POOL_H_

/// \file
/// Fixed-size worker thread pool with a task-futures API. This is the
/// process's parallel execution substrate: higher layers never spawn raw
/// threads, they submit tasks here (usually via ParallelFor, parallel.h).
///
/// Determinism contract: the pool schedules tasks in an arbitrary order on
/// an arbitrary worker, so tasks must not depend on execution order and
/// must write to disjoint, pre-allocated result slots. Under that
/// discipline a fan-out produces bit-identical results for any worker
/// count, which is what lets CVCP guarantee parallel == serial output.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cvcp {

/// Fixed-size worker pool. Workers are started in the constructor and
/// joined in the destructor; tasks submitted after shutdown begins are a
/// programming error (checked).
class ThreadPool {
 public:
  /// Starts `num_threads` (> 0) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// ParallelFor to run nested parallel sections inline instead of
  /// re-submitting to the pool (which could deadlock: every worker waiting
  /// on tasks that no free worker can run).
  static bool OnWorkerThread();

  /// Process-wide shared pool, sized to the hardware concurrency (at least
  /// one worker), created on first use and intentionally kept alive for
  /// the process lifetime.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_THREAD_POOL_H_
