#ifndef CVCP_COMMON_STRINGS_H_
#define CVCP_COMMON_STRINGS_H_

/// \file
/// Small string helpers used by the table/CSV printers and benches.

#include <string>
#include <vector>

namespace cvcp {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Fixed-width, `digits`-decimal representation of `v` ("0.7489"); NaN -> "—".
std::string FormatDouble(double v, int digits = 4);

}  // namespace cvcp

#endif  // CVCP_COMMON_STRINGS_H_
