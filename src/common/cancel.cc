#include "common/cancel.h"

namespace cvcp {

namespace internal {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace internal

Status CancelToken::Check() const {
  if (state_ == nullptr) return Status::OK();
  if (state_->cancelled.load(std::memory_order_acquire)) {
    return Status::Cancelled("cancelled by caller");
  }
  const int64_t deadline =
      state_->deadline_ns.load(std::memory_order_acquire);
  if (deadline != internal::CancelState::kNoDeadlineNs &&
      internal::SteadyNowNs() >= deadline) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

void CancelSource::SetDeadlineAfterMs(uint64_t ms) {
  state_->deadline_ns.store(
      internal::SteadyNowNs() + static_cast<int64_t>(ms) * 1000000,
      std::memory_order_release);
}

bool CancelSource::DeadlineExpired() const {
  const int64_t deadline =
      state_->deadline_ns.load(std::memory_order_acquire);
  return deadline != internal::CancelState::kNoDeadlineNs &&
         internal::SteadyNowNs() >= deadline;
}

}  // namespace cvcp
