#include "common/cancel.h"

namespace cvcp {

namespace internal {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace internal

Status CancelToken::Check() const {
  if (state_ == nullptr) return Status::OK();
  if (state_->cancelled.load(std::memory_order_acquire)) {
    return Status::Cancelled("cancelled by caller");
  }
  const int64_t deadline =
      state_->deadline_ns.load(std::memory_order_acquire);
  if (deadline != internal::CancelState::kNoDeadlineNs &&
      internal::SteadyNowNs() >= deadline) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

void CancelSource::SetDeadlineAfterMs(uint64_t ms) {
  // `ms` can be a client-controlled u64 straight off the wire
  // (JobSpec::deadline_ms), so the arithmetic must saturate: a deadline
  // too far out to represent as steady-clock nanoseconds can never fire,
  // which is exactly what kNoDeadlineNs means. Without the clamp the
  // multiply/add below would be signed-overflow UB and in practice wrap
  // into the past, failing the job immediately.
  const int64_t now = internal::SteadyNowNs();
  const uint64_t headroom_ns =
      static_cast<uint64_t>(internal::CancelState::kNoDeadlineNs) -
      static_cast<uint64_t>(now > 0 ? now : 0);
  if (ms >= headroom_ns / 1000000) {
    state_->deadline_ns.store(internal::CancelState::kNoDeadlineNs,
                              std::memory_order_release);
    return;
  }
  state_->deadline_ns.store(now + static_cast<int64_t>(ms) * 1000000,
                            std::memory_order_release);
}

bool CancelSource::DeadlineExpired() const {
  const int64_t deadline =
      state_->deadline_ns.load(std::memory_order_acquire);
  return deadline != internal::CancelState::kNoDeadlineNs &&
         internal::SteadyNowNs() >= deadline;
}

}  // namespace cvcp
