#ifndef CVCP_COMMON_MATRIX_H_
#define CVCP_COMMON_MATRIX_H_

/// \file
/// Dense row-major matrix of doubles: the numeric substrate for datasets,
/// centroids, and per-cluster metric weights. Deliberately minimal — no
/// expression templates, no BLAS; the paper's workloads are n <= a few
/// hundred and d <= 144, where simple contiguous loops are fastest anyway.

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace cvcp {

/// Row-major dense matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix filled with `init`.
  Matrix(size_t rows, size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Builds from a list of equally-sized rows.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    CVCP_DCHECK_LT(r, rows_);
    CVCP_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    CVCP_DCHECK_LT(r, rows_);
    CVCP_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Read-only view of row r.
  std::span<const double> Row(size_t r) const {
    CVCP_DCHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Mutable view of row r.
  std::span<double> MutableRow(size_t r) {
    CVCP_DCHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies row r into a new vector.
  std::vector<double> RowVector(size_t r) const {
    auto s = Row(r);
    return {s.begin(), s.end()};
  }

  /// Overwrites row r with `values` (size must equal cols()).
  void SetRow(size_t r, std::span<const double> values);

  /// Appends one row (size must equal cols(), unless the matrix is empty,
  /// in which case the row defines cols()).
  void AppendRow(std::span<const double> values);

  /// Column-wise mean of all rows; empty matrix yields an empty vector.
  std::vector<double> ColumnMeans() const;

  /// Column-wise mean over a subset of row indices.
  std::vector<double> ColumnMeans(std::span<const size_t> row_indices) const;

  /// Returns a matrix with only the given rows, in the given order.
  Matrix SelectRows(std::span<const size_t> row_indices) const;

  const std::vector<double>& data() const { return data_; }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_MATRIX_H_
