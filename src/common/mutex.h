#ifndef CVCP_COMMON_MUTEX_H_
#define CVCP_COMMON_MUTEX_H_

/// \file
/// Annotatable mutex primitives: thin wrappers over `std::mutex` /
/// `std::condition_variable` that carry the Clang thread-safety
/// attributes (common/thread_annotations.h). `std::mutex` itself is not
/// a `CAPABILITY`, so code locking it directly is invisible to
/// `-Wthread-safety`; every mutex-protected component in the tree
/// (thread_pool, parallel, sharded_cache, dataset_cache) holds a
/// `cvcp::Mutex` instead so the analysis can prove its `GUARDED_BY`
/// members are only touched under the lock.
///
/// The shim adds no state and no behavior beyond the wrapped std types:
/// `Mutex` is exactly a `std::mutex`, `MutexLock` is a non-movable
/// `lock_guard`, and `CondVar` is a `std::condition_variable` bound to
/// one `Mutex` for its lifetime (the LevelDB `port::CondVar` shape —
/// binding the mutex at construction keeps `Wait()` call sites to one
/// argument and makes cross-mutex waits unrepresentable).
///
/// Style rule the analysis enforces: predicate waits are written as
/// explicit `while (!cond) cv.Wait();` loops in the function that holds
/// the lock, never as predicate lambdas handed to the condition variable
/// — a lambda body is analyzed as a separate function that provably does
/// NOT hold the mutex, so guarded reads inside it would (rightly) fail
/// the analysis even though the wait contract makes them safe.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace cvcp {

/// An annotated `std::mutex`. Lock/Unlock/TryLock mirror the std names
/// used by the Clang attribute docs; `AssertHeld()` is a no-op marker
/// that tells the analysis a lock is held across a call boundary it
/// cannot see (unused so far — prefer `REQUIRES`).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (`std::lock_guard` semantics) over a `Mutex`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A condition variable used with a `Mutex`. `Wait(mu)` atomically
/// releases `*mu`, blocks, and reacquires it before returning — so from
/// the analysis's point of view the caller holds the lock continuously
/// across the call, which matches the invariant callers rely on. The
/// mutex is a per-call argument rather than bound at construction
/// (LevelDB binds it) deliberately: `REQUIRES(mu)` on a parameter is
/// checked by substituting the caller's argument, whereas a requirement
/// on a stored `mu_` member can never be aliased to the caller's held
/// lock by the intra-procedural analysis.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `*mu`, and every wait must use the same mutex;
  /// spurious wakeups happen, so every call sits in a
  /// `while (!condition)` loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex wrapper stays the owner.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed wait: like `Wait` but returns after at most `timeout_ms`
  /// milliseconds. Returns false on timeout, true when notified. Same
  /// contract otherwise — hold `*mu`, loop on the condition. Exists for
  /// periodic scanners (the server's deadline watchdog) that must wake on
  /// a schedule but still stop promptly when notified.
  bool WaitFor(Mutex* mu, int64_t timeout_ms) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_MUTEX_H_
