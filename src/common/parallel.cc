#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace cvcp {

int ExecutionContext::ResolvedThreads() const {
  if (threads > 0) return threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

NestedBudget SplitBudget(const ExecutionContext& exec, size_t outer_size,
                         int outer_threads) {
  const int total = exec.ResolvedThreads();
  NestedBudget split;
  if (outer_threads > 0) {
    // Explicit nesting mode: the caller fixes the outer width; a serial
    // outer loop hands the whole budget to the inner level.
    split.outer.threads = std::min(outer_threads, total);
    split.inner.threads = split.outer.threads > 1 ? 1 : total;
    return split;
  }
  if (total > 1 && outer_size >= static_cast<size_t>(total)) {
    split.outer.threads = total;
    split.inner.threads = 1;
  } else {
    split.outer.threads = 1;
    split.inner.threads = total;
  }
  return split;
}

NestedBudget PlanBudget(const ExecutionContext& exec, size_t outer_size,
                        int outer_threads, NestingPolicy policy) {
  if (policy == NestingPolicy::kSplit) {
    return SplitBudget(exec, outer_size, outer_threads);
  }
  const int total = exec.ResolvedThreads();
  NestedBudget plan;
  // Lanes: as many as the outer loop can use (even a forced width never
  // exceeds outer_size — phantom lanes would dilute the inner share and
  // underfill the budget), never more than the budget, at least one.
  const int absorbable = static_cast<int>(std::min<size_t>(
      outer_size > 0 ? outer_size : 1, static_cast<size_t>(total)));
  const int wanted =
      outer_threads > 0 ? std::min(outer_threads, absorbable) : absorbable;
  plan.outer.threads = std::max(1, std::min(wanted, total));
  // Each lane's inner share; ceil so the budget is never underfilled
  // (help-while-waiting soaks up the <= lanes - 1 rounding excess).
  plan.inner.threads =
      (total + plan.outer.threads - 1) / plan.outer.threads;
  return plan;
}

void ParallelFor(const ExecutionContext& exec, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = exec.ResolvedThreads();
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      // Same early-stop semantics as the pool path: a fired token means
      // the remaining iterations are skipped and the caller must not
      // consume the (partial) results without Check()ing the token.
      if (exec.cancel.Cancelled()) return;
      fn(i);
    }
    return;
  }

  ThreadPool& pool = ThreadPool::Shared();
  // The calling thread is lane 0; the remaining lanes go to the pool as
  // fire-and-forget tasks. Every lane runs the same dynamic claim loop
  // over one shared cursor, so indices are claimed in ascending order no
  // matter which lane runs them.
  const size_t lanes = std::min(static_cast<size_t>(threads), n);
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> pending{0};  ///< pool lanes not yet finished
    Mutex error_mu;
    /// First lane exception (scheduling-dependent). Written under
    /// error_mu by racing lanes; the caller's final read is lock-free but
    /// safe — it happens after the acquire on `pending` reaching 0, which
    /// orders every lane's release behind it.
    std::exception_ptr error GUARDED_BY(error_mu);
  };
  LoopState state;  // lanes hold references; all finish before we return
  state.pending.store(lanes - 1, std::memory_order_relaxed);

  auto claim_loop = [&state, &fn, n, &cancel = exec.cancel] {
    for (size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
         i < n; i = state.next.fetch_add(1, std::memory_order_relaxed)) {
      // Cooperative stop: once the token fires, no lane claims another
      // index. A no-op (one null test) for the default token.
      if (cancel.Cancelled()) return;
      fn(i);
    }
  };
  for (size_t t = 1; t < lanes; ++t) {
    pool.Post([&state, &claim_loop, &pool] {
      try {
        claim_loop();
      } catch (...) {
        MutexLock lock(&state.error_mu);
        if (!state.error) state.error = std::current_exception();
      }
      // Last touch of `state`: the release pairs with the caller's
      // acquire load so lane writes (slots, error) happen-before return.
      state.pending.fetch_sub(1, std::memory_order_release);
      pool.NotifyCompletion();
    });
  }

  std::exception_ptr caller_error;
  try {
    claim_loop();
  } catch (...) {
    caller_error = std::current_exception();
  }
  // Out of indices: help while waiting. Queued tasks — other loops' lanes,
  // typically nested fan-outs spawned by this loop's own iterations — run
  // on this thread until our lanes have all drained the cursor.
  pool.HelpWhileWaiting([&state] {
    return state.pending.load(std::memory_order_acquire) == 0;
  });
  // All lanes are done (acquire above), so the lock is uncontended; it is
  // taken anyway because `error` is GUARDED_BY(error_mu) and the analysis
  // is right that lock-free finalization only works under a memory-order
  // argument it cannot check.
  MutexLock lock(&state.error_mu);
  if (!state.error && caller_error) state.error = caller_error;
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace cvcp
