#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace cvcp {

int ExecutionContext::ResolvedThreads() const {
  if (threads > 0) return threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

NestedBudget SplitBudget(const ExecutionContext& exec, size_t outer_size,
                         int outer_threads) {
  const int total = exec.ResolvedThreads();
  NestedBudget split;
  if (outer_threads > 0) {
    // Explicit nesting mode: the caller fixes the outer width; a serial
    // outer loop hands the whole budget to the inner level.
    split.outer.threads = std::min(outer_threads, total);
    split.inner.threads = split.outer.threads > 1 ? 1 : total;
    return split;
  }
  if (total > 1 && outer_size >= static_cast<size_t>(total)) {
    split.outer.threads = total;
    split.inner.threads = 1;
  } else {
    split.outer.threads = 1;
    split.inner.threads = total;
  }
  return split;
}

void ParallelFor(const ExecutionContext& exec, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = exec.ResolvedThreads();
  if (threads <= 1 || n == 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = ThreadPool::Shared();
  const size_t num_tasks = std::min(static_cast<size_t>(threads), n);
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(num_tasks);
  for (size_t t = 0; t < num_tasks; ++t) {
    futures.push_back(pool.Submit([&next, &fn, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  // Wait for *every* task before unwinding — they reference this frame.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cvcp
