#ifndef CVCP_COMMON_CANCEL_H_
#define CVCP_COMMON_CANCEL_H_

/// \file
/// Cooperative cancellation with monotonic deadlines.
///
/// A `CancelSource` owns the cancellation state for one unit of work (one
/// service job, one direct `RunCvcp` call). It hands out `CancelToken`
/// views that are cheap to copy and ride inside `ExecutionContext`, so the
/// engine can poll them at (param, fold) cell boundaries without any
/// additional plumbing. Cancellation is strictly cooperative: firing a
/// token never interrupts a running computation, it only makes the next
/// boundary check fail with `kCancelled` or `kDeadlineExceeded`.
///
/// Determinism contract: a token can change *whether* a run completes,
/// never *what* a completed run produces. Code that publishes shared
/// artifacts (distance matrices, OPTICS models) must not let a live token
/// skip part of the build — see `DistanceMatrix::Compute`, which strips
/// the token so published artifacts are always complete.
///
/// Deadlines use `std::chrono::steady_clock` (monotonic): wall-clock
/// adjustments can neither fire nor defer them.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace cvcp {

namespace internal {

/// Shared state behind a source and all of its tokens. Lock-free: a flag
/// plus the deadline as steady-clock nanoseconds (kNoDeadlineNs = unset).
struct CancelState {
  static constexpr int64_t kNoDeadlineNs = INT64_MAX;

  std::atomic<bool> cancelled{false};
  std::atomic<int64_t> deadline_ns{kNoDeadlineNs};
};

/// steady_clock::now() as nanoseconds since the clock's epoch.
int64_t SteadyNowNs();

}  // namespace internal

/// Cheap copyable view of a CancelSource's state. The default-constructed
/// token is "never cancels": `Check()` is a single null test, so plumbing
/// a token member through every ExecutionContext costs nothing for code
/// that never sets one.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is attached to a source (and so could fire).
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// True when cancellation was requested or the deadline has passed.
  bool Cancelled() const { return !Check().ok(); }

  /// OK, or kCancelled / kDeadlineExceeded. A cancel request wins over an
  /// expired deadline (checked first) so the outcome of "cancel then
  /// timeout" races is pinned.
  Status Check() const;

  bool operator==(const CancelToken& other) const = default;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal::CancelState> state_;
};

/// Owner side: requests cancellation and sets the deadline. Thread-safe;
/// tokens may be checked concurrently with RequestCancel/SetDeadline*.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// Makes every token fail its next Check() with kCancelled. Idempotent.
  void RequestCancel() {
    state_->cancelled.store(true, std::memory_order_release);
  }

  bool CancelRequested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// Sets an absolute monotonic deadline. Last call wins.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  /// Sets the deadline `ms` milliseconds from now.
  void SetDeadlineAfterMs(uint64_t ms);

  /// True when a deadline is set and has passed.
  bool DeadlineExpired() const;

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_CANCEL_H_
