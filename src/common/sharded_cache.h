#ifndef CVCP_COMMON_SHARDED_CACHE_H_
#define CVCP_COMMON_SHARDED_CACHE_H_

/// \file
/// A capacity-bounded, sharded LRU cache for arbitrary heap artifacts —
/// the memory tier of the artifact store (LevelDB's `util/cache.cc`
/// striping, with std::shared_ptr standing in for the manual handle
/// refcounts). Keys stripe across N independently-locked shards by hash,
/// so concurrent trial lanes touching different artifacts never contend
/// on one mutex; each shard evicts least-recently-used entries once its
/// slice of the capacity is exceeded.
///
/// Values are type-erased `std::shared_ptr<const void>` with an explicit
/// *charge* (the artifact's approximate byte footprint) — the cache
/// bounds the sum of charges, not the entry count, because a condensed
/// distance matrix for n = 10⁴ costs ~400 MB while a small OPTICS model
/// costs kilobytes. Eviction only drops the cache's reference: callers
/// holding a shared_ptr keep using the artifact safely, and a later
/// lookup simply misses and recomputes (deterministically identical
/// values, so eviction is unobservable in results — the engine-wide
/// contract).
///
/// Never blocks across a build: `InsertOrGet` is the publication
/// primitive for the duplicate-on-race discipline (dataset_cache.h) —
/// the first publisher's value wins and every racer adopts it.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cvcp {

/// Thread-safe sharded LRU over string keys. All methods are safe to
/// call concurrently; operations on different shards never contend.
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const void>;

  /// `capacity_bytes` bounds the sum of charges across all shards
  /// (divided evenly; each shard enforces its slice). `num_shards` is
  /// rounded up to a power of two, minimum 1.
  explicit ShardedLruCache(size_t capacity_bytes, int num_shards = 16);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Publishes `value` under `key` unless some racer got there first, in
  /// which case the resident value is returned instead and `value` is
  /// dropped (first publisher wins). A hit also refreshes recency. May
  /// evict LRU entries of the same shard.
  ValuePtr InsertOrGet(const std::string& key, ValuePtr value, size_t charge);

  /// The resident value, refreshing its recency, or nullptr on a miss.
  ValuePtr Lookup(const std::string& key);

  /// Typed convenience over Lookup — the caller asserts the key's type
  /// (keys embed the artifact kind, so a mismatch is a key-scheme bug).
  template <typename T>
  std::shared_ptr<const T> LookupAs(const std::string& key) {
    return std::static_pointer_cast<const T>(Lookup(key));
  }

  /// Drops `key` if resident (outstanding shared_ptrs stay valid).
  void Erase(const std::string& key);

  /// Effectiveness and occupancy counters, aggregated over shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;    ///< successful first publications
    uint64_t evictions = 0;  ///< entries dropped to respect capacity
    size_t charge = 0;       ///< resident bytes (sum of charges)
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity_bytes() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::string key;
    ValuePtr value;
    size_t charge = 0;
  };
  /// One stripe: its own lock, recency list (front = most recent), and
  /// key index into the list.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    size_t charge GUARDED_BY(mu) = 0;
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t inserts GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key);
  /// Drops LRU entries until the shard fits its capacity slice. Caller
  /// holds the shard lock; evicted values are destroyed *after* the lock
  /// is released (appended to `graveyard`) so a value's destructor can
  /// never run under the shard mutex.
  void EvictIfNeeded(Shard* shard, std::vector<ValuePtr>* graveyard)
      REQUIRES(shard->mu);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_SHARDED_CACHE_H_
