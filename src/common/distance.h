#ifndef CVCP_COMMON_DISTANCE_H_
#define CVCP_COMMON_DISTANCE_H_

/// \file
/// Distance metrics and a condensed pairwise distance matrix. Weighted
/// squared Euclidean (diagonal Mahalanobis) is the form MPCKMeans learns.

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/matrix.h"
#include "common/parallel.h"

namespace cvcp {

/// Supported point-to-point metrics.
enum class Metric {
  kEuclidean,
  kSquaredEuclidean,
  kManhattan,
  kCosine,  ///< 1 - cosine similarity; zero vectors are at distance 1.
};

/// Distance between two equal-length vectors under `metric`.
double Distance(std::span<const double> a, std::span<const double> b,
                Metric metric);

/// Opt-in 4-accumulator-unrolled inner loops for the squared-Euclidean,
/// Manhattan, and weighted squared-Euclidean kernels (process-wide,
/// thread-safe). OFF by default and deliberately so: the unrolled kernels
/// reassociate the floating-point sums, which is faster on wide cores but
/// NOT bitwise-identical to the scalar left-to-right order — enabling
/// them opts out of the byte-identical determinism contract (results
/// differ from the scalar kernels by rounding, typically ~1 ulp per
/// term). Benches expose this as `--distance-kernel scalar|unrolled`.
void SetUnrolledDistanceKernels(bool enabled);

/// Current process-wide kernel choice (false = bitwise-compat scalar).
bool UnrolledDistanceKernelsEnabled();

double EuclideanDistance(std::span<const double> a, std::span<const double> b);
double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b);
double ManhattanDistance(std::span<const double> a, std::span<const double> b);
double CosineDistance(std::span<const double> a, std::span<const double> b);

/// Diagonal-Mahalanobis squared distance: sum_m w[m] * (a[m]-b[m])^2.
/// Weights must be non-negative.
double WeightedSquaredEuclidean(std::span<const double> a,
                                std::span<const double> b,
                                std::span<const double> weights);

/// Precomputed symmetric pairwise distances, condensed upper-triangular
/// storage: n*(n-1)/2 doubles. Diagonal is implicitly zero.
class DistanceMatrix {
 public:
  DistanceMatrix() : n_(0) {}

  /// Computes all pairwise distances between rows of `points`. Row blocks
  /// are computed in parallel on the shared pool (exec.threads workers);
  /// every entry lands in its own condensed slot, so the result is
  /// bit-identical for any thread count.
  static DistanceMatrix Compute(const Matrix& points, Metric metric,
                                const ExecutionContext& exec = {});

  /// Rehydrates a matrix from condensed storage (the artifact store's
  /// deserialization path). `data` must hold exactly n*(n-1)/2 entries.
  static DistanceMatrix FromCondensed(size_t n, std::vector<double> data);

  size_t n() const { return n_; }

  /// The raw condensed upper-triangular storage, in CondensedIndex order
  /// (the artifact store's serialization path).
  const std::vector<double>& condensed() const { return data_; }

  /// Distance between objects i and j (order-insensitive).
  double operator()(size_t i, size_t j) const {
    CVCP_DCHECK_LT(i, n_);
    CVCP_DCHECK_LT(j, n_);
    if (i == j) return 0.0;
    return data_[CondensedIndex(i, j)];
  }

  /// Index of the (i, j) pair (i != j, order-insensitive) in the condensed
  /// row-major upper-triangular storage. Exposed so tests can pin the
  /// addressing scheme the parallel Compute writes into.
  size_t CondensedIndex(size_t i, size_t j) const {
    CVCP_DCHECK_LT(i, n_);
    CVCP_DCHECK_LT(j, n_);
    CVCP_DCHECK(i != j);  // the diagonal has no condensed slot
    if (i > j) std::swap(i, j);
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

 private:
  size_t n_;
  std::vector<double> data_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_DISTANCE_H_
