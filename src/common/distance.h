#ifndef CVCP_COMMON_DISTANCE_H_
#define CVCP_COMMON_DISTANCE_H_

/// \file
/// Distance metrics and a condensed pairwise distance matrix. Weighted
/// squared Euclidean (diagonal Mahalanobis) is the form MPCKMeans learns.
///
/// Every entry point takes an optional `DistanceKernelPolicy`
/// (common/kernel_policy.h) selecting the inner-loop implementation;
/// `kDefault` resolves to the process default (fixed-lane SIMD unless
/// `CVCP_DISTANCE_KERNEL` says otherwise). Within one policy, results
/// are bitwise-identical for any thread count, tiling, and hardware.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/kernel_policy.h"
#include "common/matrix.h"
#include "common/parallel.h"

namespace cvcp {

/// Supported point-to-point metrics.
enum class Metric {
  kEuclidean,
  kSquaredEuclidean,
  kManhattan,
  kCosine,  ///< 1 - cosine similarity; zero vectors are at distance 1.
};

/// Distance between two equal-length vectors under `metric`.
double Distance(std::span<const double> a, std::span<const double> b,
                Metric metric,
                DistanceKernelPolicy policy = DistanceKernelPolicy::kDefault);

double EuclideanDistance(std::span<const double> a, std::span<const double> b,
                         DistanceKernelPolicy policy =
                             DistanceKernelPolicy::kDefault);
double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b,
                                DistanceKernelPolicy policy =
                                    DistanceKernelPolicy::kDefault);
double ManhattanDistance(std::span<const double> a, std::span<const double> b,
                         DistanceKernelPolicy policy =
                             DistanceKernelPolicy::kDefault);
double CosineDistance(std::span<const double> a, std::span<const double> b,
                      DistanceKernelPolicy policy =
                          DistanceKernelPolicy::kDefault);

/// Diagonal-Mahalanobis squared distance: sum_m w[m] * (a[m]-b[m])^2.
/// Weights must be non-negative.
double WeightedSquaredEuclidean(std::span<const double> a,
                                std::span<const double> b,
                                std::span<const double> weights,
                                DistanceKernelPolicy policy =
                                    DistanceKernelPolicy::kDefault);

/// DEPRECATED shim over SetDefaultDistanceKernelPolicy: `true` sets the
/// process-default policy to `kUnrolled`, `false` restores the modern
/// default (`kFixedLane`). Kept so old callers keep compiling; new code
/// should thread a DistanceKernelPolicy through ExecutionContext (or set
/// the default explicitly). Pinned by tests/distance_kernels_test.cc.
void SetUnrolledDistanceKernels(bool enabled);

/// DEPRECATED shim: whether the process-default policy is `kUnrolled`.
bool UnrolledDistanceKernelsEnabled();

/// Deterministic double→float narrowing for the f32 storage mode.
/// `static_cast<float>` of a finite double beyond float range is
/// undefined behavior ([conv.double]), so the overflow case is made
/// explicit: finite values at or past the IEEE round-to-nearest-even
/// overflow threshold (0x1.ffffffp+127, halfway between FLT_MAX and
/// 2^128) saturate to ±infinity, and everything below it narrows with
/// the ordinary correctly-rounded cast — bit-identical to what
/// hardware conversion produces for every input, but defined for all
/// of them. Every f32 narrowing site must go through this helper
/// (pinned by tests/distance_test.cc's overflow cases and the
/// float-cast-overflow sanitizer leg of the asan-ubsan CI job).
inline float NarrowToF32(double value) {
  constexpr double kOverflowThreshold = 0x1.ffffffp+127;
  if (value >= kOverflowThreshold) {
    return std::numeric_limits<float>::infinity();
  }
  if (value <= -kOverflowThreshold) {
    return -std::numeric_limits<float>::infinity();
  }
  return static_cast<float>(value);
}

/// Precomputed symmetric pairwise distances, condensed upper-triangular
/// storage: n*(n-1)/2 values. Diagonal is implicitly zero. Values are
/// always computed in double precision; the storage mode optionally
/// narrows them to float (DistanceStorage::kF32) for half the memory.
class DistanceMatrix {
 public:
  DistanceMatrix() : n_(0) {}

  /// Computes all pairwise distances between rows of `points` with a
  /// tiled (cache-blocked) sweep: row-panel × column-panel tiles sized
  /// to L2, the column panel repacked into a contiguous scratch buffer,
  /// one parallel task per tile. Each pair's value is a pure function of
  /// its two rows under `exec.distance_kernel`, and every entry lands in
  /// its own condensed slot, so the result is bit-identical for any
  /// thread count and any tile shape (pinned against ComputeUntiled).
  static DistanceMatrix Compute(const Matrix& points, Metric metric,
                                const ExecutionContext& exec = {},
                                DistanceStorage storage =
                                    DistanceStorage::kF64);

  /// The pre-tiling row sweep (one task per row), kept as the oracle the
  /// tiled build is pinned against and as the bench baseline. f64 only.
  static DistanceMatrix ComputeUntiled(const Matrix& points, Metric metric,
                                       const ExecutionContext& exec = {});

  /// Rehydrates a matrix from condensed f64 storage (the artifact
  /// store's deserialization path). `data` must hold exactly n*(n-1)/2
  /// entries.
  static DistanceMatrix FromCondensed(size_t n, std::vector<double> data);

  /// Rehydrates a matrix from condensed f32 storage.
  static DistanceMatrix FromCondensed32(size_t n, std::vector<float> data);

  size_t n() const { return n_; }

  /// How the condensed values are stored (f64 unless Compute was asked
  /// for f32).
  DistanceStorage storage() const { return storage_; }

  /// The raw condensed upper-triangular f64 storage, in CondensedIndex
  /// order (the artifact store's serialization path). Only valid when
  /// `storage() == kF64`.
  const std::vector<double>& condensed() const {
    CVCP_CHECK(storage_ == DistanceStorage::kF64);
    return data_;
  }

  /// The raw condensed f32 storage. Only valid when `storage() == kF32`.
  const std::vector<float>& condensed32() const {
    CVCP_CHECK(storage_ == DistanceStorage::kF32);
    return data32_;
  }

  /// Bytes held by the condensed storage (the memory-tier cache charge).
  size_t MemoryBytes() const {
    return data_.size() * sizeof(double) + data32_.size() * sizeof(float);
  }

  /// Distance between objects i and j (order-insensitive). f32 storage
  /// widens back to double on read.
  double operator()(size_t i, size_t j) const {
    CVCP_DCHECK_LT(i, n_);
    CVCP_DCHECK_LT(j, n_);
    if (i == j) return 0.0;
    const size_t idx = CondensedIndex(i, j);
    return storage_ == DistanceStorage::kF32
               ? static_cast<double>(data32_[idx])
               : data_[idx];
  }

  /// Index of the (i, j) pair (i != j, order-insensitive) in the condensed
  /// row-major upper-triangular storage. Exposed so tests can pin the
  /// addressing scheme the parallel Compute writes into.
  size_t CondensedIndex(size_t i, size_t j) const {
    CVCP_DCHECK_LT(i, n_);
    CVCP_DCHECK_LT(j, n_);
    CVCP_DCHECK(i != j);  // the diagonal has no condensed slot
    if (i > j) std::swap(i, j);
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

 private:
  size_t n_;
  DistanceStorage storage_ = DistanceStorage::kF64;
  std::vector<double> data_;
  std::vector<float> data32_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_DISTANCE_H_
