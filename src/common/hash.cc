#include "common/hash.h"

#include <array>

namespace cvcp {

namespace {

/// The 256-entry lookup table for reflected CRC-32/ISO-HDLC, generated at
/// compile time so the table itself can never drift from the polynomial.
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32(std::span<const std::byte> data, uint32_t seed) {
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    crc = (crc >> 8) ^
          kCrc32Table[(crc ^ static_cast<uint32_t>(b)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  return Crc32(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

uint64_t Hash64(std::span<const std::byte> data, uint64_t seed) {
  uint64_t hash = seed;
  for (std::byte b : data) {
    hash ^= static_cast<uint64_t>(b);
    hash *= 0x100000001b3ull;  // FNV-1a prime
  }
  return hash;
}

uint64_t Hash64(const void* data, size_t size, uint64_t seed) {
  return Hash64(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

uint64_t Hash64(std::string_view s, uint64_t seed) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace cvcp
