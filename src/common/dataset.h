#ifndef CVCP_COMMON_DATASET_H_
#define CVCP_COMMON_DATASET_H_

/// \file
/// A Dataset couples a point matrix with optional ground-truth class labels.
/// Labels are used (a) by the supervision oracle to sample labeled objects /
/// constraint pools, and (b) by the external evaluation (Overall F-Measure).
/// The clustering algorithms themselves never see them.

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/matrix.h"

namespace cvcp {

/// Points + optional ground-truth labels + a display name.
class Dataset {
 public:
  Dataset() = default;

  /// Unlabeled dataset.
  Dataset(std::string name, Matrix points)
      : name_(std::move(name)), points_(std::move(points)) {}

  /// Labeled dataset; labels must be non-negative class ids, one per row.
  Dataset(std::string name, Matrix points, std::vector<int> labels)
      : name_(std::move(name)),
        points_(std::move(points)),
        labels_(std::move(labels)) {
    CVCP_CHECK_EQ(labels_.size(), points_.rows());
    for (int l : labels_) CVCP_CHECK_GE(l, 0);
  }

  const std::string& name() const { return name_; }
  const Matrix& points() const { return points_; }
  size_t size() const { return points_.rows(); }
  size_t dims() const { return points_.cols(); }

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int>& labels() const { return labels_; }
  int label(size_t i) const {
    CVCP_CHECK(has_labels());
    CVCP_CHECK_LT(i, labels_.size());
    return labels_[i];
  }

  /// Number of distinct classes (max label + 1).
  int NumClasses() const;

  /// Objects per class id; length NumClasses().
  std::vector<size_t> ClassSizes() const;

  /// Indices of all objects with the given class label.
  std::vector<size_t> ObjectsOfClass(int cls) const;

 private:
  std::string name_;
  Matrix points_;
  std::vector<int> labels_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_DATASET_H_
