#ifndef CVCP_COMMON_CSV_H_
#define CVCP_COMMON_CSV_H_

/// \file
/// Minimal CSV writer (RFC-4180 quoting) so bench binaries can optionally
/// dump machine-readable results next to the printed tables.

#include <string>
#include <vector>

#include "common/status.h"

namespace cvcp {

/// Accumulates rows and writes them as CSV.
class CsvWriter {
 public:
  /// Appends one row; fields are quoted as needed on output.
  void AddRow(const std::vector<std::string>& fields);

  /// All accumulated rows as one CSV string.
  std::string ToString() const;

  /// Writes ToString() to `path`.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (RFC-4180: quoted fields, escaped quotes, CRLF).
/// Returns rows of fields.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

}  // namespace cvcp

#endif  // CVCP_COMMON_CSV_H_
