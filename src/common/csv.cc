#include "common/csv.h"

#include <fstream>

namespace cvcp {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::AddRow(const std::vector<std::string>& fields) {
  rows_.push_back(fields);
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  file << ToString();
  if (!file.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        row.push_back(field);
        field.clear();
        field_started = true;
        break;
      case '\r':
        break;  // handled with the following \n (or ignored)
      case '\n':
        if (field_started || !field.empty() || !row.empty()) {
          row.push_back(field);
          rows.push_back(row);
        }
        field.clear();
        row.clear();
        field_started = false;
        break;
      default:
        field += c;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    row.push_back(field);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cvcp
