#ifndef CVCP_COMMON_BLOCK_FORMAT_H_
#define CVCP_COMMON_BLOCK_FORMAT_H_

/// \file
/// The checksummed, versioned block format every persisted artifact uses
/// (the SSTable block/builder/reader idea scaled down to one block per
/// file). A block is a self-describing byte string:
///
///   [u64 magic][u32 format version][u32 kind][u32 record count]
///   [record]...[record][u32 crc32]
///
/// where each record is length-prefixed — [u32 length][length bytes] —
/// and the trailing CRC-32 covers *everything* before it, header
/// included. All integers are little-endian; doubles are stored as their
/// IEEE-754 bit patterns (via u64), so a round trip reproduces every
/// value bit for bit — including NaNs and the +infinity sentinels in
/// OPTICS reachability plots. That bit-exactness is what lets the
/// artifact store promise byte-identical results whether a structure was
/// computed, cached, or read back from disk.
///
/// Failure policy: `BlockBuilder` cannot fail; `BlockReader::Open`
/// classifies every defect so callers can count miss reasons —
/// kCorruption for a bad magic, bad CRC, truncation, or a record that
/// overruns the payload; kFailedPrecondition for a format-version or
/// kind mismatch (the bytes are intact, this build just cannot or should
/// not interpret them). Readers treat any of these as a cache miss and
/// recompute; they must never interpret partial bytes.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace cvcp {

/// "CVCPBLK1" as a little-endian u64 — the first 8 bytes of every
/// artifact file.
inline constexpr uint64_t kBlockMagic = 0x314B4C4250435643ull;

/// Bumped whenever any encoder changes meaning; a mismatch makes every
/// stored artifact a (version-skew) miss, never a misread.
inline constexpr uint32_t kBlockFormatVersion = 1;

/// Accumulates length-prefixed records and seals them into one
/// checksummed block. Append order is the contract: readers consume
/// records in the same sequence.
class BlockBuilder {
 public:
  /// `kind` tags what the block encodes (an ArtifactKind in the store);
  /// readers refuse blocks of the wrong kind before touching any record.
  explicit BlockBuilder(uint32_t kind) : kind_(kind) {}

  /// One raw record.
  void AppendRecord(std::span<const std::byte> bytes);

  /// Typed helpers — each appends exactly one record.
  void AppendU32(uint32_t v);
  void AppendU64(uint64_t v);
  void AppendDoubles(std::span<const double> values);
  /// f32 values as their IEEE-754 bit patterns (via u32) — the condensed
  /// payload of float32-storage distance matrices. Bit-exact round trip,
  /// NaNs included, same as AppendDoubles.
  void AppendFloats(std::span<const float> values);
  void AppendSizes(std::span<const size_t> values);  ///< stored as u64s
  void AppendString(std::string_view s);

  /// Seals the block: header + records + CRC. The builder can be reused
  /// (`Finish` does not clear it), but normally one builder = one block.
  std::string Finish() const;

 private:
  uint32_t kind_;
  std::vector<std::string> records_;
};

/// The kind field of a block's header without validating the CRC — for
/// `ls`-style inspection of files whose kind is not known in advance.
/// Fails (kCorruption) on a short header or wrong magic.
Result<uint32_t> PeekBlockKind(std::string_view bytes);

/// Sequential typed reader over a sealed block. `Open` validates the
/// frame (magic, version, kind, CRC, record lengths) up front, so the
/// Read* calls afterwards only fail on a schema mismatch (wrong record
/// count or size — also kCorruption, the encoder and decoder disagree).
class BlockReader {
 public:
  /// Validates `bytes` as a block of `expected_kind`. The reader keeps a
  /// copy of the payload, so the argument may be a temporary.
  static Result<BlockReader> Open(std::string bytes, uint32_t expected_kind);

  /// Records remaining to consume.
  size_t remaining() const { return records_.size() - next_; }

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  /// The next record as a vector of doubles (record length must be a
  /// multiple of 8).
  Result<std::vector<double>> ReadDoubles();
  /// The next record as a vector of floats (record length must be a
  /// multiple of 4).
  Result<std::vector<float>> ReadFloats();
  Result<std::vector<size_t>> ReadSizes();
  Result<std::string> ReadString();

 private:
  BlockReader() = default;

  /// Consumes the next record, requiring an exact byte length when
  /// `exact_size` >= 0.
  Result<std::span<const std::byte>> NextRecord(int64_t exact_size);

  std::string payload_;
  std::vector<std::pair<size_t, size_t>> records_;  ///< (offset, length)
  size_t next_ = 0;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_BLOCK_FORMAT_H_
