#include "common/dataset.h"

#include <algorithm>

namespace cvcp {

int Dataset::NumClasses() const {
  if (labels_.empty()) return 0;
  return *std::max_element(labels_.begin(), labels_.end()) + 1;
}

std::vector<size_t> Dataset::ClassSizes() const {
  std::vector<size_t> sizes(static_cast<size_t>(NumClasses()), 0);
  for (int l : labels_) sizes[static_cast<size_t>(l)]++;
  return sizes;
}

std::vector<size_t> Dataset::ObjectsOfClass(int cls) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == cls) out.push_back(i);
  }
  return out;
}

}  // namespace cvcp
