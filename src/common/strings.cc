#include "common/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace cvcp {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\n' ||
          s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double v, int digits) {
  if (std::isnan(v)) return "—";
  return Format("%.*f", digits, v);
}

}  // namespace cvcp
