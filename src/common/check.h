#ifndef CVCP_COMMON_CHECK_H_
#define CVCP_COMMON_CHECK_H_

/// \file
/// Invariant-checking macros. `CVCP_CHECK*` are always active and abort the
/// process with a diagnostic on failure; `CVCP_DCHECK*` compile away in
/// release builds (NDEBUG). Library code uses these for *programming errors*
/// only — recoverable conditions go through Status/Result (see status.h).

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cvcp {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << condition;
  if (!message.empty()) {
    std::cerr << " — " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

/// Builds the failure message lazily from streamable parts.
template <typename... Args>
std::string CheckMessage(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace internal
}  // namespace cvcp

#define CVCP_CHECK(condition)                                          \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::cvcp::internal::CheckFail(__FILE__, __LINE__, #condition, ""); \
    }                                                                  \
  } while (false)

#define CVCP_CHECK_MSG(condition, ...)                          \
  do {                                                          \
    if (!(condition)) {                                         \
      ::cvcp::internal::CheckFail(                              \
          __FILE__, __LINE__, #condition,                       \
          ::cvcp::internal::CheckMessage(__VA_ARGS__));         \
    }                                                           \
  } while (false)

#define CVCP_CHECK_OP(op, a, b)                                              \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      ::cvcp::internal::CheckFail(                                           \
          __FILE__, __LINE__, #a " " #op " " #b,                             \
          ::cvcp::internal::CheckMessage("lhs=", (a), " rhs=", (b)));        \
    }                                                                        \
  } while (false)

#define CVCP_CHECK_EQ(a, b) CVCP_CHECK_OP(==, a, b)
#define CVCP_CHECK_NE(a, b) CVCP_CHECK_OP(!=, a, b)
#define CVCP_CHECK_LT(a, b) CVCP_CHECK_OP(<, a, b)
#define CVCP_CHECK_LE(a, b) CVCP_CHECK_OP(<=, a, b)
#define CVCP_CHECK_GT(a, b) CVCP_CHECK_OP(>, a, b)
#define CVCP_CHECK_GE(a, b) CVCP_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define CVCP_DCHECK(condition) \
  do {                         \
  } while (false)
#define CVCP_DCHECK_EQ(a, b) CVCP_DCHECK((a) == (b))
#define CVCP_DCHECK_LT(a, b) CVCP_DCHECK((a) < (b))
#define CVCP_DCHECK_LE(a, b) CVCP_DCHECK((a) <= (b))
#else
#define CVCP_DCHECK(condition) CVCP_CHECK(condition)
#define CVCP_DCHECK_EQ(a, b) CVCP_CHECK_EQ(a, b)
#define CVCP_DCHECK_LT(a, b) CVCP_CHECK_LT(a, b)
#define CVCP_DCHECK_LE(a, b) CVCP_CHECK_LE(a, b)
#endif

#endif  // CVCP_COMMON_CHECK_H_
