#ifndef CVCP_COMMON_KERNEL_POLICY_H_
#define CVCP_COMMON_KERNEL_POLICY_H_

/// \file
/// The distance-kernel policy: which inner-loop implementation every
/// distance computation in a run uses. The policy is explicit config
/// state — it rides in `ExecutionContext` (common/parallel.h) through
/// `ClusterContext`, `TrialSpec`, and `BenchOptions` — not a hidden
/// process-wide mode. A process-wide *default* still exists, but only as
/// the resolution target of the `kDefault` sentinel (so tests and tools
/// that build contexts without explicit policy follow the environment),
/// and it is initialized once from `CVCP_DISTANCE_KERNEL`.
///
/// Determinism: `kFixedLane` is the default and is bitwise-reproducible
/// for any thread count and across scalar-emulated vs vector hardware,
/// because every implementation (portable scalar reference, AVX2, NEON)
/// commits to the same fixed 8-lane strided accumulation order and the
/// same lane-reduction tree (see common/distance_kernels.h). The legacy
/// left-to-right scalar order stays available as `kScalarLegacy`; the
/// reassociated 4-accumulator unrolled kernels stay as `kUnrolled`.
/// Within one policy, results are byte-identical everywhere; across
/// policies they differ by rounding (~1 ulp per term).

namespace cvcp {

/// Which distance-kernel implementation to use.
enum class DistanceKernelPolicy {
  /// Sentinel: resolve to the process default (env-initialized).
  kDefault = 0,
  /// Fixed 8-lane strided accumulation (SIMD when available, portable
  /// scalar otherwise — bitwise identical either way). The default.
  kFixedLane = 1,
  /// The original left-to-right scalar loops (pre-SIMD byte baseline).
  kScalarLegacy = 2,
  /// 4-accumulator unrolled scalar loops (reassociated sums).
  kUnrolled = 3,
};

/// The process default that `kDefault` resolves to. Initialized once,
/// lazily, from `CVCP_DISTANCE_KERNEL` ("fixed" / "fixed-lane",
/// "scalar-legacy" / "scalar", "unrolled"); `kFixedLane` when the
/// variable is unset or unrecognized.
DistanceKernelPolicy DefaultDistanceKernelPolicy();

/// Overrides the process default (thread-safe). `policy` must not be
/// `kDefault`. Prefer threading the policy through `ExecutionContext`;
/// this exists for the bench flag layer and the deprecated
/// `SetUnrolledDistanceKernels` shim.
void SetDefaultDistanceKernelPolicy(DistanceKernelPolicy policy);

/// `policy`, with `kDefault` resolved to `DefaultDistanceKernelPolicy()`.
DistanceKernelPolicy ResolveDistanceKernelPolicy(DistanceKernelPolicy policy);

/// Stable display name: "default", "fixed-lane", "scalar-legacy",
/// "unrolled".
const char* DistanceKernelPolicyName(DistanceKernelPolicy policy);

/// Parses a policy name (the spellings accepted by
/// `--distance-kernel` / `CVCP_DISTANCE_KERNEL`; "scalar" is an alias
/// for "scalar-legacy"). Returns false and leaves `*out` untouched on an
/// unrecognized name.
bool ParseDistanceKernelPolicy(const char* name, DistanceKernelPolicy* out);

/// How a `DistanceMatrix` stores its condensed values. Distances are
/// always *computed* in double precision; `kF32` narrows each value to
/// float on store (half the memory and disk bytes, ~1e-7 relative
/// rounding on read-back). Artifacts of the two modes are keyed apart
/// and never satisfy each other.
enum class DistanceStorage {
  kF64 = 0,
  kF32 = 1,
};

/// Stable display name: "f64" / "f32".
const char* DistanceStorageName(DistanceStorage storage);

/// Parses "f64" / "f32" (also "double" / "float"). Returns false and
/// leaves `*out` untouched on an unrecognized name.
bool ParseDistanceStorage(const char* name, DistanceStorage* out);

}  // namespace cvcp

#endif  // CVCP_COMMON_KERNEL_POLICY_H_
