#ifndef CVCP_COMMON_HASH_H_
#define CVCP_COMMON_HASH_H_

/// \file
/// The two hash functions of the storage substrate. `Crc32` guards every
/// persisted block against corruption (flipped bits, truncation, torn
/// writes); `Hash64` derives stable content keys (dataset content hash,
/// cache-shard selection). Both are plain deterministic byte functions —
/// the same input yields the same value on every run, process, and
/// platform — which is what lets separate processes agree on artifact
/// keys and validate each other's files.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace cvcp {

/// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/LevelDB family
/// convention: init and final xor 0xFFFFFFFF). `seed` is a previous
/// Crc32 result, so checksums can be computed incrementally over
/// discontiguous spans: Crc32(b, Crc32(a)) == Crc32(ab).
uint32_t Crc32(std::span<const std::byte> data, uint32_t seed = 0);
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// 64-bit FNV-1a over a byte span. Not cryptographic — used for content
/// addressing (artifact keys) and shard striping, where determinism and
/// dispersion matter, collisions are astronomically unlikely at the scale
/// of a model-selection run, and speed beats strength. `seed` chains like
/// Crc32's.
inline constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ull;
uint64_t Hash64(std::span<const std::byte> data,
                uint64_t seed = kFnv64OffsetBasis);
uint64_t Hash64(const void* data, size_t size,
                uint64_t seed = kFnv64OffsetBasis);
uint64_t Hash64(std::string_view s, uint64_t seed = kFnv64OffsetBasis);

}  // namespace cvcp

#endif  // CVCP_COMMON_HASH_H_
