#ifndef CVCP_COMMON_DISTANCE_KERNELS_H_
#define CVCP_COMMON_DISTANCE_KERNELS_H_

/// \file
/// The low-level distance kernels behind common/distance.h: one table of
/// raw-pointer inner loops per `DistanceKernelPolicy`, plus the runtime
/// dispatch that picks a SIMD implementation of the fixed-lane kernels.
///
/// ## The fixed-lane contract
///
/// Every fixed-lane implementation — the portable scalar reference, the
/// AVX2 one, the NEON one — commits to the identical floating-point
/// evaluation order, so their results are bitwise equal and the policy
/// is deterministic across hardware:
///
///   * 8 virtual accumulator lanes; lane k sums the per-element terms at
///     indices ≡ k (mod 8), in increasing index order;
///   * the tail (n mod 8 trailing elements) is accumulated into lanes
///     0..(n mod 8 - 1) after the full blocks, in index order — exactly
///     where those indices' lanes would have put them;
///   * lanes reduce through one fixed tree:
///         m_j = lane_j + lane_{j+4}          (j = 0..3)
///         result = (m_0 + m_2) + (m_1 + m_3)
///     chosen because it is the natural AVX2 butterfly (256-bit add of
///     the two accumulator registers, then the 128-bit halves, then one
///     scalar add); the portable reference implements the same tree;
///   * no FMA anywhere (fusing mul+add changes the rounding of every
///     term) — the kernel translation units are compiled with
///     `-ffp-contract=off` so the compiler cannot introduce it either.
///
/// Within one policy the kernels are pure functions of their inputs:
/// thread count, tiling, caching, and hardware never change a bit.

#include <cstddef>

#include "common/kernel_policy.h"

namespace cvcp {

/// One set of distance inner loops. All pointers are non-null; vectors
/// are `n` contiguous doubles. `cosine` returns 1 - cosine similarity
/// with zero vectors at distance 1; `weighted_squared_euclidean` is the
/// diagonal-Mahalanobis form sum_m w[m]*(a[m]-b[m])^2.
struct DistanceKernels {
  double (*squared_euclidean)(const double* a, const double* b, size_t n);
  double (*manhattan)(const double* a, const double* b, size_t n);
  double (*cosine)(const double* a, const double* b, size_t n);
  double (*weighted_squared_euclidean)(const double* a, const double* b,
                                       const double* w, size_t n);
  /// Strided batch form: out[k] = squared_euclidean(a, b + k*stride, n)
  /// for k = 0..3. Each of the four pairs is evaluated with exactly the
  /// single-pair op sequence — the batch exists so the matrix build can
  /// run four independent accumulator chains at once (the single-pair
  /// kernel is latency-bound on its lane adds) and reuse the `a` loads.
  /// Null for policies without a batched form; callers fall back to four
  /// single-pair calls, which produce the same bits.
  void (*squared_euclidean_x4)(const double* a, const double* b, size_t stride,
                               size_t n, double out[4]);
};

/// The kernel table for a policy. `policy` may be `kDefault` (resolved
/// through the process default). `kFixedLane` returns the dispatched
/// native table (AVX2/NEON when the CPU supports it, the portable
/// reference otherwise) — bitwise-identical either way.
const DistanceKernels& GetDistanceKernels(DistanceKernelPolicy policy);

/// The portable scalar fixed-lane reference — the pinning oracle the
/// equivalence tests compare every SIMD implementation against.
const DistanceKernels& FixedLaneKernelsPortable();

/// The dispatched fixed-lane table (what `kFixedLane` uses).
const DistanceKernels& FixedLaneKernelsNative();

/// Which fixed-lane implementation dispatch selected on this machine:
/// "avx2", "neon", or "portable".
const char* DistanceKernelArch();

/// The fixed-lane virtual accumulator width (tests sweep vector lengths
/// 0..2*width+3 to pin the tail handling).
inline constexpr size_t kFixedLaneWidth = 8;

}  // namespace cvcp

#endif  // CVCP_COMMON_DISTANCE_KERNELS_H_
