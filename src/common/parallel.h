#ifndef CVCP_COMMON_PARALLEL_H_
#define CVCP_COMMON_PARALLEL_H_

/// \file
/// Data-parallel loops on top of the shared ThreadPool, plus the
/// `ExecutionContext` that configs use to say how many threads a
/// computation may use. The engine's contract everywhere: for loop bodies
/// that write only to their own index's result slot, the output is
/// bit-identical for every thread count — parallelism changes wall time,
/// never results.

#include <cstddef>
#include <functional>

namespace cvcp {

/// How much parallelism a computation may use. Plumbed through configs
/// (CvConfig, CvcpConfig, bench TrialSpec) down to the execution layer.
struct ExecutionContext {
  /// Worker threads to use. 0 ⇒ all hardware threads (the default);
  /// 1 ⇒ the exact serial code path, never touching the pool.
  int threads = 0;

  /// `threads`, with 0 resolved to the hardware concurrency (>= 1).
  int ResolvedThreads() const;

  /// Context that forces the serial code path.
  static ExecutionContext Serial() {
    ExecutionContext context;
    context.threads = 1;
    return context;
  }

  bool operator==(const ExecutionContext&) const = default;
};

/// Runs `fn(i)` for every i in [0, n). With a resolved thread count of 1
/// (or when already on a pool worker — nested parallel sections run
/// inline) this is a plain ascending loop; otherwise indices are claimed
/// dynamically, in ascending order, by up to `exec.ResolvedThreads()`
/// pool tasks, so bodies with uneven cost balance automatically. Blocks
/// until all iterations finish. Exceptions: the serial path stops at the
/// first throwing iteration; the pool path runs every iteration and
/// rethrows one of the thrown exceptions (which one is
/// scheduling-dependent) — fallible bodies should report through
/// per-index result slots (as ScoreGridOnFolds does) rather than throw.
void ParallelFor(const ExecutionContext& exec, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace cvcp

#endif  // CVCP_COMMON_PARALLEL_H_
