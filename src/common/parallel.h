#ifndef CVCP_COMMON_PARALLEL_H_
#define CVCP_COMMON_PARALLEL_H_

/// \file
/// Data-parallel loops on top of the shared ThreadPool, plus the
/// `ExecutionContext` that configs use to say how many threads a
/// computation may use and the nested-budget planner that divides one
/// process-wide budget across nesting levels.
///
/// Nesting contract: ParallelFor may be called from anywhere, including
/// from inside another ParallelFor body running on a pool worker. The
/// caller always participates as a lane of its own loop and, once out of
/// work, *helps while waiting* — it pops queued tasks (its own loop's or
/// any other's) and executes them instead of blocking — so nested
/// fan-outs compose without deadlock and without idle threads, and the
/// process-wide OS-thread count never exceeds the pool size + 1.
///
/// Determinism contract (the engine's contract everywhere): for loop
/// bodies that write only to their own index's result slot, the output is
/// bit-identical for every thread count, every nesting policy, and every
/// execution order — parallelism changes wall time, never results.

#include <atomic>
#include <cstddef>
#include <functional>

#include "common/cancel.h"
#include "common/kernel_policy.h"

namespace cvcp {

/// How much parallelism a computation may use. Plumbed through configs
/// (CvConfig, CvcpConfig, bench TrialSpec) down to the execution layer.
struct ExecutionContext {
  /// Worker threads to use. 0 ⇒ all hardware threads (the default);
  /// 1 ⇒ the exact serial code path, never touching the pool.
  int threads = 0;

  /// Which distance-kernel implementation computations under this
  /// context use (common/kernel_policy.h). `kDefault` resolves to the
  /// env-initialized process default. Like `threads`, this never changes
  /// *what* is computed within a policy — only fixed-lane vs legacy vs
  /// unrolled rounding; every caller of one run must agree on it for the
  /// byte-identity contract to hold (the harness threads one value
  /// through every layer).
  DistanceKernelPolicy distance_kernel = DistanceKernelPolicy::kDefault;

  /// Cooperative cancellation for the work under this context. The
  /// default token never fires, so existing callers pay one null check.
  /// When it does fire, ParallelFor stops claiming new indices — callers
  /// that pass a live token must Check() it after the loop and treat
  /// untouched result slots as unavailable, never publish them. Code
  /// that publishes shared artifacts strips the token first (see
  /// DistanceMatrix::Compute) so a cancelled run can never leave a
  /// partial artifact behind. Like `threads`, the token changes whether
  /// a run completes, never the bytes of a completed result.
  CancelToken cancel;

  /// `threads`, with 0 resolved to the hardware concurrency (>= 1).
  int ResolvedThreads() const;

  /// Context that forces the serial code path.
  static ExecutionContext Serial() {
    ExecutionContext context;
    context.threads = 1;
    return context;
  }

  bool operator==(const ExecutionContext&) const = default;
};

/// A thread budget divided between two nesting levels: an outer
/// data-parallel loop and the parallel work nested inside each of its
/// iterations (e.g. trials outside, CVCP grid×fold cells inside).
struct NestedBudget {
  ExecutionContext outer;
  ExecutionContext inner;
};

/// How PlanBudget divides one thread budget across two nesting levels.
enum class NestingPolicy {
  /// All-or-nothing: exactly one level spends the whole budget, the other
  /// runs serial (the pre-help-while-waiting policy; see SplitBudget).
  /// Narrow outer loops with wide inner loops leave the budget idle at
  /// the per-iteration tails and serial sections.
  kSplit,
  /// Multiplicative: the outer loop gets min(outer_size, budget) lanes
  /// and each lane's nested work gets ceil(budget / lanes) threads, so
  /// outer lanes × inner width ≈ budget. Help-while-waiting absorbs the
  /// imbalance: a lane that finishes early starts executing other lanes'
  /// queued inner cells, so the whole budget stays busy until the last
  /// cell of the last lane.
  kNested,
};

/// Splits `exec`'s budget between an outer loop of `outer_size` iterations
/// and the work nested inside each iteration, all-or-nothing
/// (NestingPolicy::kSplit).
///
/// `outer_threads` == 0 picks automatically: the whole budget goes to the
/// outermost level that can absorb it (`outer_size >=` resolved threads),
/// because outer iterations are the coarsest units — per-cell timings show
/// highly uneven cell costs, and coarse tasks claimed dynamically amortize
/// scheduling overhead and balance that skew best — and otherwise the
/// budget drops to the inner level so small outer loops still scale.
/// `outer_threads` == 1 forces the outer loop serial (all budget inner);
/// `outer_threads` > 1 forces that many outer lanes (capped at the
/// budget), inner serial.
///
/// Either way both returned contexts have concrete (resolved) thread
/// counts and results are identical to the serial schedule whenever the
/// loop bodies follow the engine's slot-writing discipline.
NestedBudget SplitBudget(const ExecutionContext& exec, size_t outer_size,
                         int outer_threads = 0);

/// Divides `exec`'s budget between an outer loop of `outer_size`
/// iterations and the work nested inside each iteration, according to
/// `policy`. `outer_threads` keeps its SplitBudget meaning at every
/// policy: 0 = automatic, 1 = serial outer loop (whole budget inner),
/// N > 1 = force N outer lanes (capped at the budget; under kNested each
/// lane still gets its ceil(budget / lanes) inner share instead of being
/// forced serial). Under kNested the planned widths multiply to at most
/// budget + lanes − 1 (ceil rounding); the pool's fixed thread count is
/// the hard physical cap. Results are identical for every policy and
/// width — the planner only moves wall time around.
NestedBudget PlanBudget(const ExecutionContext& exec, size_t outer_size,
                        int outer_threads, NestingPolicy policy);

/// Runs `fn(i)` for every i in [0, n). With a resolved thread count of 1
/// this is a plain ascending loop; otherwise up to
/// `exec.ResolvedThreads()` lanes — the calling thread plus pool tasks —
/// claim indices dynamically in ascending order, so bodies with uneven
/// cost balance automatically. The caller is always one of the lanes, and
/// once indices run out it helps while waiting (executes queued pool
/// tasks — typically nested fan-outs' cells — until its own lanes
/// finish), so calls nest from any thread without deadlock or idle
/// threads. Blocks until all iterations finish — except that once
/// `exec.cancel` fires, lanes stop claiming new indices (in-flight
/// bodies still run to completion), so remaining slots may be skipped;
/// callers with a live token must Check() it after the call before
/// consuming results. Exceptions: the serial
/// path stops at the first throwing iteration; the pool path runs every
/// iteration and rethrows one of the thrown exceptions (which one is
/// scheduling-dependent) — fallible bodies should report through
/// per-index result slots (as ScoreGridOnFolds does) rather than throw.
void ParallelFor(const ExecutionContext& exec, size_t n,
                 const std::function<void(size_t)>& fn);

/// Tracks the lowest failing index of a ParallelFor fan-out whose
/// reduction is first-error-wins. Correct for *any* execution order (the
/// cost-sorted scheduler runs cells out of ascending order): only indices
/// *above* the lowest recorded failure are ever skipped, so every index
/// below it still runs and may record a lower failure; failures are
/// deterministic per index, so the minimum settles on exactly the index
/// the serial stop-at-first-error loop would have reported — the serial
/// error semantics, minus the wasted work above the failure.
class FirstErrorTracker {
 public:
  /// `n` = iteration count; "no failure yet" is represented as n.
  explicit FirstErrorTracker(size_t n) : first_{n} {}

  /// True when `i` is above the lowest recorded failure and its work can
  /// be skipped.
  bool ShouldSkip(size_t i) const {
    return i > first_.load(std::memory_order_relaxed);
  }

  /// Records a failure at `i` (atomic minimum).
  void Record(size_t i) {
    size_t lowest = first_.load(std::memory_order_relaxed);
    while (i < lowest &&
           !first_.compare_exchange_weak(lowest, i,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<size_t> first_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_PARALLEL_H_
