#ifndef CVCP_COMMON_PARALLEL_H_
#define CVCP_COMMON_PARALLEL_H_

/// \file
/// Data-parallel loops on top of the shared ThreadPool, plus the
/// `ExecutionContext` that configs use to say how many threads a
/// computation may use. The engine's contract everywhere: for loop bodies
/// that write only to their own index's result slot, the output is
/// bit-identical for every thread count — parallelism changes wall time,
/// never results.

#include <atomic>
#include <cstddef>
#include <functional>

namespace cvcp {

/// How much parallelism a computation may use. Plumbed through configs
/// (CvConfig, CvcpConfig, bench TrialSpec) down to the execution layer.
struct ExecutionContext {
  /// Worker threads to use. 0 ⇒ all hardware threads (the default);
  /// 1 ⇒ the exact serial code path, never touching the pool.
  int threads = 0;

  /// `threads`, with 0 resolved to the hardware concurrency (>= 1).
  int ResolvedThreads() const;

  /// Context that forces the serial code path.
  static ExecutionContext Serial() {
    ExecutionContext context;
    context.threads = 1;
    return context;
  }

  bool operator==(const ExecutionContext&) const = default;
};

/// A thread budget divided between two nesting levels: an outer
/// data-parallel loop and the parallel work nested inside each of its
/// iterations (e.g. trials outside, CVCP grid×fold cells inside).
struct NestedBudget {
  ExecutionContext outer;
  ExecutionContext inner;
};

/// Splits `exec`'s budget between an outer loop of `outer_size` iterations
/// and the work nested inside each iteration. Because nested ParallelFor
/// calls on a pool worker run inline, the pool is never oversubscribed:
/// the meaningful choice is *which* level spends the budget, not how to
/// multiply widths.
///
/// `outer_threads` == 0 picks automatically: the whole budget goes to the
/// outermost level that can absorb it (`outer_size >=` resolved threads),
/// because outer iterations are the coarsest units — per-cell timings show
/// highly uneven cell costs, and coarse tasks claimed dynamically amortize
/// scheduling overhead and balance that skew best — and otherwise the
/// budget drops to the inner level so small outer loops still scale.
/// `outer_threads` == 1 forces the outer loop serial (all budget inner);
/// `outer_threads` > 1 forces that many outer lanes (capped at the
/// budget), inner serial.
///
/// Either way both returned contexts have concrete (resolved) thread
/// counts and results are identical to the serial schedule whenever the
/// loop bodies follow the engine's slot-writing discipline.
NestedBudget SplitBudget(const ExecutionContext& exec, size_t outer_size,
                         int outer_threads = 0);

/// Runs `fn(i)` for every i in [0, n). With a resolved thread count of 1
/// (or when already on a pool worker — nested parallel sections run
/// inline) this is a plain ascending loop; otherwise indices are claimed
/// dynamically, in ascending order, by up to `exec.ResolvedThreads()`
/// pool tasks, so bodies with uneven cost balance automatically. Blocks
/// until all iterations finish. Exceptions: the serial path stops at the
/// first throwing iteration; the pool path runs every iteration and
/// rethrows one of the thrown exceptions (which one is
/// scheduling-dependent) — fallible bodies should report through
/// per-index result slots (as ScoreGridOnFolds does) rather than throw.
void ParallelFor(const ExecutionContext& exec, size_t n,
                 const std::function<void(size_t)>& fn);

/// Tracks the lowest failing index of a ParallelFor fan-out whose
/// reduction is first-error-wins. Because ParallelFor claims indices in
/// ascending order, every index below a recorded failure is already
/// claimed and will finish, so iterations above it may be skipped without
/// changing which error the in-order reduction reports — the serial
/// stop-at-first-error semantics, minus the wasted work.
class FirstErrorTracker {
 public:
  /// `n` = iteration count; "no failure yet" is represented as n.
  explicit FirstErrorTracker(size_t n) : first_{n} {}

  /// True when `i` is above the lowest recorded failure and its work can
  /// be skipped.
  bool ShouldSkip(size_t i) const {
    return i > first_.load(std::memory_order_relaxed);
  }

  /// Records a failure at `i` (atomic minimum).
  void Record(size_t i) {
    size_t lowest = first_.load(std::memory_order_relaxed);
    while (i < lowest &&
           !first_.compare_exchange_weak(lowest, i,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<size_t> first_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_PARALLEL_H_
