#include "common/distance_kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace cvcp {

namespace {

// ---------------------------------------------------------------------------
// Fixed-lane portable reference (the pinning oracle)
// ---------------------------------------------------------------------------
// Every SIMD implementation must be bitwise-identical to these loops; the
// whole translation unit is compiled with -ffp-contract=off so the
// compiler cannot fuse the mul+add pairs into FMAs behind our back.

/// The canonical lane-reduction tree shared by every implementation:
/// m_j = lane_j + lane_{j+4}, then (m0 + m2) + (m1 + m3).
inline double ReduceLanes(const double lanes[kFixedLaneWidth]) {
  const double m0 = lanes[0] + lanes[4];
  const double m1 = lanes[1] + lanes[5];
  const double m2 = lanes[2] + lanes[6];
  const double m3 = lanes[3] + lanes[7];
  return (m0 + m2) + (m1 + m3);
}

double FixedSquaredEuclidean(const double* a, const double* b, size_t n) {
  double lanes[kFixedLaneWidth] = {};
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    for (size_t k = 0; k < kFixedLaneWidth; ++k) {
      const double d = a[i + k] - b[i + k];
      lanes[k] += d * d;
    }
  }
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += d * d;
  }
  return ReduceLanes(lanes);
}

void FixedSquaredEuclideanX4(const double* a, const double* b, size_t stride,
                             size_t n, double out[4]) {
  for (size_t k = 0; k < 4; ++k) {
    out[k] = FixedSquaredEuclidean(a, b + k * stride, n);
  }
}

double FixedManhattan(const double* a, const double* b, size_t n) {
  double lanes[kFixedLaneWidth] = {};
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    for (size_t k = 0; k < kFixedLaneWidth; ++k) {
      lanes[k] += std::fabs(a[i + k] - b[i + k]);
    }
  }
  for (size_t i = base; i < n; ++i) {
    lanes[i - base] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

double FixedCosine(const double* a, const double* b, size_t n) {
  double dot[kFixedLaneWidth] = {};
  double na[kFixedLaneWidth] = {};
  double nb[kFixedLaneWidth] = {};
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    for (size_t k = 0; k < kFixedLaneWidth; ++k) {
      dot[k] += a[i + k] * b[i + k];
      na[k] += a[i + k] * a[i + k];
      nb[k] += b[i + k] * b[i + k];
    }
  }
  for (size_t i = base; i < n; ++i) {
    dot[i - base] += a[i] * b[i];
    na[i - base] += a[i] * a[i];
    nb[i - base] += b[i] * b[i];
  }
  const double sum_dot = ReduceLanes(dot);
  const double sum_na = ReduceLanes(na);
  const double sum_nb = ReduceLanes(nb);
  if (sum_na == 0.0 || sum_nb == 0.0) return 1.0;
  return 1.0 - sum_dot / (std::sqrt(sum_na) * std::sqrt(sum_nb));
}

double FixedWeightedSquaredEuclidean(const double* a, const double* b,
                                     const double* w, size_t n) {
  double lanes[kFixedLaneWidth] = {};
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    for (size_t k = 0; k < kFixedLaneWidth; ++k) {
      const double d = a[i + k] - b[i + k];
      lanes[k] += w[i + k] * (d * d);
    }
  }
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += w[i] * (d * d);
  }
  return ReduceLanes(lanes);
}

// ---------------------------------------------------------------------------
// Legacy scalar kernels (the pre-SIMD left-to-right byte baseline)
// ---------------------------------------------------------------------------

double LegacySquaredEuclidean(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double LegacyManhattan(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum;
}

double LegacyCosine(const double* a, const double* b, size_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

double LegacyWeightedSquaredEuclidean(const double* a, const double* b,
                                      const double* w, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += w[i] * d * d;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Unrolled scalar kernels (4 accumulators, reassociated; opt-in)
// ---------------------------------------------------------------------------

double UnrolledSquaredEuclidean(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

double UnrolledManhattan(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += std::fabs(a[i] - b[i]);
    s1 += std::fabs(a[i + 1] - b[i + 1]);
    s2 += std::fabs(a[i + 2] - b[i + 2]);
    s3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) {
    s0 += std::fabs(a[i] - b[i]);
  }
  return (s0 + s1) + (s2 + s3);
}

double UnrolledWeightedSquaredEuclidean(const double* a, const double* b,
                                        const double* w, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += w[i] * d0 * d0;
    s1 += w[i + 1] * d1 * d1;
    s2 += w[i + 2] * d2 * d2;
    s3 += w[i + 3] * d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s0 += w[i] * d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

const DistanceKernels kPortableFixedLane = {
    FixedSquaredEuclidean,
    FixedManhattan,
    FixedCosine,
    FixedWeightedSquaredEuclidean,
    FixedSquaredEuclideanX4,
};

const DistanceKernels kScalarLegacy = {
    LegacySquaredEuclidean,
    LegacyManhattan,
    LegacyCosine,
    LegacyWeightedSquaredEuclidean,
    nullptr,
};

// The unrolled set never had a reassociated cosine; it keeps the legacy
// single-pass loop (pinned by the shim test).
const DistanceKernels kUnrolled = {
    UnrolledSquaredEuclidean,
    UnrolledManhattan,
    LegacyCosine,
    UnrolledWeightedSquaredEuclidean,
    nullptr,
};

}  // namespace

// Arch-specific fixed-lane tables, defined in their own translation
// units (compiled with the matching -m flags) and only when CMake
// enables them for the target architecture.
namespace internal {
#if defined(CVCP_HAVE_AVX2)
const DistanceKernels& Avx2FixedLaneKernels();
#endif
#if defined(CVCP_HAVE_NEON)
const DistanceKernels& NeonFixedLaneKernels();
#endif
}  // namespace internal

namespace {

/// One-time dispatch: the widest fixed-lane implementation this CPU
/// supports. All candidates are bitwise-identical, so the choice is
/// invisible in results — it only moves wall time.
struct FixedLaneChoice {
  const DistanceKernels* kernels;
  const char* arch;
};

FixedLaneChoice ChooseFixedLane() {
#if defined(CVCP_HAVE_AVX2) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) {
    return {&internal::Avx2FixedLaneKernels(), "avx2"};
  }
#endif
#if defined(CVCP_HAVE_NEON)
  // NEON is architecturally mandatory on AArch64; no runtime probe.
  return {&internal::NeonFixedLaneKernels(), "neon"};
#endif
  return {&kPortableFixedLane, "portable"};
}

const FixedLaneChoice& FixedLane() {
  static const FixedLaneChoice choice = ChooseFixedLane();
  return choice;
}

DistanceKernelPolicy PolicyFromEnv() {
  DistanceKernelPolicy policy = DistanceKernelPolicy::kFixedLane;
  if (const char* v = std::getenv("CVCP_DISTANCE_KERNEL")) {
    ParseDistanceKernelPolicy(v, &policy);
  }
  return policy;
}

std::atomic<DistanceKernelPolicy>& DefaultPolicySlot() {
  static std::atomic<DistanceKernelPolicy> slot{PolicyFromEnv()};
  return slot;
}

}  // namespace

DistanceKernelPolicy DefaultDistanceKernelPolicy() {
  return DefaultPolicySlot().load(std::memory_order_relaxed);
}

void SetDefaultDistanceKernelPolicy(DistanceKernelPolicy policy) {
  if (policy == DistanceKernelPolicy::kDefault) return;  // nothing to resolve to
  DefaultPolicySlot().store(policy, std::memory_order_relaxed);
}

DistanceKernelPolicy ResolveDistanceKernelPolicy(DistanceKernelPolicy policy) {
  return policy == DistanceKernelPolicy::kDefault ? DefaultDistanceKernelPolicy()
                                                  : policy;
}

const char* DistanceKernelPolicyName(DistanceKernelPolicy policy) {
  switch (policy) {
    case DistanceKernelPolicy::kDefault:
      return "default";
    case DistanceKernelPolicy::kFixedLane:
      return "fixed-lane";
    case DistanceKernelPolicy::kScalarLegacy:
      return "scalar-legacy";
    case DistanceKernelPolicy::kUnrolled:
      return "unrolled";
  }
  return "unknown";
}

bool ParseDistanceKernelPolicy(const char* name, DistanceKernelPolicy* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "fixed") == 0 || std::strcmp(name, "fixed-lane") == 0) {
    *out = DistanceKernelPolicy::kFixedLane;
    return true;
  }
  if (std::strcmp(name, "scalar-legacy") == 0 ||
      std::strcmp(name, "scalar") == 0) {
    *out = DistanceKernelPolicy::kScalarLegacy;
    return true;
  }
  if (std::strcmp(name, "unrolled") == 0) {
    *out = DistanceKernelPolicy::kUnrolled;
    return true;
  }
  return false;
}

const char* DistanceStorageName(DistanceStorage storage) {
  return storage == DistanceStorage::kF32 ? "f32" : "f64";
}

bool ParseDistanceStorage(const char* name, DistanceStorage* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "f64") == 0 || std::strcmp(name, "double") == 0) {
    *out = DistanceStorage::kF64;
    return true;
  }
  if (std::strcmp(name, "f32") == 0 || std::strcmp(name, "float") == 0) {
    *out = DistanceStorage::kF32;
    return true;
  }
  return false;
}

const DistanceKernels& GetDistanceKernels(DistanceKernelPolicy policy) {
  switch (ResolveDistanceKernelPolicy(policy)) {
    case DistanceKernelPolicy::kScalarLegacy:
      return kScalarLegacy;
    case DistanceKernelPolicy::kUnrolled:
      return kUnrolled;
    case DistanceKernelPolicy::kDefault:  // unreachable after resolution
    case DistanceKernelPolicy::kFixedLane:
      break;
  }
  return *FixedLane().kernels;
}

const DistanceKernels& FixedLaneKernelsPortable() { return kPortableFixedLane; }

const DistanceKernels& FixedLaneKernelsNative() { return *FixedLane().kernels; }

const char* DistanceKernelArch() { return FixedLane().arch; }

}  // namespace cvcp
