#include "common/union_find.h"

#include <numeric>

namespace cvcp {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::Find(size_t x) {
  CVCP_CHECK_LT(x, parent_.size());
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return true;
}

size_t UnionFind::ComponentSize(size_t x) { return size_[Find(x)]; }

std::vector<size_t> UnionFind::ComponentIds() {
  std::vector<size_t> ids(parent_.size());
  std::vector<size_t> root_to_id(parent_.size(), SIZE_MAX);
  size_t next_id = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const size_t root = Find(i);
    if (root_to_id[root] == SIZE_MAX) root_to_id[root] = next_id++;
    ids[i] = root_to_id[root];
  }
  return ids;
}

std::vector<std::vector<size_t>> UnionFind::Components() {
  std::vector<size_t> ids = ComponentIds();
  std::vector<std::vector<size_t>> comps(num_components_);
  for (size_t i = 0; i < ids.size(); ++i) comps[ids[i]].push_back(i);
  return comps;
}

}  // namespace cvcp
