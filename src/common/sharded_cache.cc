#include "common/sharded_cache.h"

#include <bit>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace cvcp {

ShardedLruCache::ShardedLruCache(size_t capacity_bytes, int num_shards)
    : capacity_(capacity_bytes) {
  CVCP_CHECK_GE(num_shards, 1);
  const size_t shards =
      std::bit_ceil(static_cast<size_t>(num_shards));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Round up so tiny capacities don't truncate to a zero-byte shard that
  // could never hold anything. Division-first (not `capacity_ + shards -
  // 1`) so SIZE_MAX — the unbounded tier — cannot overflow to zero.
  per_shard_capacity_ = capacity_ / shards + (capacity_ % shards != 0);
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const std::string& key) {
  // shards_.size() is a power of two, so the mask keeps the hash's low
  // bits; FNV-1a mixes every byte into them.
  return *shards_[Hash64(key) & (shards_.size() - 1)];
}

void ShardedLruCache::EvictIfNeeded(Shard* shard,
                                    std::vector<ValuePtr>* graveyard) {
  while (shard->charge > per_shard_capacity_ && !shard->lru.empty()) {
    Entry& victim = shard->lru.back();
    shard->charge -= victim.charge;
    ++shard->evictions;
    shard->index.erase(victim.key);
    graveyard->push_back(std::move(victim.value));
    shard->lru.pop_back();
  }
}

ShardedLruCache::ValuePtr ShardedLruCache::InsertOrGet(const std::string& key,
                                                       ValuePtr value,
                                                       size_t charge) {
  Shard& shard = ShardFor(key);
  std::vector<ValuePtr> graveyard;
  ValuePtr out;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // First publisher won; adopt the resident value (and refresh
      // recency — a racing publish is also a use).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = it->second->value;
      graveyard.push_back(std::move(value));
    } else {
      shard.lru.push_front(Entry{key, value, charge});
      shard.index.emplace(key, shard.lru.begin());
      shard.charge += charge;
      ++shard.inserts;
      EvictIfNeeded(&shard, &graveyard);
      out = std::move(value);
    }
  }
  return out;
}

ShardedLruCache::ValuePtr ShardedLruCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ShardedLruCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  ValuePtr doomed;  // destroyed after the lock
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.charge -= it->second->charge;
  doomed = std::move(it->second->value);
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

ShardedLruCache::Stats ShardedLruCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.inserts += shard->inserts;
    out.evictions += shard->evictions;
    out.charge += shard->charge;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace cvcp
