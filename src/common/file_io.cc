#include "common/file_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "common/strings.h"

namespace cvcp {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(Format("cannot open %s", path.c_str()));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Corruption(Format("read of %s failed", path.c_str()));
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& directory,
                       const std::string& filename, std::string_view bytes,
                       uint64_t temp_seq) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal(Format("cannot create directory %s: %s",
                                   directory.c_str(), ec.message().c_str()));
  }
  const fs::path final_path = fs::path(directory) / filename;
  const fs::path temp_path =
      fs::path(directory) /
      Format("%s.tmp.%d.%llu", filename.c_str(), static_cast<int>(::getpid()),
             static_cast<unsigned long long>(temp_seq));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(bytes.data(),
                           static_cast<std::streamsize>(bytes.size()))) {
      fs::remove(temp_path, ec);
      return Status::Internal(
          Format("cannot write %s", temp_path.string().c_str()));
    }
  }
  // POSIX rename is atomic within a directory: readers see the old file,
  // the new file, or no file — never a partial one.
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return Status::Internal(Format("cannot publish %s: %s", filename.c_str(),
                                   ec.message().c_str()));
  }
  return Status::OK();
}

}  // namespace cvcp
