#include "common/file_io.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "common/strings.h"

namespace cvcp {

namespace fs = std::filesystem;

namespace {

// The installed fault-injection hooks, or nullptr in production. A plain
// atomic pointer: tests install before exercising IO and uninstall after,
// so the only concurrency is hot-path readers against a quiescent value.
std::atomic<const FileOpsHooks*> g_file_ops_hooks{nullptr};

const FileOpsHooks* CurrentHooks() {
  return g_file_ops_hooks.load(std::memory_order_acquire);
}

// Classifies an errno from the write path: a full disk is backpressure
// the layers above degrade around (recompute, retry later), not an
// internal invariant failure.
Status WriteErrnoStatus(int err, const std::string& path,
                        const char* action) {
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(
        Format("%s %s: %s", action, path.c_str(), std::strerror(err)));
  }
  return Status::Internal(
      Format("%s %s: %s", action, path.c_str(), std::strerror(err)));
}

// Writes all of `bytes` to `fd` with an EINTR retry loop. `limit` caps
// how many bytes are actually persisted (fault injection); a cap below
// bytes.size() is reported as a detected short write.
Status WriteAllToFd(int fd, std::string_view bytes, int64_t limit,
                    const std::string& path) {
  size_t target = bytes.size();
  bool truncated = false;
  if (limit >= 0 && static_cast<size_t>(limit) < target) {
    target = static_cast<size_t>(limit);
    truncated = true;
  }
  size_t written = 0;
  while (written < target) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, target - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return WriteErrnoStatus(errno, path, "cannot write");
    }
    written += static_cast<size_t>(n);
  }
  if (truncated) {
    return Status::Internal(Format("short write to %s: %llu of %llu bytes",
                                   path.c_str(),
                                   static_cast<unsigned long long>(written),
                                   static_cast<unsigned long long>(
                                       bytes.size())));
  }
  return Status::OK();
}

}  // namespace

ScopedFileOpsHooks::ScopedFileOpsHooks(const FileOpsHooks* hooks)
    : previous_(g_file_ops_hooks.exchange(hooks, std::memory_order_acq_rel)) {}

ScopedFileOpsHooks::~ScopedFileOpsHooks() {
  g_file_ops_hooks.store(previous_, std::memory_order_release);
}

Result<std::string> ReadFileToString(const std::string& path) {
  if (const FileOpsHooks* hooks = CurrentHooks()) {
    if (hooks->before_read) {
      CVCP_RETURN_IF_ERROR(hooks->before_read(path));
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(Format("cannot open %s", path.c_str()));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Corruption(Format("read of %s failed", path.c_str()));
  }
  if (const FileOpsHooks* hooks = CurrentHooks()) {
    if (hooks->truncate_read) {
      const int64_t keep = hooks->truncate_read(path);
      if (keep >= 0 && static_cast<size_t>(keep) < bytes.size()) {
        bytes.resize(static_cast<size_t>(keep));
      }
    }
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& directory,
                       const std::string& filename, std::string_view bytes,
                       uint64_t temp_seq) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal(Format("cannot create directory %s: %s",
                                   directory.c_str(), ec.message().c_str()));
  }
  const fs::path final_path = fs::path(directory) / filename;
  const fs::path temp_path =
      fs::path(directory) /
      Format("%s.tmp.%d.%llu", filename.c_str(), static_cast<int>(::getpid()),
             static_cast<unsigned long long>(temp_seq));
  const std::string temp_str = temp_path.string();

  int64_t write_limit = -1;
  if (const FileOpsHooks* hooks = CurrentHooks()) {
    if (hooks->before_write) {
      CVCP_RETURN_IF_ERROR(hooks->before_write(temp_str));
    }
    if (hooks->short_write) write_limit = hooks->short_write(temp_str);
  }

  const int fd = ::open(temp_str.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return WriteErrnoStatus(errno, temp_str, "cannot create");
  }
  Status write_status = WriteAllToFd(fd, bytes, write_limit, temp_str);
  // fsync before rename: the rename must never land while the data is
  // still only in the page cache, or a crash publishes a torn file.
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status = WriteErrnoStatus(errno, temp_str, "cannot sync");
  }
  if (::close(fd) != 0 && write_status.ok()) {
    write_status = WriteErrnoStatus(errno, temp_str, "cannot close");
  }
  if (!write_status.ok()) {
    fs::remove(temp_path, ec);
    return write_status;
  }

  if (const FileOpsHooks* hooks = CurrentHooks()) {
    if (hooks->before_rename) {
      const Status injected = hooks->before_rename(final_path.string());
      if (!injected.ok()) {
        fs::remove(temp_path, ec);
        return injected;
      }
    }
  }
  // POSIX rename is atomic within a directory: readers see the old file,
  // the new file, or no file — never a partial one.
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    const std::string reason = ec.message();  // before remove clobbers ec
    fs::remove(temp_path, ec);
    return Status::Internal(
        Format("cannot publish %s: %s", filename.c_str(), reason.c_str()));
  }
  // fsync the directory after the rename: the file's bytes are durable
  // (fsync'd above), but the directory entry naming them is not until
  // the directory itself is synced — a power loss here could otherwise
  // silently unpublish the record. Complete-or-absent still holds either
  // way; this makes publish itself durable. On failure the file is
  // already visible and complete, so report the error (the caller must
  // not count the publish durable) but leave the file in place —
  // retrying the write is safe and idempotent.
  const int dir_fd =
      ::open(directory.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return WriteErrnoStatus(errno, directory, "cannot open to sync");
  }
  Status sync_status = Status::OK();
  if (::fsync(dir_fd) != 0) {
    sync_status = WriteErrnoStatus(errno, directory, "cannot sync");
  }
  ::close(dir_fd);
  return sync_status;
}

bool IsTempFileName(std::string_view filename) {
  return filename.find(".tmp.") != std::string_view::npos;
}

Result<uint64_t> RemoveOrphanTempFiles(const std::string& directory) {
  std::error_code ec;
  if (!fs::exists(directory, ec) || ec) return uint64_t{0};
  uint64_t removed = 0;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!IsTempFileName(name)) continue;
    std::error_code remove_ec;
    if (fs::remove(entry.path(), remove_ec) && !remove_ec) ++removed;
  }
  if (ec) {
    return Status::Internal(Format("cannot scan %s: %s", directory.c_str(),
                                   ec.message().c_str()));
  }
  return removed;
}

}  // namespace cvcp
