#ifndef CVCP_COMMON_UNION_FIND_H_
#define CVCP_COMMON_UNION_FIND_H_

/// \file
/// Disjoint-set forest with path compression and union by size. Backbone of
/// the must-link transitive closure and of cluster component bookkeeping.

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace cvcp {

/// Classic union-find over {0, ..., n-1}.
class UnionFind {
 public:
  /// n singleton components.
  explicit UnionFind(size_t n);

  size_t size() const { return parent_.size(); }

  /// Representative of x's component (with path compression).
  size_t Find(size_t x);

  /// Merges the components of a and b. Returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True if a and b are in the same component.
  bool Same(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's component.
  size_t ComponentSize(size_t x);

  size_t NumComponents() const { return num_components_; }

  /// Canonical component id per element, compacted to 0..k-1 in order of
  /// first appearance.
  std::vector<size_t> ComponentIds();

  /// Members of every component, grouped; component order matches
  /// ComponentIds() numbering.
  std::vector<std::vector<size_t>> Components();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_components_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_UNION_FIND_H_
