#include "common/table.h"

#include <algorithm>

namespace cvcp {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  // Column count = widest row.
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return caption_.empty() ? "" : caption_ + "\n";

  std::vector<size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      // Count UTF-8 code points, not bytes, so em-dashes align.
      size_t len = 0;
      for (unsigned char ch : row[c]) {
        if ((ch & 0xC0) != 0x80) ++len;
      }
      widths[c] = std::max(widths[c], len);
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      size_t len = 0;
      for (unsigned char ch : cell) {
        if ((ch & 0xC0) != 0x80) ++len;
      }
      line += cell;
      line.append(widths[c] - len, ' ');
      if (c + 1 < cols) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  if (!header_.empty()) {
    out += render_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < cols; ++c) total += widths[c] + (c + 1 < cols ? 2 : 0);
    out += std::string(total, '-') + "\n";
  }
  for (const auto& r : rows_) out += render_row(r);
  return out;
}

}  // namespace cvcp
