#ifndef CVCP_COMMON_RNG_H_
#define CVCP_COMMON_RNG_H_

/// \file
/// Deterministic random number generation. Every experiment component draws
/// from an `Rng` that is derived from (master seed, stream ids...) via
/// SplitMix64 mixing, so any table cell of the paper reproduction can be
/// re-run in isolation and produce the same numbers as the full run.

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace cvcp {

/// SplitMix64 mixing step; used for seed derivation (not for sampling).
uint64_t SplitMix64(uint64_t& state);

/// Deterministic PRNG wrapper (mt19937_64) with convenience sampling.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives an independent child stream from this RNG's seed and a stream
  /// id. Forking does not consume state from the parent, so the set of
  /// children is stable no matter how much the parent is used.
  Rng Fork(uint64_t stream_id) const;

  uint64_t seed() const { return seed_; }

  /// Uniform on [0, 2^64).
  uint64_t NextUint64() { return engine_(); }

  /// Uniform real on [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer on [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    CVCP_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t on [0, n).
  size_t Index(size_t n) {
    CVCP_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform real on [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// Samples `k` distinct indices from {0, ..., n-1}, in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Samples `k` distinct elements from `pool`, in random order.
  template <typename T>
  std::vector<T> SampleFrom(const std::vector<T>& pool, size_t k) {
    std::vector<size_t> idx = SampleWithoutReplacement(pool.size(), k);
    std::vector<T> out;
    out.reserve(k);
    for (size_t i : idx) out.push_back(pool[i]);
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_RNG_H_
