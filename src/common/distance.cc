#include "common/distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/distance_kernels.h"

namespace cvcp {

void SetUnrolledDistanceKernels(bool enabled) {
  SetDefaultDistanceKernelPolicy(enabled ? DistanceKernelPolicy::kUnrolled
                                         : DistanceKernelPolicy::kFixedLane);
}

bool UnrolledDistanceKernelsEnabled() {
  return DefaultDistanceKernelPolicy() == DistanceKernelPolicy::kUnrolled;
}

double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b,
                                DistanceKernelPolicy policy) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  return GetDistanceKernels(policy).squared_euclidean(a.data(), b.data(),
                                                      a.size());
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b,
                         DistanceKernelPolicy policy) {
  return std::sqrt(SquaredEuclideanDistance(a, b, policy));
}

double ManhattanDistance(std::span<const double> a, std::span<const double> b,
                         DistanceKernelPolicy policy) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  return GetDistanceKernels(policy).manhattan(a.data(), b.data(), a.size());
}

double CosineDistance(std::span<const double> a, std::span<const double> b,
                      DistanceKernelPolicy policy) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  return GetDistanceKernels(policy).cosine(a.data(), b.data(), a.size());
}

double WeightedSquaredEuclidean(std::span<const double> a,
                                std::span<const double> b,
                                std::span<const double> weights,
                                DistanceKernelPolicy policy) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  CVCP_DCHECK_EQ(a.size(), weights.size());
  return GetDistanceKernels(policy).weighted_squared_euclidean(
      a.data(), b.data(), weights.data(), a.size());
}

double Distance(std::span<const double> a, std::span<const double> b,
                Metric metric, DistanceKernelPolicy policy) {
  switch (metric) {
    case Metric::kEuclidean:
      return EuclideanDistance(a, b, policy);
    case Metric::kSquaredEuclidean:
      return SquaredEuclideanDistance(a, b, policy);
    case Metric::kManhattan:
      return ManhattanDistance(a, b, policy);
    case Metric::kCosine:
      return CosineDistance(a, b, policy);
  }
  CVCP_CHECK_MSG(false, "unreachable metric");
  return 0.0;
}

DistanceMatrix DistanceMatrix::FromCondensed(size_t n,
                                             std::vector<double> data) {
  CVCP_CHECK_EQ(data.size(), n < 2 ? 0 : n * (n - 1) / 2);
  DistanceMatrix dm;
  dm.n_ = n;
  dm.storage_ = DistanceStorage::kF64;
  dm.data_ = std::move(data);
  return dm;
}

DistanceMatrix DistanceMatrix::FromCondensed32(size_t n,
                                               std::vector<float> data) {
  CVCP_CHECK_EQ(data.size(), n < 2 ? 0 : n * (n - 1) / 2);
  DistanceMatrix dm;
  dm.n_ = n;
  dm.storage_ = DistanceStorage::kF32;
  dm.data32_ = std::move(data);
  return dm;
}

namespace {

using PairKernel = double (*)(const double*, const double*, size_t);

using BatchKernel = void (*)(const double*, const double*, size_t, size_t,
                             double[4]);

/// The (kernel, post-sqrt) pair one metric needs under one policy, plus
/// the strided batch form when the policy has one for this metric.
struct MetricKernel {
  PairKernel fn;
  bool sqrt_after;
  BatchKernel batch4 = nullptr;
};

MetricKernel SelectMetricKernel(Metric metric, DistanceKernelPolicy policy) {
  const DistanceKernels& kernels = GetDistanceKernels(policy);
  switch (metric) {
    case Metric::kEuclidean:
      return {kernels.squared_euclidean, true, kernels.squared_euclidean_x4};
    case Metric::kSquaredEuclidean:
      return {kernels.squared_euclidean, false, kernels.squared_euclidean_x4};
    case Metric::kManhattan:
      return {kernels.manhattan, false};
    case Metric::kCosine:
      return {kernels.cosine, false};
  }
  CVCP_CHECK_MSG(false, "unreachable metric");
  return {nullptr, false};
}

/// Rows per panel such that two packed panels (row + column) fit in
/// roughly an L2's worth of cache, clamped so tiny dimensions still get
/// tiles coarse enough to amortize task dispatch and huge dimensions
/// still get a few rows per tile.
size_t PanelRows(size_t dims) {
  constexpr size_t kL2Budget = 256 * 1024;  // bytes, both panels together
  const size_t bytes_per_row = std::max<size_t>(dims, 1) * sizeof(double);
  const size_t rows = kL2Budget / (2 * bytes_per_row);
  return std::clamp<size_t>(rows, 16, 512);
}

}  // namespace

DistanceMatrix DistanceMatrix::Compute(const Matrix& points, Metric metric,
                                       const ExecutionContext& exec_in,
                                       DistanceStorage storage) {
  // Artifact builds are all-or-nothing: the matrix may be published into
  // the shared DatasetCache / artifact store, where another (non-cancelled)
  // job would consume it, so a live cancel token must never skip tiles.
  // Cancellation promptness comes from the (param, fold) cell boundaries
  // above, not from inside a build.
  ExecutionContext exec = exec_in;
  exec.cancel = CancelToken();
  DistanceMatrix dm;
  const size_t n = points.rows();
  dm.n_ = n;
  dm.storage_ = storage;
  if (n < 2) return dm;
  const size_t condensed_size = n * (n - 1) / 2;
  double* out64 = nullptr;
  float* out32 = nullptr;
  if (storage == DistanceStorage::kF32) {
    dm.data32_.resize(condensed_size);
    out32 = dm.data32_.data();
  } else {
    dm.data_.resize(condensed_size);
    out64 = dm.data_.data();
  }

  const MetricKernel kernel = SelectMetricKernel(metric, exec.distance_kernel);
  const size_t d = points.cols();

  // Upper-triangular tile grid: panel (pi) × panel (pj >= pi). Diagonal
  // tiles compute their own upper triangle. Every tile writes a disjoint
  // set of condensed slots and every pair's value is independent of the
  // tile shape, so the build is bit-identical for any thread count.
  const size_t panel = std::min(PanelRows(d), n);
  const size_t num_panels = (n + panel - 1) / panel;
  std::vector<std::pair<uint32_t, uint32_t>> tiles;
  tiles.reserve(num_panels * (num_panels + 1) / 2);
  for (uint32_t pi = 0; pi < num_panels; ++pi) {
    for (uint32_t pj = pi; pj < num_panels; ++pj) {
      tiles.emplace_back(pi, pj);
    }
  }

  ParallelFor(exec, tiles.size(), [&](size_t t) {
    const auto [pi, pj] = tiles[t];
    const size_t r0 = pi * panel, r1 = std::min(n, r0 + panel);
    const size_t c0 = pj * panel, c1 = std::min(n, c0 + panel);
    // Repack the column panel into a contiguous scratch buffer so the
    // inner loop is a pure kernel sweep over two dense row blocks that
    // stay resident in L2 for the whole tile.
    std::vector<double> col_panel((c1 - c0) * d);
    for (size_t j = c0; j < c1; ++j) {
      const std::span<const double> row = points.Row(j);
      std::copy(row.begin(), row.end(), col_panel.begin() + (j - c0) * d);
    }
    for (size_t i = r0; i < r1; ++i) {
      const size_t j_begin = std::max(i + 1, c0);
      if (j_begin >= c1) continue;
      const double* row_i = points.Row(i).data();
      // CondensedIndex(i, j_begin), then consecutive slots across j.
      size_t idx = i * n - i * (i + 1) / 2 + (j_begin - i - 1);
      const double* col = col_panel.data() + (j_begin - c0) * d;
      size_t j = j_begin;
      if (kernel.batch4 != nullptr) {
        // Four packed columns per call: same bits as four single-pair
        // calls, but the batch runs four accumulator chains at once.
        for (; j + 4 <= c1; j += 4, col += 4 * d) {
          double values[4];
          kernel.batch4(row_i, col, d, d, values);
          for (double value : values) {
            if (kernel.sqrt_after) value = std::sqrt(value);
            if (out32 != nullptr) {
              out32[idx++] = NarrowToF32(value);
            } else {
              out64[idx++] = value;
            }
          }
        }
      }
      for (; j < c1; ++j, col += d) {
        double value = kernel.fn(row_i, col, d);
        if (kernel.sqrt_after) value = std::sqrt(value);
        if (out32 != nullptr) {
          out32[idx++] = NarrowToF32(value);
        } else {
          out64[idx++] = value;
        }
      }
    }
  });
  return dm;
}

DistanceMatrix DistanceMatrix::ComputeUntiled(const Matrix& points,
                                              Metric metric,
                                              const ExecutionContext& exec) {
  DistanceMatrix dm;
  const size_t n = points.rows();
  dm.n_ = n;
  if (n < 2) return dm;
  dm.data_.resize(n * (n - 1) / 2);
  double* out = dm.data_.data();
  const MetricKernel kernel = SelectMetricKernel(metric, exec.distance_kernel);
  const size_t d = points.cols();
  // One task per row i fills the contiguous condensed block for pairs
  // (i, i+1..n-1); rows shrink toward the end, and ParallelFor's dynamic
  // index claiming balances that triangular load.
  ParallelFor(exec, n - 1, [&](size_t i) {
    size_t idx = i * n - i * (i + 1) / 2;  // CondensedIndex(i, i + 1)
    const double* row = points.Row(i).data();
    for (size_t j = i + 1; j < n; ++j) {
      double value = kernel.fn(row, points.Row(j).data(), d);
      if (kernel.sqrt_after) value = std::sqrt(value);
      out[idx++] = value;
    }
  });
  return dm;
}

}  // namespace cvcp
