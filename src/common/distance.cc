#include "common/distance.h"

#include <atomic>
#include <cmath>

namespace cvcp {

namespace {

/// Process-wide kernel switch; relaxed loads keep the hot path free.
std::atomic<bool> g_unrolled_kernels{false};

}  // namespace

void SetUnrolledDistanceKernels(bool enabled) {
  g_unrolled_kernels.store(enabled, std::memory_order_relaxed);
}

bool UnrolledDistanceKernelsEnabled() {
  return g_unrolled_kernels.load(std::memory_order_relaxed);
}

double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (UnrolledDistanceKernelsEnabled()) {
    // Four independent accumulators break the loop-carried add dependency
    // so the FMA units pipeline; the price is a reassociated (non-bitwise)
    // sum, which is why this path is opt-in.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const double d0 = a[i] - b[i];
      const double d1 = a[i + 1] - b[i + 1];
      const double d2 = a[i + 2] - b[i + 2];
      const double d3 = a[i + 3] - b[i + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    for (; i < n; ++i) {
      const double d = a[i] - b[i];
      s0 += d * d;
    }
    return (s0 + s1) + (s2 + s3);
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

double ManhattanDistance(std::span<const double> a,
                         std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (UnrolledDistanceKernelsEnabled()) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      s0 += std::fabs(a[i] - b[i]);
      s1 += std::fabs(a[i + 1] - b[i + 1]);
      s2 += std::fabs(a[i + 2] - b[i + 2]);
      s3 += std::fabs(a[i + 3] - b[i + 3]);
    }
    for (; i < n; ++i) {
      s0 += std::fabs(a[i] - b[i]);
    }
    return (s0 + s1) + (s2 + s3);
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum;
}

double CosineDistance(std::span<const double> a, std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

double WeightedSquaredEuclidean(std::span<const double> a,
                                std::span<const double> b,
                                std::span<const double> weights) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  CVCP_DCHECK_EQ(a.size(), weights.size());
  const size_t n = a.size();
  if (UnrolledDistanceKernelsEnabled()) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const double d0 = a[i] - b[i];
      const double d1 = a[i + 1] - b[i + 1];
      const double d2 = a[i + 2] - b[i + 2];
      const double d3 = a[i + 3] - b[i + 3];
      s0 += weights[i] * d0 * d0;
      s1 += weights[i + 1] * d1 * d1;
      s2 += weights[i + 2] * d2 * d2;
      s3 += weights[i + 3] * d3 * d3;
    }
    for (; i < n; ++i) {
      const double d = a[i] - b[i];
      s0 += weights[i] * d * d;
    }
    return (s0 + s1) + (s2 + s3);
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += weights[i] * d * d;
  }
  return sum;
}

double Distance(std::span<const double> a, std::span<const double> b,
                Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return EuclideanDistance(a, b);
    case Metric::kSquaredEuclidean:
      return SquaredEuclideanDistance(a, b);
    case Metric::kManhattan:
      return ManhattanDistance(a, b);
    case Metric::kCosine:
      return CosineDistance(a, b);
  }
  CVCP_CHECK_MSG(false, "unreachable metric");
  return 0.0;
}

DistanceMatrix DistanceMatrix::FromCondensed(size_t n,
                                             std::vector<double> data) {
  CVCP_CHECK_EQ(data.size(), n < 2 ? 0 : n * (n - 1) / 2);
  DistanceMatrix dm;
  dm.n_ = n;
  dm.data_ = std::move(data);
  return dm;
}

DistanceMatrix DistanceMatrix::Compute(const Matrix& points, Metric metric,
                                       const ExecutionContext& exec) {
  DistanceMatrix dm;
  const size_t n = points.rows();
  dm.n_ = n;
  if (n < 2) return dm;
  dm.data_.resize(n * (n - 1) / 2);
  double* out = dm.data_.data();
  // One task per row i fills the contiguous condensed block for pairs
  // (i, i+1..n-1); rows shrink toward the end, and ParallelFor's dynamic
  // index claiming balances that triangular load.
  ParallelFor(exec, n - 1, [&](size_t i) {
    size_t idx = i * n - i * (i + 1) / 2;  // CondensedIndex(i, i + 1)
    const std::span<const double> row = points.Row(i);
    for (size_t j = i + 1; j < n; ++j) {
      out[idx++] = Distance(row, points.Row(j), metric);
    }
  });
  return dm;
}

}  // namespace cvcp
