#include "common/distance.h"

#include <cmath>

namespace cvcp {

double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

double ManhattanDistance(std::span<const double> a,
                         std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum;
}

double CosineDistance(std::span<const double> a, std::span<const double> b) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

double WeightedSquaredEuclidean(std::span<const double> a,
                                std::span<const double> b,
                                std::span<const double> weights) {
  CVCP_DCHECK_EQ(a.size(), b.size());
  CVCP_DCHECK_EQ(a.size(), weights.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += weights[i] * d * d;
  }
  return sum;
}

double Distance(std::span<const double> a, std::span<const double> b,
                Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return EuclideanDistance(a, b);
    case Metric::kSquaredEuclidean:
      return SquaredEuclideanDistance(a, b);
    case Metric::kManhattan:
      return ManhattanDistance(a, b);
    case Metric::kCosine:
      return CosineDistance(a, b);
  }
  CVCP_CHECK_MSG(false, "unreachable metric");
  return 0.0;
}

DistanceMatrix DistanceMatrix::Compute(const Matrix& points, Metric metric,
                                       const ExecutionContext& exec) {
  DistanceMatrix dm;
  const size_t n = points.rows();
  dm.n_ = n;
  if (n < 2) return dm;
  dm.data_.resize(n * (n - 1) / 2);
  double* out = dm.data_.data();
  // One task per row i fills the contiguous condensed block for pairs
  // (i, i+1..n-1); rows shrink toward the end, and ParallelFor's dynamic
  // index claiming balances that triangular load.
  ParallelFor(exec, n - 1, [&](size_t i) {
    size_t idx = i * n - i * (i + 1) / 2;  // CondensedIndex(i, i + 1)
    const std::span<const double> row = points.Row(i);
    for (size_t j = i + 1; j < n; ++j) {
      out[idx++] = Distance(row, points.Row(j), metric);
    }
  });
  return dm;
}

}  // namespace cvcp
