#ifndef CVCP_COMMON_FILE_IO_H_
#define CVCP_COMMON_FILE_IO_H_

/// \file
/// The two file operations every persistent component shares: whole-file
/// reads and crash-safe whole-file writes. Extracted from the artifact
/// store so the service layer's result store (and any future WAL) uses
/// the identical discipline instead of reimplementing it:
///
///   * `ReadFileToString` — one read, classified: kNotFound when the
///     file does not exist (a cold key, not an error) vs kCorruption
///     when it exists but cannot be read completely.
///   * `WriteFileAtomic` — serialize to `<name>.tmp.<pid>.<seq>` in the
///     same directory, then atomically rename over the final name.
///     POSIX rename is atomic within a directory, so readers only ever
///     see the old complete file, the new complete file, or no file —
///     never partial bytes. Concurrent same-key writers last-write-win,
///     which is safe exactly when the bytes are a deterministic function
///     of the name (the invariant every store in this tree maintains).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cvcp {

/// Reads the whole file at `path`. kNotFound when it cannot be opened,
/// kCorruption when a read fails midway.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically publishes `bytes` as `directory/filename` (creating
/// `directory` if needed) via a tmp file + rename. `temp_seq` must be
/// unique among concurrent writers in this process (callers keep an
/// atomic counter); the pid disambiguates across processes.
Status WriteFileAtomic(const std::string& directory,
                       const std::string& filename, std::string_view bytes,
                       uint64_t temp_seq);

}  // namespace cvcp

#endif  // CVCP_COMMON_FILE_IO_H_
