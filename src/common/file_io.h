#ifndef CVCP_COMMON_FILE_IO_H_
#define CVCP_COMMON_FILE_IO_H_

/// \file
/// The two file operations every persistent component shares: whole-file
/// reads and crash-safe whole-file writes. Extracted from the artifact
/// store so the service layer's result store (and any future WAL) uses
/// the identical discipline instead of reimplementing it:
///
///   * `ReadFileToString` — one read, classified: kNotFound when the
///     file does not exist (a cold key, not an error) vs kCorruption
///     when it exists but cannot be read completely.
///   * `WriteFileAtomic` — serialize to `<name>.tmp.<pid>.<seq>` in the
///     same directory, then atomically rename over the final name.
///     POSIX rename is atomic within a directory, so readers only ever
///     see the old complete file, the new complete file, or no file —
///     never partial bytes. Concurrent same-key writers last-write-win,
///     which is safe exactly when the bytes are a deterministic function
///     of the name (the invariant every store in this tree maintains).
///     A write failure (including ENOSPC, classified kResourceExhausted)
///     removes the tmp file and leaves the final name untouched.
///
/// Because every store funnels through these two functions, they carry
/// the tree's single fault-injection seam (`FileOpsHooks`): tests fail
/// the Nth write, truncate reads, refuse renames, or simulate a full
/// disk here and observe how the layers above degrade — without mocking
/// any store API.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cvcp {

/// Test-only fault-injection hooks consulted by ReadFileToString and
/// WriteFileAtomic. Every member is optional; an empty function injects
/// nothing. Hooks must be deterministic (count calls, match paths) — no
/// wall-clock or randomness — so fault suites replay exactly.
struct FileOpsHooks {
  /// Non-OK fails the read of `path` before any bytes are touched.
  std::function<Status(const std::string& path)> before_read;
  /// Truncates the bytes a successful read returns (a torn read as seen
  /// after a crash). Return -1 for the full file.
  std::function<int64_t(const std::string& path)> truncate_read;
  /// Non-OK fails the tmp-file write. Return
  /// `Status::ResourceExhausted(...)` to simulate ENOSPC.
  std::function<Status(const std::string& temp_path)> before_write;
  /// Caps how many bytes the tmp write persists; the short write is then
  /// detected and reported as a failure. Return -1 for the full write.
  std::function<int64_t(const std::string& temp_path)> short_write;
  /// Non-OK fails the rename that publishes the final file.
  std::function<Status(const std::string& final_path)> before_rename;
};

/// Installs `hooks` process-wide for the scope's lifetime and restores
/// the previous hooks on destruction. `hooks` must outlive the scope.
/// Not for concurrent use from multiple test threads (installation is a
/// plain atomic swap; the hook functions themselves may be called
/// concurrently and must be internally synchronized if they mutate).
class ScopedFileOpsHooks {
 public:
  explicit ScopedFileOpsHooks(const FileOpsHooks* hooks);
  ~ScopedFileOpsHooks();

  ScopedFileOpsHooks(const ScopedFileOpsHooks&) = delete;
  ScopedFileOpsHooks& operator=(const ScopedFileOpsHooks&) = delete;

 private:
  const FileOpsHooks* previous_;
};

/// Reads the whole file at `path`. kNotFound when it cannot be opened,
/// kCorruption when a read fails midway.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically publishes `bytes` as `directory/filename` (creating
/// `directory` if needed) via a tmp file + rename. The tmp file is
/// fsync'd before the rename (no torn publish) and the directory is
/// fsync'd after it (the new directory entry survives power loss), so an
/// OK return means the record is visible *and* durable. `temp_seq` must
/// be unique among concurrent writers in this process (callers keep an
/// atomic counter); the pid disambiguates across processes. Failures are
/// classified: kResourceExhausted when the filesystem is out of space,
/// kInternal otherwise; the tmp file is removed on every failure path
/// (except a failed post-rename directory sync, where the complete file
/// is already published and a retry is idempotent).
Status WriteFileAtomic(const std::string& directory,
                       const std::string& filename, std::string_view bytes,
                       uint64_t temp_seq);

/// True when `filename` matches the `<name>.tmp.<pid>.<seq>` pattern
/// WriteFileAtomic uses — i.e. it is an unpublished temp file that a
/// crash between write and rename may have stranded.
bool IsTempFileName(std::string_view filename);

/// Removes every stranded temp file (per IsTempFileName) directly inside
/// `directory` and returns how many were removed. Safe only when no
/// writer is concurrently publishing into `directory` — callers run it
/// during single-threaded recovery or from the offline inspector. A
/// missing directory sweeps zero files (not an error).
Result<uint64_t> RemoveOrphanTempFiles(const std::string& directory);

}  // namespace cvcp

#endif  // CVCP_COMMON_FILE_IO_H_
