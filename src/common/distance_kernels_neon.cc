/// \file
/// NEON (AArch64) implementation of the fixed-lane distance kernels.
/// Compiled with -ffp-contract=off on AArch64 only (CMake defines
/// CVCP_HAVE_NEON); NEON is architecturally mandatory there, so the
/// dispatcher selects this table without a runtime probe.
///
/// Lane mapping: four 128-bit accumulators hold virtual lane pairs
/// (0,1) (2,3) (4,5) (6,7), so one 8-element block is four 2-double
/// loads and lane k receives exactly the terms at indices ≡ k (mod 8) in
/// increasing order — the fixed-lane contract (distance_kernels.h). The
/// registers are spilled to a lane array, the tail is accumulated in
/// scalar, and the canonical reduction tree runs in scalar — all
/// bit-identical to the portable reference. No FMA intrinsics (vfmaq):
/// fusion would change the rounding of every term.

#include "common/distance_kernels.h"

#if defined(CVCP_HAVE_NEON)

#include <arm_neon.h>

#include <cmath>

namespace cvcp::internal {

namespace {

inline double ReduceLanes(const double lanes[kFixedLaneWidth]) {
  const double m0 = lanes[0] + lanes[4];
  const double m1 = lanes[1] + lanes[5];
  const double m2 = lanes[2] + lanes[6];
  const double m3 = lanes[3] + lanes[7];
  return (m0 + m2) + (m1 + m3);
}

struct Acc8 {
  float64x2_t v01 = vdupq_n_f64(0.0);
  float64x2_t v23 = vdupq_n_f64(0.0);
  float64x2_t v45 = vdupq_n_f64(0.0);
  float64x2_t v67 = vdupq_n_f64(0.0);

  void Spill(double lanes[kFixedLaneWidth]) const {
    vst1q_f64(lanes, v01);
    vst1q_f64(lanes + 2, v23);
    vst1q_f64(lanes + 4, v45);
    vst1q_f64(lanes + 6, v67);
  }
};

double NeonSquaredEuclidean(const double* a, const double* b, size_t n) {
  Acc8 acc;
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const float64x2_t d01 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    const float64x2_t d45 =
        vsubq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    const float64x2_t d67 =
        vsubq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
    acc.v01 = vaddq_f64(acc.v01, vmulq_f64(d01, d01));
    acc.v23 = vaddq_f64(acc.v23, vmulq_f64(d23, d23));
    acc.v45 = vaddq_f64(acc.v45, vmulq_f64(d45, d45));
    acc.v67 = vaddq_f64(acc.v67, vmulq_f64(d67, d67));
  }
  double lanes[kFixedLaneWidth];
  acc.Spill(lanes);
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += d * d;
  }
  return ReduceLanes(lanes);
}

// Four pairs against a shared `a`: the four `a` loads per block feed all
// four b-streams and the sixteen accumulators give four independent add
// chains (AArch64 has 32 vector registers). Per pair the terms hit the
// same lanes in the same order as NeonSquaredEuclidean —
// bitwise-identical results.
void NeonSquaredEuclideanX4(const double* a, const double* b, size_t stride,
                            size_t n, double out[4]) {
  const double* bs[4] = {b, b + stride, b + 2 * stride, b + 3 * stride};
  Acc8 acc[4];
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const float64x2_t a01 = vld1q_f64(a + i);
    const float64x2_t a23 = vld1q_f64(a + i + 2);
    const float64x2_t a45 = vld1q_f64(a + i + 4);
    const float64x2_t a67 = vld1q_f64(a + i + 6);
    for (size_t p = 0; p < 4; ++p) {
      const float64x2_t d01 = vsubq_f64(a01, vld1q_f64(bs[p] + i));
      const float64x2_t d23 = vsubq_f64(a23, vld1q_f64(bs[p] + i + 2));
      const float64x2_t d45 = vsubq_f64(a45, vld1q_f64(bs[p] + i + 4));
      const float64x2_t d67 = vsubq_f64(a67, vld1q_f64(bs[p] + i + 6));
      acc[p].v01 = vaddq_f64(acc[p].v01, vmulq_f64(d01, d01));
      acc[p].v23 = vaddq_f64(acc[p].v23, vmulq_f64(d23, d23));
      acc[p].v45 = vaddq_f64(acc[p].v45, vmulq_f64(d45, d45));
      acc[p].v67 = vaddq_f64(acc[p].v67, vmulq_f64(d67, d67));
    }
  }
  for (size_t p = 0; p < 4; ++p) {
    double lanes[kFixedLaneWidth];
    acc[p].Spill(lanes);
    for (size_t i = base; i < n; ++i) {
      const double d = a[i] - bs[p][i];
      lanes[i - base] += d * d;
    }
    out[p] = ReduceLanes(lanes);
  }
}

double NeonManhattan(const double* a, const double* b, size_t n) {
  Acc8 acc;
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const float64x2_t d01 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    const float64x2_t d45 =
        vsubq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    const float64x2_t d67 =
        vsubq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
    acc.v01 = vaddq_f64(acc.v01, vabsq_f64(d01));
    acc.v23 = vaddq_f64(acc.v23, vabsq_f64(d23));
    acc.v45 = vaddq_f64(acc.v45, vabsq_f64(d45));
    acc.v67 = vaddq_f64(acc.v67, vabsq_f64(d67));
  }
  double lanes[kFixedLaneWidth];
  acc.Spill(lanes);
  for (size_t i = base; i < n; ++i) {
    lanes[i - base] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

double NeonCosine(const double* a, const double* b, size_t n) {
  Acc8 dot_acc, na_acc, nb_acc;
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const float64x2_t a01 = vld1q_f64(a + i), b01 = vld1q_f64(b + i);
    const float64x2_t a23 = vld1q_f64(a + i + 2), b23 = vld1q_f64(b + i + 2);
    const float64x2_t a45 = vld1q_f64(a + i + 4), b45 = vld1q_f64(b + i + 4);
    const float64x2_t a67 = vld1q_f64(a + i + 6), b67 = vld1q_f64(b + i + 6);
    dot_acc.v01 = vaddq_f64(dot_acc.v01, vmulq_f64(a01, b01));
    dot_acc.v23 = vaddq_f64(dot_acc.v23, vmulq_f64(a23, b23));
    dot_acc.v45 = vaddq_f64(dot_acc.v45, vmulq_f64(a45, b45));
    dot_acc.v67 = vaddq_f64(dot_acc.v67, vmulq_f64(a67, b67));
    na_acc.v01 = vaddq_f64(na_acc.v01, vmulq_f64(a01, a01));
    na_acc.v23 = vaddq_f64(na_acc.v23, vmulq_f64(a23, a23));
    na_acc.v45 = vaddq_f64(na_acc.v45, vmulq_f64(a45, a45));
    na_acc.v67 = vaddq_f64(na_acc.v67, vmulq_f64(a67, a67));
    nb_acc.v01 = vaddq_f64(nb_acc.v01, vmulq_f64(b01, b01));
    nb_acc.v23 = vaddq_f64(nb_acc.v23, vmulq_f64(b23, b23));
    nb_acc.v45 = vaddq_f64(nb_acc.v45, vmulq_f64(b45, b45));
    nb_acc.v67 = vaddq_f64(nb_acc.v67, vmulq_f64(b67, b67));
  }
  double dot[kFixedLaneWidth], na[kFixedLaneWidth], nb[kFixedLaneWidth];
  dot_acc.Spill(dot);
  na_acc.Spill(na);
  nb_acc.Spill(nb);
  for (size_t i = base; i < n; ++i) {
    dot[i - base] += a[i] * b[i];
    na[i - base] += a[i] * a[i];
    nb[i - base] += b[i] * b[i];
  }
  const double sum_dot = ReduceLanes(dot);
  const double sum_na = ReduceLanes(na);
  const double sum_nb = ReduceLanes(nb);
  if (sum_na == 0.0 || sum_nb == 0.0) return 1.0;
  return 1.0 - sum_dot / (std::sqrt(sum_na) * std::sqrt(sum_nb));
}

double NeonWeightedSquaredEuclidean(const double* a, const double* b,
                                    const double* w, size_t n) {
  Acc8 acc;
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const float64x2_t d01 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    const float64x2_t d45 =
        vsubq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    const float64x2_t d67 =
        vsubq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
    acc.v01 = vaddq_f64(acc.v01,
                        vmulq_f64(vld1q_f64(w + i), vmulq_f64(d01, d01)));
    acc.v23 = vaddq_f64(acc.v23,
                        vmulq_f64(vld1q_f64(w + i + 2), vmulq_f64(d23, d23)));
    acc.v45 = vaddq_f64(acc.v45,
                        vmulq_f64(vld1q_f64(w + i + 4), vmulq_f64(d45, d45)));
    acc.v67 = vaddq_f64(acc.v67,
                        vmulq_f64(vld1q_f64(w + i + 6), vmulq_f64(d67, d67)));
  }
  double lanes[kFixedLaneWidth];
  acc.Spill(lanes);
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += w[i] * (d * d);
  }
  return ReduceLanes(lanes);
}

const DistanceKernels kNeonFixedLane = {
    NeonSquaredEuclidean,
    NeonManhattan,
    NeonCosine,
    NeonWeightedSquaredEuclidean,
    NeonSquaredEuclideanX4,
};

}  // namespace

const DistanceKernels& NeonFixedLaneKernels() { return kNeonFixedLane; }

}  // namespace cvcp::internal

#endif  // CVCP_HAVE_NEON
