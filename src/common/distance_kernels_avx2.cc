/// \file
/// AVX2 implementation of the fixed-lane distance kernels. Compiled with
/// -mavx2 -ffp-contract=off on x86-64 only (CMake defines
/// CVCP_HAVE_AVX2); selected at runtime by the dispatcher in
/// distance_kernels.cc when the CPU reports AVX2.
///
/// Lane mapping: accumulator register 0 holds virtual lanes 0..3,
/// register 1 holds lanes 4..7, so one 8-element block is two 256-bit
/// loads and lane k receives exactly the terms at indices ≡ k (mod 8) in
/// increasing order — the fixed-lane contract (distance_kernels.h). The
/// registers are spilled to a lane array, the tail is accumulated in
/// scalar (bit-identical: same adds, same order), and the canonical
/// reduction tree runs in scalar. No FMA intrinsics anywhere: fusion
/// would change the rounding of every term.

#include "common/distance_kernels.h"

#if defined(CVCP_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

namespace cvcp::internal {

namespace {

inline double ReduceLanes(const double lanes[kFixedLaneWidth]) {
  const double m0 = lanes[0] + lanes[4];
  const double m1 = lanes[1] + lanes[5];
  const double m2 = lanes[2] + lanes[6];
  const double m3 = lanes[3] + lanes[7];
  return (m0 + m2) + (m1 + m3);
}

/// The same reduction tree without leaving the registers: acc0 holds
/// lanes 0..3 and acc1 lanes 4..7, so vaddpd(acc0, acc1) is exactly
/// (m0, m1, m2, m3), the 128-bit halves add to (m0+m2, m1+m3), and the
/// final scalar add closes the tree — the identical additions in the
/// identical order as ReduceLanes, so the result is bit-equal. Used on
/// the no-tail path (n divisible by 8), where spilling the lanes to
/// memory for scalar reduction would cost more than the whole main loop.
inline double ReduceButterfly(__m256d acc0, __m256d acc1) {
  const __m256d m = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(m);        // (m0, m1)
  const __m128d hi = _mm256_extractf128_pd(m, 1);      // (m2, m3)
  const __m128d s = _mm_add_pd(lo, hi);                // (m0+m2, m1+m3)
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

inline void SpillLanes(__m256d acc0, __m256d acc1,
                       double lanes[kFixedLaneWidth]) {
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
}

/// Clears the sign bit (|x|) without a branch; bit-identical to fabs.
inline __m256d Abs(__m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  return _mm256_andnot_pd(sign_mask, x);
}

double Avx2SquaredEuclidean(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  if (base == n) return ReduceButterfly(acc0, acc1);
  double lanes[kFixedLaneWidth];
  SpillLanes(acc0, acc1, lanes);
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += d * d;
  }
  return ReduceLanes(lanes);
}

// Four pairs at once against a shared `a`: one pair of `a` loads feeds
// four b-streams, and the eight accumulator registers give four
// independent add chains, so the loop runs at add *throughput* instead
// of one pair's add latency. Per pair the terms hit the same lanes in
// the same order as Avx2SquaredEuclidean — bitwise-identical results.
void Avx2SquaredEuclideanX4(const double* a, const double* b, size_t stride,
                            size_t n, double out[4]) {
  const double* bs[4] = {b, b + stride, b + 2 * stride, b + 3 * stride};
  __m256d acc0[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                     _mm256_setzero_pd(), _mm256_setzero_pd()};
  __m256d acc1[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                     _mm256_setzero_pd(), _mm256_setzero_pd()};
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const __m256d va0 = _mm256_loadu_pd(a + i);
    const __m256d va1 = _mm256_loadu_pd(a + i + 4);
    for (size_t p = 0; p < 4; ++p) {
      const __m256d d0 = _mm256_sub_pd(va0, _mm256_loadu_pd(bs[p] + i));
      const __m256d d1 = _mm256_sub_pd(va1, _mm256_loadu_pd(bs[p] + i + 4));
      acc0[p] = _mm256_add_pd(acc0[p], _mm256_mul_pd(d0, d0));
      acc1[p] = _mm256_add_pd(acc1[p], _mm256_mul_pd(d1, d1));
    }
  }
  if (base == n) {
    for (size_t p = 0; p < 4; ++p) out[p] = ReduceButterfly(acc0[p], acc1[p]);
    return;
  }
  for (size_t p = 0; p < 4; ++p) {
    double lanes[kFixedLaneWidth];
    SpillLanes(acc0[p], acc1[p], lanes);
    for (size_t i = base; i < n; ++i) {
      const double d = a[i] - bs[p][i];
      lanes[i - base] += d * d;
    }
    out[p] = ReduceLanes(lanes);
  }
}

double Avx2Manhattan(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, Abs(d0));
    acc1 = _mm256_add_pd(acc1, Abs(d1));
  }
  double lanes[kFixedLaneWidth];
  SpillLanes(acc0, acc1, lanes);
  for (size_t i = base; i < n; ++i) {
    lanes[i - base] += std::fabs(a[i] - b[i]);
  }
  return ReduceLanes(lanes);
}

double Avx2Cosine(const double* a, const double* b, size_t n) {
  __m256d dot0 = _mm256_setzero_pd(), dot1 = _mm256_setzero_pd();
  __m256d na0 = _mm256_setzero_pd(), na1 = _mm256_setzero_pd();
  __m256d nb0 = _mm256_setzero_pd(), nb1 = _mm256_setzero_pd();
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const __m256d va0 = _mm256_loadu_pd(a + i);
    const __m256d va1 = _mm256_loadu_pd(a + i + 4);
    const __m256d vb0 = _mm256_loadu_pd(b + i);
    const __m256d vb1 = _mm256_loadu_pd(b + i + 4);
    dot0 = _mm256_add_pd(dot0, _mm256_mul_pd(va0, vb0));
    dot1 = _mm256_add_pd(dot1, _mm256_mul_pd(va1, vb1));
    na0 = _mm256_add_pd(na0, _mm256_mul_pd(va0, va0));
    na1 = _mm256_add_pd(na1, _mm256_mul_pd(va1, va1));
    nb0 = _mm256_add_pd(nb0, _mm256_mul_pd(vb0, vb0));
    nb1 = _mm256_add_pd(nb1, _mm256_mul_pd(vb1, vb1));
  }
  double dot[kFixedLaneWidth], na[kFixedLaneWidth], nb[kFixedLaneWidth];
  SpillLanes(dot0, dot1, dot);
  SpillLanes(na0, na1, na);
  SpillLanes(nb0, nb1, nb);
  for (size_t i = base; i < n; ++i) {
    dot[i - base] += a[i] * b[i];
    na[i - base] += a[i] * a[i];
    nb[i - base] += b[i] * b[i];
  }
  const double sum_dot = ReduceLanes(dot);
  const double sum_na = ReduceLanes(na);
  const double sum_nb = ReduceLanes(nb);
  if (sum_na == 0.0 || sum_nb == 0.0) return 1.0;
  return 1.0 - sum_dot / (std::sqrt(sum_na) * std::sqrt(sum_nb));
}

double Avx2WeightedSquaredEuclidean(const double* a, const double* b,
                                    const double* w, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const size_t base = n - n % kFixedLaneWidth;
  for (size_t i = 0; i < base; i += kFixedLaneWidth) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    // w * (d * d), matching the portable reference's parenthesization.
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(w + i), _mm256_mul_pd(d0, d0)));
    acc1 = _mm256_add_pd(
        acc1,
        _mm256_mul_pd(_mm256_loadu_pd(w + i + 4), _mm256_mul_pd(d1, d1)));
  }
  double lanes[kFixedLaneWidth];
  SpillLanes(acc0, acc1, lanes);
  for (size_t i = base; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - base] += w[i] * (d * d);
  }
  return ReduceLanes(lanes);
}

const DistanceKernels kAvx2FixedLane = {
    Avx2SquaredEuclidean,
    Avx2Manhattan,
    Avx2Cosine,
    Avx2WeightedSquaredEuclidean,
    Avx2SquaredEuclideanX4,
};

}  // namespace

const DistanceKernels& Avx2FixedLaneKernels() { return kAvx2FixedLane; }

}  // namespace cvcp::internal

#endif  // CVCP_HAVE_AVX2
