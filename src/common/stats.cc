#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace cvcp {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double Mean(std::span<const double> v) {
  if (v.empty()) return kNaN;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double SampleVariance(std::span<const double> v) {
  if (v.size() < 2) return kNaN;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(v.size() - 1);
}

double SampleStdDev(std::span<const double> v) {
  const double var = SampleVariance(v);
  return std::isnan(var) ? kNaN : std::sqrt(var);
}

double Median(std::vector<double> v) {
  if (v.empty()) return kNaN;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double QuantileSorted(std::span<const double> sorted, double q) {
  CVCP_CHECK_GE(q, 0.0);
  CVCP_CHECK_LE(q, 1.0);
  if (sorted.empty()) return kNaN;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  CVCP_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return kNaN;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return kNaN;
  return sxy / std::sqrt(sxx * syy);
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoeffs[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  CVCP_CHECK_GT(x, 0.0);
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) {
    a += kCoeffs[i] / (x + static_cast<double>(i));
  }
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

/// Continued-fraction evaluation for the incomplete beta function
/// (Numerical-Recipes style modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-12;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    // Even step.
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  CVCP_CHECK_GT(a, 0.0);
  CVCP_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, else the
  // symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  CVCP_CHECK_GT(df, 0.0);
  if (std::isnan(t)) return kNaN;
  // I_x(df/2, 1/2) with x = df / (df + t^2) gives the two-tail mass.
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

bool PairedTTestResult::SignificantAt(double alpha) const {
  return !std::isnan(p_value) && p_value < alpha;
}

PairedTTestResult PairedTTest(std::span<const double> a,
                              std::span<const double> b) {
  CVCP_CHECK_EQ(a.size(), b.size());
  PairedTTestResult res;
  res.n = a.size();
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  res.mean_diff = Mean(diffs);
  if (a.size() < 2) {
    res.t_statistic = kNaN;
    res.p_value = kNaN;
    return res;
  }
  const double sd = SampleStdDev(diffs);
  if (sd == 0.0) {
    // All differences identical: degenerate. Identical samples are clearly
    // non-significant; a constant non-zero shift is "infinitely"
    // significant.
    res.t_statistic = res.mean_diff == 0.0
                          ? 0.0
                          : std::numeric_limits<double>::infinity() *
                                (res.mean_diff > 0 ? 1.0 : -1.0);
    res.p_value = res.mean_diff == 0.0 ? 1.0 : 0.0;
    return res;
  }
  const double n = static_cast<double>(a.size());
  res.t_statistic = res.mean_diff / (sd / std::sqrt(n));
  const double df = n - 1.0;
  const double cdf = StudentTCdf(std::fabs(res.t_statistic), df);
  res.p_value = 2.0 * (1.0 - cdf);
  return res;
}

}  // namespace cvcp
