#ifndef CVCP_COMMON_THREAD_ANNOTATIONS_H_
#define CVCP_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis annotations (LevelDB
/// `port/thread_annotations.h` style). Under Clang with `-Wthread-safety`
/// these attributes let the compiler prove, per translation unit, that
/// every access to a `GUARDED_BY` member happens with the named mutex
/// held and that every `REQUIRES` function is only called under its lock
/// — turning the repo's data-race-freedom contract (thread_pool.h,
/// sharded_cache.h, dataset_cache.h) into a build failure instead of a
/// TSan-someday finding. On other compilers every macro expands to
/// nothing, so annotated code builds everywhere.
///
/// The analysis only understands types that declare themselves a
/// `CAPABILITY` — raw `std::mutex` members are invisible to it, which is
/// why the annotated components hold a `cvcp::Mutex` (common/mutex.h)
/// instead.
///
/// Usage map (the subset this repo uses):
///   GUARDED_BY(mu)        data member: reads and writes need `mu` held
///   PT_GUARDED_BY(mu)     pointer member: the pointee needs `mu` held
///   REQUIRES(mu)          function: caller must hold `mu`
///   ACQUIRE(mu)/RELEASE(mu)  function: takes/drops `mu` itself
///   EXCLUDES(mu)          function: caller must NOT hold `mu`
///   NO_THREAD_SAFETY_ANALYSIS  opt-out, always paired with a why-comment
///
/// Policy: a suppression (`NO_THREAD_SAFETY_ANALYSIS`) must carry a
/// comment explaining why the analysis cannot see the invariant; see
/// docs/static_analysis.md.

#if defined(__clang__)
#define CVCP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CVCP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on non-Clang
#endif

#define CAPABILITY(x) CVCP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY CVCP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) CVCP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) CVCP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) CVCP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RETURN_CAPABILITY(x) CVCP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  CVCP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Pre-capability spellings (the LevelDB-era names), kept as aliases so
// either form reads naturally at a call site.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)
#define SHARED_LOCKS_REQUIRED(...) REQUIRES_SHARED(__VA_ARGS__)

#endif  // CVCP_COMMON_THREAD_ANNOTATIONS_H_
