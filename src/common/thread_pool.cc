#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace cvcp {

namespace {
thread_local bool tls_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  CVCP_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CVCP_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so submitted futures complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads must not outlive the pool, and
  // static destruction order across translation units is unknowable.
  static ThreadPool* shared = new ThreadPool(static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency())));
  return *shared;
}

}  // namespace cvcp
