#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace cvcp {

namespace {
thread_local bool tls_on_worker_thread = false;

/// Runs an adopted task on a waiting thread. An exception escaping here
/// would unwind the waiter's ParallelFor frame while its other lanes
/// still reference it (use-after-free), so the no-throw contract of
/// Post/Submit-wrapped tasks is enforced, not assumed — mirroring how an
/// exception escaping a worker thread would std::terminate anyway.
void RunAdoptedTask(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    CVCP_CHECK_MSG(false,
                   "a pool task leaked an exception into a helping waiter; "
                   "tasks must catch their own exceptions (see "
                   "ThreadPool::Post)");
  }
}
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  CVCP_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    CVCP_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.back());
    queue_.pop_back();
  }
  RunAdoptedTask(task);
  return true;
}

void ThreadPool::HelpWhileWaiting(const std::function<bool()>& done) {
  mu_.Lock();
  for (;;) {
    // The predicate is evaluated under mu_; NotifyCompletion takes mu_
    // before notifying, so a completion between this check and the wait
    // below cannot be missed.
    if (done()) break;
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.back());
      queue_.pop_back();
      mu_.Unlock();
      RunAdoptedTask(task);  // may recursively submit + HelpWhileWaiting
      mu_.Lock();
      continue;
    }
    // Inline wait loop (not a predicate lambda: the analysis treats a
    // lambda body as a lockless separate function, see common/mutex.h).
    while (!done() && queue_.empty() && !stop_) cv_.Wait(&mu_);
    // A stopping pool with an empty queue can make no further progress;
    // in practice loops only wait on the leaked Shared() pool, which
    // never stops.
    if (stop_ && queue_.empty() && !done()) break;
  }
  mu_.Unlock();
}

void ThreadPool::NotifyCompletion() {
  // Empty critical section: orders this notification after any waiter's
  // predicate check under mu_, closing the check-then-sleep race.
  { MutexLock lock(&mu_); }
  cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain the queue even when stopping so submitted futures complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads must not outlive the pool, and
  // static destruction order across translation units is unknowable.
  static ThreadPool* shared = new ThreadPool(static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency())));
  return *shared;
}

}  // namespace cvcp
