#ifndef CVCP_COMMON_TABLE_H_
#define CVCP_COMMON_TABLE_H_

/// \file
/// ASCII table renderer so bench binaries can print results in the same
/// row/column shape as the paper's tables.

#include <string>
#include <vector>

namespace cvcp {

/// Column-aligned text table with an optional caption.
class TextTable {
 public:
  explicit TextTable(std::string caption = "") : caption_(std::move(caption)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (ragged rows are padded with empty cells).
  void AddRow(std::vector<std::string> row);

  /// Renders with a caption line, header separator, and aligned columns.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cvcp

#endif  // CVCP_COMMON_TABLE_H_
