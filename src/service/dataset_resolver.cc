#include "service/dataset_resolver.h"

#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "data/generators.h"
#include "data/iris.h"
#include "data/paper_suites.h"

namespace cvcp {

namespace {

/// Builds the named dataset. Pure function of (name, seed, index).
Result<Dataset> BuildDataset(const std::string& name, uint64_t seed,
                             uint64_t index) {
  if (name == "iris") return MakeIris();
  if (name == "wine") return MakeWineLike(seed);
  if (name == "ionosphere") return MakeIonosphereLike(seed);
  if (name == "ecoli") return MakeEcoliLike(seed);
  if (name == "zyeast") return MakeZyeastLike(seed);
  if (name == "aloi") return MakeAloiK5Like(seed, index);
  if (name == "blobs") {
    Rng rng(seed);
    return MakeBlobs("blobs", /*k=*/3, /*per_cluster=*/40, /*dims=*/4,
                     /*separation=*/12.0, /*spread=*/1.0, &rng);
  }
  if (name == "moons") {
    Rng rng(seed);
    return MakeTwoMoons("moons", /*per_moon=*/60, /*noise=*/0.06, &rng);
  }
  return Status::InvalidArgument(
      Format("unknown dataset \"%s\"", name.c_str()));
}

}  // namespace

std::vector<std::string> KnownDatasetNames() {
  return {"iris",   "wine",  "ionosphere", "ecoli",
          "zyeast", "aloi",  "blobs",      "moons"};
}

Result<const Dataset*> DatasetResolver::Resolve(const JobSpec& spec) {
  const Key key(spec.dataset, spec.dataset_seed, spec.dataset_index);
  {
    MutexLock lock(&mu_);
    auto it = datasets_.find(key);
    if (it != datasets_.end()) return it->second.get();
  }
  // Build outside the lock (generators can be sizeable); on a first-touch
  // race the first inserter wins and the loser's copy — bitwise identical,
  // the build is deterministic — is discarded.
  CVCP_ASSIGN_OR_RETURN(
      Dataset built,
      BuildDataset(spec.dataset, spec.dataset_seed, spec.dataset_index));
  auto owned = std::make_unique<Dataset>(std::move(built));
  MutexLock lock(&mu_);
  auto [it, inserted] = datasets_.try_emplace(key, std::move(owned));
  return it->second.get();
}

}  // namespace cvcp
