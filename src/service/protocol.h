#ifndef CVCP_SERVICE_PROTOCOL_H_
#define CVCP_SERVICE_PROTOCOL_H_

/// \file
/// The cvcp_serve wire protocol: length-prefixed binary frames over a
/// local (AF_UNIX) stream socket, with every frame payload a sealed
/// block-format block (common/block_format.h) whose header `kind` is the
/// message type. Reusing the block primitives buys the protocol the same
/// guarantees the artifact files have — a trailing CRC over the whole
/// payload, typed length-prefixed records, bit-exact doubles — so a
/// damaged or adversarial byte stream is rejected with a classified
/// Status before any field is interpreted, never misread (fuzzed by
/// tests/service_protocol_test.cc under ASan/UBSan).
///
/// Frame:   [u32 payload length, little-endian][payload bytes]
/// Payload: one sealed block, kind = MessageKind.
///
/// A frame longer than kMaxFrameBytes is refused at the header, before
/// any allocation — the length prefix is attacker-controlled input.
///
/// Conversation model: strict request/reply. Every request frame gets
/// exactly one reply frame on the same connection; the server never
/// pushes unsolicited frames. Long waits (kWaitRequest) simply delay the
/// reply. Any malformed request gets a kErrorReply (when the transport
/// still works) and closes the connection.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/job.h"

namespace cvcp {

/// Message types (block `kind` values). Sharing the numeric space with
/// nested job-spec / report blocks is safe: a message block can never
/// decode as a spec or report because BlockReader::Open checks the kind
/// first.
enum class MessageKind : uint32_t {
  kSubmitRequest = 0x43560001,
  kSubmitReply = 0x43560002,
  kWaitRequest = 0x43560003,
  kFetchRequest = 0x43560004,
  kReportReply = 0x43560005,
  kVersionsRequest = 0x43560006,
  kVersionsReply = 0x43560007,
  kStatsRequest = 0x43560008,
  kStatsReply = 0x43560009,
  kShutdownRequest = 0x4356000A,
  kShutdownReply = 0x4356000B,
  kErrorReply = 0x4356000C,
  kCancelRequest = 0x4356000D,
  kCancelReply = 0x4356000E,
};

/// Refuse frames above this size at the header (requests are a few KB;
/// replies carry one encoded report, well under a MB for any dataset the
/// generators produce).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Validates an incoming frame's length prefix before any payload bytes
/// are read or allocated. kInvalidArgument on zero or oversized lengths.
Status ValidateFrameLength(uint64_t length);

/// The message structs. Each has an Encode (to a sealed block string)
/// and a Decode (classified Status on any defect, bit-exact round trip
/// otherwise).

struct SubmitRequest {
  JobSpec spec;
};

struct SubmitReply {
  uint64_t job_id = 0;
  uint32_t version = 0;       ///< 1-based position in the spec's chain
  uint64_t spec_hash = 0;
};

struct WaitRequest {
  uint64_t job_id = 0;
};

struct FetchRequest {
  uint64_t job_id = 0;
};

/// A completed job's result: the *exact* immutable report block the
/// result store persisted (nested sealed block, CRC and all), so a
/// client can bit-compare it against a direct RunCvcp + EncodeCvcpReport
/// run without any re-encoding ambiguity.
struct ReportReply {
  uint64_t job_id = 0;
  uint32_t version = 0;
  uint64_t spec_hash = 0;
  std::string report_bytes;  ///< sealed kCvcpReportBlockKind block
};

struct VersionsRequest {
  uint64_t spec_hash = 0;
};

struct VersionsReply {
  std::vector<uint64_t> job_ids;  ///< chain order: version v = job_ids[v-1]
};

struct StatsRequest {};

/// Server-side observability snapshot, used by tests and the CLI to
/// assert admission and warm-store behavior (e.g. model_builds == 0 on a
/// warm resubmission).
struct StatsReply {
  uint64_t queue_depth = 0;
  uint64_t running = 0;
  uint64_t accepted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_memory = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t inflight_bytes = 0;
  // Compute-cache counters (DatasetCachePool::AggregateStats).
  uint64_t distance_builds = 0;
  uint64_t distance_loads = 0;
  uint64_t distance_hits = 0;
  uint64_t model_builds = 0;
  uint64_t model_loads = 0;
  uint64_t model_hits = 0;
  // Artifact-store counters (zero when no store is configured).
  uint64_t disk_hits = 0;
  uint64_t disk_misses = 0;
  // Result-store counters.
  uint64_t results_recovered = 0;
  uint64_t results_corrupt = 0;
  uint64_t results_stored = 0;
  // Cancellation/deadline counters and recovery hygiene.
  uint64_t cancelled = 0;          ///< jobs failed by a client cancel
  uint64_t deadline_exceeded = 0;  ///< jobs failed by their deadline
  uint64_t temps_swept = 0;        ///< orphaned tmp files removed at Start
};

struct ShutdownRequest {};

struct ShutdownReply {};

/// Requests cooperative cancellation of one job.
struct CancelRequest {
  uint64_t job_id = 0;
};

/// What the cancel request found. Delivery is inherently racy against
/// completion: `kSignalled` means the running job will stop at its next
/// cell boundary — unless it completes first, in which case its result
/// stands (a completed result's bytes are never affected by a late
/// cancel).
enum class CancelOutcome : uint32_t {
  kCancelledWhileQueued = 0,  ///< removed from the queue; never ran
  kSignalled = 1,             ///< running; stops at the next cell boundary
  kAlreadyFinished = 2,       ///< done or failed before the request arrived
};

struct CancelReply {
  CancelOutcome outcome = CancelOutcome::kAlreadyFinished;
};

/// A Status over the wire: code + message.
struct ErrorReply {
  Status status;
};

std::string EncodeSubmitRequest(const SubmitRequest& msg);
Result<SubmitRequest> DecodeSubmitRequest(std::string bytes);
std::string EncodeSubmitReply(const SubmitReply& msg);
Result<SubmitReply> DecodeSubmitReply(std::string bytes);
std::string EncodeWaitRequest(const WaitRequest& msg);
Result<WaitRequest> DecodeWaitRequest(std::string bytes);
std::string EncodeFetchRequest(const FetchRequest& msg);
Result<FetchRequest> DecodeFetchRequest(std::string bytes);
std::string EncodeReportReply(const ReportReply& msg);
Result<ReportReply> DecodeReportReply(std::string bytes);
std::string EncodeVersionsRequest(const VersionsRequest& msg);
Result<VersionsRequest> DecodeVersionsRequest(std::string bytes);
std::string EncodeVersionsReply(const VersionsReply& msg);
Result<VersionsReply> DecodeVersionsReply(std::string bytes);
std::string EncodeStatsRequest();
Result<StatsRequest> DecodeStatsRequest(std::string bytes);
std::string EncodeStatsReply(const StatsReply& msg);
Result<StatsReply> DecodeStatsReply(std::string bytes);
std::string EncodeShutdownRequest();
Result<ShutdownRequest> DecodeShutdownRequest(std::string bytes);
std::string EncodeShutdownReply();
Result<ShutdownReply> DecodeShutdownReply(std::string bytes);
std::string EncodeErrorReply(const ErrorReply& msg);
Result<ErrorReply> DecodeErrorReply(std::string bytes);
std::string EncodeCancelRequest(const CancelRequest& msg);
Result<CancelRequest> DecodeCancelRequest(std::string bytes);
std::string EncodeCancelReply(const CancelReply& msg);
Result<CancelReply> DecodeCancelReply(std::string bytes);

/// The message kind of a payload, without validating the CRC (dispatch
/// peeks, then the per-kind decoder validates the full frame).
/// kCorruption on short/garbage headers or an unknown kind value.
Result<MessageKind> PeekMessageKind(std::string_view payload);

/// Blocking frame IO on a connected stream fd. WriteFrame sends the
/// 4-byte length prefix plus the payload, looping over partial writes.
/// ReadFrame reads exactly one frame; it returns kNotFound on a clean
/// EOF before the first header byte (the peer hung up between frames),
/// kCorruption on a mid-frame EOF or read error, and kInvalidArgument on
/// an oversized length prefix — without allocating for it. On sockets
/// with SO_RCVTIMEO/SO_SNDTIMEO set (the server arms them when
/// `io_timeout_ms` is configured), a timeout before the first header
/// byte reads as kNotFound — an idle peer is evicted like a hung-up one
/// — and a mid-frame or write timeout is an IO error, so a dead client
/// can never wedge a connection thread.
Status WriteFrame(int fd, std::string_view payload);
Result<std::string> ReadFrame(int fd);

}  // namespace cvcp

#endif  // CVCP_SERVICE_PROTOCOL_H_
