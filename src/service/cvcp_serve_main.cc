// cvcp_serve: the model-selection job server. Listens on a local AF_UNIX
// socket for CVCP jobs (dataset ref + grid + supervision scenario),
// admits them against a bounded queue and an in-flight memory budget,
// runs them on a shared help-while-waiting thread budget, and publishes
// every completed report as an immutable versioned record. Shut it down
// with SIGINT/SIGTERM or `cvcp_client shutdown` — both drain the queue
// first.
//
//   cvcp_serve --socket PATH --results DIR [--store DIR]
//              [--queue N] [--batch N] [--threads N]
//              [--memory-mb N] [--cache-mb N] [--io-timeout-ms N]

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.h"

namespace {

using namespace cvcp;  // NOLINT

std::sig_atomic_t volatile g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH --results DIR [options]\n"
      "  --socket PATH   AF_UNIX socket to listen on (required)\n"
      "  --results DIR   versioned result records (required)\n"
      "  --store DIR     artifact store for cross-run warm starts\n"
      "  --queue N       admission: max queued jobs (default 64)\n"
      "  --batch N       concurrent jobs in flight (default 2)\n"
      "  --threads N     per-job fan-out width, 0 = all cores (default 0)\n"
      "  --memory-mb N   admission: in-flight memory cap (default 1024)\n"
      "  --cache-mb N    shared compute-cache capacity (default 256)\n"
      "  --io-timeout-ms N  per-connection socket read/write timeout; a\n"
      "                  silent client is evicted instead of pinning its\n"
      "                  connection thread (default 30000, 0 = never)\n",
      argv0);
  return 2;
}

bool ParseInt(const char* text, long* out) {
  char* end = nullptr;
  *out = std::strtol(text, &end, 10);
  return end != text && *end == '\0' && *out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  // The ServerConfig default (0 = no timeouts) suits in-process tests;
  // a production server should always evict dead clients.
  config.io_timeout_ms = 30000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    long value = 0;
    if (arg == "--socket" && has_value) {
      config.socket_path = argv[++i];
    } else if (arg == "--results" && has_value) {
      config.results_dir = argv[++i];
    } else if (arg == "--store" && has_value) {
      config.store_dir = argv[++i];
    } else if (arg == "--queue" && has_value && ParseInt(argv[++i], &value)) {
      config.queue_capacity = static_cast<size_t>(value);
    } else if (arg == "--batch" && has_value && ParseInt(argv[++i], &value)) {
      config.batch = static_cast<int>(value);
    } else if (arg == "--threads" && has_value &&
               ParseInt(argv[++i], &value)) {
      config.threads = static_cast<int>(value);
    } else if (arg == "--memory-mb" && has_value &&
               ParseInt(argv[++i], &value)) {
      config.memory_limit_bytes = static_cast<uint64_t>(value) << 20;
    } else if (arg == "--cache-mb" && has_value &&
               ParseInt(argv[++i], &value)) {
      config.cache_capacity_bytes = static_cast<size_t>(value) << 20;
    } else if (arg == "--io-timeout-ms" && has_value &&
               ParseInt(argv[++i], &value)) {
      config.io_timeout_ms = static_cast<int>(value);
    } else {
      return Usage(argv[0]);
    }
  }
  if (config.socket_path.empty() || config.results_dir.empty()) {
    return Usage(argv[0]);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // A client vanishing mid-reply must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  Server server(config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cvcp_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "cvcp_serve: listening on %s\n",
               config.socket_path.c_str());

  // The CondVar shim has no timed wait, so the main thread polls the two
  // shutdown signals (OS signal, client request) at a human-scale period.
  while (g_signal == 0 && !server.ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "cvcp_serve: draining and shutting down\n");
  server.Stop(/*drain=*/true);
  return 0;
}
