#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace cvcp {

int64_t RetryDelayMs(const RetryPolicy& policy, int attempt) {
  if (policy.backoff_ms <= 0 || attempt <= 0) return 0;
  const int shift = attempt - 1 < 6 ? attempt - 1 : 6;
  return static_cast<int64_t>(policy.backoff_ms) << shift;
}

Result<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        Format("socket path too long (%zu bytes)", socket_path.size()));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        Format("socket() failed: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::NotFound(
        Format("cannot connect to %s: %s", socket_path.c_str(),
               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> Client::RoundTrip(const std::string& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  CVCP_RETURN_IF_ERROR(WriteFrame(fd_, request));
  CVCP_ASSIGN_OR_RETURN(std::string reply, ReadFrame(fd_));
  CVCP_ASSIGN_OR_RETURN(MessageKind kind, PeekMessageKind(reply));
  if (kind == MessageKind::kErrorReply) {
    CVCP_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(std::move(reply)));
    return error.status;
  }
  return reply;
}

Result<SubmitReply> Client::Submit(const JobSpec& spec) {
  CVCP_ASSIGN_OR_RETURN(std::string reply,
                        RoundTrip(EncodeSubmitRequest(SubmitRequest{spec})));
  return DecodeSubmitReply(std::move(reply));
}

Result<SubmitReply> Client::SubmitWithRetry(
    const JobSpec& spec, const RetryPolicy& policy,
    const std::function<void(int, int64_t)>& on_retry) {
  Result<SubmitReply> reply = Submit(spec);
  for (int attempt = 1;
       attempt <= policy.max_retries && !reply.ok() &&
       reply.status().code() == StatusCode::kResourceExhausted;
       ++attempt) {
    const int64_t delay_ms = RetryDelayMs(policy, attempt);
    if (on_retry) on_retry(attempt, delay_ms);
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    reply = Submit(spec);
  }
  return reply;
}

Result<CancelReply> Client::Cancel(uint64_t job_id) {
  CVCP_ASSIGN_OR_RETURN(std::string reply,
                        RoundTrip(EncodeCancelRequest(CancelRequest{job_id})));
  return DecodeCancelReply(std::move(reply));
}

Result<ReportReply> Client::Wait(uint64_t job_id) {
  CVCP_ASSIGN_OR_RETURN(std::string reply,
                        RoundTrip(EncodeWaitRequest(WaitRequest{job_id})));
  return DecodeReportReply(std::move(reply));
}

Result<ReportReply> Client::Fetch(uint64_t job_id) {
  CVCP_ASSIGN_OR_RETURN(std::string reply,
                        RoundTrip(EncodeFetchRequest(FetchRequest{job_id})));
  return DecodeReportReply(std::move(reply));
}

Result<std::vector<uint64_t>> Client::Versions(uint64_t spec_hash) {
  CVCP_ASSIGN_OR_RETURN(
      std::string reply,
      RoundTrip(EncodeVersionsRequest(VersionsRequest{spec_hash})));
  CVCP_ASSIGN_OR_RETURN(VersionsReply decoded,
                        DecodeVersionsReply(std::move(reply)));
  return std::move(decoded.job_ids);
}

Result<StatsReply> Client::Stats() {
  CVCP_ASSIGN_OR_RETURN(std::string reply, RoundTrip(EncodeStatsRequest()));
  return DecodeStatsReply(std::move(reply));
}

Status Client::Shutdown() {
  Result<std::string> reply = RoundTrip(EncodeShutdownRequest());
  if (!reply.ok()) return reply.status();
  return DecodeShutdownReply(std::move(reply).value()).status();
}

}  // namespace cvcp
