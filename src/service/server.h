#ifndef CVCP_SERVICE_SERVER_H_
#define CVCP_SERVICE_SERVER_H_

/// \file
/// The cvcp_serve server: model-selection jobs over a local AF_UNIX
/// socket, with a bounded FIFO job queue, admission control, and one
/// shared compute-cache pool.
///
/// Thread structure: one accept thread, one connection thread per client
/// session, and `batch` executor threads popping the queue. Executors are
/// the *only* threads that run jobs; every job's grid×fold fan-out runs
/// under the process-wide help-while-waiting ThreadPool, so concurrent
/// sessions share one thread budget instead of multiplying it — `batch`
/// bounds how many reports are in flight, `threads` bounds how wide each
/// one fans out, and an executor whose lanes are exhausted helps execute
/// other jobs' queued cells rather than blocking.
///
/// Admission control (applied at submit, before anything is queued):
///   * queue depth — a full queue rejects with kResourceExhausted, never
///     blocks the client;
///   * in-flight memory — each job is charged EstimateJobBytes at
///     admission and discharged at completion; a submission that would
///     push the total past `memory_limit_bytes` is rejected the same way.
/// Backpressure is a *reply*, so a client can retry later; a hang would
/// be indistinguishable from a dead server.
///
/// Determinism: a job's report depends only on its spec (core/job.h), so
/// the bytes a client gets back are identical to a direct RunCvcp run for
/// every `batch`, `threads`, client concurrency, and cache temperature —
/// pinned by tests/service_determinism_test.cc.
///
/// Durability: completed jobs are published through the ResultStore's
/// atomic tmp+rename before the job is marked done, so a crash leaves
/// only complete CRC-sealed records; `Stop(/*drain=*/false)` abandons the
/// queue exactly like a kill would, and a successor server over the same
/// directories recovers every completed record
/// (tests/service_fault_test.cc).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/artifact_store.h"
#include "core/dataset_cache.h"
#include "core/job.h"
#include "service/dataset_resolver.h"
#include "service/protocol.h"
#include "service/result_store.h"

namespace cvcp {

struct ServerConfig {
  std::string socket_path;   ///< AF_UNIX path (beware the ~108-char cap)
  std::string results_dir;   ///< versioned result records (required)
  std::string store_dir;     ///< artifact store; empty = no disk tier

  size_t queue_capacity = 64;           ///< admission: max queued jobs
  uint64_t memory_limit_bytes = 1ull << 30;  ///< admission: in-flight charge cap
  int batch = 2;    ///< executor threads (jobs in flight concurrently)
  int threads = 0;  ///< per-job fan-out width (0 = all hardware threads)
  size_t cache_capacity_bytes = 256u << 20;  ///< shared memory-tier LRU

  /// SO_RCVTIMEO/SO_SNDTIMEO armed on every accepted connection, so a
  /// dead or stalled client is evicted instead of pinning its connection
  /// thread: an idle read timeout ends the session like a hang-up, a
  /// mid-frame or write timeout is an IO error. 0 = no timeouts (the
  /// in-process test default; cvcp_serve passes a production value).
  int io_timeout_ms = 0;

  /// How often the watchdog thread scans the queue for jobs whose
  /// deadline expired while waiting (running jobs self-expire at cell
  /// boundaries through their cancel token and need no scan).
  int watchdog_interval_ms = 20;

  /// Test seam: called by the executor thread immediately before a job
  /// runs (admission and queueing already done). Lets the admission and
  /// starvation tests park executors deterministically. Null in
  /// production.
  std::function<void(const JobSpec&)> before_job_hook;
};

/// A running cvcp_serve instance. Start() brings it up; Stop() tears it
/// down (idempotent). The destructor stops without draining.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recovers the result store, binds the socket, launches the accept
  /// and executor threads.
  Status Start();

  /// Stops the server. `drain` = finish every queued job first (the
  /// clean-shutdown path); `!drain` = abandon the queue where it stands
  /// (the simulated kill: queued jobs are simply never run — their specs
  /// are re-runnable against a successor server). Already-completed
  /// records are durable either way.
  void Stop(bool drain);

  /// True after a client sent kShutdownRequest; the hosting binary polls
  /// this and calls Stop(/*drain=*/true).
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Observability snapshot (also served over the wire as kStatsReply).
  StatsReply Stats() const;

  const ServerConfig& config() const { return config_; }

 private:
  enum class Phase { kQueued, kRunning, kDone, kFailed };

  struct QueuedJob {
    uint64_t job_id = 0;
    uint32_t version = 0;
    uint64_t spec_hash = 0;
    uint64_t charge = 0;  ///< EstimateJobBytes, discharged at completion
    JobSpec spec;
    /// Per-job cancel state, created at admission (deadline already
    /// armed). Its token is threaded into the job's ExecutionContext.
    std::shared_ptr<CancelSource> cancel;
  };

  void AcceptLoop();
  void ConnectionLoop(int fd);
  void ExecutorLoop();
  void WatchdogLoop();

  /// One request frame in, one reply frame out (kErrorReply on any
  /// handler failure).
  std::string HandleFrame(std::string payload);

  Result<SubmitReply> HandleSubmit(const JobSpec& spec);

  /// Cancels `job_id`: a queued job is failed immediately (kCancelled,
  /// never runs, leaves no record); a running one has its token fired
  /// and stops at the next cell boundary; a finished one is left alone.
  Result<CancelReply> HandleCancel(uint64_t job_id);

  /// Blocks until `job_id` leaves the queue/running states. OK with the
  /// final phase in `*phase` (and the failure in `*failure` when
  /// kFailed); kNotFound for ids this server never admitted or recovered.
  Status AwaitJob(uint64_t job_id, Phase* phase, Status* failure);

  /// Pops the next job; false when the server is stopping and (in
  /// non-drain mode, or with an empty queue) there is nothing left to do.
  bool PopJob(QueuedJob* job);

  void RunOneJob(const QueuedJob& job);

  ServerConfig config_;
  ResultStore results_;
  DatasetResolver resolver_;
  std::unique_ptr<ArtifactStore> artifacts_;  ///< null without store_dir
  std::unique_ptr<DatasetCachePool> cache_pool_;

  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_requested_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> executor_threads_;
  std::thread watchdog_thread_;

  mutable Mutex mu_;
  bool stopping_ GUARDED_BY(mu_) = false;
  bool drain_ GUARDED_BY(mu_) = false;
  std::deque<QueuedJob> queue_ GUARDED_BY(mu_);
  /// Every job id this server knows: admitted this life, or recovered.
  std::map<uint64_t, Phase> jobs_ GUARDED_BY(mu_);
  std::map<uint64_t, Status> failures_ GUARDED_BY(mu_);
  /// Live (queued or running) jobs' cancel sources, for HandleCancel and
  /// the watchdog; erased when the job reaches a terminal phase.
  std::map<uint64_t, std::shared_ptr<CancelSource>> cancel_sources_
      GUARDED_BY(mu_);
  uint64_t inflight_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t running_ GUARDED_BY(mu_) = 0;
  uint64_t accepted_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_queue_full_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_memory_ GUARDED_BY(mu_) = 0;
  uint64_t completed_ GUARDED_BY(mu_) = 0;
  uint64_t failed_ GUARDED_BY(mu_) = 0;
  uint64_t cancelled_ GUARDED_BY(mu_) = 0;
  uint64_t deadline_exceeded_ GUARDED_BY(mu_) = 0;
  uint64_t artifact_temps_swept_ GUARDED_BY(mu_) = 0;
  CondVar queue_cv_;  ///< signaled on push and on stop
  CondVar done_cv_;   ///< signaled on every job completion/failure
  CondVar watchdog_cv_;  ///< dedicated: a queue push must never wake the
                         ///< watchdog instead of an executor

  mutable Mutex conn_mu_;
  std::vector<int> conn_fds_ GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
};

}  // namespace cvcp

#endif  // CVCP_SERVICE_SERVER_H_
