#ifndef CVCP_SERVICE_CLIENT_H_
#define CVCP_SERVICE_CLIENT_H_

/// \file
/// Blocking client for the cvcp_serve protocol: one AF_UNIX connection,
/// strict request/reply. Every method sends one frame and decodes one
/// reply; a kErrorReply from the server surfaces as that reply's Status
/// (so a backpressure rejection arrives as kResourceExhausted, a damaged
/// record as kCorruption — the server's classification crosses the wire
/// intact). Not thread-safe: one Client per session; open several for
/// concurrency (the determinism tests do).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/protocol.h"

namespace cvcp {

/// Deterministic bounded retry for backpressure rejections: attempt k
/// (1-based) sleeps `backoff_ms << min(k-1, 6)` milliseconds before
/// retrying — a fixed doubling schedule capped at 64× so the delays are
/// reproducible in tests and logs (no jitter; the server's FIFO admission
/// makes thundering-herd randomization pointless on a local socket).
struct RetryPolicy {
  int max_retries = 0;  ///< retries after the first attempt (0 = none)
  int backoff_ms = 0;   ///< base delay; 0 = retry immediately
};

/// The delay before 1-based retry attempt `attempt` under `policy`.
/// Pure — the schedule tests pin it without sleeping.
int64_t RetryDelayMs(const RetryPolicy& policy, int attempt);

class Client {
 public:
  /// Connects to a serving socket. kNotFound/kInternal when nothing
  /// listens there.
  static Result<Client> Connect(const std::string& socket_path);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits a job. The reply's (job_id, version) are assigned at
  /// admission; kResourceExhausted is the server saying "retry later".
  Result<SubmitReply> Submit(const JobSpec& spec);

  /// Submit with bounded deterministic retry. Retries *only*
  /// kResourceExhausted — backpressure is the one failure the server
  /// promises is transient; transport errors and rejections of the spec
  /// itself surface immediately. `on_retry(attempt, delay_ms)` (may be
  /// null) is called before each backoff sleep, for progress output and
  /// for tests to observe the schedule without timing anything.
  Result<SubmitReply> SubmitWithRetry(
      const JobSpec& spec, const RetryPolicy& policy,
      const std::function<void(int, int64_t)>& on_retry = nullptr);

  /// Requests cancellation of a queued or running job; the outcome says
  /// what state the request found (see CancelOutcome).
  Result<CancelReply> Cancel(uint64_t job_id);

  /// Blocks until the job completes, then returns its stored report.
  Result<ReportReply> Wait(uint64_t job_id);

  /// Fetches an already-completed job's stored report (any prior
  /// version, including ones from before a server restart).
  Result<ReportReply> Fetch(uint64_t job_id);

  /// Job ids of every stored version of the spec hash, chain order.
  Result<std::vector<uint64_t>> Versions(uint64_t spec_hash);

  Result<StatsReply> Stats();

  /// Asks the server to shut down cleanly (it drains the queue first).
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request frame out, one reply frame in; a kErrorReply decodes to
  /// its carried Status here so every caller sees it uniformly.
  Result<std::string> RoundTrip(const std::string& request);

  int fd_ = -1;
};

}  // namespace cvcp

#endif  // CVCP_SERVICE_CLIENT_H_
