#include "service/server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/file_io.h"
#include "common/strings.h"

namespace cvcp {

Server::Server(ServerConfig config)
    : config_(std::move(config)), results_(config_.results_dir) {
  if (!config_.store_dir.empty()) {
    artifacts_ = std::make_unique<ArtifactStore>(config_.store_dir);
  }
  cache_pool_ = std::make_unique<DatasetCachePool>(
      config_.cache_capacity_bytes, artifacts_.get());
}

Server::~Server() { Stop(/*drain=*/false); }

Status Server::Start() {
  CVCP_RETURN_IF_ERROR(results_.Recover());
  // Recovery hygiene for the artifact store: a crash between write and
  // rename strands a tmp file. One server owns a store directory, so
  // startup is a safe moment to sweep them (the result store sweeps its
  // own directory inside Recover).
  uint64_t artifact_swept = 0;
  if (artifacts_) {
    Result<uint64_t> swept = artifacts_->SweepOrphanTemps();
    if (swept.ok()) artifact_swept = swept.value();
  }
  {
    // Every recovered record is a fetchable done job in this life too.
    MutexLock lock(&mu_);
    artifact_temps_swept_ = artifact_swept;
    for (uint64_t job_id : results_.AllJobIds()) {
      jobs_[job_id] = Phase::kDone;
    }
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        Format("socket path too long (%zu bytes, max %zu)",
               config_.socket_path.size(), sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        Format("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(config_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::Internal(Format(
        "bind(%s) failed: %s", config_.socket_path.c_str(),
        std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status =
        Status::Internal(Format("listen() failed: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int batch = config_.batch > 0 ? config_.batch : 1;
  executor_threads_.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    executor_threads_.emplace_back([this] { ExecutorLoop(); });
  }
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void Server::Stop(bool drain) {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    drain_ = drain;
    if (!drain) {
      // The simulated kill: abandon queued jobs where they stand. Their
      // phases stay kQueued — never run, never stored, re-runnable.
      for (const QueuedJob& job : queue_) inflight_bytes_ -= job.charge;
      queue_.clear();
    }
  }
  queue_cv_.NotifyAll();
  done_cv_.NotifyAll();
  watchdog_cv_.NotifyAll();

  // Unblock accept(), then the executors, then every connection read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
  executor_threads_.clear();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  std::vector<std::thread> conn_threads;
  {
    MutexLock lock(&conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_threads.swap(conn_threads_);
  }
  for (std::thread& t : conn_threads) {
    if (t.joinable()) t.join();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down by Stop (or a fatal error)
    }
    if (config_.io_timeout_ms > 0) {
      // Dead-client armor: bound every read and write on the session so a
      // peer that stops talking (or draining) frees this thread. Failure
      // to arm is not fatal — the session just runs unbounded.
      timeval tv{};
      tv.tv_sec = config_.io_timeout_ms / 1000;
      tv.tv_usec = (config_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    MutexLock lock(&conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void Server::ConnectionLoop(int fd) {
  for (;;) {
    Result<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // kNotFound = the client hung up cleanly; anything else, the
      // stream is unusable — either way the session is over.
      break;
    }
    const std::string reply = HandleFrame(std::move(frame).value());
    if (!WriteFrame(fd, reply).ok()) break;
  }
  {
    MutexLock lock(&conn_mu_);
    std::erase(conn_fds_, fd);
  }
  ::close(fd);
}

std::string Server::HandleFrame(std::string payload) {
  Result<MessageKind> kind = PeekMessageKind(payload);
  if (!kind.ok()) return EncodeErrorReply(ErrorReply{kind.status()});

  switch (kind.value()) {
    case MessageKind::kSubmitRequest: {
      Result<SubmitRequest> request = DecodeSubmitRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      Result<SubmitReply> reply = HandleSubmit(request->spec);
      if (!reply.ok()) return EncodeErrorReply(ErrorReply{reply.status()});
      return EncodeSubmitReply(reply.value());
    }
    case MessageKind::kWaitRequest: {
      Result<WaitRequest> request = DecodeWaitRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      Phase phase = Phase::kQueued;
      Status failure;
      Status await = AwaitJob(request->job_id, &phase, &failure);
      if (!await.ok()) return EncodeErrorReply(ErrorReply{await});
      if (phase == Phase::kFailed) return EncodeErrorReply(ErrorReply{failure});
      Result<StoredResult> record = results_.Get(request->job_id);
      if (!record.ok()) return EncodeErrorReply(ErrorReply{record.status()});
      return EncodeReportReply(ReportReply{record->job_id, record->version,
                                           record->spec_hash,
                                           std::move(record->report_bytes)});
    }
    case MessageKind::kFetchRequest: {
      Result<FetchRequest> request = DecodeFetchRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      Result<StoredResult> record = results_.Get(request->job_id);
      if (!record.ok()) {
        MutexLock lock(&mu_);
        auto it = jobs_.find(request->job_id);
        if (it != jobs_.end() && (it->second == Phase::kQueued ||
                                  it->second == Phase::kRunning)) {
          return EncodeErrorReply(ErrorReply{Status::FailedPrecondition(
              Format("job %llu not complete; wait for it",
                     static_cast<unsigned long long>(request->job_id)))});
        }
        return EncodeErrorReply(ErrorReply{record.status()});
      }
      return EncodeReportReply(ReportReply{record->job_id, record->version,
                                           record->spec_hash,
                                           std::move(record->report_bytes)});
    }
    case MessageKind::kVersionsRequest: {
      Result<VersionsRequest> request =
          DecodeVersionsRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      VersionsReply reply;
      reply.job_ids = results_.Versions(request->spec_hash);
      return EncodeVersionsReply(reply);
    }
    case MessageKind::kStatsRequest: {
      Result<StatsRequest> request = DecodeStatsRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      return EncodeStatsReply(Stats());
    }
    case MessageKind::kCancelRequest: {
      Result<CancelRequest> request = DecodeCancelRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      Result<CancelReply> reply = HandleCancel(request->job_id);
      if (!reply.ok()) return EncodeErrorReply(ErrorReply{reply.status()});
      return EncodeCancelReply(reply.value());
    }
    case MessageKind::kShutdownRequest: {
      Result<ShutdownRequest> request =
          DecodeShutdownRequest(std::move(payload));
      if (!request.ok()) return EncodeErrorReply(ErrorReply{request.status()});
      shutdown_requested_.store(true, std::memory_order_release);
      return EncodeShutdownReply();
    }
    case MessageKind::kSubmitReply:
    case MessageKind::kReportReply:
    case MessageKind::kVersionsReply:
    case MessageKind::kStatsReply:
    case MessageKind::kShutdownReply:
    case MessageKind::kErrorReply:
    case MessageKind::kCancelReply:
      break;
  }
  return EncodeErrorReply(ErrorReply{Status::InvalidArgument(
      "reply message kind sent as a request")});
}

Result<SubmitReply> Server::HandleSubmit(const JobSpec& spec) {
  CVCP_RETURN_IF_ERROR(ValidateJobSpec(spec));
  // Resolving up front both validates the dataset reference and gives the
  // admission controller the object count to charge for.
  CVCP_ASSIGN_OR_RETURN(const Dataset* data, resolver_.Resolve(spec));
  const uint64_t charge =
      EstimateJobBytes(data->size(), spec.param_grid.size());

  QueuedJob job;
  job.spec = spec;
  job.spec_hash = JobSpecHash(spec);
  job.charge = charge;
  job.cancel = std::make_shared<CancelSource>();
  // The deadline clock starts at admission: queue wait counts against it,
  // so an overdue job can be failed by the watchdog without ever running.
  if (spec.deadline_ms > 0) job.cancel->SetDeadlineAfterMs(spec.deadline_ms);
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::FailedPrecondition("server is shutting down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++rejected_queue_full_;
      return Status::ResourceExhausted(
          Format("queue full (%zu jobs); retry later",
                 config_.queue_capacity));
    }
    if (inflight_bytes_ + charge > config_.memory_limit_bytes) {
      ++rejected_memory_;
      return Status::ResourceExhausted(Format(
          "in-flight memory %llu + %llu exceeds limit %llu; retry later",
          static_cast<unsigned long long>(inflight_bytes_),
          static_cast<unsigned long long>(charge),
          static_cast<unsigned long long>(config_.memory_limit_bytes)));
    }
    job.job_id = results_.AllocateJobId();
    job.version = results_.AllocateVersion(job.spec_hash);
    inflight_bytes_ += charge;
    ++accepted_;
    jobs_[job.job_id] = Phase::kQueued;
    cancel_sources_[job.job_id] = job.cancel;
    queue_.push_back(job);
  }
  queue_cv_.NotifyOne();
  return SubmitReply{job.job_id, job.version, job.spec_hash};
}

Result<CancelReply> Server::HandleCancel(uint64_t job_id) {
  bool notify = false;
  CancelReply reply;
  {
    MutexLock lock(&mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound(Format(
          "unknown job %llu", static_cast<unsigned long long>(job_id)));
    }
    switch (it->second) {
      case Phase::kQueued: {
        // Still waiting: fail it right here — it never runs, stores no
        // record, and its spec stays re-runnable.
        for (auto q = queue_.begin(); q != queue_.end(); ++q) {
          if (q->job_id != job_id) continue;
          inflight_bytes_ -= q->charge;
          queue_.erase(q);
          break;
        }
        it->second = Phase::kFailed;
        failures_[job_id] = Status::Cancelled("cancelled by client request");
        ++failed_;
        ++cancelled_;
        cancel_sources_.erase(job_id);
        reply.outcome = CancelOutcome::kCancelledWhileQueued;
        notify = true;
        break;
      }
      case Phase::kRunning: {
        // Fire the token; the executor observes it at the next cell
        // boundary and fails the job (unless it completes first — a
        // completed result always stands).
        auto source = cancel_sources_.find(job_id);
        if (source != cancel_sources_.end()) {
          source->second->RequestCancel();
        }
        reply.outcome = CancelOutcome::kSignalled;
        break;
      }
      case Phase::kDone:
      case Phase::kFailed:
        reply.outcome = CancelOutcome::kAlreadyFinished;
        break;
    }
  }
  if (notify) done_cv_.NotifyAll();
  return reply;
}

Status Server::AwaitJob(uint64_t job_id, Phase* phase, Status* failure) {
  MutexLock lock(&mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound(Format(
        "unknown job %llu", static_cast<unsigned long long>(job_id)));
  }
  while (it->second == Phase::kQueued || it->second == Phase::kRunning) {
    if (stopping_ && !drain_) {
      return Status::FailedPrecondition("server stopped before completion");
    }
    done_cv_.Wait(&mu_);
    it = jobs_.find(job_id);
    CVCP_CHECK(it != jobs_.end());
  }
  *phase = it->second;
  if (it->second == Phase::kFailed) *failure = failures_.at(job_id);
  return Status::OK();
}

bool Server::PopJob(QueuedJob* job) {
  MutexLock lock(&mu_);
  while (queue_.empty() && !stopping_) queue_cv_.Wait(&mu_);
  if (queue_.empty()) return false;  // stopping with nothing left (or !drain)
  *job = std::move(queue_.front());
  queue_.pop_front();
  jobs_[job->job_id] = Phase::kRunning;
  ++running_;
  return true;
}

void Server::ExecutorLoop() {
  QueuedJob job;
  while (PopJob(&job)) RunOneJob(job);
}

void Server::WatchdogLoop() {
  MutexLock lock(&mu_);
  while (!stopping_) {
    watchdog_cv_.WaitFor(&mu_, config_.watchdog_interval_ms);
    if (stopping_) break;
    // Fail queued jobs whose deadline expired while they waited; running
    // jobs need no scan — their tokens self-expire at cell boundaries.
    bool notify = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!it->cancel || !it->cancel->DeadlineExpired()) {
        ++it;
        continue;
      }
      jobs_[it->job_id] = Phase::kFailed;
      failures_[it->job_id] =
          Status::DeadlineExceeded("deadline expired while queued");
      ++failed_;
      ++deadline_exceeded_;
      inflight_bytes_ -= it->charge;
      cancel_sources_.erase(it->job_id);
      it = queue_.erase(it);
      notify = true;
    }
    if (notify) done_cv_.NotifyAll();
  }
}

void Server::RunOneJob(const QueuedJob& job) {
  if (config_.before_job_hook) config_.before_job_hook(job.spec);

  Status failure;
  bool ok = false;
  Result<const Dataset*> data = resolver_.Resolve(job.spec);
  if (!data.ok()) {
    failure = data.status();
  } else {
    JobContext context;
    context.cache = cache_pool_->For((*data)->points());
    context.exec.threads = config_.threads;
    // Thread the job's cancel token into the engine: RunJob checks it
    // before any work (a cancelled-while-queued pop fails immediately)
    // and at every (param, fold) cell boundary thereafter.
    if (job.cancel) context.exec.cancel = job.cancel->token();
    Result<CvcpReport> report = RunJob(**data, job.spec, context);
    if (!report.ok()) {
      failure = report.status();
    } else {
      StoredResult record;
      record.job_id = job.job_id;
      record.version = job.version;
      record.spec_hash = job.spec_hash;
      record.spec_bytes = EncodeJobSpec(job.spec);
      record.report_bytes = EncodeCvcpReport(report.value());
      // Publish before marking done: a waiter woken by done_cv_ must find
      // the record, and a crash after this line leaves a complete file.
      failure = results_.Put(record);
      ok = failure.ok();
    }
  }

  {
    MutexLock lock(&mu_);
    inflight_bytes_ -= job.charge;
    --running_;
    cancel_sources_.erase(job.job_id);
    if (ok) {
      jobs_[job.job_id] = Phase::kDone;
      ++completed_;
    } else {
      if (failure.code() == StatusCode::kCancelled) ++cancelled_;
      if (failure.code() == StatusCode::kDeadlineExceeded) {
        ++deadline_exceeded_;
      }
      jobs_[job.job_id] = Phase::kFailed;
      failures_[job.job_id] = std::move(failure);
      ++failed_;
    }
  }
  done_cv_.NotifyAll();
}

StatsReply Server::Stats() const {
  StatsReply stats;
  {
    MutexLock lock(&mu_);
    stats.queue_depth = queue_.size();
    stats.running = running_;
    stats.accepted = accepted_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.rejected_memory = rejected_memory_;
    stats.completed = completed_;
    stats.failed = failed_;
    stats.inflight_bytes = inflight_bytes_;
    stats.cancelled = cancelled_;
    stats.deadline_exceeded = deadline_exceeded_;
    stats.temps_swept = artifact_temps_swept_;
  }
  const DatasetCache::Stats cache = cache_pool_->AggregateStats();
  stats.distance_builds = cache.distance_builds;
  stats.distance_loads = cache.distance_loads;
  stats.distance_hits = cache.distance_hits;
  stats.model_builds = cache.model_builds;
  stats.model_loads = cache.model_loads;
  stats.model_hits = cache.model_hits;
  if (artifacts_) {
    const ArtifactStore::Stats disk = artifacts_->stats();
    stats.disk_hits = disk.disk_hits;
    stats.disk_misses = disk.disk_misses;
  }
  const ResultStore::Stats results = results_.stats();
  stats.results_recovered = results.recovered;
  stats.results_corrupt = results.corrupt;
  stats.results_stored = results.stored;
  stats.temps_swept += results.temps_swept;
  return stats;
}

}  // namespace cvcp
