#ifndef CVCP_SERVICE_RESULT_STORE_H_
#define CVCP_SERVICE_RESULT_STORE_H_

/// \file
/// The server's durable memory: every completed job becomes one immutable
/// `job-<16-hex-id>.cvcp` file — a sealed block (common/block_format.h)
/// holding the job id, its 1-based version in the spec's chain, the spec
/// hash, the encoded spec, and the encoded report — written with the
/// atomic tmp+rename discipline (common/file_io.h), so a crash at any
/// instant leaves either the complete record or no record, never a torn
/// one.
///
/// Versioning: submissions hashing to the same spec are versions
/// 1, 2, ... of one logical job. Version numbers are allocated at
/// admission and continue across restarts: `Recover()` scans the
/// directory, CRC-verifies every record (a damaged file is counted and
/// skipped — classified, never misread), and seeds both the job-id
/// counter and every per-hash chain from what survived. Records are
/// immutable once published; re-fetching any prior version by job id
/// returns the exact bytes that were stored.
///
/// Thread-safe; IO happens outside the lock (records are immutable and
/// names are unique, so writers never conflict).

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/job.h"

namespace cvcp {

/// Block kind of a persisted job record ("JREC").
inline constexpr uint32_t kJobRecordBlockKind = 0x4A524543;

/// One immutable completed-job record, as stored and as served.
/// `report_bytes` is the sealed kCvcpReportBlockKind block exactly as
/// persisted — the bytes clients bit-compare against direct runs.
struct StoredResult {
  uint64_t job_id = 0;
  uint32_t version = 0;  ///< 1-based position in the spec_hash chain
  uint64_t spec_hash = 0;
  std::string spec_bytes;    ///< sealed kJobSpecBlockKind block
  std::string report_bytes;  ///< sealed kCvcpReportBlockKind block
};

/// Codec for the record file body (exposed for the fault-injection
/// tests). Decode validates the outer frame, both nested blocks, and
/// that the embedded spec re-hashes to `spec_hash` — a cross-linked or
/// damaged file can never satisfy a fetch.
std::string EncodeStoredResult(const StoredResult& record);
Result<StoredResult> DecodeStoredResult(std::string bytes);

/// The versioned result store behind one cvcp_serve instance.
class ResultStore {
 public:
  explicit ResultStore(std::string directory);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& directory() const { return directory_; }

  /// Scans the directory and indexes every valid record; damaged files
  /// are counted under `results_corrupt` and skipped. Orphaned `*.tmp.*`
  /// files — writes a crash interrupted before their rename — are removed
  /// and counted under `temps_swept` (safe here: Recover runs before any
  /// writer exists). Seeds the job-id counter and the per-hash version
  /// chains. Call once before serving.
  Status Recover();

  /// Allocates the next job id (recovered max + 1, monotonic).
  uint64_t AllocateJobId();

  /// Allocates the next version in `spec_hash`'s chain (recovered chain
  /// length + prior allocations + 1). Allocated at admission, so an
  /// accepted job's (id, version) pair is fixed before it runs; a job
  /// that fails leaves a hole in the chain rather than renumbering later
  /// versions.
  uint32_t AllocateVersion(uint64_t spec_hash);

  /// Atomically publishes `record` as an immutable file and indexes it.
  /// kFailedPrecondition if the job id is already stored (records are
  /// write-once).
  Status Put(const StoredResult& record);

  /// The stored record for `job_id`; kNotFound for unknown ids.
  Result<StoredResult> Get(uint64_t job_id) const;

  /// Job ids of the stored versions of `spec_hash`, in version order
  /// (version v need not equal index+1 when a failed job left a hole).
  std::vector<uint64_t> Versions(uint64_t spec_hash) const;

  /// Every stored job id, ascending (recovered + published).
  std::vector<uint64_t> AllJobIds() const;

  struct Stats {
    uint64_t recovered = 0;    ///< valid records indexed by Recover
    uint64_t corrupt = 0;      ///< damaged files skipped by Recover
    uint64_t stored = 0;       ///< records published by Put
    uint64_t temps_swept = 0;  ///< orphaned tmp files removed by Recover
  };
  Stats stats() const;

 private:
  std::string directory_;
  std::atomic<uint64_t> temp_seq_{0};

  mutable Mutex mu_;
  uint64_t next_job_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, StoredResult> records_ GUARDED_BY(mu_);
  /// spec_hash -> (version -> job_id), version-sorted by map order.
  std::map<uint64_t, std::map<uint32_t, uint64_t>> chains_ GUARDED_BY(mu_);
  std::map<uint64_t, uint32_t> next_version_ GUARDED_BY(mu_);

  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> corrupt_{0};
  std::atomic<uint64_t> stored_{0};
  std::atomic<uint64_t> temps_swept_{0};
};

}  // namespace cvcp

#endif  // CVCP_SERVICE_RESULT_STORE_H_
