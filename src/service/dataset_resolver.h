#ifndef CVCP_SERVICE_DATASET_RESOLVER_H_
#define CVCP_SERVICE_DATASET_RESOLVER_H_

/// \file
/// Maps a JobSpec's dataset reference (name + seed + index) to a concrete
/// `Dataset`, memoized for the server's lifetime. The memo is not an
/// optimization knob: the compute-cache pool (DatasetCachePool) keys its
/// per-dataset front-ends by Matrix *address*, so every job that names the
/// same dataset must receive the same Dataset instance — and every
/// resolved dataset must stay alive (at a stable address) for as long as
/// the pool does. The resolver owns its datasets behind unique_ptrs and
/// never evicts.
///
/// Resolution is deterministic: the same (name, seed, index) triple
/// produces a bitwise-identical point set in any process, which is what
/// makes a job re-runnable after a server restart.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/dataset.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/job.h"

namespace cvcp {

/// The dataset names a JobSpec may reference.
std::vector<std::string> KnownDatasetNames();

/// Thread-safe memoizing resolver. One per server.
class DatasetResolver {
 public:
  DatasetResolver() = default;

  DatasetResolver(const DatasetResolver&) = delete;
  DatasetResolver& operator=(const DatasetResolver&) = delete;

  /// The dataset for `spec`'s (dataset, dataset_seed, dataset_index),
  /// built on first use and owned by the resolver (stable address for
  /// the server's lifetime). kInvalidArgument for unknown names.
  Result<const Dataset*> Resolve(const JobSpec& spec);

 private:
  using Key = std::tuple<std::string, uint64_t, uint64_t>;

  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Dataset>> datasets_ GUARDED_BY(mu_);
};

}  // namespace cvcp

#endif  // CVCP_SERVICE_DATASET_RESOLVER_H_
