#include "service/result_store.h"

#include <filesystem>
#include <utility>

#include "common/block_format.h"
#include "common/file_io.h"
#include "common/strings.h"

namespace cvcp {

namespace {

std::string RecordFilename(uint64_t job_id) {
  return Format("job-%016llx.cvcp", static_cast<unsigned long long>(job_id));
}

}  // namespace

std::string EncodeStoredResult(const StoredResult& record) {
  BlockBuilder builder(kJobRecordBlockKind);
  builder.AppendU64(record.job_id);
  builder.AppendU32(record.version);
  builder.AppendU64(record.spec_hash);
  builder.AppendString(record.spec_bytes);
  builder.AppendString(record.report_bytes);
  return builder.Finish();
}

Result<StoredResult> DecodeStoredResult(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes), kJobRecordBlockKind));
  StoredResult record;
  CVCP_ASSIGN_OR_RETURN(record.job_id, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(record.version, reader.ReadU32());
  CVCP_ASSIGN_OR_RETURN(record.spec_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(record.spec_bytes, reader.ReadString());
  CVCP_ASSIGN_OR_RETURN(record.report_bytes, reader.ReadString());
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing records in job record");
  }
  if (record.version == 0) {
    return Status::Corruption("job record has version 0");
  }
  // The nested blocks carry their own CRCs; validate both so a bit flip
  // anywhere in the file is caught at recovery, not at fetch.
  CVCP_ASSIGN_OR_RETURN(JobSpec spec, DecodeJobSpec(record.spec_bytes));
  if (JobSpecHash(spec) != record.spec_hash) {
    return Status::Corruption("job record spec hash mismatch");
  }
  CVCP_RETURN_IF_ERROR(DecodeCvcpReport(record.report_bytes).status());
  return record;
}

ResultStore::ResultStore(std::string directory)
    : directory_(std::move(directory)) {}

Status ResultStore::Recover() {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::exists(directory_, ec)) return Status::OK();  // born lazily
  // A crash between tmp-write and rename leaves an orphan; no writer is
  // live during recovery, so every tmp file here is garbage.
  Result<uint64_t> swept = RemoveOrphanTempFiles(directory_);
  if (swept.ok()) {
    temps_swept_.fetch_add(swept.value(), std::memory_order_relaxed);
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("job-") && name.ends_with(".cvcp")) {
      names.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::Corruption(
        Format("cannot scan %s: %s", directory_.c_str(),
               ec.message().c_str()));
  }
  for (const std::string& path : names) {
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) {
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<StoredResult> record = DecodeStoredResult(std::move(bytes).value());
    if (!record.ok()) {
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(&mu_);
    StoredResult& stored = records_[record->job_id];
    stored = std::move(record).value();
    chains_[stored.spec_hash][stored.version] = stored.job_id;
    if (stored.job_id >= next_job_id_) next_job_id_ = stored.job_id + 1;
    uint32_t& next = next_version_[stored.spec_hash];
    if (stored.version >= next) next = stored.version + 1;
    recovered_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

uint64_t ResultStore::AllocateJobId() {
  MutexLock lock(&mu_);
  return next_job_id_++;
}

uint32_t ResultStore::AllocateVersion(uint64_t spec_hash) {
  MutexLock lock(&mu_);
  uint32_t& next = next_version_[spec_hash];
  if (next == 0) next = 1;
  return next++;
}

Status ResultStore::Put(const StoredResult& record) {
  {
    MutexLock lock(&mu_);
    if (records_.contains(record.job_id)) {
      return Status::FailedPrecondition(
          Format("job %llu already stored",
                 static_cast<unsigned long long>(record.job_id)));
    }
  }
  const std::string bytes = EncodeStoredResult(record);
  const uint64_t seq = temp_seq_.fetch_add(1, std::memory_order_relaxed);
  CVCP_RETURN_IF_ERROR(WriteFileAtomic(directory_, RecordFilename(record.job_id),
                                       bytes, seq));
  {
    MutexLock lock(&mu_);
    records_[record.job_id] = record;
    chains_[record.spec_hash][record.version] = record.job_id;
  }
  stored_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<StoredResult> ResultStore::Get(uint64_t job_id) const {
  MutexLock lock(&mu_);
  auto it = records_.find(job_id);
  if (it == records_.end()) {
    return Status::NotFound(
        Format("no stored result for job %llu",
               static_cast<unsigned long long>(job_id)));
  }
  return it->second;
}

std::vector<uint64_t> ResultStore::Versions(uint64_t spec_hash) const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> ids;
  auto it = chains_.find(spec_hash);
  if (it == chains_.end()) return ids;
  ids.reserve(it->second.size());
  for (const auto& [version, job_id] : it->second) ids.push_back(job_id);
  return ids;
}

std::vector<uint64_t> ResultStore::AllJobIds() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> ids;
  ids.reserve(records_.size());
  for (const auto& [job_id, record] : records_) ids.push_back(job_id);
  return ids;
}

ResultStore::Stats ResultStore::stats() const {
  Stats stats;
  stats.recovered = recovered_.load(std::memory_order_relaxed);
  stats.corrupt = corrupt_.load(std::memory_order_relaxed);
  stats.stored = stored_.load(std::memory_order_relaxed);
  stats.temps_swept = temps_swept_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cvcp
