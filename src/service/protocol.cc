#include "service/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/block_format.h"
#include "common/strings.h"

namespace cvcp {

namespace {

uint32_t KindValue(MessageKind kind) { return static_cast<uint32_t>(kind); }

/// Opens `bytes` as a message block of `kind` — the shared prologue of
/// every decoder.
Result<BlockReader> OpenMessage(std::string bytes, MessageKind kind) {
  return BlockReader::Open(std::move(bytes), KindValue(kind));
}

Status RequireDrained(const BlockReader& reader) {
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing records in message");
  }
  return Status::OK();
}

}  // namespace

Status ValidateFrameLength(uint64_t length) {
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        Format("frame length %llu exceeds the %u-byte cap",
               static_cast<unsigned long long>(length), kMaxFrameBytes));
  }
  return Status::OK();
}

std::string EncodeSubmitRequest(const SubmitRequest& msg) {
  BlockBuilder builder(KindValue(MessageKind::kSubmitRequest));
  AppendJobSpecRecords(msg.spec, &builder);
  return builder.Finish();
}

Result<SubmitRequest> DecodeSubmitRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kSubmitRequest));
  SubmitRequest msg;
  CVCP_ASSIGN_OR_RETURN(msg.spec, ReadJobSpecRecords(&reader));
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return msg;
}

std::string EncodeSubmitReply(const SubmitReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kSubmitReply));
  builder.AppendU64(msg.job_id);
  builder.AppendU32(msg.version);
  builder.AppendU64(msg.spec_hash);
  return builder.Finish();
}

Result<SubmitReply> DecodeSubmitReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kSubmitReply));
  SubmitReply msg;
  CVCP_ASSIGN_OR_RETURN(msg.job_id, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(msg.version, reader.ReadU32());
  CVCP_ASSIGN_OR_RETURN(msg.spec_hash, reader.ReadU64());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return msg;
}

namespace {

/// WaitRequest and FetchRequest share one shape: a single job id.
std::string EncodeJobIdMessage(MessageKind kind, uint64_t job_id) {
  BlockBuilder builder(KindValue(kind));
  builder.AppendU64(job_id);
  return builder.Finish();
}

Result<uint64_t> DecodeJobIdMessage(std::string bytes, MessageKind kind) {
  CVCP_ASSIGN_OR_RETURN(BlockReader reader,
                        OpenMessage(std::move(bytes), kind));
  CVCP_ASSIGN_OR_RETURN(uint64_t job_id, reader.ReadU64());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return job_id;
}

}  // namespace

std::string EncodeWaitRequest(const WaitRequest& msg) {
  return EncodeJobIdMessage(MessageKind::kWaitRequest, msg.job_id);
}

Result<WaitRequest> DecodeWaitRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      uint64_t job_id,
      DecodeJobIdMessage(std::move(bytes), MessageKind::kWaitRequest));
  return WaitRequest{job_id};
}

std::string EncodeFetchRequest(const FetchRequest& msg) {
  return EncodeJobIdMessage(MessageKind::kFetchRequest, msg.job_id);
}

Result<FetchRequest> DecodeFetchRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      uint64_t job_id,
      DecodeJobIdMessage(std::move(bytes), MessageKind::kFetchRequest));
  return FetchRequest{job_id};
}

std::string EncodeReportReply(const ReportReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kReportReply));
  builder.AppendU64(msg.job_id);
  builder.AppendU32(msg.version);
  builder.AppendU64(msg.spec_hash);
  builder.AppendString(msg.report_bytes);
  return builder.Finish();
}

Result<ReportReply> DecodeReportReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kReportReply));
  ReportReply msg;
  CVCP_ASSIGN_OR_RETURN(msg.job_id, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(msg.version, reader.ReadU32());
  CVCP_ASSIGN_OR_RETURN(msg.spec_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(msg.report_bytes, reader.ReadString());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return msg;
}

std::string EncodeVersionsRequest(const VersionsRequest& msg) {
  BlockBuilder builder(KindValue(MessageKind::kVersionsRequest));
  builder.AppendU64(msg.spec_hash);
  return builder.Finish();
}

Result<VersionsRequest> DecodeVersionsRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kVersionsRequest));
  VersionsRequest msg;
  CVCP_ASSIGN_OR_RETURN(msg.spec_hash, reader.ReadU64());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return msg;
}

std::string EncodeVersionsReply(const VersionsReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kVersionsReply));
  std::vector<size_t> ids(msg.job_ids.begin(), msg.job_ids.end());
  builder.AppendSizes(ids);
  return builder.Finish();
}

Result<VersionsReply> DecodeVersionsReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kVersionsReply));
  VersionsReply msg;
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> ids, reader.ReadSizes());
  msg.job_ids.assign(ids.begin(), ids.end());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return msg;
}

std::string EncodeStatsRequest() {
  BlockBuilder builder(KindValue(MessageKind::kStatsRequest));
  return builder.Finish();
}

Result<StatsRequest> DecodeStatsRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kStatsRequest));
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return StatsRequest{};
}

namespace {

/// StatsReply travels as one u64-array record in field-declaration
/// order; the count is the schema version (a mismatch is kCorruption,
/// encoder and decoder disagree).
constexpr size_t kStatsFieldCount = 22;

}  // namespace

std::string EncodeStatsReply(const StatsReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kStatsReply));
  const size_t fields[kStatsFieldCount] = {
      msg.queue_depth,     msg.running,
      msg.accepted,        msg.rejected_queue_full,
      msg.rejected_memory, msg.completed,
      msg.failed,          msg.inflight_bytes,
      msg.distance_builds, msg.distance_loads,
      msg.distance_hits,   msg.model_builds,
      msg.model_loads,     msg.model_hits,
      msg.disk_hits,       msg.disk_misses,
      msg.results_recovered, msg.results_corrupt,
      msg.results_stored,  msg.cancelled,
      msg.deadline_exceeded, msg.temps_swept};
  builder.AppendSizes(fields);
  return builder.Finish();
}

Result<StatsReply> DecodeStatsReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kStatsReply));
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> fields, reader.ReadSizes());
  if (fields.size() != kStatsFieldCount) {
    return Status::Corruption(
        Format("stats reply has %zu fields, want %zu", fields.size(),
               kStatsFieldCount));
  }
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  StatsReply msg;
  size_t i = 0;
  msg.queue_depth = fields[i++];
  msg.running = fields[i++];
  msg.accepted = fields[i++];
  msg.rejected_queue_full = fields[i++];
  msg.rejected_memory = fields[i++];
  msg.completed = fields[i++];
  msg.failed = fields[i++];
  msg.inflight_bytes = fields[i++];
  msg.distance_builds = fields[i++];
  msg.distance_loads = fields[i++];
  msg.distance_hits = fields[i++];
  msg.model_builds = fields[i++];
  msg.model_loads = fields[i++];
  msg.model_hits = fields[i++];
  msg.disk_hits = fields[i++];
  msg.disk_misses = fields[i++];
  msg.results_recovered = fields[i++];
  msg.results_corrupt = fields[i++];
  msg.results_stored = fields[i++];
  msg.cancelled = fields[i++];
  msg.deadline_exceeded = fields[i++];
  msg.temps_swept = fields[i++];
  return msg;
}

std::string EncodeShutdownRequest() {
  BlockBuilder builder(KindValue(MessageKind::kShutdownRequest));
  return builder.Finish();
}

Result<ShutdownRequest> DecodeShutdownRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kShutdownRequest));
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return ShutdownRequest{};
}

std::string EncodeShutdownReply() {
  BlockBuilder builder(KindValue(MessageKind::kShutdownReply));
  return builder.Finish();
}

Result<ShutdownReply> DecodeShutdownReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kShutdownReply));
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return ShutdownReply{};
}

std::string EncodeErrorReply(const ErrorReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kErrorReply));
  builder.AppendU32(static_cast<uint32_t>(msg.status.code()));
  builder.AppendString(msg.status.message());
  return builder.Finish();
}

Result<ErrorReply> DecodeErrorReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kErrorReply));
  CVCP_ASSIGN_OR_RETURN(uint32_t code, reader.ReadU32());
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption(Format("bad status code %u", code));
  }
  CVCP_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return ErrorReply{Status(static_cast<StatusCode>(code), std::move(message))};
}

std::string EncodeCancelRequest(const CancelRequest& msg) {
  return EncodeJobIdMessage(MessageKind::kCancelRequest, msg.job_id);
}

Result<CancelRequest> DecodeCancelRequest(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      uint64_t job_id,
      DecodeJobIdMessage(std::move(bytes), MessageKind::kCancelRequest));
  return CancelRequest{job_id};
}

std::string EncodeCancelReply(const CancelReply& msg) {
  BlockBuilder builder(KindValue(MessageKind::kCancelReply));
  builder.AppendU32(static_cast<uint32_t>(msg.outcome));
  return builder.Finish();
}

Result<CancelReply> DecodeCancelReply(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      OpenMessage(std::move(bytes), MessageKind::kCancelReply));
  CVCP_ASSIGN_OR_RETURN(uint32_t outcome, reader.ReadU32());
  if (outcome > static_cast<uint32_t>(CancelOutcome::kAlreadyFinished)) {
    return Status::Corruption(Format("bad cancel outcome %u", outcome));
  }
  CVCP_RETURN_IF_ERROR(RequireDrained(reader));
  return CancelReply{static_cast<CancelOutcome>(outcome)};
}

Result<MessageKind> PeekMessageKind(std::string_view payload) {
  CVCP_ASSIGN_OR_RETURN(uint32_t kind, PeekBlockKind(payload));
  switch (static_cast<MessageKind>(kind)) {
    case MessageKind::kSubmitRequest:
    case MessageKind::kSubmitReply:
    case MessageKind::kWaitRequest:
    case MessageKind::kFetchRequest:
    case MessageKind::kReportReply:
    case MessageKind::kVersionsRequest:
    case MessageKind::kVersionsReply:
    case MessageKind::kStatsRequest:
    case MessageKind::kStatsReply:
    case MessageKind::kShutdownRequest:
    case MessageKind::kShutdownReply:
    case MessageKind::kErrorReply:
    case MessageKind::kCancelRequest:
    case MessageKind::kCancelReply:
      return static_cast<MessageKind>(kind);
  }
  return Status::Corruption(Format("unknown message kind 0x%08x", kind));
}

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped draining. Give up on the
        // connection rather than wedge this thread forever.
        return Status::Internal("socket write timed out");
      }
      return Status::Internal(
          Format("socket write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*got` reports the bytes read when the
/// stream ends early (0 distinguishes a clean between-frames EOF).
Status ReadAll(int fd, char* data, size_t size, size_t* got) {
  *got = 0;
  while (*got < size) {
    const ssize_t n = ::read(fd, data + *got, size - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. Before the first header byte (*got == 0 in
        // ReadFrame's header read) this surfaces as kNotFound — an idle
        // peer is treated like one that hung up; mid-frame it stays an
        // IO error.
        return Status::Corruption("socket read timed out");
      }
      return Status::Corruption(
          Format("socket read failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Corruption("connection closed mid-frame");
    }
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  CVCP_RETURN_IF_ERROR(ValidateFrameLength(payload.size()));
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char header[4];
  header[0] = static_cast<char>(length & 0xFF);
  header[1] = static_cast<char>((length >> 8) & 0xFF);
  header[2] = static_cast<char>((length >> 16) & 0xFF);
  header[3] = static_cast<char>((length >> 24) & 0xFF);
  CVCP_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  size_t got = 0;
  Status read = ReadAll(fd, header, sizeof(header), &got);
  if (!read.ok()) {
    if (got == 0 && read.code() == StatusCode::kCorruption) {
      return Status::NotFound("connection closed");
    }
    return read;
  }
  const uint32_t length = static_cast<uint32_t>(
      static_cast<unsigned char>(header[0]) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 8) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 16) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[3])) << 24));
  CVCP_RETURN_IF_ERROR(ValidateFrameLength(length));
  std::string payload(length, '\0');
  CVCP_RETURN_IF_ERROR(ReadAll(fd, payload.data(), payload.size(), &got));
  return payload;
}

}  // namespace cvcp
