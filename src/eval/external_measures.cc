#include "eval/external_measures.h"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/check.h"

namespace cvcp {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Contingency table between ground-truth classes and clusters over the
/// surviving objects. Noise objects become fresh singleton clusters.
struct Contingency {
  std::vector<std::vector<size_t>> counts;  ///< class x cluster
  std::vector<size_t> class_sizes;
  std::vector<size_t> cluster_sizes;
  size_t n = 0;
};

Contingency BuildContingency(const std::vector<int>& labels,
                             const Clustering& clustering,
                             const std::vector<bool>* exclude) {
  CVCP_CHECK_EQ(labels.size(), clustering.size());
  if (exclude != nullptr) CVCP_CHECK_EQ(exclude->size(), labels.size());

  // Compact class and cluster ids over surviving objects.
  std::map<int, size_t> class_ids;
  std::map<int, size_t> cluster_ids;
  std::vector<std::pair<size_t, size_t>> assignments;  // (class, cluster)
  size_t next_singleton = 0;
  std::vector<std::pair<size_t, size_t>> pending;

  for (size_t i = 0; i < labels.size(); ++i) {
    if (exclude != nullptr && (*exclude)[i]) continue;
    auto [cit, cinserted] = class_ids.emplace(labels[i], class_ids.size());
    size_t cluster;
    if (clustering.IsNoise(i)) {
      // Unique pseudo-cluster per noise object; ids assigned after real
      // clusters, so stash and fix up below.
      cluster = SIZE_MAX - next_singleton;
      ++next_singleton;
    } else {
      auto [kit, kinserted] =
          cluster_ids.emplace(clustering.cluster_of(i), cluster_ids.size());
      cluster = kit->second;
    }
    assignments.emplace_back(cit->second, cluster);
  }

  Contingency table;
  table.n = assignments.size();
  const size_t num_classes = class_ids.size();
  const size_t num_clusters = cluster_ids.size() + next_singleton;
  table.counts.assign(num_classes, std::vector<size_t>(num_clusters, 0));
  table.class_sizes.assign(num_classes, 0);
  table.cluster_sizes.assign(num_clusters, 0);

  size_t singleton_cursor = cluster_ids.size();
  for (auto& [cls, cluster] : assignments) {
    size_t k = cluster;
    if (k > num_clusters) {  // stashed singleton marker
      k = singleton_cursor++;
    }
    table.counts[cls][k]++;
    table.class_sizes[cls]++;
    table.cluster_sizes[k]++;
  }
  return table;
}

}  // namespace

double OverallFMeasure(const std::vector<int>& labels,
                       const Clustering& clustering,
                       const std::vector<bool>* exclude) {
  const Contingency t = BuildContingency(labels, clustering, exclude);
  if (t.n == 0) return kNaN;

  double overall = 0.0;
  for (size_t c = 0; c < t.class_sizes.size(); ++c) {
    double best_f = 0.0;
    for (size_t k = 0; k < t.cluster_sizes.size(); ++k) {
      const double inter = static_cast<double>(t.counts[c][k]);
      if (inter == 0.0) continue;
      const double precision = inter / static_cast<double>(t.cluster_sizes[k]);
      const double recall = inter / static_cast<double>(t.class_sizes[c]);
      const double f = 2.0 * precision * recall / (precision + recall);
      best_f = std::max(best_f, f);
    }
    overall += best_f * static_cast<double>(t.class_sizes[c]) /
               static_cast<double>(t.n);
  }
  return overall;
}

PairCounts CountPairs(const std::vector<int>& labels,
                      const Clustering& clustering,
                      const std::vector<bool>* exclude) {
  CVCP_CHECK_EQ(labels.size(), clustering.size());
  if (exclude != nullptr) CVCP_CHECK_EQ(exclude->size(), labels.size());
  PairCounts pc;
  const size_t n = labels.size();
  for (size_t i = 0; i < n; ++i) {
    if (exclude != nullptr && (*exclude)[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (exclude != nullptr && (*exclude)[j]) continue;
      const bool same_class = labels[i] == labels[j];
      const bool same_cluster = clustering.SameCluster(i, j);
      if (same_class && same_cluster) ++pc.same_same;
      else if (same_class) ++pc.same_diff;
      else if (same_cluster) ++pc.diff_same;
      else ++pc.diff_diff;
    }
  }
  return pc;
}

double RandIndex(const std::vector<int>& labels, const Clustering& clustering,
                 const std::vector<bool>* exclude) {
  const PairCounts pc = CountPairs(labels, clustering, exclude);
  if (pc.total() == 0) return kNaN;
  return static_cast<double>(pc.same_same + pc.diff_diff) /
         static_cast<double>(pc.total());
}

double AdjustedRandIndex(const std::vector<int>& labels,
                         const Clustering& clustering,
                         const std::vector<bool>* exclude) {
  const Contingency t = BuildContingency(labels, clustering, exclude);
  if (t.n < 2) return kNaN;
  auto choose2 = [](size_t x) {
    return static_cast<double>(x) * static_cast<double>(x - 1) / 2.0;
  };
  double sum_ij = 0.0;
  for (const auto& row : t.counts) {
    for (size_t v : row) {
      if (v >= 2) sum_ij += choose2(v);
    }
  }
  double sum_a = 0.0;
  for (size_t v : t.class_sizes) {
    if (v >= 2) sum_a += choose2(v);
  }
  double sum_b = 0.0;
  for (size_t v : t.cluster_sizes) {
    if (v >= 2) sum_b += choose2(v);
  }
  const double total = choose2(t.n);
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  if (max_index == expected) return kNaN;  // degenerate (single class/cluster)
  return (sum_ij - expected) / (max_index - expected);
}

double JaccardIndex(const std::vector<int>& labels,
                    const Clustering& clustering,
                    const std::vector<bool>* exclude) {
  const PairCounts pc = CountPairs(labels, clustering, exclude);
  const size_t denom = pc.same_same + pc.same_diff + pc.diff_same;
  if (denom == 0) return kNaN;
  return static_cast<double>(pc.same_same) / static_cast<double>(denom);
}

double PairwiseFMeasure(const std::vector<int>& labels,
                        const Clustering& clustering,
                        const std::vector<bool>* exclude) {
  const PairCounts pc = CountPairs(labels, clustering, exclude);
  const size_t tp = pc.same_same;
  const size_t fp = pc.diff_same;
  const size_t fn = pc.same_diff;
  if (tp == 0) return (fp == 0 && fn == 0) ? kNaN : 0.0;
  const double precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double Purity(const std::vector<int>& labels, const Clustering& clustering,
              const std::vector<bool>* exclude) {
  const Contingency t = BuildContingency(labels, clustering, exclude);
  if (t.n == 0) return kNaN;
  double correct = 0.0;
  for (size_t k = 0; k < t.cluster_sizes.size(); ++k) {
    size_t best = 0;
    for (size_t c = 0; c < t.class_sizes.size(); ++c) {
      best = std::max(best, t.counts[c][k]);
    }
    correct += static_cast<double>(best);
  }
  return correct / static_cast<double>(t.n);
}

double NormalizedMutualInformation(const std::vector<int>& labels,
                                   const Clustering& clustering,
                                   const std::vector<bool>* exclude) {
  const Contingency t = BuildContingency(labels, clustering, exclude);
  if (t.n == 0) return kNaN;
  const double n = static_cast<double>(t.n);
  double mi = 0.0, h_class = 0.0, h_cluster = 0.0;
  for (size_t c = 0; c < t.class_sizes.size(); ++c) {
    const double pc = static_cast<double>(t.class_sizes[c]) / n;
    if (pc > 0.0) h_class -= pc * std::log(pc);
    for (size_t k = 0; k < t.cluster_sizes.size(); ++k) {
      if (t.counts[c][k] == 0) continue;
      const double pck = static_cast<double>(t.counts[c][k]) / n;
      const double pk = static_cast<double>(t.cluster_sizes[k]) / n;
      mi += pck * std::log(pck / (pc * pk));
    }
  }
  for (size_t k = 0; k < t.cluster_sizes.size(); ++k) {
    const double pk = static_cast<double>(t.cluster_sizes[k]) / n;
    if (pk > 0.0) h_cluster -= pk * std::log(pk);
  }
  const double denom = 0.5 * (h_class + h_cluster);
  if (denom == 0.0) return kNaN;
  return mi / denom;
}

}  // namespace cvcp
