#ifndef CVCP_EVAL_EXTERNAL_PROTOCOLS_H_
#define CVCP_EVAL_EXTERNAL_PROTOCOLS_H_

/// \file
/// The paper's §2 taxonomy of *external* evaluation setups for
/// semi-supervised clustering — how to score a result against ground truth
/// without letting the supervision contaminate the assessment:
///
///   1. kUseAllData — naive: score every object, including the ones whose
///      labels/constraints the algorithm was trained with. Biased; the
///      paper lists it only to warn against it.
///   2. kSetAside   — drop the supervision-involved objects from the
///      external index (what the paper's own experiments use, §4.1).
///   3. kHoldout    — split objects into train/test once; supervision is
///      drawn from the train side only; score only the test side. Sound
///      but wastes unsupervised training objects.
///   4. kNFoldCv    — n-fold version of holdout: supervision from n-1
///      folds, score the held-out fold, rotate, average.
///
/// These wrap the Overall F-Measure so benches/tests can quantify the bias
/// the naive setup introduces.

#include <vector>

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/clusterer.h"
#include "core/supervision.h"

namespace cvcp {

/// External-evaluation setup (paper §2).
enum class ExternalProtocol {
  kUseAllData,
  kSetAside,
  kHoldout,
  kNFoldCv,
};

/// Returns a stable display name ("use-all-data", ...).
const char* ExternalProtocolName(ExternalProtocol protocol);

/// Configuration for the protocols that split objects.
struct ExternalEvalConfig {
  ExternalProtocol protocol = ExternalProtocol::kSetAside;
  /// Fraction of objects labeled for the supervision (oracle side).
  double supervision_fraction = 0.10;
  /// kHoldout: fraction of objects reserved for evaluation.
  double holdout_fraction = 0.3;
  /// kNFoldCv: number of folds.
  int n_folds = 5;
};

/// Outcome of one protocol run.
struct ExternalEvalResult {
  /// Overall F-Measure under the protocol's scoring rule (mean over folds
  /// for kNFoldCv).
  double overall_f = 0.0;
  /// Objects actually scored (summed over folds for kNFoldCv).
  size_t scored_objects = 0;
};

/// Runs one external evaluation of `clusterer` at `param` on labeled data:
/// samples supervision per the protocol, clusters the full dataset, and
/// scores against ground truth per the protocol's rule. Deterministic in
/// *rng. Errors with kInvalidArgument for malformed config and
/// kFailedPrecondition for unlabeled data.
Result<ExternalEvalResult> EvaluateWithProtocol(
    const Dataset& data, const SemiSupervisedClusterer& clusterer, int param,
    const ExternalEvalConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_EVAL_EXTERNAL_PROTOCOLS_H_
