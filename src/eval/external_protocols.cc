#include "eval/external_protocols.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "constraints/oracle.h"
#include "eval/external_measures.h"

namespace cvcp {

namespace {

Status ValidateConfig(const ExternalEvalConfig& config) {
  if (!(config.supervision_fraction > 0.0) ||
      config.supervision_fraction > 1.0) {
    return Status::InvalidArgument("supervision_fraction must be in (0, 1]");
  }
  if (config.protocol == ExternalProtocol::kHoldout &&
      (!(config.holdout_fraction > 0.0) || config.holdout_fraction >= 1.0)) {
    return Status::InvalidArgument("holdout_fraction must be in (0, 1)");
  }
  if (config.protocol == ExternalProtocol::kNFoldCv && config.n_folds < 2) {
    return Status::InvalidArgument("n_folds must be >= 2");
  }
  return Status::OK();
}

/// Clusters the whole dataset with supervision from `supervised_objects`
/// and scores the objects where `score_mask` is true (nullptr = all).
Result<double> ClusterAndScore(const Dataset& data,
                               const SemiSupervisedClusterer& clusterer,
                               int param,
                               const std::vector<size_t>& supervised_objects,
                               const std::vector<bool>* exclude, Rng* rng) {
  Supervision supervision =
      Supervision::FromLabels(data, supervised_objects);
  Rng run_rng = rng->Fork(0xE7A1ULL);
  CVCP_ASSIGN_OR_RETURN(Clustering clustering,
                        clusterer.Cluster(data, supervision, param, &run_rng));
  return OverallFMeasure(data.labels(), clustering, exclude);
}

}  // namespace

const char* ExternalProtocolName(ExternalProtocol protocol) {
  switch (protocol) {
    case ExternalProtocol::kUseAllData:
      return "use-all-data";
    case ExternalProtocol::kSetAside:
      return "set-aside";
    case ExternalProtocol::kHoldout:
      return "holdout";
    case ExternalProtocol::kNFoldCv:
      return "n-fold-cv";
  }
  return "unknown";
}

Result<ExternalEvalResult> EvaluateWithProtocol(
    const Dataset& data, const SemiSupervisedClusterer& clusterer, int param,
    const ExternalEvalConfig& config, Rng* rng) {
  CVCP_RETURN_IF_ERROR(ValidateConfig(config));
  if (!data.has_labels()) {
    return Status::FailedPrecondition("dataset has no ground-truth labels");
  }
  const size_t n = data.size();
  ExternalEvalResult out;

  switch (config.protocol) {
    case ExternalProtocol::kUseAllData: {
      CVCP_ASSIGN_OR_RETURN(
          std::vector<size_t> supervised,
          SampleLabeledObjects(data, config.supervision_fraction, rng));
      CVCP_ASSIGN_OR_RETURN(out.overall_f,
                            ClusterAndScore(data, clusterer, param, supervised,
                                            /*exclude=*/nullptr, rng));
      out.scored_objects = n;
      return out;
    }
    case ExternalProtocol::kSetAside: {
      CVCP_ASSIGN_OR_RETURN(
          std::vector<size_t> supervised,
          SampleLabeledObjects(data, config.supervision_fraction, rng));
      std::vector<bool> exclude(n, false);
      for (size_t o : supervised) exclude[o] = true;
      CVCP_ASSIGN_OR_RETURN(out.overall_f,
                            ClusterAndScore(data, clusterer, param, supervised,
                                            &exclude, rng));
      out.scored_objects = n - supervised.size();
      return out;
    }
    case ExternalProtocol::kHoldout: {
      // Test objects are reserved first; supervision comes only from the
      // remaining (train) objects.
      std::vector<size_t> perm = rng->Permutation(n);
      const size_t test_size = std::max<size_t>(
          1, static_cast<size_t>(std::lround(config.holdout_fraction *
                                             static_cast<double>(n))));
      std::vector<bool> is_test(n, false);
      for (size_t i = 0; i < test_size; ++i) is_test[perm[i]] = true;
      std::vector<size_t> train_objects;
      for (size_t o = 0; o < n; ++o) {
        if (!is_test[o]) train_objects.push_back(o);
      }
      size_t k = static_cast<size_t>(
          std::lround(config.supervision_fraction * static_cast<double>(n)));
      k = std::clamp<size_t>(k, 2, train_objects.size());
      std::vector<size_t> supervised = rng->SampleFrom(train_objects, k);
      std::sort(supervised.begin(), supervised.end());
      // Score only the held-out objects.
      std::vector<bool> exclude(n, false);
      for (size_t o = 0; o < n; ++o) exclude[o] = !is_test[o];
      CVCP_ASSIGN_OR_RETURN(out.overall_f,
                            ClusterAndScore(data, clusterer, param, supervised,
                                            &exclude, rng));
      out.scored_objects = test_size;
      return out;
    }
    case ExternalProtocol::kNFoldCv: {
      std::vector<size_t> perm = rng->Permutation(n);
      const size_t folds = static_cast<size_t>(config.n_folds);
      double sum = 0.0;
      size_t valid = 0;
      for (size_t f = 0; f < folds; ++f) {
        std::vector<bool> is_test(n, false);
        std::vector<size_t> train_objects;
        for (size_t i = 0; i < n; ++i) {
          if (i % folds == f) {
            is_test[perm[i]] = true;
          } else {
            train_objects.push_back(perm[i]);
          }
        }
        std::sort(train_objects.begin(), train_objects.end());
        size_t k = static_cast<size_t>(std::lround(
            config.supervision_fraction * static_cast<double>(n)));
        k = std::clamp<size_t>(k, 2, train_objects.size());
        Rng fold_rng = rng->Fork(f);
        std::vector<size_t> supervised = fold_rng.SampleFrom(train_objects, k);
        std::sort(supervised.begin(), supervised.end());
        std::vector<bool> exclude(n, false);
        size_t scored = 0;
        for (size_t o = 0; o < n; ++o) {
          exclude[o] = !is_test[o];
          if (is_test[o]) ++scored;
        }
        auto f_value = ClusterAndScore(data, clusterer, param, supervised,
                                       &exclude, &fold_rng);
        if (!f_value.ok()) return f_value.status();
        if (!std::isnan(f_value.value())) {
          sum += f_value.value();
          ++valid;
          out.scored_objects += scored;
        }
      }
      out.overall_f = valid > 0
                          ? sum / static_cast<double>(valid)
                          : std::numeric_limits<double>::quiet_NaN();
      return out;
    }
  }
  return Status::Internal("unreachable protocol");
}

}  // namespace cvcp
