#include "eval/boxplot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"
#include "common/strings.h"

namespace cvcp {

BoxplotStats BoxplotStats::FromSamples(std::vector<double> samples) {
  BoxplotStats s;
  s.n_total = samples.size();
  std::erase_if(samples, [](double v) { return std::isnan(v); });
  s.n = samples.size();
  if (samples.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    s.min = s.q1 = s.median = s.q3 = s.max = nan;
    s.whisker_low = s.whisker_high = nan;
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = QuantileSorted(samples, 0.25);
  s.median = QuantileSorted(samples, 0.5);
  s.q3 = QuantileSorted(samples, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_low = s.max;
  s.whisker_high = s.min;
  for (double v : samples) {
    if (v < lo_fence || v > hi_fence) {
      s.outliers.push_back(v);
    } else {
      s.whisker_low = std::min(s.whisker_low, v);
      s.whisker_high = std::max(s.whisker_high, v);
    }
  }
  return s;
}

std::string RenderBoxplots(const std::vector<LabeledBox>& boxes, double lo,
                           double hi, int width) {
  CVCP_CHECK_GT(width, 10);
  CVCP_CHECK_GE(hi, lo);
  if (hi <= lo) {
    // Degenerate axis (every pooled value equal): widen symmetrically so
    // the figure still renders instead of aborting the bench.
    const double mid = 0.5 * (lo + hi);
    double pad = std::fabs(mid) * 0.05;
    if (pad == 0.0) pad = 0.5;
    lo = mid - pad;
    hi = mid + pad;
  }
  size_t label_width = 0;
  for (const auto& b : boxes) label_width = std::max(label_width, b.label.size());

  auto column = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    const int c = static_cast<int>(std::lround(t * (width - 1)));
    return std::clamp(c, 0, width - 1);
  };

  std::string out;
  for (const auto& b : boxes) {
    std::string line(static_cast<size_t>(width), ' ');
    if (b.stats.n > 0 && !std::isnan(b.stats.median)) {
      const int wl = column(b.stats.whisker_low);
      const int wh = column(b.stats.whisker_high);
      const int q1 = column(b.stats.q1);
      const int q3 = column(b.stats.q3);
      const int md = column(b.stats.median);
      for (int c = wl; c <= wh; ++c) line[static_cast<size_t>(c)] = '-';
      line[static_cast<size_t>(wl)] = '|';
      line[static_cast<size_t>(wh)] = '|';
      for (int c = q1; c <= q3; ++c) line[static_cast<size_t>(c)] = '=';
      line[static_cast<size_t>(q1)] = '[';
      line[static_cast<size_t>(q3)] = ']';
      line[static_cast<size_t>(md)] = '#';
      for (double o : b.stats.outliers) {
        line[static_cast<size_t>(column(o))] = 'o';
      }
    }
    std::string label = b.label;
    label.resize(label_width, ' ');
    out += label + " |" + line + "|\n";
  }
  out += Format("%*s  axis: [%.3f, %.3f]   ([=#=] box+median, |--| whiskers, o outliers)\n",
                static_cast<int>(label_width), "", lo, hi);
  for (const auto& b : boxes) {
    // "n=defined/total" when NaN samples were dropped from the stats.
    std::string n_text = Format("%zu", b.stats.n);
    if (b.stats.n_total > b.stats.n) {
      n_text += Format("/%zu", b.stats.n_total);
    }
    out += Format(
        "%-*s  n=%-7s min=%s q1=%s med=%s q3=%s max=%s\n",
        static_cast<int>(label_width), b.label.c_str(), n_text.c_str(),
        FormatDouble(b.stats.min).c_str(), FormatDouble(b.stats.q1).c_str(),
        FormatDouble(b.stats.median).c_str(), FormatDouble(b.stats.q3).c_str(),
        FormatDouble(b.stats.max).c_str());
  }
  return out;
}

}  // namespace cvcp
