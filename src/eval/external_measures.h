#ifndef CVCP_EVAL_EXTERNAL_MEASURES_H_
#define CVCP_EVAL_EXTERNAL_MEASURES_H_

/// \file
/// External clustering evaluation against ground-truth class labels. The
/// paper's headline measure is the "Overall F-Measure" (§4.1): for every
/// ground-truth class take the best F-measure over all clusters, then
/// average weighted by class size. Pair-counting indices (Rand, ARI,
/// Jaccard, pairwise F), purity and NMI are provided for completeness and
/// for the ablation benches.
///
/// All measures accept an optional exclusion mask so objects involved in
/// the supervision given to the clusterer can be set aside, as §4.1
/// requires ("the only objects considered are those that are not involved
/// in the constraints given as input").
///
/// Noise convention: a noise object counts as its own singleton cluster
/// (DESIGN.md §6) — it can never be "paired" with anything.

#include <vector>

#include "cluster/clustering.h"

namespace cvcp {

/// Overall F-Measure in [0, 1]; NaN if no objects survive the mask.
/// `exclude` (optional, dataset-sized) marks objects to ignore.
double OverallFMeasure(const std::vector<int>& labels,
                       const Clustering& clustering,
                       const std::vector<bool>* exclude = nullptr);

/// Pair agreement counts between ground truth and clustering over the
/// non-excluded objects.
struct PairCounts {
  size_t same_same = 0;  ///< same class, same cluster
  size_t same_diff = 0;  ///< same class, different cluster
  size_t diff_same = 0;  ///< different class, same cluster
  size_t diff_diff = 0;  ///< different class, different cluster

  size_t total() const {
    return same_same + same_diff + diff_same + diff_diff;
  }
};

PairCounts CountPairs(const std::vector<int>& labels,
                      const Clustering& clustering,
                      const std::vector<bool>* exclude = nullptr);

/// Rand index in [0, 1].
double RandIndex(const std::vector<int>& labels, const Clustering& clustering,
                 const std::vector<bool>* exclude = nullptr);

/// Hubert & Arabie's adjusted Rand index (chance-corrected; can be < 0).
double AdjustedRandIndex(const std::vector<int>& labels,
                         const Clustering& clustering,
                         const std::vector<bool>* exclude = nullptr);

/// Jaccard index over same-class pairs.
double JaccardIndex(const std::vector<int>& labels,
                    const Clustering& clustering,
                    const std::vector<bool>* exclude = nullptr);

/// Pairwise F-measure (precision/recall over same-cluster pairs).
double PairwiseFMeasure(const std::vector<int>& labels,
                        const Clustering& clustering,
                        const std::vector<bool>* exclude = nullptr);

/// Purity: fraction of objects in their cluster's majority class. Noise
/// singletons are pure by construction.
double Purity(const std::vector<int>& labels, const Clustering& clustering,
              const std::vector<bool>* exclude = nullptr);

/// Normalized mutual information (arithmetic-mean normalization).
double NormalizedMutualInformation(const std::vector<int>& labels,
                                   const Clustering& clustering,
                                   const std::vector<bool>* exclude = nullptr);

}  // namespace cvcp

#endif  // CVCP_EVAL_EXTERNAL_MEASURES_H_
