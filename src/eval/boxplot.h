#ifndef CVCP_EVAL_BOXPLOT_H_
#define CVCP_EVAL_BOXPLOT_H_

/// \file
/// Five-number boxplot summaries and an ASCII renderer — how the bench
/// binaries reproduce the paper's Figures 9-12 (quality distributions over
/// the ALOI collection for CVCP-x vs Exp-x vs Sil-x).

#include <string>
#include <vector>

namespace cvcp {

/// Tukey boxplot statistics of one sample.
struct BoxplotStats {
  double min = 0.0;          ///< sample minimum
  double q1 = 0.0;           ///< first quartile
  double median = 0.0;
  double q3 = 0.0;           ///< third quartile
  double max = 0.0;          ///< sample maximum
  double whisker_low = 0.0;  ///< lowest point within q1 - 1.5 IQR
  double whisker_high = 0.0; ///< highest point within q3 + 1.5 IQR
  std::vector<double> outliers;
  size_t n = 0;        ///< defined (non-NaN) samples the stats are over
  size_t n_total = 0;  ///< all samples given, including NaN ones

  /// Computes the statistics over the defined (non-NaN) samples — sorting
  /// NaNs would be undefined behavior and poison every quantile, and
  /// pooled experiment series legitimately contain NaN entries. NaN-filled
  /// (with n = 0) when no sample is defined.
  static BoxplotStats FromSamples(std::vector<double> samples);
};

/// One labeled box in a rendered plot.
struct LabeledBox {
  std::string label;
  BoxplotStats stats;
};

/// Renders horizontal ASCII boxplots on a shared [lo, hi] axis:
///
///   CVCP-10  |      |----[  =|=  ]-------|        o
///
/// (whiskers |---|, box [ ], median =|=, outliers o). Also appends a
/// numeric five-number summary per box (n shown as defined/total when NaN
/// samples were dropped). A degenerate axis (hi == lo, e.g. every pooled
/// value equal) is widened symmetrically rather than rejected; hi < lo is
/// still a programming error (checked).
std::string RenderBoxplots(const std::vector<LabeledBox>& boxes, double lo,
                           double hi, int width = 60);

}  // namespace cvcp

#endif  // CVCP_EVAL_BOXPLOT_H_
