#include "constraints/folds.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "constraints/transitive_closure.h"

namespace cvcp {

namespace {

/// Distributes `objects` (already shuffled) round-robin over n folds so fold
/// sizes differ by at most one.
std::vector<std::vector<size_t>> AssignRoundRobin(
    const std::vector<size_t>& objects, int n_folds) {
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(n_folds));
  for (size_t i = 0; i < objects.size(); ++i) {
    folds[i % static_cast<size_t>(n_folds)].push_back(objects[i]);
  }
  return folds;
}

/// Builds the train/test object lists for fold `t` from per-fold members.
void SplitObjects(const std::vector<std::vector<size_t>>& folds, size_t t,
                  std::vector<size_t>* train, std::vector<size_t>* test) {
  test->assign(folds[t].begin(), folds[t].end());
  train->clear();
  for (size_t f = 0; f < folds.size(); ++f) {
    if (f == t) continue;
    train->insert(train->end(), folds[f].begin(), folds[f].end());
  }
  std::sort(train->begin(), train->end());
  std::sort(test->begin(), test->end());
}

}  // namespace

Result<std::vector<FoldSplit>> MakeLabelFolds(
    const std::vector<size_t>& labeled_objects, const std::vector<int>& labels,
    size_t n_total, const FoldConfig& config, Rng* rng) {
  if (config.n_folds < 2) {
    return Status::InvalidArgument(
        Format("n_folds must be >= 2, got %d", config.n_folds));
  }
  if (labeled_objects.size() < static_cast<size_t>(config.n_folds)) {
    return Status::InvalidArgument(
        Format("%zu labeled objects cannot fill %d folds",
               labeled_objects.size(), config.n_folds));
  }
  CVCP_CHECK_EQ(labels.size(), n_total);
  for (size_t o : labeled_objects) {
    CVCP_CHECK_LT(o, n_total);
    CVCP_CHECK_GE(labels[o], 0);
  }

  std::vector<std::vector<size_t>> folds;
  if (config.stratified) {
    // Group objects by class, shuffle within class, deal round-robin across
    // folds class by class with a rotating offset so small classes do not
    // pile into fold 0.
    std::map<int, std::vector<size_t>> by_class;
    for (size_t o : labeled_objects) by_class[labels[o]].push_back(o);
    folds.assign(static_cast<size_t>(config.n_folds), {});
    size_t offset = 0;
    for (auto& [cls, members] : by_class) {
      (void)cls;
      rng->Shuffle(members);
      for (size_t i = 0; i < members.size(); ++i) {
        folds[(offset + i) % folds.size()].push_back(members[i]);
      }
      offset += members.size();
    }
  } else {
    std::vector<size_t> shuffled = labeled_objects;
    rng->Shuffle(shuffled);
    folds = AssignRoundRobin(shuffled, config.n_folds);
  }

  std::vector<FoldSplit> splits(static_cast<size_t>(config.n_folds));
  for (size_t t = 0; t < splits.size(); ++t) {
    FoldSplit& split = splits[t];
    SplitObjects(folds, t, &split.train_objects, &split.test_objects);
    split.train_constraints =
        ConstraintSet::FromLabels(labels, split.train_objects);
    split.test_constraints =
        ConstraintSet::FromLabels(labels, split.test_objects);
    split.train_labels.assign(n_total, -1);
    for (size_t o : split.train_objects) split.train_labels[o] = labels[o];
  }
  return splits;
}

Result<std::vector<FoldSplit>> MakeConstraintFolds(
    const ConstraintSet& constraints, const FoldConfig& config, Rng* rng) {
  if (config.n_folds < 2) {
    return Status::InvalidArgument(
        Format("n_folds must be >= 2, got %d", config.n_folds));
  }
  // Paper §3.1.2: first extend the given constraints by transitive closure.
  CVCP_ASSIGN_OR_RETURN(ConstraintSet closed, TransitiveClosure(constraints));

  std::vector<size_t> involved = closed.InvolvedObjects();
  if (involved.size() < static_cast<size_t>(config.n_folds)) {
    return Status::InvalidArgument(
        Format("%zu constrained objects cannot fill %d folds",
               involved.size(), config.n_folds));
  }
  rng->Shuffle(involved);
  std::vector<std::vector<size_t>> folds =
      AssignRoundRobin(involved, config.n_folds);

  std::vector<FoldSplit> splits(static_cast<size_t>(config.n_folds));
  for (size_t t = 0; t < splits.size(); ++t) {
    FoldSplit& split = splits[t];
    SplitObjects(folds, t, &split.train_objects, &split.test_objects);
    // Keep only the constraints fully inside one side (this is the graph
    // cut), then close each side independently. Restriction of a consistent
    // set stays consistent, so the closures cannot fail.
    ConstraintSet train_kept = closed.RestrictedTo(split.train_objects);
    ConstraintSet test_kept = closed.RestrictedTo(split.test_objects);
    CVCP_ASSIGN_OR_RETURN(split.train_constraints,
                          TransitiveClosure(train_kept));
    CVCP_ASSIGN_OR_RETURN(split.test_constraints, TransitiveClosure(test_kept));
  }
  return splits;
}

Result<std::vector<FoldSplit>> MakeNaiveConstraintFolds(
    const ConstraintSet& constraints, const FoldConfig& config, Rng* rng) {
  if (config.n_folds < 2) {
    return Status::InvalidArgument(
        Format("n_folds must be >= 2, got %d", config.n_folds));
  }
  if (constraints.size() < static_cast<size_t>(config.n_folds)) {
    return Status::InvalidArgument(
        Format("%zu constraints cannot fill %d folds", constraints.size(),
               config.n_folds));
  }
  // Shuffle the *constraints* and deal them into folds — endpoints are not
  // partitioned, so the closure of the training side can (and does) imply
  // test constraints. For measurement only.
  std::vector<size_t> order(constraints.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(order);

  std::span<const Constraint> all = constraints.all();
  std::vector<FoldSplit> splits(static_cast<size_t>(config.n_folds));
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t fold = i % splits.size();
    const Constraint& c = all[order[i]];
    for (size_t t = 0; t < splits.size(); ++t) {
      ConstraintSet& target = (t == fold) ? splits[t].test_constraints
                                          : splits[t].train_constraints;
      CVCP_CHECK(target.Add(c.a, c.b, c.type).ok());
    }
  }
  for (FoldSplit& split : splits) {
    split.train_objects = split.train_constraints.InvolvedObjects();
    split.test_objects = split.test_constraints.InvolvedObjects();
  }
  return splits;
}

}  // namespace cvcp
