#ifndef CVCP_CONSTRAINTS_FOLDS_H_
#define CVCP_CONSTRAINTS_FOLDS_H_

/// \file
/// Sound n-fold cross-validation splits for semi-supervised clustering
/// (paper §3.1). The invariant both scenarios establish: *no constraint in
/// the test fold is derivable from the training information* — i.e. the
/// transitive closures of the two sides share no pair of objects at all
/// (objects are partitioned between the sides).
///
/// Scenario I  (labels given):      partition the labeled objects into n
///   folds; derive constraints independently inside the n-1 training folds
///   and inside the test fold.
/// Scenario II (constraints given): extend the given constraints by their
///   transitive closure, partition the *objects involved in constraints*
///   into n folds, delete every constraint with one endpoint in training
///   and one in test, and take the closure separately per side.

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// One train/test split of the available supervision.
struct FoldSplit {
  /// Objects whose supervision feeds the clustering algorithm.
  std::vector<size_t> train_objects;
  /// Objects whose derived constraints are used only for evaluation.
  std::vector<size_t> test_objects;
  /// Constraints given to the semi-supervised clusterer.
  ConstraintSet train_constraints;
  /// Constraints used to estimate the classification error.
  ConstraintSet test_constraints;
  /// Scenario I only: labels usable directly by label-based algorithms.
  /// Full dataset length; -1 everywhere except `train_objects`. Empty in
  /// Scenario II.
  std::vector<int> train_labels;
};

/// Cross-validation configuration.
struct FoldConfig {
  int n_folds = 10;
  /// Scenario I: spread each class evenly over folds. The paper uses plain
  /// random folds; stratification is provided as an option (see
  /// bench_ablation_folds).
  bool stratified = false;
};

/// Scenario I. `labeled_objects` are the supervised object ids; `labels` is
/// indexed by object id over the full dataset (size `n_total`). Errors with
/// kInvalidArgument if n_folds < 2 or there are fewer labeled objects than
/// folds.
Result<std::vector<FoldSplit>> MakeLabelFolds(
    const std::vector<size_t>& labeled_objects, const std::vector<int>& labels,
    size_t n_total, const FoldConfig& config, Rng* rng);

/// Scenario II. Errors with kInvalidArgument if n_folds < 2 or the
/// constraint set involves fewer objects than folds, and propagates
/// kInconsistentConstraints from the closure.
Result<std::vector<FoldSplit>> MakeConstraintFolds(
    const ConstraintSet& constraints, const FoldConfig& config, Rng* rng);

/// Deliberately *unsound* Scenario II splitter used by bench_ablation_leakage:
/// splits the constraint list itself into n folds (no object partitioning,
/// no graph cut), exactly the naive procedure §3.1 warns against.
Result<std::vector<FoldSplit>> MakeNaiveConstraintFolds(
    const ConstraintSet& constraints, const FoldConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CONSTRAINTS_FOLDS_H_
