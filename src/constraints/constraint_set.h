#ifndef CVCP_CONSTRAINTS_CONSTRAINT_SET_H_
#define CVCP_CONSTRAINTS_CONSTRAINT_SET_H_

/// \file
/// Instance-level pairwise constraints: must-link ("these two objects belong
/// to the same cluster") and cannot-link ("they do not"). A ConstraintSet is
/// a deduplicated, conflict-checked collection with deterministic iteration
/// order — the shared currency between the supervision oracle, the fold
/// splitter, the clustering algorithms, and the constraint-classification
/// F-measure.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cvcp {

/// Kind of a pairwise constraint.
enum class ConstraintType : uint8_t {
  kMustLink = 1,    ///< class "1" in the paper's classification view
  kCannotLink = 0,  ///< class "0"
};

/// One pairwise constraint; endpoints are normalized so that a < b.
struct Constraint {
  size_t a;
  size_t b;
  ConstraintType type;

  bool operator==(const Constraint& other) const = default;
};

/// Deduplicated set of pairwise constraints over objects {0, ..., N-1}.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Adds a constraint. Errors:
  /// - kInvalidArgument for a self-pair (a == b);
  /// - kInconsistentConstraints if the pair is already present with the
  ///   opposite type.
  /// Adding an existing constraint again is a silent no-op.
  Status Add(size_t a, size_t b, ConstraintType type);

  Status AddMustLink(size_t a, size_t b) {
    return Add(a, b, ConstraintType::kMustLink);
  }
  Status AddCannotLink(size_t a, size_t b) {
    return Add(a, b, ConstraintType::kCannotLink);
  }

  /// Adds every constraint of `other` (same conflict rules).
  Status AddAll(const ConstraintSet& other);

  /// All constraints in insertion order.
  std::span<const Constraint> all() const { return constraints_; }

  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  size_t num_must_links() const { return num_must_links_; }
  size_t num_cannot_links() const {
    return constraints_.size() - num_must_links_;
  }

  /// Type of the constraint on (a, b), if any.
  std::optional<ConstraintType> Lookup(size_t a, size_t b) const;

  /// Sorted unique object ids that appear in at least one constraint.
  std::vector<size_t> InvolvedObjects() const;

  /// Flags (indexed by object id, length n) marking involved objects.
  std::vector<bool> InvolvementMask(size_t n) const;

  /// Constraints whose *both* endpoints are in `objects`.
  ConstraintSet RestrictedTo(std::span<const size_t> objects) const;

  /// Derives all pairwise constraints among `objects` from class labels:
  /// same label => must-link, different => cannot-link. `labels` is indexed
  /// by object id; every selected object must have a label >= 0.
  static ConstraintSet FromLabels(const std::vector<int>& labels,
                                  std::span<const size_t> objects);

  bool operator==(const ConstraintSet& other) const {
    return constraints_ == other.constraints_;
  }

 private:
  static uint64_t Key(size_t a, size_t b) {
    // Normalized (a < b); object ids are far below 2^32 in this library.
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  }

  std::vector<Constraint> constraints_;
  std::unordered_map<uint64_t, ConstraintType> index_;
  size_t num_must_links_ = 0;
};

/// Human-readable "ML(3,7)" / "CL(1,4)" form, mainly for error messages.
std::string ConstraintToString(const Constraint& c);

}  // namespace cvcp

#endif  // CVCP_CONSTRAINTS_CONSTRAINT_SET_H_
