#include "constraints/oracle.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace cvcp {

namespace {

Status ValidateFraction(double fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    return Status::InvalidArgument(
        Format("fraction must be in (0, 1], got %f", fraction));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<size_t>> SampleLabeledObjects(const Dataset& data,
                                                 double fraction, Rng* rng) {
  CVCP_RETURN_IF_ERROR(ValidateFraction(fraction));
  if (!data.has_labels()) {
    return Status::FailedPrecondition("dataset has no ground-truth labels");
  }
  const size_t n = data.size();
  size_t k = static_cast<size_t>(
      std::lround(fraction * static_cast<double>(n)));
  k = std::clamp<size_t>(k, 2, n);
  std::vector<size_t> sampled = rng->SampleWithoutReplacement(n, k);
  std::sort(sampled.begin(), sampled.end());
  return sampled;
}

Result<ConstraintSet> BuildConstraintPool(const Dataset& data,
                                          double per_class_fraction,
                                          Rng* rng) {
  CVCP_RETURN_IF_ERROR(ValidateFraction(per_class_fraction));
  if (!data.has_labels()) {
    return Status::FailedPrecondition("dataset has no ground-truth labels");
  }
  std::vector<size_t> selected;
  for (int cls = 0; cls < data.NumClasses(); ++cls) {
    std::vector<size_t> members = data.ObjectsOfClass(cls);
    if (members.empty()) continue;
    size_t k = static_cast<size_t>(std::ceil(
        per_class_fraction * static_cast<double>(members.size())));
    k = std::clamp<size_t>(k, 1, members.size());
    std::vector<size_t> chosen = rng->SampleFrom(members, k);
    selected.insert(selected.end(), chosen.begin(), chosen.end());
  }
  std::sort(selected.begin(), selected.end());
  if (selected.size() < 2) {
    return Status::InvalidArgument(
        "constraint pool needs at least 2 selected objects");
  }
  return ConstraintSet::FromLabels(data.labels(), selected);
}

Result<ConstraintSet> SampleConstraints(const ConstraintSet& pool,
                                        double fraction, Rng* rng) {
  CVCP_RETURN_IF_ERROR(ValidateFraction(fraction));
  if (pool.empty()) {
    return Status::InvalidArgument("constraint pool is empty");
  }
  size_t k = static_cast<size_t>(
      std::lround(fraction * static_cast<double>(pool.size())));
  k = std::clamp<size_t>(k, 1, pool.size());
  std::vector<size_t> idx = rng->SampleWithoutReplacement(pool.size(), k);
  std::sort(idx.begin(), idx.end());
  ConstraintSet out;
  std::span<const Constraint> all = pool.all();
  for (size_t i : idx) {
    CVCP_CHECK(out.Add(all[i].a, all[i].b, all[i].type).ok());
  }
  return out;
}

}  // namespace cvcp
