#include "constraints/constraint_set.h"

#include <algorithm>

#include "common/strings.h"

namespace cvcp {

Status ConstraintSet::Add(size_t a, size_t b, ConstraintType type) {
  if (a == b) {
    return Status::InvalidArgument(
        Format("self-constraint on object %zu", a));
  }
  if (a > b) std::swap(a, b);
  const uint64_t key = Key(a, b);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second != type) {
      return Status::InconsistentConstraints(
          Format("pair (%zu, %zu) already constrained with opposite type", a,
                 b));
    }
    return Status::OK();  // duplicate, ignore
  }
  index_.emplace(key, type);
  constraints_.push_back(Constraint{a, b, type});
  if (type == ConstraintType::kMustLink) ++num_must_links_;
  return Status::OK();
}

Status ConstraintSet::AddAll(const ConstraintSet& other) {
  for (const Constraint& c : other.constraints_) {
    CVCP_RETURN_IF_ERROR(Add(c.a, c.b, c.type));
  }
  return Status::OK();
}

std::optional<ConstraintType> ConstraintSet::Lookup(size_t a, size_t b) const {
  if (a == b) return std::nullopt;
  if (a > b) std::swap(a, b);
  auto it = index_.find(Key(a, b));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> ConstraintSet::InvolvedObjects() const {
  std::vector<size_t> out;
  out.reserve(constraints_.size() * 2);
  for (const Constraint& c : constraints_) {
    out.push_back(c.a);
    out.push_back(c.b);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<bool> ConstraintSet::InvolvementMask(size_t n) const {
  std::vector<bool> mask(n, false);
  for (const Constraint& c : constraints_) {
    CVCP_CHECK_LT(c.a, n);
    CVCP_CHECK_LT(c.b, n);
    mask[c.a] = true;
    mask[c.b] = true;
  }
  return mask;
}

ConstraintSet ConstraintSet::RestrictedTo(
    std::span<const size_t> objects) const {
  std::vector<bool> keep;
  size_t max_id = 0;
  for (const Constraint& c : constraints_) {
    max_id = std::max({max_id, c.a, c.b});
  }
  keep.assign(max_id + 1, false);
  for (size_t o : objects) {
    if (o <= max_id) keep[o] = true;
  }
  ConstraintSet out;
  for (const Constraint& c : constraints_) {
    if (keep[c.a] && keep[c.b]) {
      // Cannot conflict: source set is already consistent.
      CVCP_CHECK(out.Add(c.a, c.b, c.type).ok());
    }
  }
  return out;
}

ConstraintSet ConstraintSet::FromLabels(const std::vector<int>& labels,
                                        std::span<const size_t> objects) {
  ConstraintSet out;
  for (size_t i = 0; i < objects.size(); ++i) {
    const size_t a = objects[i];
    CVCP_CHECK_LT(a, labels.size());
    CVCP_CHECK_GE(labels[a], 0);
    for (size_t j = i + 1; j < objects.size(); ++j) {
      const size_t b = objects[j];
      const ConstraintType type = labels[a] == labels[b]
                                      ? ConstraintType::kMustLink
                                      : ConstraintType::kCannotLink;
      CVCP_CHECK(out.Add(a, b, type).ok());
    }
  }
  return out;
}

std::string ConstraintToString(const Constraint& c) {
  return Format("%s(%zu,%zu)",
                c.type == ConstraintType::kMustLink ? "ML" : "CL", c.a, c.b);
}

}  // namespace cvcp
