#include "constraints/transitive_closure.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "common/union_find.h"

namespace cvcp {

Result<ConstraintComponents> BuildConstraintComponents(
    const ConstraintSet& constraints) {
  ConstraintComponents out;
  out.involved_objects = constraints.InvolvedObjects();
  const size_t m = out.involved_objects.size();

  // Dense reindexing of the involved objects.
  std::unordered_map<size_t, size_t> dense;
  dense.reserve(m);
  for (size_t i = 0; i < m; ++i) dense[out.involved_objects[i]] = i;

  UnionFind uf(m);
  for (const Constraint& c : constraints.all()) {
    if (c.type == ConstraintType::kMustLink) {
      uf.Union(dense[c.a], dense[c.b]);
    }
  }

  std::vector<size_t> comp_ids = uf.ComponentIds();
  out.component_of.resize(m);
  out.components.assign(uf.NumComponents(), {});
  for (size_t i = 0; i < m; ++i) {
    out.component_of[i] = comp_ids[i];
    out.components[comp_ids[i]].push_back(out.involved_objects[i]);
  }

  std::unordered_set<uint64_t> seen_edges;
  for (const Constraint& c : constraints.all()) {
    if (c.type != ConstraintType::kCannotLink) continue;
    size_t ca = comp_ids[dense[c.a]];
    size_t cb = comp_ids[dense[c.b]];
    if (ca == cb) {
      return Status::InconsistentConstraints(Format(
          "cannot-link (%zu,%zu) inside a must-link component", c.a, c.b));
    }
    if (ca > cb) std::swap(ca, cb);
    const uint64_t key = (static_cast<uint64_t>(ca) << 32) | cb;
    if (seen_edges.insert(key).second) {
      out.cannot_edges.emplace_back(ca, cb);
    }
  }
  return out;
}

Result<ConstraintSet> TransitiveClosure(const ConstraintSet& constraints) {
  CVCP_ASSIGN_OR_RETURN(ConstraintComponents comps,
                        BuildConstraintComponents(constraints));
  ConstraintSet closure;
  // All intra-component pairs become must-links.
  for (const auto& members : comps.components) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        CVCP_RETURN_IF_ERROR(closure.AddMustLink(members[i], members[j]));
      }
    }
  }
  // All cross pairs of cannot-linked components become cannot-links.
  for (const auto& [ca, cb] : comps.cannot_edges) {
    for (size_t a : comps.components[ca]) {
      for (size_t b : comps.components[cb]) {
        CVCP_RETURN_IF_ERROR(closure.AddCannotLink(a, b));
      }
    }
  }
  return closure;
}

bool IsConsistent(const ConstraintSet& constraints) {
  return BuildConstraintComponents(constraints).ok();
}

}  // namespace cvcp
