#ifndef CVCP_CONSTRAINTS_TRANSITIVE_CLOSURE_H_
#define CVCP_CONSTRAINTS_TRANSITIVE_CLOSURE_H_

/// \file
/// Transitive closure of a mixed must-link/cannot-link constraint graph —
/// the mechanism behind the paper's Fig. 2 and the reason naive
/// cross-validation leaks test information into training folds:
///
///   ML(A,B) & ML(B,C)  =>  ML(A,C)
///   ML(A,B) & CL(B,C)  =>  CL(A,C)
///
/// i.e. must-links form equivalence classes (components) and every
/// cannot-link between two components induces cannot-links between all
/// cross pairs of those components.

#include <vector>

#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// Connected-component view of the must-link subgraph, with the induced
/// component-level cannot-link edges.
struct ConstraintComponents {
  /// Members of each must-link component (only objects involved in at
  /// least one constraint; singletons for objects appearing only in
  /// cannot-links). Deterministic order.
  std::vector<std::vector<size_t>> components;
  /// Component index of each involved object, keyed by object id via
  /// `object_component` lookups below.
  std::vector<size_t> involved_objects;          ///< sorted unique ids
  std::vector<size_t> component_of;              ///< parallel to involved_objects
  /// Component-level cannot-link edges (pairs of component indices, i < j,
  /// deduplicated).
  std::vector<std::pair<size_t, size_t>> cannot_edges;
};

/// Builds the component view. Errors with kInconsistentConstraints if a
/// cannot-link connects two objects of the same must-link component.
Result<ConstraintComponents> BuildConstraintComponents(
    const ConstraintSet& constraints);

/// Full transitive closure: expands every must-link component into all intra
/// pairs and every component-level cannot-link into all cross pairs.
/// The result contains the input as a subset. Errors if inconsistent.
Result<ConstraintSet> TransitiveClosure(const ConstraintSet& constraints);

/// True if the constraint set is internally consistent (closure exists).
bool IsConsistent(const ConstraintSet& constraints);

}  // namespace cvcp

#endif  // CVCP_CONSTRAINTS_TRANSITIVE_CLOSURE_H_
