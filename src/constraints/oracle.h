#ifndef CVCP_CONSTRAINTS_ORACLE_H_
#define CVCP_CONSTRAINTS_ORACLE_H_

/// \file
/// Supervision oracle: samples the partial information the user "provides"
/// in the paper's experiments from a dataset's ground-truth labels.
///
///   Label scenario:      x% of all objects, uniformly at random (§4.1).
///   Constraint scenario: a pool built from all pairwise constraints among
///                        10% of the objects of *each* class, from which a
///                        given fraction is then drawn per trial (§4.1).

#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// Samples round(fraction * n) objects uniformly without replacement
/// (at least 2). Errors if the dataset is unlabeled or the fraction is
/// outside (0, 1].
Result<std::vector<size_t>> SampleLabeledObjects(const Dataset& data,
                                                 double fraction, Rng* rng);

/// Builds the paper's candidate constraint pool: selects
/// ceil(per_class_fraction * |class|) objects from each class (at least 1)
/// and derives all pairwise constraints among all selected objects.
Result<ConstraintSet> BuildConstraintPool(const Dataset& data,
                                          double per_class_fraction, Rng* rng);

/// Draws round(fraction * |pool|) constraints (at least 1) uniformly without
/// replacement from the pool.
Result<ConstraintSet> SampleConstraints(const ConstraintSet& pool,
                                        double fraction, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CONSTRAINTS_ORACLE_H_
