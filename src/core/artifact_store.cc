#include "core/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/block_format.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "common/strings.h"

namespace cvcp {

namespace {

namespace fs = std::filesystem;

/// Filesystem-safe tag for a metric, part of every artifact filename.
const char* MetricTag(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return "euc";
    case Metric::kSquaredEuclidean:
      return "sqeuc";
    case Metric::kManhattan:
      return "man";
    case Metric::kCosine:
      return "cos";
  }
  return "unknown";
}

/// "-f32" on every float32-family filename keeps the two storage modes in
/// disjoint key spaces within one directory; f64 names are unchanged from
/// earlier versions.
const char* StorageSuffix(DistanceStorage storage) {
  return storage == DistanceStorage::kF32 ? "-f32" : "";
}

std::string DistanceFileName(uint64_t hash, Metric metric,
                             DistanceStorage storage) {
  return Format("%016llx-%s-dist%s.cvcp",
                static_cast<unsigned long long>(hash), MetricTag(metric),
                StorageSuffix(storage));
}

std::string OpticsFileName(uint64_t hash, Metric metric, int min_pts,
                           DistanceStorage storage) {
  return Format("%016llx-%s-mp%03d-optics%s.cvcp",
                static_cast<unsigned long long>(hash), MetricTag(metric),
                min_pts, StorageSuffix(storage));
}

/// Trailing record of an f32-derived optics block; f64 blocks have no
/// trailing record at all, so neither decodes as the other.
constexpr uint32_t kOpticsF32Marker = 1;

/// Tags come from callers (bench names); squash anything that is not
/// filename-safe so a tag can never escape the store directory.
std::string SanitizeTag(const std::string& tag) {
  std::string out = tag;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!safe) c = '_';
  }
  return out;
}

std::string TimingsFileName(uint64_t hash, const std::string& tag) {
  return Format("%016llx-%s-timings.cvcp",
                static_cast<unsigned long long>(hash),
                SanitizeTag(tag).c_str());
}

/// Ints ride in u64 records with sign extension, so negative values (not
/// expected, but legal in CvCellTiming) round-trip exactly.
uint64_t EncodeInt(int v) {
  return static_cast<uint64_t>(static_cast<int64_t>(v));
}

int DecodeInt(uint64_t v) {
  return static_cast<int>(static_cast<int64_t>(v));
}

/// Fills `storage` + `decoded_key` of a listed file from its validated
/// block records, and cross-checks the filename's "-f32" suffix against
/// what the payload actually is — a renamed file surfaces as invalid here
/// (`store_inspect verify` fails on it). Record-level read failures mean
/// encoder/decoder schema drift and also mark the file invalid.
void DescribeArtifact(BlockReader* reader, ArtifactFileInfo* info) {
  const bool name_f32 = info->filename.find("-f32.cvcp") != std::string::npos;
  auto fail = [&](std::string why) {
    info->valid = false;
    info->detail = std::move(why);
  };
  switch (static_cast<ArtifactKind>(info->kind)) {
    case ArtifactKind::kDistanceMatrix:
    case ArtifactKind::kDistanceMatrixF32: {
      const bool f32 = static_cast<ArtifactKind>(info->kind) ==
                       ArtifactKind::kDistanceMatrixF32;
      Result<uint64_t> hash = reader->ReadU64();
      Result<uint32_t> metric = reader->ReadU32();
      Result<uint64_t> n = reader->ReadU64();
      if (!hash.ok() || !metric.ok() || !n.ok()) {
        return fail("undecodable distance key records");
      }
      info->storage = f32 ? "f32" : "f64";
      info->decoded_key =
          Format("hash=%016llx metric=%s n=%llu",
                 static_cast<unsigned long long>(*hash),
                 MetricTag(static_cast<Metric>(*metric)),
                 static_cast<unsigned long long>(*n));
      if (f32 != name_f32) {
        fail("filename storage suffix disagrees with block kind");
      }
      break;
    }
    case ArtifactKind::kOpticsModel: {
      Result<uint64_t> hash = reader->ReadU64();
      Result<uint32_t> metric = reader->ReadU32();
      Result<uint32_t> min_pts = reader->ReadU32();
      Result<std::vector<size_t>> order = reader->ReadSizes();
      Result<std::vector<double>> reach = reader->ReadDoubles();
      Result<std::vector<double>> core = reader->ReadDoubles();
      if (!hash.ok() || !metric.ok() || !min_pts.ok() || !order.ok() ||
          !reach.ok() || !core.ok()) {
        return fail("undecodable optics records");
      }
      bool f32 = false;
      if (reader->remaining() > 0) {
        Result<uint32_t> marker = reader->ReadU32();
        if (!marker.ok() || *marker != kOpticsF32Marker) {
          return fail("unrecognized optics trailing record");
        }
        f32 = true;
      }
      info->storage = f32 ? "f32" : "f64";
      info->decoded_key = Format(
          "hash=%016llx metric=%s mp=%03u n=%zu",
          static_cast<unsigned long long>(*hash),
          MetricTag(static_cast<Metric>(*metric)), *min_pts, order->size());
      if (f32 != name_f32) {
        fail("filename storage suffix disagrees with payload storage marker");
      }
      break;
    }
    case ArtifactKind::kCellTimings: {
      Result<uint64_t> hash = reader->ReadU64();
      Result<std::string> tag = reader->ReadString();
      if (!hash.ok() || !tag.ok()) {
        return fail("undecodable timings key records");
      }
      info->decoded_key =
          Format("hash=%016llx tag=%s",
                 static_cast<unsigned long long>(*hash), tag->c_str());
      break;
    }
    default:
      break;
  }
}

}  // namespace

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kDistanceMatrix:
      return "distances";
    case ArtifactKind::kOpticsModel:
      return "optics";
    case ArtifactKind::kCellTimings:
      return "timings";
    case ArtifactKind::kDistanceMatrixF32:
      return "distances-f32";
  }
  return "unknown";
}

uint64_t HashMatrixContent(const Matrix& points) {
  const uint64_t rows = points.rows();
  const uint64_t cols = points.cols();
  uint64_t h = Hash64(&rows, sizeof(rows));
  h = Hash64(&cols, sizeof(cols), h);
  const std::vector<double>& data = points.data();
  return Hash64(data.data(), data.size() * sizeof(double), h);
}

std::string EncodeDistanceMatrix(uint64_t dataset_hash, Metric metric,
                                 const DistanceMatrix& matrix) {
  BlockBuilder builder(static_cast<uint32_t>(ArtifactKind::kDistanceMatrix));
  builder.AppendU64(dataset_hash);
  builder.AppendU32(static_cast<uint32_t>(metric));
  builder.AppendU64(matrix.n());
  builder.AppendDoubles(matrix.condensed());
  return builder.Finish();
}

Result<DistanceMatrix> DecodeDistanceMatrix(std::string bytes,
                                            uint64_t dataset_hash,
                                            Metric metric) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes),
                        static_cast<uint32_t>(ArtifactKind::kDistanceMatrix)));
  CVCP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(uint32_t stored_metric, reader.ReadU32());
  if (stored_hash != dataset_hash ||
      stored_metric != static_cast<uint32_t>(metric)) {
    return Status::Corruption(
        "distance block is keyed to a different (dataset, metric)");
  }
  CVCP_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(std::vector<double> condensed, reader.ReadDoubles());
  const uint64_t expected = n < 2 ? 0 : n * (n - 1) / 2;
  if (condensed.size() != expected) {
    return Status::Corruption(
        Format("distance block for n=%llu has %zu entries, expected %llu",
               static_cast<unsigned long long>(n), condensed.size(),
               static_cast<unsigned long long>(expected)));
  }
  return DistanceMatrix::FromCondensed(static_cast<size_t>(n),
                                       std::move(condensed));
}

std::string EncodeDistanceMatrix32(uint64_t dataset_hash, Metric metric,
                                   const DistanceMatrix& matrix) {
  BlockBuilder builder(
      static_cast<uint32_t>(ArtifactKind::kDistanceMatrixF32));
  builder.AppendU64(dataset_hash);
  builder.AppendU32(static_cast<uint32_t>(metric));
  builder.AppendU64(matrix.n());
  builder.AppendFloats(matrix.condensed32());
  return builder.Finish();
}

Result<DistanceMatrix> DecodeDistanceMatrix32(std::string bytes,
                                              uint64_t dataset_hash,
                                              Metric metric) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(
          std::move(bytes),
          static_cast<uint32_t>(ArtifactKind::kDistanceMatrixF32)));
  CVCP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(uint32_t stored_metric, reader.ReadU32());
  if (stored_hash != dataset_hash ||
      stored_metric != static_cast<uint32_t>(metric)) {
    return Status::Corruption(
        "f32 distance block is keyed to a different (dataset, metric)");
  }
  CVCP_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(std::vector<float> condensed, reader.ReadFloats());
  const uint64_t expected = n < 2 ? 0 : n * (n - 1) / 2;
  if (condensed.size() != expected) {
    return Status::Corruption(
        Format("f32 distance block for n=%llu has %zu entries, expected %llu",
               static_cast<unsigned long long>(n), condensed.size(),
               static_cast<unsigned long long>(expected)));
  }
  return DistanceMatrix::FromCondensed32(static_cast<size_t>(n),
                                         std::move(condensed));
}

std::string EncodeOpticsModel(uint64_t dataset_hash, Metric metric,
                              int min_pts, const OpticsResult& optics,
                              DistanceStorage storage) {
  BlockBuilder builder(static_cast<uint32_t>(ArtifactKind::kOpticsModel));
  builder.AppendU64(dataset_hash);
  builder.AppendU32(static_cast<uint32_t>(metric));
  builder.AppendU32(static_cast<uint32_t>(min_pts));
  builder.AppendSizes(optics.order);
  builder.AppendDoubles(optics.reachability);
  builder.AppendDoubles(optics.core_distance);
  if (storage == DistanceStorage::kF32) builder.AppendU32(kOpticsF32Marker);
  return builder.Finish();
}

Result<OpticsResult> DecodeOpticsModel(std::string bytes,
                                       uint64_t dataset_hash, Metric metric,
                                       int min_pts, DistanceStorage storage) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes),
                        static_cast<uint32_t>(ArtifactKind::kOpticsModel)));
  CVCP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(uint32_t stored_metric, reader.ReadU32());
  CVCP_ASSIGN_OR_RETURN(uint32_t stored_min_pts, reader.ReadU32());
  if (stored_hash != dataset_hash ||
      stored_metric != static_cast<uint32_t>(metric) ||
      stored_min_pts != static_cast<uint32_t>(min_pts)) {
    return Status::Corruption(
        "optics block is keyed to a different (dataset, metric, MinPts)");
  }
  OpticsResult optics;
  CVCP_ASSIGN_OR_RETURN(optics.order, reader.ReadSizes());
  CVCP_ASSIGN_OR_RETURN(optics.reachability, reader.ReadDoubles());
  CVCP_ASSIGN_OR_RETURN(optics.core_distance, reader.ReadDoubles());
  if (optics.reachability.size() != optics.order.size() ||
      optics.core_distance.size() != optics.order.size()) {
    return Status::Corruption(
        Format("optics block arrays disagree on n: order %zu, "
               "reachability %zu, core %zu",
               optics.order.size(), optics.reachability.size(),
               optics.core_distance.size()));
  }
  if (storage == DistanceStorage::kF32) {
    CVCP_ASSIGN_OR_RETURN(uint32_t marker, reader.ReadU32());
    if (marker != kOpticsF32Marker) {
      return Status::Corruption(
          Format("optics block trailing marker is %u, expected the f32 "
                 "marker %u",
                 marker, kOpticsF32Marker));
    }
  } else if (reader.remaining() != 0) {
    return Status::Corruption(
        "f64 optics key resolved to a block with trailing records "
        "(f32-derived model)");
  }
  return optics;
}

std::string EncodeCellTimings(uint64_t key_hash, const std::string& tag,
                              const std::vector<CvCellTiming>& timings) {
  BlockBuilder builder(static_cast<uint32_t>(ArtifactKind::kCellTimings));
  builder.AppendU64(key_hash);
  builder.AppendString(tag);
  std::vector<size_t> params(timings.size());
  std::vector<size_t> folds(timings.size());
  std::vector<double> wall(timings.size());
  for (size_t i = 0; i < timings.size(); ++i) {
    params[i] = EncodeInt(timings[i].param);
    folds[i] = EncodeInt(timings[i].fold);
    wall[i] = timings[i].wall_ms;
  }
  builder.AppendSizes(params);
  builder.AppendSizes(folds);
  builder.AppendDoubles(wall);
  return builder.Finish();
}

Result<std::vector<CvCellTiming>> DecodeCellTimings(std::string bytes,
                                                    uint64_t key_hash,
                                                    const std::string& tag) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes),
                        static_cast<uint32_t>(ArtifactKind::kCellTimings)));
  CVCP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.ReadU64());
  CVCP_ASSIGN_OR_RETURN(std::string stored_tag, reader.ReadString());
  if (stored_hash != key_hash || stored_tag != tag) {
    return Status::Corruption(
        "timings block is keyed to a different (hash, tag)");
  }
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> params, reader.ReadSizes());
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> folds, reader.ReadSizes());
  CVCP_ASSIGN_OR_RETURN(std::vector<double> wall, reader.ReadDoubles());
  if (folds.size() != params.size() || wall.size() != params.size()) {
    return Status::Corruption(
        Format("timings block arrays disagree: %zu params, %zu folds, "
               "%zu walls",
               params.size(), folds.size(), wall.size()));
  }
  std::vector<CvCellTiming> out(params.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].param = DecodeInt(params[i]);
    out[i].fold = DecodeInt(folds[i]);
    out[i].wall_ms = wall[i];
  }
  return out;
}

ArtifactStore::ArtifactStore(std::string directory)
    : directory_(std::move(directory)) {}

Status ArtifactStore::ClassifyMiss(Status status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      disk_misses_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kFailedPrecondition:
      version_misses_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      corrupt_misses_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return status;
}

Result<std::string> ArtifactStore::ReadFile(const std::string& filename) {
  const fs::path path = fs::path(directory_) / filename;
  Result<std::string> bytes = ReadFileToString(path.string());
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return Status::NotFound(Format("no artifact %s", filename.c_str()));
    }
    return bytes.status();
  }
  bytes_read_.fetch_add(bytes->size(), std::memory_order_relaxed);
  return bytes;
}

Status ArtifactStore::WriteFileAtomic(const std::string& filename,
                                      const std::string& bytes) {
  const uint64_t seq = temp_seq_.fetch_add(1, std::memory_order_relaxed);
  const Status written =
      cvcp::WriteFileAtomic(directory_, filename, bytes, seq);
  if (!written.ok()) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    return written;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return Status::OK();
}

Result<DistanceMatrix> ArtifactStore::LoadDistances(uint64_t dataset_hash,
                                                    Metric metric,
                                                    DistanceStorage storage) {
  Result<std::string> bytes =
      ReadFile(DistanceFileName(dataset_hash, metric, storage));
  if (!bytes.ok()) return ClassifyMiss(bytes.status());
  Result<DistanceMatrix> decoded =
      storage == DistanceStorage::kF32
          ? DecodeDistanceMatrix32(std::move(bytes).value(), dataset_hash,
                                   metric)
          : DecodeDistanceMatrix(std::move(bytes).value(), dataset_hash,
                                 metric);
  if (!decoded.ok()) return ClassifyMiss(decoded.status());
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

Status ArtifactStore::SaveDistances(uint64_t dataset_hash, Metric metric,
                                    const DistanceMatrix& matrix) {
  // The matrix's own storage mode picks the artifact family; encoder and
  // filename always agree.
  if (matrix.storage() == DistanceStorage::kF32) {
    return WriteFileAtomic(
        DistanceFileName(dataset_hash, metric, DistanceStorage::kF32),
        EncodeDistanceMatrix32(dataset_hash, metric, matrix));
  }
  return WriteFileAtomic(
      DistanceFileName(dataset_hash, metric, DistanceStorage::kF64),
      EncodeDistanceMatrix(dataset_hash, metric, matrix));
}

Result<OpticsResult> ArtifactStore::LoadOpticsModel(uint64_t dataset_hash,
                                                    Metric metric, int min_pts,
                                                    DistanceStorage storage) {
  Result<std::string> bytes =
      ReadFile(OpticsFileName(dataset_hash, metric, min_pts, storage));
  if (!bytes.ok()) return ClassifyMiss(bytes.status());
  Result<OpticsResult> decoded = DecodeOpticsModel(
      std::move(bytes).value(), dataset_hash, metric, min_pts, storage);
  if (!decoded.ok()) return ClassifyMiss(decoded.status());
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

Status ArtifactStore::SaveOpticsModel(uint64_t dataset_hash, Metric metric,
                                      int min_pts, const OpticsResult& optics,
                                      DistanceStorage storage) {
  return WriteFileAtomic(
      OpticsFileName(dataset_hash, metric, min_pts, storage),
      EncodeOpticsModel(dataset_hash, metric, min_pts, optics, storage));
}

Result<std::vector<CvCellTiming>> ArtifactStore::LoadCellTimings(
    uint64_t key_hash, const std::string& tag) {
  Result<std::string> bytes = ReadFile(TimingsFileName(key_hash, tag));
  if (!bytes.ok()) return ClassifyMiss(bytes.status());
  Result<std::vector<CvCellTiming>> decoded =
      DecodeCellTimings(std::move(bytes).value(), key_hash, tag);
  if (!decoded.ok()) return ClassifyMiss(decoded.status());
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

Status ArtifactStore::SaveCellTimings(
    uint64_t key_hash, const std::string& tag,
    const std::vector<CvCellTiming>& timings) {
  return WriteFileAtomic(TimingsFileName(key_hash, tag),
                         EncodeCellTimings(key_hash, tag, timings));
}

Result<std::vector<ArtifactFileInfo>> ArtifactStore::List() const {
  std::vector<ArtifactFileInfo> out;
  std::error_code ec;
  if (!fs::exists(directory_, ec)) return out;  // lazily-born store: empty
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".cvcp") continue;
    ArtifactFileInfo info;
    info.filename = name;
    info.bytes = entry.file_size();

    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    Result<uint32_t> kind = PeekBlockKind(bytes);
    if (kind.ok()) {
      info.kind = *kind;
      Result<BlockReader> reader = BlockReader::Open(std::move(bytes), *kind);
      info.valid = reader.ok();
      if (!reader.ok()) {
        info.detail = reader.status().ToString();
      } else {
        DescribeArtifact(&*reader, &info);
      }
    } else {
      info.detail = kind.status().ToString();
    }
    out.push_back(std::move(info));
  }
  if (ec) {
    return Status::Internal(Format("cannot list %s: %s", directory_.c_str(),
                                   ec.message().c_str()));
  }
  std::sort(out.begin(), out.end(),
            [](const ArtifactFileInfo& a, const ArtifactFileInfo& b) {
              return a.filename < b.filename;
            });
  return out;
}

Result<size_t> ArtifactStore::Purge() {
  std::error_code ec;
  if (!fs::exists(directory_, ec)) return size_t{0};
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool artifact =
        name.size() >= 5 && name.substr(name.size() - 5) == ".cvcp";
    const bool leftover_temp = name.find(".tmp.") != std::string::npos;
    if (artifact || leftover_temp) doomed.push_back(entry.path());
  }
  if (ec) {
    return Status::Internal(Format("cannot list %s: %s", directory_.c_str(),
                                   ec.message().c_str()));
  }
  size_t removed = 0;
  for (const fs::path& path : doomed) {
    if (fs::remove(path, ec)) ++removed;
  }
  return removed;
}

Result<uint64_t> ArtifactStore::SweepOrphanTemps() {
  CVCP_ASSIGN_OR_RETURN(uint64_t removed, RemoveOrphanTempFiles(directory_));
  temps_swept_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  Stats out;
  out.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  out.disk_misses = disk_misses_.load(std::memory_order_relaxed);
  out.corrupt_misses = corrupt_misses_.load(std::memory_order_relaxed);
  out.version_misses = version_misses_.load(std::memory_order_relaxed);
  out.writes = writes_.load(std::memory_order_relaxed);
  out.write_errors = write_errors_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.temps_swept = temps_swept_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cvcp
