#include "core/job.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "constraints/oracle.h"
#include "core/clusterer.h"
#include "core/dataset_cache.h"

namespace cvcp {

namespace {

/// ints travel as their two's-complement bit pattern widened to u64 (the
/// AppendSizes record type), so negative values — the -1 noise id, or a
/// negative grid parameter — round-trip exactly.
uint64_t IntToU64(int v) {
  return static_cast<uint64_t>(static_cast<int64_t>(v));
}

Result<int> IntFromU64(uint64_t raw) {
  const int64_t wide = static_cast<int64_t>(raw);
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return Status::Corruption(Format("int record out of range: %lld",
                                     static_cast<long long>(wide)));
  }
  return static_cast<int>(wide);
}

bool FractionValid(double f) { return f > 0.0 && f <= 1.0; }

}  // namespace

Status ValidateJobSpec(const JobSpec& spec) {
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("job spec names no dataset");
  }
  Result<std::unique_ptr<SemiSupervisedClusterer>> clusterer =
      MakeClusterer(spec.clusterer);
  CVCP_RETURN_IF_ERROR(clusterer.status());
  if (spec.param_grid.empty()) {
    return Status::InvalidArgument("job spec has an empty parameter grid");
  }
  if (spec.n_folds < 2) {
    return Status::InvalidArgument(
        Format("n_folds must be >= 2, got %d", spec.n_folds));
  }
  if (spec.scenario == SupervisionKind::kLabels) {
    if (!FractionValid(spec.label_fraction)) {
      return Status::InvalidArgument(
          Format("label_fraction %g outside (0, 1]", spec.label_fraction));
    }
  } else {
    if (!FractionValid(spec.pool_fraction) ||
        !FractionValid(spec.constraint_fraction)) {
      return Status::InvalidArgument(
          Format("constraint oracle fractions (%g, %g) outside (0, 1]",
                 spec.pool_fraction, spec.constraint_fraction));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<SemiSupervisedClusterer>> MakeClusterer(
    const std::string& name) {
  std::unique_ptr<SemiSupervisedClusterer> made;
  if (name == "fosc") {
    made = std::make_unique<FoscOpticsDendClusterer>();
  } else if (name == "mpck") {
    made = std::make_unique<MpckMeansClusterer>();
  } else if (name == "copk") {
    made = std::make_unique<CopKMeansClusterer>();
  } else if (name == "kmeans") {
    made = std::make_unique<KMeansClusterer>();
  } else {
    return Status::InvalidArgument(Format(
        "unknown clusterer \"%s\" (want fosc|mpck|copk|kmeans)",
        name.c_str()));
  }
  return made;
}

Result<Supervision> BuildJobSupervision(const Dataset& data,
                                        const JobSpec& spec) {
  Rng rng(spec.supervision_seed);
  if (spec.scenario == SupervisionKind::kLabels) {
    CVCP_ASSIGN_OR_RETURN(
        std::vector<size_t> labeled,
        SampleLabeledObjects(data, spec.label_fraction, &rng));
    return Supervision::FromLabels(data, labeled);
  }
  CVCP_ASSIGN_OR_RETURN(ConstraintSet pool,
                        BuildConstraintPool(data, spec.pool_fraction, &rng));
  CVCP_ASSIGN_OR_RETURN(ConstraintSet sampled,
                        SampleConstraints(pool, spec.constraint_fraction, &rng));
  return Supervision::FromConstraints(std::move(sampled));
}

Result<CvcpReport> RunJob(const Dataset& data, const JobSpec& spec,
                          const JobContext& context) {
  // Fail before any work when the job was cancelled (or timed out) while
  // queued — a popped-but-overdue job must not even build supervision.
  CVCP_RETURN_IF_ERROR(context.exec.cancel.Check());
  CVCP_RETURN_IF_ERROR(ValidateJobSpec(spec));
  CVCP_ASSIGN_OR_RETURN(std::unique_ptr<SemiSupervisedClusterer> clusterer,
                        MakeClusterer(spec.clusterer));
  CVCP_ASSIGN_OR_RETURN(Supervision supervision,
                        BuildJobSupervision(data, spec));
  CvcpConfig config;
  config.cv.n_folds = spec.n_folds;
  config.cv.stratified = spec.stratified;
  config.cv.exec = context.exec;
  config.param_grid = spec.param_grid;
  config.collect_timings = false;  // reports must stay byte-stable
  Rng rng(spec.cvcp_seed);
  return RunCvcp(data, supervision, *clusterer, config, &rng, context.cache);
}

void AppendJobSpecRecords(const JobSpec& spec, BlockBuilder* builder) {
  builder->AppendString(spec.dataset);
  builder->AppendU64(spec.dataset_seed);
  builder->AppendU64(spec.dataset_index);
  builder->AppendString(spec.clusterer);
  builder->AppendU32(static_cast<uint32_t>(spec.scenario));
  const double fractions[] = {spec.label_fraction, spec.pool_fraction,
                              spec.constraint_fraction};
  builder->AppendDoubles(fractions);
  builder->AppendU64(spec.supervision_seed);
  std::vector<size_t> grid;
  grid.reserve(spec.param_grid.size());
  for (int p : spec.param_grid) grid.push_back(IntToU64(p));
  builder->AppendSizes(grid);
  builder->AppendU32(static_cast<uint32_t>(spec.n_folds));
  builder->AppendU32(spec.stratified ? 1 : 0);
  builder->AppendU64(spec.cvcp_seed);
  // Optional trailing record, omitted when zero: a deadline-free spec
  // encodes byte-identically to the pre-deadline format, so records (and
  // spec hashes) persisted by earlier releases stay valid on upgrade.
  if (spec.deadline_ms != 0) builder->AppendU64(spec.deadline_ms);
}

Result<JobSpec> ReadJobSpecRecords(BlockReader* reader) {
  JobSpec spec;
  CVCP_ASSIGN_OR_RETURN(spec.dataset, reader->ReadString());
  CVCP_ASSIGN_OR_RETURN(spec.dataset_seed, reader->ReadU64());
  CVCP_ASSIGN_OR_RETURN(spec.dataset_index, reader->ReadU64());
  CVCP_ASSIGN_OR_RETURN(spec.clusterer, reader->ReadString());
  CVCP_ASSIGN_OR_RETURN(uint32_t scenario, reader->ReadU32());
  if (scenario > 1) {
    return Status::Corruption(Format("bad scenario %u", scenario));
  }
  spec.scenario = static_cast<SupervisionKind>(scenario);
  CVCP_ASSIGN_OR_RETURN(std::vector<double> fractions, reader->ReadDoubles());
  if (fractions.size() != 3) {
    return Status::Corruption("bad oracle-fraction record");
  }
  spec.label_fraction = fractions[0];
  spec.pool_fraction = fractions[1];
  spec.constraint_fraction = fractions[2];
  CVCP_ASSIGN_OR_RETURN(spec.supervision_seed, reader->ReadU64());
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> grid, reader->ReadSizes());
  spec.param_grid.clear();
  spec.param_grid.reserve(grid.size());
  for (size_t raw : grid) {
    CVCP_ASSIGN_OR_RETURN(int param, IntFromU64(raw));
    spec.param_grid.push_back(param);
  }
  CVCP_ASSIGN_OR_RETURN(uint32_t n_folds, reader->ReadU32());
  if (n_folds > static_cast<uint32_t>(std::numeric_limits<int>::max())) {
    return Status::Corruption(Format("bad n_folds %u", n_folds));
  }
  spec.n_folds = static_cast<int>(n_folds);
  CVCP_ASSIGN_OR_RETURN(uint32_t stratified, reader->ReadU32());
  spec.stratified = stratified != 0;
  CVCP_ASSIGN_OR_RETURN(spec.cvcp_seed, reader->ReadU64());
  // The deadline record is optional (absent in pre-deadline records and
  // in deadline-free encodings). Spec records are always the last in
  // their block, so a present next record can only be the deadline.
  spec.deadline_ms = 0;
  if (reader->remaining() > 0) {
    CVCP_ASSIGN_OR_RETURN(spec.deadline_ms, reader->ReadU64());
  }
  return spec;
}

std::string EncodeJobSpec(const JobSpec& spec) {
  BlockBuilder builder(kJobSpecBlockKind);
  AppendJobSpecRecords(spec, &builder);
  return builder.Finish();
}

Result<JobSpec> DecodeJobSpec(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes), kJobSpecBlockKind));
  CVCP_ASSIGN_OR_RETURN(JobSpec spec, ReadJobSpecRecords(&reader));
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing records after job spec");
  }
  return spec;
}

uint64_t JobSpecHash(const JobSpec& spec) {
  // The deadline is execution metadata, not job identity: resubmitting
  // the same logical job with a different (or no) deadline must land in
  // the same version chain and re-hash-validate against stored records.
  // The canonical encoding omits the zeroed deadline record entirely
  // (see AppendJobSpecRecords), so it is bitwise the pre-deadline
  // encoding and hashes of legacy records keep verifying.
  JobSpec canonical = spec;
  canonical.deadline_ms = 0;
  const std::string bytes = EncodeJobSpec(canonical);
  return Hash64(bytes.data(), bytes.size());
}

void AppendCvcpReportRecords(const CvcpReport& report, BlockBuilder* builder) {
  std::vector<size_t> params;
  std::vector<double> scores;
  std::vector<size_t> valid_folds;
  params.reserve(report.scores.size());
  scores.reserve(report.scores.size());
  valid_folds.reserve(report.scores.size());
  for (const CvcpParamScore& score : report.scores) {
    params.push_back(IntToU64(score.param));
    scores.push_back(score.score);
    valid_folds.push_back(IntToU64(score.valid_folds));
  }
  builder->AppendSizes(params);
  builder->AppendDoubles(scores);
  builder->AppendSizes(valid_folds);
  builder->AppendU64(IntToU64(report.best_param));
  const double best[] = {report.best_score};
  builder->AppendDoubles(best);
  std::vector<size_t> assignment;
  assignment.reserve(report.final_clustering.size());
  for (int id : report.final_clustering.assignment()) {
    assignment.push_back(IntToU64(id));
  }
  builder->AppendSizes(assignment);
}

Result<CvcpReport> ReadCvcpReportRecords(BlockReader* reader) {
  CvcpReport report;
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> params, reader->ReadSizes());
  CVCP_ASSIGN_OR_RETURN(std::vector<double> scores, reader->ReadDoubles());
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> valid_folds, reader->ReadSizes());
  if (params.size() != scores.size() || params.size() != valid_folds.size()) {
    return Status::Corruption("report score arrays disagree in length");
  }
  report.scores.resize(params.size());
  for (size_t g = 0; g < params.size(); ++g) {
    CVCP_ASSIGN_OR_RETURN(report.scores[g].param, IntFromU64(params[g]));
    report.scores[g].score = scores[g];
    CVCP_ASSIGN_OR_RETURN(report.scores[g].valid_folds,
                          IntFromU64(valid_folds[g]));
  }
  CVCP_ASSIGN_OR_RETURN(uint64_t best_param, reader->ReadU64());
  CVCP_ASSIGN_OR_RETURN(report.best_param, IntFromU64(best_param));
  CVCP_ASSIGN_OR_RETURN(std::vector<double> best, reader->ReadDoubles());
  if (best.size() != 1) return Status::Corruption("bad best-score record");
  report.best_score = best[0];
  CVCP_ASSIGN_OR_RETURN(std::vector<size_t> assignment, reader->ReadSizes());
  std::vector<int> ids;
  ids.reserve(assignment.size());
  for (size_t raw : assignment) {
    CVCP_ASSIGN_OR_RETURN(int id, IntFromU64(raw));
    // Clustering's constructor CHECKs ids >= -1; classify instead of
    // aborting on damaged bytes.
    if (id < -1) return Status::Corruption(Format("bad cluster id %d", id));
    ids.push_back(id);
  }
  report.final_clustering = Clustering(std::move(ids));
  return report;
}

std::string EncodeCvcpReport(const CvcpReport& report) {
  BlockBuilder builder(kCvcpReportBlockKind);
  AppendCvcpReportRecords(report, &builder);
  return builder.Finish();
}

Result<CvcpReport> DecodeCvcpReport(std::string bytes) {
  CVCP_ASSIGN_OR_RETURN(
      BlockReader reader,
      BlockReader::Open(std::move(bytes), kCvcpReportBlockKind));
  CVCP_ASSIGN_OR_RETURN(CvcpReport report, ReadCvcpReportRecords(&reader));
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing records after report");
  }
  return report;
}

uint64_t EstimateJobBytes(size_t n, size_t grid_size) {
  const uint64_t points = static_cast<uint64_t>(n);
  const uint64_t condensed = points * (points > 0 ? points - 1 : 0) / 2 * 8;
  // One OPTICS model ≈ four n-length arrays (order, reachability, core
  // distances, dendrogram scaffolding) per grid value.
  const uint64_t models = static_cast<uint64_t>(grid_size) * points * 8 * 4;
  constexpr uint64_t kFixedOverhead = 64 * 1024;
  return condensed + models + kFixedOverhead;
}

}  // namespace cvcp
