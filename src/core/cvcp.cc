#include "core/cvcp.h"

#include <cmath>

namespace cvcp {

Result<CvcpReport> RunCvcp(const Dataset& data, const Supervision& supervision,
                           const SemiSupervisedClusterer& clusterer,
                           const CvcpConfig& config, Rng* rng,
                           DatasetCache* cache) {
  if (config.param_grid.empty()) {
    return Status::InvalidArgument("CVCP needs a non-empty parameter grid");
  }

  // One set of folds, shared by every grid value (paired comparison).
  Rng fold_rng = rng->Fork(kFoldStreamId);
  CVCP_ASSIGN_OR_RETURN(
      std::vector<FoldSplit> folds,
      MakeSupervisionFolds(data, supervision, config.cv, &fold_rng));

  // Steps 1-2: every (param, fold) cell as one job fan-out. The scheduler
  // reduces in (grid-order, fold-order), so the scores — and any error —
  // are bit-identical to looping the grid serially.
  CvcpReport report;
  Rng score_rng = rng->Fork(kScoreStreamId);
  CVCP_ASSIGN_OR_RETURN(
      std::vector<CvScore> cv_scores,
      ScoreGridOnFolds(data, folds, supervision.kind(), clusterer,
                       config.param_grid, &score_rng, config.cv.exec,
                       config.cv.cost, cache,
                       config.collect_timings ? &report.cell_timings
                                              : nullptr));

  report.scores.reserve(config.param_grid.size());
  bool have_best = false;
  for (size_t g = 0; g < config.param_grid.size(); ++g) {
    CvcpParamScore entry;
    entry.param = config.param_grid[g];
    entry.score = cv_scores[g].mean_f;
    entry.valid_folds = cv_scores[g].valid_folds;
    report.scores.push_back(entry);
    // Step 3: argmax, first (grid-order) winner on ties.
    if (!std::isnan(entry.score) &&
        (!have_best || entry.score > report.best_score)) {
      report.best_param = entry.param;
      report.best_score = entry.score;
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::FailedPrecondition(
        "no parameter value produced a valid cross-validation score");
  }

  // Step 4: final run with all available supervision. Last cancellation
  // boundary: past this point the report is complete and its bytes are
  // the deterministic function of the spec that the stores rely on.
  CVCP_RETURN_IF_ERROR(config.cv.exec.cancel.Check());
  Rng final_rng = rng->Fork(0xF17A1ULL);
  CVCP_ASSIGN_OR_RETURN(
      report.final_clustering,
      clusterer.Cluster(data, supervision, report.best_param, &final_rng,
                        ClusterContext{cache, config.cv.exec}));
  return report;
}

}  // namespace cvcp
