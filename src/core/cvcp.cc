#include "core/cvcp.h"

#include <cmath>

namespace cvcp {

Result<CvcpReport> RunCvcp(const Dataset& data, const Supervision& supervision,
                           const SemiSupervisedClusterer& clusterer,
                           const CvcpConfig& config, Rng* rng) {
  if (config.param_grid.empty()) {
    return Status::InvalidArgument("CVCP needs a non-empty parameter grid");
  }

  // One set of folds, shared by every grid value (paired comparison).
  Rng fold_rng = rng->Fork(0xF01D5ULL);
  CVCP_ASSIGN_OR_RETURN(
      std::vector<FoldSplit> folds,
      MakeSupervisionFolds(data, supervision, config.cv, &fold_rng));

  CvcpReport report;
  report.scores.reserve(config.param_grid.size());
  bool have_best = false;
  Rng score_rng = rng->Fork(0x5C0BEULL);
  for (int param : config.param_grid) {
    CVCP_ASSIGN_OR_RETURN(
        CvScore cv_score,
        ScoreParamOnFolds(data, folds, supervision.kind(), clusterer, param,
                          &score_rng));
    CvcpParamScore entry;
    entry.param = param;
    entry.score = cv_score.mean_f;
    entry.valid_folds = cv_score.valid_folds;
    report.scores.push_back(entry);
    // Step 3: argmax, first (grid-order) winner on ties.
    if (!std::isnan(entry.score) &&
        (!have_best || entry.score > report.best_score)) {
      report.best_param = entry.param;
      report.best_score = entry.score;
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::FailedPrecondition(
        "no parameter value produced a valid cross-validation score");
  }

  // Step 4: final run with all available supervision.
  Rng final_rng = rng->Fork(0xF17A1ULL);
  CVCP_ASSIGN_OR_RETURN(
      report.final_clustering,
      clusterer.Cluster(data, supervision, report.best_param, &final_rng));
  return report;
}

}  // namespace cvcp
