#ifndef CVCP_CORE_CROSS_VALIDATION_H_
#define CVCP_CORE_CROSS_VALIDATION_H_

/// \file
/// The paper's sound n-fold cross-validation driver (§3.1, Fig. 1): split
/// the supervision into independent train/test folds, cluster the whole
/// dataset with the training part, classify the test fold's constraints
/// with the resulting partition, and average the constraint F-measure over
/// folds. Folds are built once and reused across parameter values so CVCP
/// compares parameters on identical splits.

#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "constraints/folds.h"
#include "core/clusterer.h"
#include "core/supervision.h"

namespace cvcp {

/// Cross-validation configuration.
struct CvConfig {
  int n_folds = 10;
  /// Scenario I only: stratify folds by class label.
  bool stratified = false;
};

/// Builds the scenario-appropriate folds for the given supervision:
/// Scenario I uses MakeLabelFolds, Scenario II uses MakeConstraintFolds.
Result<std::vector<FoldSplit>> MakeSupervisionFolds(
    const Dataset& data, const Supervision& supervision,
    const CvConfig& config, Rng* rng);

/// Cross-validated score of one parameter value.
struct CvScore {
  /// Mean constraint-classification F over the valid folds; NaN if none.
  double mean_f = 0.0;
  /// Per-fold averages (NaN where a fold had no test constraints).
  std::vector<double> fold_scores;
  int valid_folds = 0;
};

/// Scores `param` on prebuilt folds. The clusterer sees each fold's
/// training supervision (labels when Scenario I provided them, else
/// constraints); the test fold's constraints only ever meet the finished
/// partition. Clusterer RNG is forked per (param, fold) so scores are
/// reproducible and fold order is immaterial.
Result<CvScore> ScoreParamOnFolds(const Dataset& data,
                                  const std::vector<FoldSplit>& folds,
                                  SupervisionKind kind,
                                  const SemiSupervisedClusterer& clusterer,
                                  int param, Rng* rng);

/// Convenience: folds + score in one call (fresh folds for this parameter).
Result<CvScore> CrossValidateParam(const Dataset& data,
                                   const Supervision& supervision,
                                   const SemiSupervisedClusterer& clusterer,
                                   int param, const CvConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CORE_CROSS_VALIDATION_H_
