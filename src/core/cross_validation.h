#ifndef CVCP_CORE_CROSS_VALIDATION_H_
#define CVCP_CORE_CROSS_VALIDATION_H_

/// \file
/// The paper's sound n-fold cross-validation driver (§3.1, Fig. 1): split
/// the supervision into independent train/test folds, cluster the whole
/// dataset with the training part, classify the test fold's constraints
/// with the resulting partition, and average the constraint F-measure over
/// folds. Folds are built once and reused across parameter values so CVCP
/// compares parameters on identical splits.
///
/// Execution model: every (param, fold) cell is an independent clustering
/// job with a pre-forked RNG, so the grid×fold sweep is materialized as a
/// job list and fanned out across the shared thread pool
/// (ScoreGridOnFolds). Cell *execution* order is guided by a per-cell
/// cost model (CellCostModel: prior timings or a size-based estimate,
/// longest first) to shrink the parallel tail, but scores are always
/// reduced in (grid-order, fold-order) sequence and the first error in
/// that order wins, which keeps results — including error semantics —
/// bit-identical to the serial loop no matter how cells are scheduled.

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "constraints/folds.h"
#include "core/clusterer.h"
#include "core/supervision.h"

namespace cvcp {

/// Stream ids for the fold-construction and scoring RNG forks. RunCvcp and
/// CrossValidateParam both fork these streams off the caller's RNG, so the
/// convenience entry point and the full driver agree on randomness for
/// identical inputs.
inline constexpr uint64_t kFoldStreamId = 0xF01D5ULL;
inline constexpr uint64_t kScoreStreamId = 0x5C0BEULL;

/// Wall-clock cost of one (param, fold) clustering job.
struct CvCellTiming {
  int param = 0;
  int fold = 0;
  double wall_ms = 0.0;
};

/// Guides the *execution* order of the grid×fold cells: the scheduler
/// runs the most expensive cells first so no long cell starts late and
/// stretches the tail of the fan-out. Only wall time is affected —
/// reduction stays in (grid-order, fold-order), so reports are
/// bit-identical with the model on, off, or fed arbitrary timings.
struct CellCostModel {
  /// Run cells longest-first (parallel path only; the serial path always
  /// runs in canonical order). Off = materialization order.
  bool sort_by_cost = true;
  /// Measured per-cell wall times from a prior run on the same grid —
  /// typically CvcpReport::cell_timings (collect_timings). Cells found
  /// here (by (param, fold)) use the measured cost; all others fall back
  /// to the size-based estimate.
  std::vector<CvCellTiming> prior_timings;

  /// Cheap a-priori cost proxy for a cell without a prior timing:
  /// (training supervision size + 1) × (|param| + 1). Both factors grow
  /// the clustering work monotonically for every algorithm in the tree
  /// (more constraints/labels to satisfy; larger k / MinPts neighborhood),
  /// which is all longest-first ordering needs — relative, not absolute,
  /// accuracy.
  static double EstimateCost(int param, size_t train_size);
};

/// Cross-validation configuration.
struct CvConfig {
  int n_folds = 10;
  /// Scenario I only: stratify folds by class label.
  bool stratified = false;
  /// Parallelism for the grid×fold job fan-out (results are identical for
  /// any thread count; threads = 1 forces the serial code path).
  ExecutionContext exec;
  /// Cost-model-guided cell execution order (identical results either
  /// way; see CellCostModel).
  CellCostModel cost;
};

/// Builds the scenario-appropriate folds for the given supervision:
/// Scenario I uses MakeLabelFolds, Scenario II uses MakeConstraintFolds.
Result<std::vector<FoldSplit>> MakeSupervisionFolds(
    const Dataset& data, const Supervision& supervision,
    const CvConfig& config, Rng* rng);

/// Cross-validated score of one parameter value.
struct CvScore {
  /// Mean constraint-classification F over the valid folds; NaN if none.
  double mean_f = 0.0;
  /// Per-fold averages (NaN where a fold had no test constraints).
  std::vector<double> fold_scores;
  int valid_folds = 0;
};

/// Scores every grid value on prebuilt folds through the job-based
/// scheduler: all (param, fold) cells are materialized up front, each
/// cell's RNG is pre-forked exactly as the serial loop forks it, the
/// cells run on the shared pool (`exec`) in cost-model order (`cost`:
/// longest first, from prior timings or the size estimate), and fold
/// scores are reduced in (grid-order, fold-order) sequence with
/// first-error-wins Status propagation. Returned scores are bit-identical
/// to scoring each param serially, for every thread count and execution
/// order. When `cache` is non-null every cell clusters through the
/// per-dataset compute cache (supervision-independent stages — distance
/// matrix, OPTICS models — are built once and shared across the G×F
/// cells; results stay byte-identical, see core/dataset_cache.h). When
/// `timings` is non-null it is filled with one entry per cell in
/// (grid-order, fold-order).
Result<std::vector<CvScore>> ScoreGridOnFolds(
    const Dataset& data, const std::vector<FoldSplit>& folds,
    SupervisionKind kind, const SemiSupervisedClusterer& clusterer,
    const std::vector<int>& param_grid, Rng* rng,
    const ExecutionContext& exec = ExecutionContext::Serial(),
    const CellCostModel& cost = {}, DatasetCache* cache = nullptr,
    std::vector<CvCellTiming>* timings = nullptr);

/// Scores `param` on prebuilt folds. The clusterer sees each fold's
/// training supervision (labels when Scenario I provided them, else
/// constraints); the test fold's constraints only ever meet the finished
/// partition. Clusterer RNG is forked per (param, fold) so scores are
/// reproducible and fold order is immaterial.
Result<CvScore> ScoreParamOnFolds(
    const Dataset& data, const std::vector<FoldSplit>& folds,
    SupervisionKind kind, const SemiSupervisedClusterer& clusterer, int param,
    Rng* rng, const ExecutionContext& exec = ExecutionContext::Serial(),
    DatasetCache* cache = nullptr);

/// Convenience: folds + score in one call (fresh folds for this parameter).
/// Forks the fold/score RNG streams exactly as RunCvcp does, so for the
/// same inputs and RNG it reproduces the corresponding RunCvcp grid entry.
Result<CvScore> CrossValidateParam(const Dataset& data,
                                   const Supervision& supervision,
                                   const SemiSupervisedClusterer& clusterer,
                                   int param, const CvConfig& config, Rng* rng);

}  // namespace cvcp

#endif  // CVCP_CORE_CROSS_VALIDATION_H_
