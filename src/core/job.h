#ifndef CVCP_CORE_JOB_H_
#define CVCP_CORE_JOB_H_

/// \file
/// The job-shaped entry point over RunCvcp — the unit of service traffic.
/// A `JobSpec` names everything a model-selection run depends on: a
/// dataset reference (generator name + seed, resolved by the caller — the
/// core layer never touches src/data), the candidate grid, the supervision
/// scenario with its oracle parameters, and the RNG seeds. Because every
/// source of randomness is an explicit seed in the spec, a job is a pure
/// function: the same spec against the same resolved dataset produces a
/// byte-identical `CvcpReport` whether it runs in-process, through the
/// `cvcp_serve` job queue, on 1 or 8 threads, or against a warm artifact
/// store (pinned by tests/service_determinism_test.cc).
///
/// The codecs here give jobs and reports a durable wire/disk form on the
/// block-format record primitives (common/block_format.h): doubles travel
/// as IEEE-754 bit patterns, so encode→decode→encode is the identity on
/// bytes. `CvcpReport::cell_timings` is deliberately NOT encoded — wall
/// times are the one nondeterministic report field, and both the service
/// determinism contract and the versioned result store require encoded
/// reports to be byte-stable.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/block_format.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/cvcp.h"
#include "core/supervision.h"

namespace cvcp {

/// One model-selection job: dataset ref + grid + supervision scenario.
struct JobSpec {
  /// Dataset reference, resolved by the caller (the service layer's
  /// DatasetResolver knows "iris", "wine", "aloi", ...). Core treats it
  /// as an opaque key that, with the seed/index, names one point set.
  std::string dataset = "iris";
  uint64_t dataset_seed = 1;   ///< generator seed (ignored for "iris")
  uint64_t dataset_index = 0;  ///< collection member (e.g. ALOI set index)

  /// Clustering algorithm: "fosc", "mpck", "copk", or "kmeans".
  std::string clusterer = "fosc";

  /// Supervision scenario and its oracle parameters (constraints/oracle.h).
  SupervisionKind scenario = SupervisionKind::kConstraints;
  double label_fraction = 0.10;       ///< Scenario I: share of labeled objects
  double pool_fraction = 0.10;        ///< Scenario II: per-class pool share
  double constraint_fraction = 0.50;  ///< Scenario II: share drawn from pool
  uint64_t supervision_seed = 1;

  /// CVCP protocol.
  std::vector<int> param_grid;
  int n_folds = 5;
  bool stratified = false;
  uint64_t cvcp_seed = 1;

  /// Relative deadline in milliseconds, 0 = none. The clock starts when
  /// the server admits the job (or when a direct runner builds its
  /// CancelSource); an overdue job fails with kDeadlineExceeded at the
  /// next cell boundary and leaves no result record. Execution metadata,
  /// not job identity: JobSpecHash ignores it, so the same logical job
  /// submitted with different deadlines stays one version chain.
  uint64_t deadline_ms = 0;

  bool operator==(const JobSpec&) const = default;
};

/// Rejects malformed specs before any work is queued: unknown clusterer,
/// empty grid, folds < 2, oracle fractions outside (0, 1].
Status ValidateJobSpec(const JobSpec& spec);

/// Instantiates the named algorithm ("fosc", "mpck", "copk", "kmeans");
/// kInvalidArgument for anything else.
Result<std::unique_ptr<SemiSupervisedClusterer>> MakeClusterer(
    const std::string& name);

/// Samples the spec's supervision from the dataset's ground truth exactly
/// as the paper's oracle does, seeded by `supervision_seed` alone — the
/// reason a job is re-runnable: a restarted server resamples the identical
/// supervision.
Result<Supervision> BuildJobSupervision(const Dataset& data,
                                        const JobSpec& spec);

/// Execution resources a job run borrows from its host (server or direct
/// caller). Results are byte-identical for every combination.
struct JobContext {
  DatasetCache* cache = nullptr;  ///< shared compute cache; null = cache-less
  ExecutionContext exec;          ///< thread budget for the grid×fold fan-out
};

/// Runs the job end to end: supervision oracle → clusterer → RunCvcp.
/// Timing collection is always off (reports must be byte-stable).
Result<CvcpReport> RunJob(const Dataset& data, const JobSpec& spec,
                          const JobContext& context = {});

/// Block kinds of the two persisted/wire record types below. Distinct
/// from ArtifactKind values (different files, and both are validated by
/// kind before any record is read).
inline constexpr uint32_t kJobSpecBlockKind = 0x4A4F4253;     // "JOBS"
inline constexpr uint32_t kCvcpReportBlockKind = 0x52505254;  // "RPRT"

/// Appends the spec's records to `builder` / consumes them from `reader`
/// (composable into larger messages). EncodeJobSpec/DecodeJobSpec wrap
/// them into a standalone sealed block.
void AppendJobSpecRecords(const JobSpec& spec, BlockBuilder* builder);
Result<JobSpec> ReadJobSpecRecords(BlockReader* reader);
std::string EncodeJobSpec(const JobSpec& spec);
Result<JobSpec> DecodeJobSpec(std::string bytes);

/// Content hash of a spec (Hash64 over its canonical encoding) — the key
/// of the versioned result chain: submissions with the same hash are
/// versions 1, 2, ... of the same logical job.
uint64_t JobSpecHash(const JobSpec& spec);

/// Report codec. Every deterministic field round-trips bit-exactly
/// (scores as IEEE-754 bit patterns, assignments incl. the -1 noise id);
/// `cell_timings` is dropped by design (see file comment).
void AppendCvcpReportRecords(const CvcpReport& report, BlockBuilder* builder);
Result<CvcpReport> ReadCvcpReportRecords(BlockReader* reader);
std::string EncodeCvcpReport(const CvcpReport& report);
Result<CvcpReport> DecodeCvcpReport(std::string bytes);

/// Rough in-flight memory charge of a job on an n-point dataset: the
/// condensed distance matrix plus one OPTICS-model's arrays per grid
/// value. Admission control compares the sum of queued+running charges
/// against the server's memory limit — a capacity planner, not an
/// allocator, so only the growth shape matters.
uint64_t EstimateJobBytes(size_t n, size_t grid_size);

}  // namespace cvcp

#endif  // CVCP_CORE_JOB_H_
