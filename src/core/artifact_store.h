#ifndef CVCP_CORE_ARTIFACT_STORE_H_
#define CVCP_CORE_ARTIFACT_STORE_H_

/// \file
/// The persistent (disk) tier of the compute-cache stack: serialized
/// supervision-independent artifacts — condensed distance matrices,
/// OPTICS models, measured cell timings — in one block-format file each
/// (common/block_format.h), so bench invocations and separate processes
/// warm-start each other instead of recomputing identical geometry.
///
/// Key scheme: every artifact is addressed by
///
///   dataset content hash (Hash64 over dims + raw point bytes)
///   × metric × artifact kind [× MinPts]
///
/// and the key is both the filename (`<hash>-<metric>-...cvcp`) and
/// embedded in the payload, so a renamed or cross-linked file can never
/// satisfy the wrong key. The format version lives in every block
/// header; a version bump turns the whole store into misses, never into
/// misreads.
///
/// Write discipline: serialize to `<name>.tmp.<pid>.<seq>`, then
/// atomically rename over the final name. Readers therefore only ever
/// see complete files; concurrent same-key writers (racing threads or
/// processes) last-write-win with bitwise-identical bytes, because every
/// artifact is a deterministic function of its key.
///
/// Read discipline: *any* defect — missing file, short read, bad magic,
/// CRC mismatch, version skew, key mismatch — is classified, counted,
/// and surfaced as a non-OK Status that callers treat as a cache miss
/// and fall back to recompute. The store never returns partially-decoded
/// or stale bytes.
///
/// Determinism: encoders store doubles as IEEE-754 bit patterns, so a
/// loaded artifact is bit-for-bit the artifact that was saved, and every
/// report computed from it is byte-identical to the computed-from-scratch
/// one (pinned by tests/store_determinism_test.cc).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/optics.h"
#include "common/distance.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/cross_validation.h"

namespace cvcp {

/// What a stored block encodes (the block header's `kind` field).
enum class ArtifactKind : uint32_t {
  kDistanceMatrix = 1,      ///< condensed distances, f64 payload
  kOpticsModel = 2,
  kCellTimings = 3,
  kDistanceMatrixF32 = 4,   ///< condensed distances, f32 payload
};

/// Stable display name for a kind ("distances", "optics", "timings",
/// "distances-f32").
const char* ArtifactKindName(ArtifactKind kind);

/// Content hash of a point matrix: dims + every coordinate's bit
/// pattern. Two datasets share artifacts iff they are bitwise the same
/// point set.
uint64_t HashMatrixContent(const Matrix& points);

/// Serializers (exposed for tests and tools; the store wraps them in
/// file IO). Encoded bytes are a sealed block; decoding validates the
/// frame and the embedded key fields.
std::string EncodeDistanceMatrix(uint64_t dataset_hash, Metric metric,
                                 const DistanceMatrix& matrix);
Result<DistanceMatrix> DecodeDistanceMatrix(std::string bytes,
                                            uint64_t dataset_hash,
                                            Metric metric);
/// float32-storage variant: a distinct block kind (kDistanceMatrixF32)
/// with an f32 payload. The f64 encoding above is untouched — mixed-mode
/// store directories can never serve one mode's bytes for the other
/// (distinct kind AND distinct filename).
std::string EncodeDistanceMatrix32(uint64_t dataset_hash, Metric metric,
                                   const DistanceMatrix& matrix);
Result<DistanceMatrix> DecodeDistanceMatrix32(std::string bytes,
                                              uint64_t dataset_hash,
                                              Metric metric);
/// Optics blocks share one kind for both storage modes; an f32-derived
/// model carries a trailing u32 marker record (=1) and an "-f32" filename,
/// while the f64 encoding stays byte-identical to what earlier versions
/// wrote (its decoder requires zero trailing records, so neither mode can
/// decode as the other).
std::string EncodeOpticsModel(uint64_t dataset_hash, Metric metric,
                              int min_pts, const OpticsResult& optics,
                              DistanceStorage storage = DistanceStorage::kF64);
Result<OpticsResult> DecodeOpticsModel(std::string bytes,
                                       uint64_t dataset_hash, Metric metric,
                                       int min_pts,
                                       DistanceStorage storage =
                                           DistanceStorage::kF64);
std::string EncodeCellTimings(uint64_t key_hash, const std::string& tag,
                              const std::vector<CvCellTiming>& timings);
Result<std::vector<CvCellTiming>> DecodeCellTimings(std::string bytes,
                                                    uint64_t key_hash,
                                                    const std::string& tag);

/// One file of a store directory, as seen by `List` (tools/store_inspect).
struct ArtifactFileInfo {
  std::string filename;
  uint64_t bytes = 0;
  /// Raw kind field (0 when the header is unreadable).
  uint32_t kind = 0;
  bool valid = false;   ///< full frame validation passed
  std::string detail;   ///< error text when !valid
  /// Distance storage mode decoded from the payload ("f64" or "f32";
  /// empty for kinds that carry no distances, e.g. timings).
  std::string storage;
  /// Human-readable decoded key fields, e.g.
  /// "hash=41c3... metric=euc mp=005". Empty when the payload is
  /// undecodable.
  std::string decoded_key;
};

/// The disk tier. Thread-safe; one instance may be shared by every
/// dataset cache, trial lane, and process (cross-process coordination is
/// the filesystem's atomic rename).
///
/// Deliberately mutex-free: every mutable member is a std::atomic
/// counter (relaxed — counters feed stats, never control flow) and all
/// cross-thread coordination happens through the filesystem's atomic
/// rename, so there is nothing for a `GUARDED_BY` annotation to guard
/// and the class stays trivially deadlock-free under the
/// help-while-waiting scheduler. Keep it that way: a mutex added here
/// would be held across file IO on the compute hot path.
class ArtifactStore {
 public:
  /// Uses `directory` (created on first save) for all artifacts.
  explicit ArtifactStore(std::string directory);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  const std::string& directory() const { return directory_; }

  /// Loads the condensed distance matrix for (dataset, metric). Errors:
  /// kNotFound (cold key), kCorruption (damaged bytes, key mismatch),
  /// kFailedPrecondition (format-version skew) — all counted and all
  /// meaning "recompute".
  /// `storage` selects which of the two disjoint artifact families is
  /// addressed; the key (filename and block kind) differs per mode, so a
  /// mixed-mode directory never serves cross-mode bytes.
  Result<DistanceMatrix> LoadDistances(uint64_t dataset_hash, Metric metric,
                                       DistanceStorage storage =
                                           DistanceStorage::kF64);
  Status SaveDistances(uint64_t dataset_hash, Metric metric,
                       const DistanceMatrix& matrix);

  /// Loads / saves the supervision-independent OPTICS stage of a
  /// FOSC-OPTICSDend model. Only the OPTICS result is stored: the
  /// dendrogram is a deterministic pure function of it
  /// (Dendrogram::FromReachability), so the reader rebuilds it and the
  /// bytes stay minimal.
  Result<OpticsResult> LoadOpticsModel(uint64_t dataset_hash, Metric metric,
                                       int min_pts,
                                       DistanceStorage storage =
                                           DistanceStorage::kF64);
  Status SaveOpticsModel(uint64_t dataset_hash, Metric metric, int min_pts,
                         const OpticsResult& optics,
                         DistanceStorage storage = DistanceStorage::kF64);

  /// Measured (param, fold) wall times under an arbitrary (hash, tag)
  /// key — the cost model's cross-process memory. Execution order only;
  /// results never depend on them.
  Result<std::vector<CvCellTiming>> LoadCellTimings(uint64_t key_hash,
                                                    const std::string& tag);
  Status SaveCellTimings(uint64_t key_hash, const std::string& tag,
                         const std::vector<CvCellTiming>& timings);

  /// Every `*.cvcp` file in the directory with its validation outcome.
  /// An absent directory lists as empty (a store is born lazily).
  Result<std::vector<ArtifactFileInfo>> List() const;

  /// Deletes every `*.cvcp` file (and any leftover `*.tmp.*`); returns
  /// how many were removed.
  Result<size_t> Purge();

  /// Removes orphaned `*.tmp.*` files left by crashed writers; returns
  /// how many were removed (also counted under `temps_swept`). Only safe
  /// when no other process is writing to the directory — an in-flight
  /// tmp file is indistinguishable from an orphan. cvcp_serve owns its
  /// store directory and sweeps at Start; `store_inspect purge-tmp` is
  /// the operator's manual path.
  Result<uint64_t> SweepOrphanTemps();

  /// Read/write outcome counters. `disk_hits` are successful loads;
  /// every load failure increments exactly one miss counter.
  struct Stats {
    uint64_t disk_hits = 0;
    uint64_t disk_misses = 0;      ///< cold key (no file)
    uint64_t corrupt_misses = 0;   ///< CRC/framing damage or key mismatch
    uint64_t version_misses = 0;   ///< format-version skew
    uint64_t writes = 0;
    uint64_t write_errors = 0;
    uint64_t bytes_written = 0;
    uint64_t bytes_read = 0;
    uint64_t temps_swept = 0;      ///< orphans removed by SweepOrphanTemps
  };
  Stats stats() const;

 private:
  /// Increments the miss counter matching a load failure and passes the
  /// status through.
  Status ClassifyMiss(Status status);

  Result<std::string> ReadFile(const std::string& filename);
  Status WriteFileAtomic(const std::string& filename,
                         const std::string& bytes);

  std::string directory_;
  std::atomic<uint64_t> temp_seq_{0};

  std::atomic<uint64_t> disk_hits_{0};
  std::atomic<uint64_t> disk_misses_{0};
  std::atomic<uint64_t> corrupt_misses_{0};
  std::atomic<uint64_t> version_misses_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> temps_swept_{0};
};

}  // namespace cvcp

#endif  // CVCP_CORE_ARTIFACT_STORE_H_
