#include "core/dataset_cache.h"

#include <chrono>
#include <limits>
#include <string>

#include "common/strings.h"

namespace cvcp {

namespace {

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t DistanceCharge(const DistanceMatrix& dm) {
  return dm.MemoryBytes() + sizeof(DistanceMatrix);
}

/// "-f32" on every float32-mode memory key keeps the two storage modes
/// in disjoint key spaces within one shared LRU.
const char* StorageKeySuffix(DistanceStorage storage) {
  return storage == DistanceStorage::kF32 ? "-f32" : "";
}

size_t ModelCharge(const FoscOpticsModel& model) {
  // order + reachability + core_distance, plus a per-point estimate for
  // the dendrogram's nodes (exact size is private to Dendrogram; the
  // charge only has to be the right order of magnitude for eviction).
  const size_t n = model.optics.order.size();
  return n * 3 * sizeof(double) + n * 80 + sizeof(FoscOpticsModel);
}

}  // namespace

DatasetCache::DatasetCache(const Matrix& points, DatasetCacheTiers tiers)
    : points_(&points),
      content_hash_(HashMatrixContent(points)),
      memory_(tiers.memory),
      store_(tiers.store),
      storage_(tiers.storage) {
  if (memory_ == nullptr) {
    // Private unbounded tier: the original per-dataset memo semantics.
    owned_memory_ = std::make_unique<ShardedLruCache>(
        std::numeric_limits<size_t>::max(), /*num_shards=*/4);
    memory_ = owned_memory_.get();
  }
}

std::string DatasetCache::DistanceKey(Metric metric) const {
  return Format("%016llx-m%d-dist%s",
                static_cast<unsigned long long>(content_hash_),
                static_cast<int>(metric), StorageKeySuffix(storage_));
}

std::string DatasetCache::ModelKey(Metric metric, int min_pts) const {
  return Format("%016llx-m%d-mp%d-model%s",
                static_cast<unsigned long long>(content_hash_),
                static_cast<int>(metric), min_pts,
                StorageKeySuffix(storage_));
}

std::shared_ptr<const DistanceMatrix> DatasetCache::Distances(
    Metric metric, const ExecutionContext& exec) {
  const std::string key = DistanceKey(metric);
  if (auto resident = memory_->LookupAs<DistanceMatrix>(key)) {
    distance_hits_.fetch_add(1, std::memory_order_relaxed);
    return resident;
  }
  // Key not resident: resolve without holding any lock (the build may fan
  // out on the pool) and without ever waiting on another thread's
  // in-flight resolution — see the deadlock rationale in the header.
  // First publisher wins; a racing duplicate is bitwise-identical and
  // discarded.
  if (store_ != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    Result<DistanceMatrix> loaded =
        store_->LoadDistances(content_hash_, metric, storage_);
    if (loaded.ok()) {
      auto value = std::make_shared<const DistanceMatrix>(
          std::move(loaded).value());
      const size_t charge = DistanceCharge(*value);
      auto published = std::static_pointer_cast<const DistanceMatrix>(
          memory_->InsertOrGet(key, value, charge));
      const double ms = MsSince(start);
      distance_loads_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(&mu_);
      distance_load_ms_ += ms;
      return published;
    }
    // Any load failure (cold key, corruption, version skew) was counted
    // by the store; fall through to compute.
  }
  const auto start = std::chrono::steady_clock::now();
  auto built = std::make_shared<const DistanceMatrix>(
      DistanceMatrix::Compute(*points_, metric, exec, storage_));
  const double ms = MsSince(start);
  const size_t charge = DistanceCharge(*built);
  auto published = std::static_pointer_cast<const DistanceMatrix>(
      memory_->InsertOrGet(key, built, charge));
  distance_builds_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    distance_build_ms_ += ms;
  }
  // Persist only from the winning publisher, so racing builders do not
  // queue redundant (byte-identical) writes.
  if (store_ != nullptr && published == built) {
    store_->SaveDistances(content_hash_, metric, *published);
  }
  return published;
}

Result<std::shared_ptr<const FoscOpticsModel>> DatasetCache::FoscModel(
    Metric metric, int min_pts, const ExecutionContext& exec) {
  const std::string key = ModelKey(metric, min_pts);
  if (auto resident = memory_->LookupAs<FoscOpticsModel>(key)) {
    model_hits_.fetch_add(1, std::memory_order_relaxed);
    return ModelPtr(resident);
  }
  const std::pair<int, int> error_key{static_cast<int>(metric), min_pts};
  {
    MutexLock lock(&mu_);
    auto it = model_errors_memo_.find(error_key);
    if (it != model_errors_memo_.end()) {
      model_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  if (store_ != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    Result<OpticsResult> loaded =
        store_->LoadOpticsModel(content_hash_, metric, min_pts, storage_);
    if (loaded.ok()) {
      auto model = std::make_shared<FoscOpticsModel>();
      model->optics = std::move(loaded).value();
      // The dendrogram is a deterministic pure function of the OPTICS
      // result, so rebuilding it here reproduces the computed-path bytes.
      model->dendrogram = Dendrogram::FromReachability(model->optics);
      ModelPtr value(std::move(model));
      auto published = std::static_pointer_cast<const FoscOpticsModel>(
          memory_->InsertOrGet(key, value, ModelCharge(*value)));
      const double ms = MsSince(start);
      model_loads_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(&mu_);
      model_load_ms_ += ms;
      return ModelPtr(published);
    }
  }
  // The distance build is *not* part of the model wall time: it is shared
  // by every param and reported as its own stage.
  const std::shared_ptr<const DistanceMatrix> distances =
      Distances(metric, exec);
  const auto start = std::chrono::steady_clock::now();
  OpticsConfig config;
  config.min_pts = min_pts;
  config.metric = metric;
  Result<OpticsResult> optics = RunOptics(*distances, config);
  if (!optics.ok()) {
    model_errors_.fetch_add(1, std::memory_order_relaxed);
    const double ms = MsSince(start);
    MutexLock lock(&mu_);
    model_build_ms_ += ms;
    // First publisher wins for errors too (identical statuses anyway).
    auto [it, inserted] =
        model_errors_memo_.emplace(error_key, optics.status());
    return it->second;
  }
  auto model = std::make_shared<FoscOpticsModel>();
  model->optics = std::move(optics).value();
  model->dendrogram = Dendrogram::FromReachability(model->optics);
  ModelPtr built(std::move(model));
  const double ms = MsSince(start);
  auto published = std::static_pointer_cast<const FoscOpticsModel>(
      memory_->InsertOrGet(key, built, ModelCharge(*built)));
  model_builds_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    model_build_ms_ += ms;
  }
  if (store_ != nullptr && published == built) {
    store_->SaveOpticsModel(content_hash_, metric, min_pts,
                            published->optics, storage_);
  }
  return ModelPtr(published);
}

void DatasetCache::Prewarm(Metric metric, std::span<const int> min_pts_grid,
                           const ExecutionContext& exec) {
  Distances(metric, exec);
  // Grid models are independent; build them on the pool. Each lane runs
  // serially inside (the distance matrix already exists), so nested
  // parallelism cannot oversubscribe. Only the thread budget drops to 1 —
  // the rest of the context (notably the distance-kernel policy) must
  // survive, or a prewarmed-on-miss model could be built under a
  // different policy than the lazy path would use.
  ExecutionContext serial = exec;
  serial.threads = 1;
  ParallelFor(exec, min_pts_grid.size(), [&](size_t i) {
    FoscModel(metric, min_pts_grid[i], serial);
  });
}

DatasetCache::Stats DatasetCache::stats() const {
  Stats out;
  out.distance_builds = distance_builds_.load(std::memory_order_relaxed);
  out.distance_loads = distance_loads_.load(std::memory_order_relaxed);
  out.distance_hits = distance_hits_.load(std::memory_order_relaxed);
  out.model_builds = model_builds_.load(std::memory_order_relaxed);
  out.model_loads = model_loads_.load(std::memory_order_relaxed);
  out.model_hits = model_hits_.load(std::memory_order_relaxed);
  out.model_errors = model_errors_.load(std::memory_order_relaxed);
  MutexLock lock(&mu_);
  out.distance_build_ms = distance_build_ms_;
  out.distance_load_ms = distance_load_ms_;
  out.model_build_ms = model_build_ms_;
  out.model_load_ms = model_load_ms_;
  return out;
}

DatasetCachePool::DatasetCachePool(size_t memory_capacity_bytes,
                                   ArtifactStore* store,
                                   DistanceStorage storage)
    : memory_(memory_capacity_bytes), store_(store), storage_(storage) {}

DatasetCache* DatasetCachePool::For(const Matrix& points) {
  MutexLock lock(&mu_);
  auto it = caches_.find(&points);
  if (it == caches_.end()) {
    it = caches_
             .emplace(&points, std::make_unique<DatasetCache>(
                                   points, DatasetCacheTiers{
                                               &memory_, store_, storage_}))
             .first;
  }
  return it->second.get();
}

DatasetCache::Stats DatasetCachePool::AggregateStats() const {
  DatasetCache::Stats out;
  MutexLock lock(&mu_);
  for (const auto& [points, cache] : caches_) {
    const DatasetCache::Stats s = cache->stats();
    out.distance_builds += s.distance_builds;
    out.distance_loads += s.distance_loads;
    out.distance_hits += s.distance_hits;
    out.model_builds += s.model_builds;
    out.model_loads += s.model_loads;
    out.model_hits += s.model_hits;
    out.model_errors += s.model_errors;
    out.distance_build_ms += s.distance_build_ms;
    out.distance_load_ms += s.distance_load_ms;
    out.model_build_ms += s.model_build_ms;
    out.model_load_ms += s.model_load_ms;
  }
  return out;
}

}  // namespace cvcp
