#include "core/dataset_cache.h"

#include <chrono>

namespace cvcp {

namespace {

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::shared_ptr<const DistanceMatrix> DatasetCache::Distances(
    Metric metric, const ExecutionContext& exec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = distances_.find(metric);
    if (it != distances_.end()) {
      distance_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Key missing: build without holding the lock (the build may fan out on
  // the pool) and without ever waiting on another thread's in-flight
  // build — see the deadlock rationale in the header. First publisher
  // wins; a racing duplicate is bitwise-identical and discarded.
  const auto start = std::chrono::steady_clock::now();
  auto built = std::make_shared<const DistanceMatrix>(
      DistanceMatrix::Compute(*points_, metric, exec));
  const double ms = MsSince(start);
  std::lock_guard<std::mutex> lock(mu_);
  ++distance_builds_;
  distance_build_ms_ += ms;
  auto [it, inserted] = distances_.emplace(metric, std::move(built));
  return it->second;
}

Result<std::shared_ptr<const FoscOpticsModel>> DatasetCache::FoscModel(
    Metric metric, int min_pts, const ExecutionContext& exec) {
  const std::pair<int, int> key{static_cast<int>(metric), min_pts};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(key);
    if (it != models_.end()) {
      model_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // The distance build is *not* part of the model wall time: it is shared
  // by every param and reported as its own stage.
  const std::shared_ptr<const DistanceMatrix> distances =
      Distances(metric, exec);
  const auto start = std::chrono::steady_clock::now();
  ModelResult result = [&]() -> ModelResult {
    OpticsConfig config;
    config.min_pts = min_pts;
    config.metric = metric;
    Result<OpticsResult> optics = RunOptics(*distances, config);
    if (!optics.ok()) return optics.status();
    auto model = std::make_shared<FoscOpticsModel>();
    model->optics = std::move(optics).value();
    model->dendrogram = Dendrogram::FromReachability(model->optics);
    return std::shared_ptr<const FoscOpticsModel>(std::move(model));
  }();
  const double ms = MsSince(start);
  std::lock_guard<std::mutex> lock(mu_);
  ++model_builds_;
  model_build_ms_ += ms;
  auto [it, inserted] = models_.emplace(key, std::move(result));
  return it->second;
}

DatasetCache::Stats DatasetCache::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.distance_builds = distance_builds_;
    out.model_builds = model_builds_;
    out.distance_build_ms = distance_build_ms_;
    out.model_build_ms = model_build_ms_;
  }
  out.distance_hits = distance_hits_.load(std::memory_order_relaxed);
  out.model_hits = model_hits_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cvcp
