#ifndef CVCP_CORE_DATASET_CACHE_H_
#define CVCP_CORE_DATASET_CACHE_H_

/// \file
/// Per-dataset compute cache for the supervision-independent stages of the
/// CVCP pipeline. The paper's protocol runs one dataset through
/// G grid values × F folds × T trials, but the expensive geometry —
/// pairwise distances, OPTICS reachability, the OPTICSDend dendrogram —
/// depends only on (points, metric, param), never on the supervision or
/// the RNG. A `DatasetCache` therefore memoizes:
///
///   * one condensed `DistanceMatrix` per metric, built lazily by the
///     first caller (parallel `DistanceMatrix::Compute`) and shared by
///     every CVCP cell, selector sweep, and trial lane that follows;
///   * one `FoscOpticsModel` (OPTICS result + dendrogram) per
///     (metric, MinPts) key — with the cache, `ScoreGridOnFolds` runs
///     OPTICS once per grid value instead of once per (grid value, fold)
///     cell per trial.
///
/// Tiers: the cache fronts up to three levels —
///
///   memory LRU (ShardedLruCache) → disk (ArtifactStore) → compute
///
/// The memory tier is a capacity-bounded sharded LRU keyed by dataset
/// content hash, so one pool-level cache serves every dataset, trial, and
/// supervision level of a bench run. The optional disk tier persists
/// artifacts across processes: a warm store satisfies model requests with
/// zero OPTICS rebuilds. Both tiers are optional — a bare
/// `DatasetCache(points)` behaves like the original unbounded in-memory
/// memo.
///
/// Concurrency model — never block, duplicate on race: a caller that
/// finds its key missing builds the structure itself and the *first*
/// publisher wins; racing losers throw their (bitwise-identical) copy
/// away and adopt the published one. Blocking guards (`std::call_once`,
/// waiting on a shared future) are deliberately NOT used: under the
/// help-while-waiting scheduler (common/parallel.h) a thread that is
/// mid-build may adopt another queued cell, and if that cell blocked on
/// the very build suspended beneath it on the same stack, the process
/// would deadlock. Duplicate-on-race keeps every thread runnable at the
/// cost of at most one redundant build per racing thread on first touch —
/// and because the builds are deterministic, which copy wins is
/// unobservable in the results.
///
/// Determinism contract: the cache returns the *same doubles* the
/// uncached path computes — `DistanceMatrix::Compute` calls the same
/// `Distance()` the on-the-fly scans call, OPTICS over the matrix is
/// the same algorithm over the same values, and a disk round trip
/// preserves every IEEE-754 bit pattern (block_format.h) — so every
/// report, selection, and experiment table is byte-identical with the
/// cache on or off, cold or warm (pinned by
/// tests/cache_determinism_test.cc and tests/store_determinism_test.cc).
///
/// Lifetime: a cache instance borrows the points matrix and the tier
/// objects; it must not outlive any of them. All methods are thread-safe.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cluster/dendrogram.h"
#include "cluster/optics.h"
#include "common/distance.h"
#include "common/matrix.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/sharded_cache.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/artifact_store.h"

namespace cvcp {

/// The supervision-independent model of one FOSC-OPTICSDend run: the
/// OPTICS cluster ordering and the reachability dendrogram built from it.
/// Identical for every fold and trial at the same (metric, MinPts), which
/// is exactly what makes it cacheable: constraints only enter at the FOSC
/// extraction stage (see FoscOpticsDendClusterer::ExtractWithSupervision).
struct FoscOpticsModel {
  OpticsResult optics;
  Dendrogram dendrogram;
};

/// The storage tiers behind a DatasetCache, both optional and borrowed.
/// Null `memory` gives the cache a private unbounded LRU (the original
/// per-dataset memo semantics); null `store` disables persistence.
struct DatasetCacheTiers {
  ShardedLruCache* memory = nullptr;
  ArtifactStore* store = nullptr;
  /// Condensed-distance storage mode for everything this cache builds,
  /// loads, or saves. Modes live in disjoint key spaces in both tiers
  /// (distinct memory keys, distinct filenames and block kinds), so
  /// mixed-mode runs sharing one store directory never serve each other's
  /// artifacts.
  DistanceStorage storage = DistanceStorage::kF64;
};

/// Thread-safe, lazily-built cache of per-dataset structures. One
/// instance per dataset; shared by reference across every fold, grid
/// value, and trial that clusters that dataset.
class DatasetCache {
 public:
  /// Borrows `points` (no copy) and the tier objects. The cache must not
  /// outlive them. Hashes the dataset content once, up front — that hash
  /// keys every artifact in both tiers.
  explicit DatasetCache(const Matrix& points, DatasetCacheTiers tiers = {});

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  const Matrix& points() const { return *points_; }

  /// The dataset's content hash — the cross-process artifact key prefix.
  uint64_t content_hash() const { return content_hash_; }

  /// The condensed-distance storage mode this cache was configured with.
  DistanceStorage storage() const { return storage_; }

  /// The condensed pairwise distance matrix under `metric`. Resolution
  /// order: memory LRU, then disk store, then `DistanceMatrix::Compute`
  /// on `exec.threads` workers (publishing to both tiers). Racing
  /// first-touch callers each resolve independently and the first
  /// publisher wins (see file comment). The returned pointer keeps the
  /// matrix alive independent of the cache.
  std::shared_ptr<const DistanceMatrix> Distances(
      Metric metric, const ExecutionContext& exec);

  /// The memoized FOSC-OPTICSDend model for (metric, min_pts): OPTICS over
  /// the cached distance matrix plus the dendrogram. The disk tier stores
  /// only the OPTICS stage; the dendrogram is rebuilt deterministically on
  /// load. Build errors (e.g. min_pts out of range) are memoized
  /// per-dataset — never persisted — so every caller sees exactly the
  /// status the uncached path would return.
  Result<std::shared_ptr<const FoscOpticsModel>> FoscModel(
      Metric metric, int min_pts, const ExecutionContext& exec);

  /// Builds (or loads) the distance matrix and every grid model up front,
  /// so the trial fan-out that follows only ever hits. Per-param build
  /// errors are memoized exactly as a lazy first call would memoize them
  /// and do not abort the warm-up.
  void Prewarm(Metric metric, std::span<const int> min_pts_grid,
               const ExecutionContext& exec);

  /// Cache effectiveness counters (for the bench_micro cache table). A
  /// "build" is a call that actually computed the structure — under a
  /// first-touch race several callers may resolve the same key, so builds
  /// can exceed the number of distinct keys; a "load" resolved from the
  /// disk tier; a "hit" was served from the memory tier (or the error
  /// memo). `model_builds` counts only successful OPTICS builds; failed
  /// ones count under `model_errors`. Wall times are summed per stage
  /// (every computed build counts, including racing duplicates).
  struct Stats {
    uint64_t distance_builds = 0;
    uint64_t distance_loads = 0;
    uint64_t distance_hits = 0;
    uint64_t model_builds = 0;
    uint64_t model_loads = 0;
    uint64_t model_hits = 0;
    uint64_t model_errors = 0;
    double distance_build_ms = 0.0;
    double distance_load_ms = 0.0;
    double model_build_ms = 0.0;
    double model_load_ms = 0.0;
  };
  Stats stats() const;

 private:
  using ModelPtr = std::shared_ptr<const FoscOpticsModel>;

  std::string DistanceKey(Metric metric) const;
  std::string ModelKey(Metric metric, int min_pts) const;

  const Matrix* points_;
  uint64_t content_hash_;
  ShardedLruCache* memory_;  ///< points at `owned_memory_` when not shared
  ArtifactStore* store_;
  DistanceStorage storage_;
  std::unique_ptr<ShardedLruCache> owned_memory_;

  // Error memo: per-dataset, unbounded (a handful of bad params at most),
  // deliberately outside the LRU so an eviction can never flip an errored
  // key back to a rebuild with different stats.
  mutable Mutex mu_;
  std::map<std::pair<int, int>, Status> model_errors_memo_ GUARDED_BY(mu_);

  std::atomic<uint64_t> distance_builds_{0};
  std::atomic<uint64_t> distance_loads_{0};
  std::atomic<uint64_t> distance_hits_{0};
  std::atomic<uint64_t> model_builds_{0};
  std::atomic<uint64_t> model_loads_{0};
  std::atomic<uint64_t> model_hits_{0};
  std::atomic<uint64_t> model_errors_{0};
  // Wall-time accumulators share mu_ (only touched around builds/loads).
  double distance_build_ms_ GUARDED_BY(mu_) = 0.0;
  double distance_load_ms_ GUARDED_BY(mu_) = 0.0;
  double model_build_ms_ GUARDED_BY(mu_) = 0.0;
  double model_load_ms_ GUARDED_BY(mu_) = 0.0;
};

/// One memory tier + one optional disk tier shared by every dataset of a
/// bench run: `For(points)` lazily creates the per-dataset front-end, so
/// trials at different supervision levels — and different datasets of an
/// ALOI collection — reuse each other's geometry up to the capacity
/// bound. Borrows the datasets (keyed by matrix address): every Matrix
/// passed to `For` must outlive the pool.
class DatasetCachePool {
 public:
  /// `memory_capacity_bytes` bounds the shared LRU; `store` (borrowed,
  /// may be null) enables the disk tier. `storage` is inherited by every
  /// per-dataset cache the pool creates.
  explicit DatasetCachePool(size_t memory_capacity_bytes,
                            ArtifactStore* store = nullptr,
                            DistanceStorage storage = DistanceStorage::kF64);

  DatasetCachePool(const DatasetCachePool&) = delete;
  DatasetCachePool& operator=(const DatasetCachePool&) = delete;

  /// The cache fronting `points`, created on first use. Thread-safe;
  /// stable for the pool's lifetime.
  DatasetCache* For(const Matrix& points);

  ArtifactStore* store() const { return store_; }
  const ShardedLruCache& memory() const { return memory_; }

  /// Sum of every per-dataset cache's counters.
  DatasetCache::Stats AggregateStats() const;

 private:
  ShardedLruCache memory_;
  ArtifactStore* store_;
  DistanceStorage storage_;
  mutable Mutex mu_;
  std::map<const Matrix*, std::unique_ptr<DatasetCache>> caches_
      GUARDED_BY(mu_);
};

}  // namespace cvcp

#endif  // CVCP_CORE_DATASET_CACHE_H_
