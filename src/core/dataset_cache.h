#ifndef CVCP_CORE_DATASET_CACHE_H_
#define CVCP_CORE_DATASET_CACHE_H_

/// \file
/// Per-dataset compute cache for the supervision-independent stages of the
/// CVCP pipeline. The paper's protocol runs one dataset through
/// G grid values × F folds × T trials, but the expensive geometry —
/// pairwise distances, OPTICS reachability, the OPTICSDend dendrogram —
/// depends only on (points, metric, param), never on the supervision or
/// the RNG. A `DatasetCache` therefore memoizes:
///
///   * one condensed `DistanceMatrix` per metric, built lazily by the
///     first caller (parallel `DistanceMatrix::Compute`) and shared by
///     every CVCP cell, selector sweep, and trial lane that follows;
///   * one `FoscOpticsModel` (OPTICS result + dendrogram) per
///     (metric, MinPts) key — with the cache, `ScoreGridOnFolds` runs
///     OPTICS once per grid value instead of once per (grid value, fold)
///     cell per trial.
///
/// Concurrency model — never block, duplicate on race: a caller that
/// finds its key missing builds the structure itself and the *first*
/// publisher wins; racing losers throw their (bitwise-identical) copy
/// away and adopt the published one. Blocking guards (`std::call_once`,
/// waiting on a shared future) are deliberately NOT used: under the
/// help-while-waiting scheduler (common/parallel.h) a thread that is
/// mid-build may adopt another queued cell, and if that cell blocked on
/// the very build suspended beneath it on the same stack, the process
/// would deadlock. Duplicate-on-race keeps every thread runnable at the
/// cost of at most one redundant build per racing thread on first touch —
/// and because the builds are deterministic, which copy wins is
/// unobservable in the results.
///
/// Determinism contract: the cache returns the *same doubles* the
/// uncached path computes — `DistanceMatrix::Compute` calls the same
/// `Distance()` the on-the-fly scans call, and OPTICS over the matrix is
/// the same algorithm over the same values — so every report, selection,
/// and experiment table is byte-identical with the cache on or off
/// (pinned by tests/cache_determinism_test.cc).
///
/// Lifetime: a cache instance borrows the points matrix; it must not
/// outlive the dataset it was created for. All methods are thread-safe.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "cluster/dendrogram.h"
#include "cluster/optics.h"
#include "common/distance.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/status.h"

namespace cvcp {

/// The supervision-independent model of one FOSC-OPTICSDend run: the
/// OPTICS cluster ordering and the reachability dendrogram built from it.
/// Identical for every fold and trial at the same (metric, MinPts), which
/// is exactly what makes it cacheable: constraints only enter at the FOSC
/// extraction stage (see FoscOpticsDendClusterer::ExtractWithSupervision).
struct FoscOpticsModel {
  OpticsResult optics;
  Dendrogram dendrogram;
};

/// Thread-safe, lazily-built cache of per-dataset structures. One
/// instance per dataset; shared by reference across every fold, grid
/// value, and trial that clusters that dataset.
class DatasetCache {
 public:
  /// Borrows `points` (no copy). The cache must not outlive it.
  explicit DatasetCache(const Matrix& points) : points_(&points) {}

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  const Matrix& points() const { return *points_; }

  /// The condensed pairwise distance matrix under `metric`. The first
  /// caller builds it with `DistanceMatrix::Compute` on `exec.threads`
  /// workers; later callers share the published matrix (O(1) lookups
  /// instead of O(d) distance evaluations). Racing first-touch callers
  /// each build and the first publisher wins (see file comment). The
  /// returned pointer keeps the matrix alive independent of the cache.
  std::shared_ptr<const DistanceMatrix> Distances(
      Metric metric, const ExecutionContext& exec);

  /// The memoized FOSC-OPTICSDend model for (metric, min_pts): OPTICS over
  /// the cached distance matrix plus the dendrogram. Build errors (e.g.
  /// min_pts out of range) are memoized too, so every caller sees exactly
  /// the status the uncached path would return.
  Result<std::shared_ptr<const FoscOpticsModel>> FoscModel(
      Metric metric, int min_pts, const ExecutionContext& exec);

  /// Cache effectiveness counters (for the bench_micro cache table). A
  /// "build" is a call that actually computed the structure — under a
  /// first-touch race several callers may build the same key, so builds
  /// can exceed the number of distinct keys; a "hit" is a call served
  /// from the published memo. Build wall times are summed per stage
  /// (every computed build counts, including racing duplicates).
  struct Stats {
    uint64_t distance_builds = 0;
    uint64_t distance_hits = 0;
    uint64_t model_builds = 0;
    uint64_t model_hits = 0;
    double distance_build_ms = 0.0;
    double model_build_ms = 0.0;
  };
  Stats stats() const;

 private:
  using ModelResult = Result<std::shared_ptr<const FoscOpticsModel>>;

  const Matrix* points_;

  mutable std::mutex mu_;
  std::map<Metric, std::shared_ptr<const DistanceMatrix>> distances_;
  std::map<std::pair<int, int>, ModelResult> models_;

  // Stats counters; the build counters/times are only touched around a
  // build and share `mu_`, the hot hit counters are atomic.
  std::atomic<uint64_t> distance_hits_{0};
  std::atomic<uint64_t> model_hits_{0};
  uint64_t distance_builds_ = 0;
  uint64_t model_builds_ = 0;
  double distance_build_ms_ = 0.0;
  double model_build_ms_ = 0.0;
};

}  // namespace cvcp

#endif  // CVCP_CORE_DATASET_CACHE_H_
