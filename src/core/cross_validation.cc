#include "core/cross_validation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "core/fmeasure.h"

namespace cvcp {

namespace {

/// One materialized (param, fold) clustering job.
struct CvCell {
  int param = 0;
  size_t fold = 0;
  Rng rng;  ///< pre-forked; identical to the serial loop's fork
};

/// What a cell job produces. `score` is the fold's constraint F-measure
/// (NaN when the fold had no test constraints); a non-OK `status` marks a
/// failed clustering run.
struct CvCellResult {
  Status status;
  double score = std::numeric_limits<double>::quiet_NaN();
  double wall_ms = 0.0;
};

/// Supervision size of a fold for the cost estimate: labeled training
/// objects in Scenario I, training constraints in Scenario II.
size_t FoldTrainSize(const FoldSplit& fold) {
  return fold.train_labels.empty() ? fold.train_constraints.size()
                                   : fold.train_objects.size();
}

/// The longest-first execution permutation of the cell list: cells sorted
/// by descending cost (prior timing when the model has one for the cell's
/// (param, fold), size estimate otherwise). stable_sort keeps equal-cost
/// cells in canonical (grid-order, fold-order) — the permutation is a
/// pure function of the inputs, never of wall clock or scheduling.
std::vector<size_t> CostSortedOrder(const std::vector<CvCell>& cells,
                                    const std::vector<FoldSplit>& folds,
                                    const CellCostModel& cost) {
  std::vector<size_t> order(cells.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::map<std::pair<int, int>, double> prior;
  for (const CvCellTiming& timing : cost.prior_timings) {
    prior[{timing.param, timing.fold}] = timing.wall_ms;
  }
  std::vector<double> estimate(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    const auto it = prior.find(
        {cells[c].param, static_cast<int>(cells[c].fold)});
    estimate[c] = it != prior.end()
                      ? it->second
                      : CellCostModel::EstimateCost(
                            cells[c].param,
                            FoldTrainSize(folds[cells[c].fold]));
  }
  std::stable_sort(order.begin(), order.end(), [&estimate](size_t a,
                                                           size_t b) {
    return estimate[a] > estimate[b];
  });
  return order;
}

}  // namespace

double CellCostModel::EstimateCost(int param, size_t train_size) {
  const double magnitude = param < 0 ? -static_cast<double>(param)
                                     : static_cast<double>(param);
  return (static_cast<double>(train_size) + 1.0) * (magnitude + 1.0);
}

Result<std::vector<FoldSplit>> MakeSupervisionFolds(
    const Dataset& data, const Supervision& supervision,
    const CvConfig& config, Rng* rng) {
  FoldConfig fold_config;
  fold_config.n_folds = config.n_folds;
  fold_config.stratified = config.stratified;
  if (supervision.kind() == SupervisionKind::kLabels) {
    return MakeLabelFolds(supervision.involved_objects(),
                          supervision.sparse_labels(), data.size(),
                          fold_config, rng);
  }
  return MakeConstraintFolds(supervision.constraints(), fold_config, rng);
}

Result<std::vector<CvScore>> ScoreGridOnFolds(
    const Dataset& data, const std::vector<FoldSplit>& folds,
    SupervisionKind kind, const SemiSupervisedClusterer& clusterer,
    const std::vector<int>& param_grid, Rng* rng,
    const ExecutionContext& exec, const CellCostModel& cost,
    DatasetCache* cache, std::vector<CvCellTiming>* timings) {
  const size_t n_folds = folds.size();
  const size_t n_cells = param_grid.size() * n_folds;
  if (timings != nullptr) timings->clear();
  // Already cancelled or past deadline: fail before materializing cells.
  CVCP_RETURN_IF_ERROR(exec.cancel.Check());

  // Materialize the grid×fold job list, pre-forking each cell's RNG in the
  // order the serial loop forks them. Fork() never consumes parent state,
  // so the cell streams are identical to serial execution's.
  std::vector<CvCell> cells;
  cells.reserve(n_cells);
  for (int param : param_grid) {
    for (size_t f = 0; f < n_folds; ++f) {
      cells.push_back(CvCell{
          param, f, rng->Fork((static_cast<uint64_t>(param) << 20) | f)});
    }
  }

  std::vector<CvCellResult> results(n_cells);
  // Any error discards all scores, so cells above the lowest failure are
  // skipped (see FirstErrorTracker for why that preserves which error the
  // in-order reduction returns).
  FirstErrorTracker first_error(n_cells);
  auto run_cell = [&](size_t c) {
    if (first_error.ShouldSkip(c)) return;
    // Cell boundary = cancellation boundary: a fired token fails this
    // cell (and, via the tracker, skips every later one) instead of
    // interrupting a clustering run mid-flight. Builds that publish into
    // the shared cache strip the token, so granularity stays here.
    const Status interrupted = exec.cancel.Check();
    if (!interrupted.ok()) {
      results[c].status = interrupted;
      first_error.Record(c);
      return;
    }
    const CvCell& cell = cells[c];
    const FoldSplit& fold = folds[cell.fold];
    const auto start = std::chrono::steady_clock::now();
    // Training supervision for this fold.
    Supervision train =
        kind == SupervisionKind::kLabels
            ? Supervision::FromLabelArray(fold.train_labels)
            : Supervision::FromConstraints(fold.train_constraints);
    Rng cell_rng = cell.rng;
    Result<Clustering> clustering = clusterer.Cluster(
        data, train, cell.param, &cell_rng, ClusterContext{cache, exec});
    CvCellResult& out = results[c];
    if (clustering.ok()) {
      out.score =
          EvaluateConstraintClassification(clustering.value(),
                                           fold.test_constraints)
              .average;
    } else {
      out.status = clustering.status();
      first_error.Record(c);
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  };

  if (exec.ResolvedThreads() <= 1) {
    // Exact serial path: cells in (grid-order, fold-order), stopping at the
    // first error like the pre-scheduler loop did.
    for (size_t c = 0; c < n_cells; ++c) {
      run_cell(c);
      if (!results[c].status.ok()) break;
    }
  } else if (cost.sort_by_cost) {
    // Longest-first execution: no expensive cell starts late and stretches
    // the fan-out's tail. Execution order is free to change — every cell
    // still writes its own slot, FirstErrorTracker never skips below the
    // lowest failure, and the reduction below stays in cell order — so
    // the report is bit-identical to any other schedule.
    const std::vector<size_t> order = CostSortedOrder(cells, folds, cost);
    ParallelFor(exec, n_cells, [&](size_t k) { run_cell(order[k]); });
  } else {
    ParallelFor(exec, n_cells, run_cell);
  }

  // A fired token may have made ParallelFor skip cells without any lane
  // recording a status (lanes stop claiming); re-check it before the
  // reduction so a cancelled sweep never returns partially-scored folds.
  // Cancellation is sticky, so this also wins deterministically over any
  // cell error when both are present.
  CVCP_RETURN_IF_ERROR(exec.cancel.Check());

  // Deterministic reduction: first error in cell order wins, matching what
  // the serial loop would have returned.
  for (const CvCellResult& result : results) {
    if (!result.status.ok()) return result.status;
  }

  if (timings != nullptr) {
    timings->reserve(n_cells);
    for (size_t c = 0; c < n_cells; ++c) {
      timings->push_back(CvCellTiming{cells[c].param,
                                      static_cast<int>(cells[c].fold),
                                      results[c].wall_ms});
    }
  }

  std::vector<CvScore> scores(param_grid.size());
  for (size_t g = 0; g < param_grid.size(); ++g) {
    CvScore& score = scores[g];
    score.fold_scores.reserve(n_folds);
    double sum = 0.0;
    for (size_t f = 0; f < n_folds; ++f) {
      const double fold_score = results[g * n_folds + f].score;
      score.fold_scores.push_back(fold_score);
      if (!std::isnan(fold_score)) {
        sum += fold_score;
        ++score.valid_folds;
      }
    }
    score.mean_f = score.valid_folds > 0
                       ? sum / static_cast<double>(score.valid_folds)
                       : std::numeric_limits<double>::quiet_NaN();
  }
  return scores;
}

Result<CvScore> ScoreParamOnFolds(const Dataset& data,
                                  const std::vector<FoldSplit>& folds,
                                  SupervisionKind kind,
                                  const SemiSupervisedClusterer& clusterer,
                                  int param, Rng* rng,
                                  const ExecutionContext& exec,
                                  DatasetCache* cache) {
  CVCP_ASSIGN_OR_RETURN(
      std::vector<CvScore> scores,
      ScoreGridOnFolds(data, folds, kind, clusterer, {param}, rng, exec,
                       CellCostModel{}, cache));
  return std::move(scores.front());
}

Result<CvScore> CrossValidateParam(const Dataset& data,
                                   const Supervision& supervision,
                                   const SemiSupervisedClusterer& clusterer,
                                   int param, const CvConfig& config,
                                   Rng* rng) {
  // Fork the fold/score streams exactly as RunCvcp does so both entry
  // points derive identical randomness from the same caller RNG.
  Rng fold_rng = rng->Fork(kFoldStreamId);
  CVCP_ASSIGN_OR_RETURN(
      std::vector<FoldSplit> folds,
      MakeSupervisionFolds(data, supervision, config, &fold_rng));
  Rng score_rng = rng->Fork(kScoreStreamId);
  return ScoreParamOnFolds(data, folds, supervision.kind(), clusterer, param,
                           &score_rng, config.exec);
}

}  // namespace cvcp
