#include "core/cross_validation.h"

#include <cmath>
#include <limits>

#include "core/fmeasure.h"

namespace cvcp {

Result<std::vector<FoldSplit>> MakeSupervisionFolds(
    const Dataset& data, const Supervision& supervision,
    const CvConfig& config, Rng* rng) {
  FoldConfig fold_config;
  fold_config.n_folds = config.n_folds;
  fold_config.stratified = config.stratified;
  if (supervision.kind() == SupervisionKind::kLabels) {
    return MakeLabelFolds(supervision.involved_objects(),
                          supervision.sparse_labels(), data.size(),
                          fold_config, rng);
  }
  return MakeConstraintFolds(supervision.constraints(), fold_config, rng);
}

Result<CvScore> ScoreParamOnFolds(const Dataset& data,
                                  const std::vector<FoldSplit>& folds,
                                  SupervisionKind kind,
                                  const SemiSupervisedClusterer& clusterer,
                                  int param, Rng* rng) {
  CvScore score;
  score.fold_scores.reserve(folds.size());
  double sum = 0.0;
  for (size_t f = 0; f < folds.size(); ++f) {
    const FoldSplit& fold = folds[f];
    // Training supervision for this fold.
    Supervision train =
        kind == SupervisionKind::kLabels
            ? Supervision::FromLabelArray(fold.train_labels)
            : Supervision::FromConstraints(fold.train_constraints);
    // Independent, reproducible randomness per (param, fold).
    Rng fold_rng = rng->Fork((static_cast<uint64_t>(param) << 20) | f);
    CVCP_ASSIGN_OR_RETURN(Clustering clustering,
                          clusterer.Cluster(data, train, param, &fold_rng));
    const ConstraintFMeasure fm =
        EvaluateConstraintClassification(clustering, fold.test_constraints);
    score.fold_scores.push_back(fm.average);
    if (!std::isnan(fm.average)) {
      sum += fm.average;
      ++score.valid_folds;
    }
  }
  score.mean_f = score.valid_folds > 0
                     ? sum / static_cast<double>(score.valid_folds)
                     : std::numeric_limits<double>::quiet_NaN();
  return score;
}

Result<CvScore> CrossValidateParam(const Dataset& data,
                                   const Supervision& supervision,
                                   const SemiSupervisedClusterer& clusterer,
                                   int param, const CvConfig& config,
                                   Rng* rng) {
  CVCP_ASSIGN_OR_RETURN(std::vector<FoldSplit> folds,
                        MakeSupervisionFolds(data, supervision, config, rng));
  return ScoreParamOnFolds(data, folds, supervision.kind(), clusterer, param,
                           rng);
}

}  // namespace cvcp
