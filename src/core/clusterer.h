#ifndef CVCP_CORE_CLUSTERER_H_
#define CVCP_CORE_CLUSTERER_H_

/// \file
/// The pluggable algorithm interface CVCP selects models for, plus the
/// adapters for the algorithms shipped with the library. A clusterer maps
/// (dataset, supervision, one integer parameter) to a flat clustering of
/// the *whole* dataset; CVCP sweeps the parameter.
///
/// Every run receives a `ClusterContext` carrying an optional per-dataset
/// `DatasetCache` (core/dataset_cache.h): algorithms whose early stages
/// are supervision-independent (FOSC-OPTICSDend's distances, OPTICS
/// ordering, and dendrogram) reuse those stages across the grid×fold×trial
/// sweep through the cache instead of recomputing them per cell. The cache
/// returns the same doubles the uncached path computes, so results are
/// byte-identical with or without it.

#include <memory>
#include <span>
#include <string>

#include "cluster/clustering.h"
#include "cluster/copkmeans.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "common/dataset.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/supervision.h"

namespace cvcp {

class DatasetCache;       // core/dataset_cache.h
struct FoscOpticsModel;   // core/dataset_cache.h

/// Per-run context threaded through `SemiSupervisedClusterer::Cluster`.
struct ClusterContext {
  /// Cache of supervision-independent per-dataset structures (distance
  /// matrix, OPTICS models). nullptr = compute everything from scratch;
  /// results are byte-identical either way.
  DatasetCache* cache = nullptr;
  /// Thread budget for one-off shared builds behind the cache (e.g. the
  /// first distance-matrix build). Serial by default.
  ExecutionContext exec = ExecutionContext::Serial();
};

/// A semi-supervised clustering algorithm with one integer hyperparameter.
class SemiSupervisedClusterer {
 public:
  virtual ~SemiSupervisedClusterer() = default;

  /// Display name ("FOSC-OPTICSDend", "MPCKMeans", ...).
  virtual std::string name() const = 0;

  /// What the swept parameter means ("MinPts", "k", ...).
  virtual std::string param_name() const = 0;

  /// Clusters all of `data` using the supervision. `context` optionally
  /// supplies the per-dataset compute cache; the default context runs
  /// cache-less and produces identical results.
  Result<Clustering> Cluster(const Dataset& data,
                             const Supervision& supervision, int param,
                             Rng* rng,
                             const ClusterContext& context = {}) const {
    return DoCluster(data, supervision, param, rng, context);
  }

  /// True for centroid-style algorithms whose output the Silhouette
  /// baseline is meaningful for (paper §4.3 uses Silhouette only for
  /// MPCKMeans).
  virtual bool IsCentroidBased() const { return false; }

  /// Pre-builds (or pre-loads, when a disk tier is configured) every
  /// supervision-independent artifact the grid sweep will need into
  /// `cache`, so the grid×fold×trial fan-out that follows only ever
  /// hits. Default: no-op — most algorithms have nothing cacheable.
  /// No-op on a null cache. Per-param build errors are memoized in the
  /// cache, not surfaced here; the sweep reports them per cell exactly as
  /// a cold cache would.
  virtual void PrewarmCache(const Dataset& data,
                            std::span<const int> param_grid,
                            DatasetCache* cache,
                            const ExecutionContext& exec) const;

 protected:
  /// Implementation hook for Cluster. Implementations may ignore
  /// `context`; ones that use the cache must return byte-identical results
  /// with and without it (the engine's determinism contract).
  virtual Result<Clustering> DoCluster(const Dataset& data,
                                       const Supervision& supervision,
                                       int param, Rng* rng,
                                       const ClusterContext& context) const = 0;
};

/// FOSC-OPTICSDend (param = MinPts): OPTICS ordering -> reachability
/// dendrogram -> FOSC extraction under the constraint objective. The
/// OPTICS + dendrogram stage is supervision-independent and split out as
/// `BuildModel` so the per-dataset cache can share it across all folds and
/// trials of a parameter value; `ExtractWithSupervision` is the only stage
/// that sees the constraints.
class FoscOpticsDendClusterer : public SemiSupervisedClusterer {
 public:
  explicit FoscOpticsDendClusterer(FoscConfig fosc = {},
                                   Metric metric = Metric::kEuclidean)
      : fosc_(fosc), metric_(metric) {}

  std::string name() const override { return "FOSC-OPTICSDend"; }
  std::string param_name() const override { return "MinPts"; }

  /// The supervision-independent stage: OPTICS at MinPts = `param` plus
  /// the OPTICSDend dendrogram. Uncached entry point; `DoCluster` goes
  /// through `DatasetCache::FoscModel` (which builds the identical model
  /// from the cached distance matrix) when a cache is available. `kernel`
  /// selects the distance kernels (must match the cached path's policy
  /// for byte-identical results).
  Result<FoscOpticsModel> BuildModel(const Dataset& data, int param,
                                     DistanceKernelPolicy kernel =
                                         DistanceKernelPolicy::kDefault) const;

  /// The supervision-dependent stage: FOSC extraction of a flat clustering
  /// from the model's dendrogram under the constraint objective.
  Result<Clustering> ExtractWithSupervision(
      const FoscOpticsModel& model, const Supervision& supervision) const;

  Metric metric() const { return metric_; }

  /// Warms the cache's distance matrix and every grid model — the whole
  /// supervision-independent phase — before the fan-out.
  void PrewarmCache(const Dataset& data, std::span<const int> param_grid,
                    DatasetCache* cache,
                    const ExecutionContext& exec) const override;

 protected:
  Result<Clustering> DoCluster(const Dataset& data,
                               const Supervision& supervision, int param,
                               Rng* rng,
                               const ClusterContext& context) const override;

 private:
  FoscConfig fosc_;
  Metric metric_;
};

/// MPCKMeans (param = k).
class MpckMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit MpckMeansClusterer(MpckMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "MPCKMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }

 protected:
  Result<Clustering> DoCluster(const Dataset& data,
                               const Supervision& supervision, int param,
                               Rng* rng,
                               const ClusterContext& context) const override;

 private:
  MpckMeansConfig base_;
};

/// COP-KMeans (param = k); hard constraints, used by the extension bench.
/// Infeasible runs fall back to unconstrained k-means so model selection
/// always receives a clustering (recorded via `fallbacks` counters by the
/// caller if needed).
class CopKMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit CopKMeansClusterer(CopKMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "COP-KMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }

 protected:
  Result<Clustering> DoCluster(const Dataset& data,
                               const Supervision& supervision, int param,
                               Rng* rng,
                               const ClusterContext& context) const override;

 private:
  CopKMeansConfig base_;
};

/// Plain k-means (param = k), ignoring supervision — the unsupervised
/// control.
class KMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit KMeansClusterer(KMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "KMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }

 protected:
  Result<Clustering> DoCluster(const Dataset& data,
                               const Supervision& supervision, int param,
                               Rng* rng,
                               const ClusterContext& context) const override;

 private:
  KMeansConfig base_;
};

}  // namespace cvcp

#endif  // CVCP_CORE_CLUSTERER_H_
