#ifndef CVCP_CORE_CLUSTERER_H_
#define CVCP_CORE_CLUSTERER_H_

/// \file
/// The pluggable algorithm interface CVCP selects models for, plus the
/// adapters for the algorithms shipped with the library. A clusterer maps
/// (dataset, supervision, one integer parameter) to a flat clustering of
/// the *whole* dataset; CVCP sweeps the parameter.

#include <memory>
#include <string>

#include "cluster/clustering.h"
#include "cluster/copkmeans.h"
#include "cluster/fosc.h"
#include "cluster/kmeans.h"
#include "cluster/mpckmeans.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/supervision.h"

namespace cvcp {

/// A semi-supervised clustering algorithm with one integer hyperparameter.
class SemiSupervisedClusterer {
 public:
  virtual ~SemiSupervisedClusterer() = default;

  /// Display name ("FOSC-OPTICSDend", "MPCKMeans", ...).
  virtual std::string name() const = 0;

  /// What the swept parameter means ("MinPts", "k", ...).
  virtual std::string param_name() const = 0;

  /// Clusters all of `data` using the supervision.
  virtual Result<Clustering> Cluster(const Dataset& data,
                                     const Supervision& supervision, int param,
                                     Rng* rng) const = 0;

  /// True for centroid-style algorithms whose output the Silhouette
  /// baseline is meaningful for (paper §4.3 uses Silhouette only for
  /// MPCKMeans).
  virtual bool IsCentroidBased() const { return false; }
};

/// FOSC-OPTICSDend (param = MinPts): OPTICS ordering -> reachability
/// dendrogram -> FOSC extraction under the constraint objective.
class FoscOpticsDendClusterer : public SemiSupervisedClusterer {
 public:
  explicit FoscOpticsDendClusterer(FoscConfig fosc = {},
                                   Metric metric = Metric::kEuclidean)
      : fosc_(fosc), metric_(metric) {}

  std::string name() const override { return "FOSC-OPTICSDend"; }
  std::string param_name() const override { return "MinPts"; }
  Result<Clustering> Cluster(const Dataset& data,
                             const Supervision& supervision, int param,
                             Rng* rng) const override;

 private:
  FoscConfig fosc_;
  Metric metric_;
};

/// MPCKMeans (param = k).
class MpckMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit MpckMeansClusterer(MpckMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "MPCKMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }
  Result<Clustering> Cluster(const Dataset& data,
                             const Supervision& supervision, int param,
                             Rng* rng) const override;

 private:
  MpckMeansConfig base_;
};

/// COP-KMeans (param = k); hard constraints, used by the extension bench.
/// Infeasible runs fall back to unconstrained k-means so model selection
/// always receives a clustering (recorded via `fallbacks` counters by the
/// caller if needed).
class CopKMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit CopKMeansClusterer(CopKMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "COP-KMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }
  Result<Clustering> Cluster(const Dataset& data,
                             const Supervision& supervision, int param,
                             Rng* rng) const override;

 private:
  CopKMeansConfig base_;
};

/// Plain k-means (param = k), ignoring supervision — the unsupervised
/// control.
class KMeansClusterer : public SemiSupervisedClusterer {
 public:
  explicit KMeansClusterer(KMeansConfig base = {}) : base_(base) {}

  std::string name() const override { return "KMeans"; }
  std::string param_name() const override { return "k"; }
  bool IsCentroidBased() const override { return true; }
  Result<Clustering> Cluster(const Dataset& data,
                             const Supervision& supervision, int param,
                             Rng* rng) const override;

 private:
  KMeansConfig base_;
};

}  // namespace cvcp

#endif  // CVCP_CORE_CLUSTERER_H_
