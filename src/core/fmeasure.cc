#include "core/fmeasure.h"

#include <cmath>
#include <limits>

namespace cvcp {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Precision/recall/F for one class given its TP/FP/FN. A ratio with a
/// zero denominator is 0 (the conventional convention when the class has
/// real examples, which the caller guarantees).
void ClassScores(size_t tp, size_t fp, size_t fn, double* precision,
                 double* recall, double* f) {
  *precision = (tp + fp) == 0
                   ? 0.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fp);
  *recall = (tp + fn) == 0
                ? 0.0
                : static_cast<double>(tp) / static_cast<double>(tp + fn);
  *f = (*precision + *recall) == 0.0
           ? 0.0
           : 2.0 * *precision * *recall / (*precision + *recall);
}

}  // namespace

ConstraintFMeasure EvaluateConstraintClassification(
    const Clustering& clustering, const ConstraintSet& test_constraints) {
  ConstraintFMeasure r;
  for (const Constraint& c : test_constraints.all()) {
    // Both endpoints must be validated: endpoints are normalized a < b on
    // Add(), but Constraint is an aggregate, so a corrupt or hand-built
    // constraint can violate the invariant and index out of bounds.
    CVCP_CHECK_LT(c.a, clustering.size());
    CVCP_CHECK_LT(c.b, clustering.size());
    const bool together = clustering.SameCluster(c.a, c.b);
    if (c.type == ConstraintType::kMustLink) {
      together ? ++r.ml_together : ++r.ml_apart;
    } else {
      together ? ++r.cl_together : ++r.cl_apart;
    }
  }

  const bool has_must = r.ml_together + r.ml_apart > 0;
  const bool has_cannot = r.cl_together + r.cl_apart > 0;

  if (has_must) {
    // Class 1 (must-link): positive prediction = "together".
    // FP1 = cannot-links predicted together; FN1 = must-links apart.
    ClassScores(r.ml_together, r.cl_together, r.ml_apart, &r.precision_must,
                &r.recall_must, &r.f_must);
  } else {
    r.precision_must = r.recall_must = r.f_must = kNaN;
  }
  if (has_cannot) {
    // Class 0 (cannot-link): positive prediction = "apart".
    // FP0 = must-links predicted apart; FN0 = cannot-links together.
    ClassScores(r.cl_apart, r.ml_apart, r.cl_together, &r.precision_cannot,
                &r.recall_cannot, &r.f_cannot);
  } else {
    r.precision_cannot = r.recall_cannot = r.f_cannot = kNaN;
  }

  if (has_must && has_cannot) {
    r.average = 0.5 * (r.f_must + r.f_cannot);
  } else if (has_must) {
    r.average = r.f_must;
  } else if (has_cannot) {
    r.average = r.f_cannot;
  } else {
    r.average = kNaN;
  }
  return r;
}

}  // namespace cvcp
