#include "core/supervision.h"

#include <algorithm>

namespace cvcp {

Supervision Supervision::FromLabels(const Dataset& data,
                                    std::vector<size_t> labeled_objects) {
  CVCP_CHECK(data.has_labels());
  std::sort(labeled_objects.begin(), labeled_objects.end());
  Supervision s;
  s.kind_ = SupervisionKind::kLabels;
  s.sparse_labels_.assign(data.size(), -1);
  for (size_t o : labeled_objects) {
    CVCP_CHECK_LT(o, data.size());
    s.sparse_labels_[o] = data.label(o);
  }
  s.constraints_ =
      ConstraintSet::FromLabels(s.sparse_labels_, labeled_objects);
  s.involved_objects_ = std::move(labeled_objects);
  return s;
}

Supervision Supervision::FromLabelArray(std::vector<int> sparse_labels) {
  Supervision s;
  s.kind_ = SupervisionKind::kLabels;
  for (size_t o = 0; o < sparse_labels.size(); ++o) {
    if (sparse_labels[o] >= 0) s.involved_objects_.push_back(o);
  }
  s.constraints_ =
      ConstraintSet::FromLabels(sparse_labels, s.involved_objects_);
  s.sparse_labels_ = std::move(sparse_labels);
  return s;
}

Supervision Supervision::FromConstraints(ConstraintSet constraints) {
  Supervision s;
  s.kind_ = SupervisionKind::kConstraints;
  s.involved_objects_ = constraints.InvolvedObjects();
  s.constraints_ = std::move(constraints);
  return s;
}

std::vector<bool> Supervision::InvolvementMask(size_t n) const {
  std::vector<bool> mask(n, false);
  for (size_t o : involved_objects_) {
    CVCP_CHECK_LT(o, n);
    mask[o] = true;
  }
  return mask;
}

}  // namespace cvcp
