#include "core/clusterer.h"

#include "cluster/dendrogram.h"
#include "cluster/optics.h"
#include "core/dataset_cache.h"

namespace cvcp {

void SemiSupervisedClusterer::PrewarmCache(const Dataset& data,
                                           std::span<const int> param_grid,
                                           DatasetCache* cache,
                                           const ExecutionContext& exec) const {
  (void)data;
  (void)param_grid;
  (void)cache;
  (void)exec;
}

void FoscOpticsDendClusterer::PrewarmCache(const Dataset& data,
                                           std::span<const int> param_grid,
                                           DatasetCache* cache,
                                           const ExecutionContext& exec) const {
  (void)data;  // the cache already fronts the dataset's points
  if (cache == nullptr) return;
  cache->Prewarm(metric_, param_grid, exec);
}

Result<FoscOpticsModel> FoscOpticsDendClusterer::BuildModel(
    const Dataset& data, int param, DistanceKernelPolicy kernel) const {
  OpticsConfig optics_config;
  optics_config.min_pts = param;
  optics_config.metric = metric_;
  optics_config.kernel = kernel;
  CVCP_ASSIGN_OR_RETURN(OpticsResult optics,
                        RunOptics(data.points(), optics_config));
  FoscOpticsModel model;
  model.optics = std::move(optics);
  model.dendrogram = Dendrogram::FromReachability(model.optics);
  return model;
}

Result<Clustering> FoscOpticsDendClusterer::ExtractWithSupervision(
    const FoscOpticsModel& model, const Supervision& supervision) const {
  CVCP_ASSIGN_OR_RETURN(
      FoscResult fosc,
      ExtractClusters(model.dendrogram, supervision.constraints(), fosc_));
  return fosc.clustering;
}

Result<Clustering> FoscOpticsDendClusterer::DoCluster(
    const Dataset& data, const Supervision& supervision, int param, Rng* rng,
    const ClusterContext& context) const {
  (void)rng;  // the pipeline is deterministic
  if (context.cache != nullptr) {
    // Memoized supervision-independent model: OPTICS runs once per
    // (metric, MinPts) for the dataset instead of once per fold×trial.
    CVCP_ASSIGN_OR_RETURN(
        std::shared_ptr<const FoscOpticsModel> model,
        context.cache->FoscModel(metric_, param, context.exec));
    return ExtractWithSupervision(*model, supervision);
  }
  CVCP_ASSIGN_OR_RETURN(
      FoscOpticsModel model,
      BuildModel(data, param, context.exec.distance_kernel));
  return ExtractWithSupervision(model, supervision);
}

Result<Clustering> MpckMeansClusterer::DoCluster(
    const Dataset& data, const Supervision& supervision, int param, Rng* rng,
    const ClusterContext& context) const {
  MpckMeansConfig config = base_;
  config.k = param;
  config.kernel = context.exec.distance_kernel;
  CVCP_ASSIGN_OR_RETURN(
      MpckMeansResult result,
      RunMpckMeans(data.points(), supervision.constraints(), config, rng));
  return result.clustering;
}

Result<Clustering> CopKMeansClusterer::DoCluster(
    const Dataset& data, const Supervision& supervision, int param, Rng* rng,
    const ClusterContext& context) const {
  CopKMeansConfig config = base_;
  config.k = param;
  config.kernel = context.exec.distance_kernel;
  Result<CopKMeansResult> result =
      RunCopKMeans(data.points(), supervision.constraints(), config, rng);
  if (result.ok()) return std::move(result).value().clustering;
  if (result.status().code() != StatusCode::kInfeasible) {
    return result.status();
  }
  // Hard constraints dead-ended: degrade to unconstrained k-means rather
  // than aborting the whole model-selection sweep.
  KMeansConfig km;
  km.k = param;
  km.kernel = config.kernel;
  CVCP_ASSIGN_OR_RETURN(KMeansResult fallback,
                        RunKMeans(data.points(), km, rng));
  return fallback.clustering;
}

Result<Clustering> KMeansClusterer::DoCluster(
    const Dataset& data, const Supervision& supervision, int param, Rng* rng,
    const ClusterContext& context) const {
  (void)supervision;
  KMeansConfig config = base_;
  config.k = param;
  config.kernel = context.exec.distance_kernel;
  CVCP_ASSIGN_OR_RETURN(KMeansResult result,
                        RunKMeans(data.points(), config, rng));
  return result.clustering;
}

}  // namespace cvcp
