#include "core/clusterer.h"

#include "cluster/dendrogram.h"
#include "cluster/optics.h"

namespace cvcp {

Result<Clustering> FoscOpticsDendClusterer::Cluster(
    const Dataset& data, const Supervision& supervision, int param,
    Rng* rng) const {
  (void)rng;  // the pipeline is deterministic
  OpticsConfig optics_config;
  optics_config.min_pts = param;
  optics_config.metric = metric_;
  CVCP_ASSIGN_OR_RETURN(OpticsResult optics,
                        RunOptics(data.points(), optics_config));
  const Dendrogram dendrogram = Dendrogram::FromReachability(optics);
  CVCP_ASSIGN_OR_RETURN(
      FoscResult fosc,
      ExtractClusters(dendrogram, supervision.constraints(), fosc_));
  return fosc.clustering;
}

Result<Clustering> MpckMeansClusterer::Cluster(const Dataset& data,
                                               const Supervision& supervision,
                                               int param, Rng* rng) const {
  MpckMeansConfig config = base_;
  config.k = param;
  CVCP_ASSIGN_OR_RETURN(
      MpckMeansResult result,
      RunMpckMeans(data.points(), supervision.constraints(), config, rng));
  return result.clustering;
}

Result<Clustering> CopKMeansClusterer::Cluster(const Dataset& data,
                                               const Supervision& supervision,
                                               int param, Rng* rng) const {
  CopKMeansConfig config = base_;
  config.k = param;
  Result<CopKMeansResult> result =
      RunCopKMeans(data.points(), supervision.constraints(), config, rng);
  if (result.ok()) return std::move(result).value().clustering;
  if (result.status().code() != StatusCode::kInfeasible) {
    return result.status();
  }
  // Hard constraints dead-ended: degrade to unconstrained k-means rather
  // than aborting the whole model-selection sweep.
  KMeansConfig km;
  km.k = param;
  CVCP_ASSIGN_OR_RETURN(KMeansResult fallback,
                        RunKMeans(data.points(), km, rng));
  return fallback.clustering;
}

Result<Clustering> KMeansClusterer::Cluster(const Dataset& data,
                                            const Supervision& supervision,
                                            int param, Rng* rng) const {
  (void)supervision;
  KMeansConfig config = base_;
  config.k = param;
  CVCP_ASSIGN_OR_RETURN(KMeansResult result,
                        RunKMeans(data.points(), config, rng));
  return result.clustering;
}

}  // namespace cvcp
