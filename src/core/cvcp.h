#ifndef CVCP_CORE_CVCP_H_
#define CVCP_CORE_CVCP_H_

/// \file
/// CVCP — "Cross-Validation for finding Clustering Parameters" — the
/// paper's model-selection framework (§3, steps 1-4):
///
///   1. score every candidate parameter value by sound n-fold CV, treating
///      the produced partition as a classifier for the held-out
///      constraints;
///   2. (repeat over the grid — same folds for every value);
///   3. select the value with the highest mean constraint F-measure, ties
///      broken toward the earlier grid entry;
///   4. re-run the clusterer with the *full* supervision at the selected
///      value.

#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/cross_validation.h"

namespace cvcp {

/// CVCP configuration: the CV protocol and the candidate grid. Parallelism
/// is configured through `cv.exec` and the cell execution order through
/// `cv.cost`; any thread count and any execution order yield bit-identical
/// reports.
struct CvcpConfig {
  CvConfig cv;
  std::vector<int> param_grid;
  /// Record per-(param, fold) wall time in CvcpReport::cell_timings.
  bool collect_timings = false;
};

/// Cross-validated quality of one grid value.
struct CvcpParamScore {
  int param = 0;
  double score = 0.0;  ///< mean constraint F over valid folds (NaN if none)
  int valid_folds = 0;
};

/// Full CVCP outcome.
struct CvcpReport {
  /// Per-grid-value scores, in grid order.
  std::vector<CvcpParamScore> scores;
  /// Selected parameter (step 3) and its score.
  int best_param = 0;
  double best_score = 0.0;
  /// Step 4: clustering of the whole dataset with all supervision at
  /// best_param.
  Clustering final_clustering;
  /// Per-cell wall time in (grid-order, fold-order); only filled when
  /// CvcpConfig::collect_timings is set. Timing values depend on machine
  /// load — everything else in the report is deterministic. Feed these
  /// into CellCostModel::prior_timings (`cv.cost`) of a later run on the
  /// same grid to schedule its cells measured-longest-first.
  std::vector<CvCellTiming> cell_timings;
};

/// Runs CVCP. Errors with kInvalidArgument for an empty grid, propagates
/// fold-construction errors (e.g. too little supervision for n folds), and
/// errors with kFailedPrecondition if no grid value produced a valid score.
/// `cache`, when non-null, is the dataset's compute cache
/// (core/dataset_cache.h): every grid×fold cell and the final
/// full-supervision run share its supervision-independent structures, so
/// e.g. FOSC-OPTICSDend runs OPTICS G times instead of G×F+1 times. The
/// report is byte-identical with the cache on or off.
Result<CvcpReport> RunCvcp(const Dataset& data, const Supervision& supervision,
                           const SemiSupervisedClusterer& clusterer,
                           const CvcpConfig& config, Rng* rng,
                           DatasetCache* cache = nullptr);

}  // namespace cvcp

#endif  // CVCP_CORE_CVCP_H_
