#ifndef CVCP_CORE_FMEASURE_H_
#define CVCP_CORE_FMEASURE_H_

/// \file
/// The paper's classification view of constraint satisfaction (§3.2): a
/// clustering is a binary classifier over pairs — "same cluster" predicts
/// must-link (class 1), "different clusters" predicts cannot-link
/// (class 0). Per-class precision/recall/F are computed from the test
/// constraints and the *average of the two class F-measures* is the
/// internal quality score CVCP maximizes.
///
/// Noise objects are singletons, so any pair touching noise is classified
/// "not together" (DESIGN.md §6). A class with no constraints in the test
/// fold is excluded from the average; if both classes are empty the score
/// is NaN and the fold is skipped by the CV driver.

#include "cluster/clustering.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// Outcome counts and derived scores of classifying one test fold's
/// constraints with a clustering.
struct ConstraintFMeasure {
  // Raw pair outcomes.
  size_t ml_together = 0;  ///< must-link satisfied  (TP of class 1)
  size_t ml_apart = 0;     ///< must-link violated   (FN of class 1)
  size_t cl_apart = 0;     ///< cannot-link satisfied (TP of class 0)
  size_t cl_together = 0;  ///< cannot-link violated  (FN of class 0)

  // Class 1 = must-link.
  double precision_must = 0.0;
  double recall_must = 0.0;
  double f_must = 0.0;  ///< NaN if the fold has no must-links

  // Class 0 = cannot-link.
  double precision_cannot = 0.0;
  double recall_cannot = 0.0;
  double f_cannot = 0.0;  ///< NaN if the fold has no cannot-links

  /// Mean of the defined class F-measures; NaN if neither is defined.
  double average = 0.0;
};

/// Classifies `test_constraints` with `clustering` and scores the result.
ConstraintFMeasure EvaluateConstraintClassification(
    const Clustering& clustering, const ConstraintSet& test_constraints);

}  // namespace cvcp

#endif  // CVCP_CORE_FMEASURE_H_
