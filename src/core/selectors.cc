#include "core/selectors.h"

#include <cmath>
#include <limits>

#include "cluster/silhouette.h"
#include "core/dataset_cache.h"

namespace cvcp {

Result<SilhouetteSelection> SelectBySilhouette(
    const Dataset& data, const Supervision& supervision,
    const SemiSupervisedClusterer& clusterer, std::span<const int> param_grid,
    Rng* rng, const ClusterContext& context) {
  if (param_grid.empty()) {
    return Status::InvalidArgument(
        "silhouette selection needs a non-empty parameter grid");
  }
  SilhouetteSelection sel;
  sel.silhouettes.reserve(param_grid.size());
  bool have_best = false;
  for (size_t gi = 0; gi < param_grid.size(); ++gi) {
    const int param = param_grid[gi];
    // Fork by grid *index*, not value: duplicate grid entries must get
    // independent streams, negative params must not wrap through the
    // uint64_t cast, and the harness's full-supervision sweep forks by
    // index — same rng, same position, same clustering in both.
    Rng run_rng = rng->Fork(gi);
    CVCP_ASSIGN_OR_RETURN(
        Clustering clustering,
        clusterer.Cluster(data, supervision, param, &run_rng, context));
    // Same doubles either way: the cached matrix holds exactly the
    // distances the on-the-fly scan computes, in the same positions.
    const double sil =
        context.cache != nullptr
            ? SilhouetteCoefficient(
                  *context.cache->Distances(Metric::kEuclidean, context.exec),
                  clustering)
            : SilhouetteCoefficient(data.points(), clustering,
                                    Metric::kEuclidean,
                                    context.exec.distance_kernel);
    sel.silhouettes.push_back(sil);
    if (!std::isnan(sil) && (!have_best || sil > sel.best_silhouette)) {
      sel.best_silhouette = sil;
      sel.best_param = param;
      sel.best_clustering = std::move(clustering);
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::FailedPrecondition(
        "silhouette undefined for every grid value");
  }
  return sel;
}

double ExpectedQuality(std::span<const double> external_scores) {
  double sum = 0.0;
  size_t count = 0;
  for (double s : external_scores) {
    if (!std::isnan(s)) {
      sum += s;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count)
                   : std::numeric_limits<double>::quiet_NaN();
}

int OracleIndex(std::span<const double> external_scores) {
  int best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < external_scores.size(); ++i) {
    if (!std::isnan(external_scores[i]) && external_scores[i] > best_score) {
      best_score = external_scores[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace cvcp
