#ifndef CVCP_CORE_SUPERVISION_H_
#define CVCP_CORE_SUPERVISION_H_

/// \file
/// The partial information a user provides to a semi-supervised clustering
/// run: either a subset of labeled objects (paper Scenario I) or a set of
/// pairwise constraints (Scenario II). Constraints are always available —
/// derived from the labels in the label case — so constraint-based
/// algorithms work in both scenarios; label-based algorithms additionally
/// get the sparse label array in Scenario I.

#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "constraints/constraint_set.h"

namespace cvcp {

/// Which kind of supervision the user provided.
enum class SupervisionKind {
  kLabels,       ///< Scenario I
  kConstraints,  ///< Scenario II
};

/// Value type holding one trial's supervision.
class Supervision {
 public:
  /// Scenario I from a labeled dataset and the chosen object subset.
  static Supervision FromLabels(const Dataset& data,
                                std::vector<size_t> labeled_objects);

  /// Scenario I from a sparse label array (-1 = unlabeled), e.g. a CV
  /// fold's training labels.
  static Supervision FromLabelArray(std::vector<int> sparse_labels);

  /// Scenario II.
  static Supervision FromConstraints(ConstraintSet constraints);

  SupervisionKind kind() const { return kind_; }

  /// Pairwise constraints (derived all-pairs in Scenario I).
  const ConstraintSet& constraints() const { return constraints_; }

  /// Scenario I: dataset-sized array, -1 for unlabeled. Empty in
  /// Scenario II.
  const std::vector<int>& sparse_labels() const { return sparse_labels_; }

  /// Objects carrying supervision: the labeled objects (Scenario I) or the
  /// constraint-involved objects (Scenario II). Sorted.
  const std::vector<size_t>& involved_objects() const {
    return involved_objects_;
  }

  /// Dataset-sized mask of involved objects — the objects the external
  /// evaluation must set aside (paper §4.1).
  std::vector<bool> InvolvementMask(size_t n) const;

 private:
  Supervision() = default;

  SupervisionKind kind_ = SupervisionKind::kConstraints;
  ConstraintSet constraints_;
  std::vector<int> sparse_labels_;
  std::vector<size_t> involved_objects_;
};

}  // namespace cvcp

#endif  // CVCP_CORE_SUPERVISION_H_
