#ifndef CVCP_CORE_SELECTORS_H_
#define CVCP_CORE_SELECTORS_H_

/// \file
/// The paper's comparison selectors (§4.3): the Silhouette-coefficient
/// baseline for centroid algorithms, and the "expected quality" of a
/// uniformly random guess over the grid. An oracle selector (argmax of the
/// external measure) is included as an upper bound for the benches.

#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/clusterer.h"

namespace cvcp {

/// Outcome of silhouette-based model selection.
struct SilhouetteSelection {
  int best_param = 0;
  double best_silhouette = 0.0;
  /// Per-grid-value silhouettes (NaN where undefined, e.g. single cluster).
  std::vector<double> silhouettes;
  /// The clustering produced at best_param (full supervision).
  Clustering best_clustering;
};

/// Runs the clusterer with full supervision at every grid value and picks
/// the clustering with the highest silhouette coefficient. Each run's RNG
/// is forked from `rng` by grid *index* — the same scheme as the bench
/// harness's full-supervision sweep, so both entry points produce the same
/// clustering at the same grid position. When `context` carries a
/// DatasetCache, every run clusters through it and the silhouettes are
/// computed against its cached distance matrix (O(1) lookups instead of
/// O(d) distance evaluations per pair) — the selection is byte-identical
/// either way. Errors with kInvalidArgument for an empty grid and
/// kFailedPrecondition if every silhouette is undefined.
Result<SilhouetteSelection> SelectBySilhouette(
    const Dataset& data, const Supervision& supervision,
    const SemiSupervisedClusterer& clusterer, std::span<const int> param_grid,
    Rng* rng, const ClusterContext& context = {});

/// Expected quality of guessing the parameter uniformly from the grid:
/// the mean of `external_scores` ignoring NaNs (paper §4.3). NaN if all
/// entries are NaN.
double ExpectedQuality(std::span<const double> external_scores);

/// Oracle: index of the best (max, NaN-skipping) external score; -1 if all
/// NaN.
int OracleIndex(std::span<const double> external_scores);

}  // namespace cvcp

#endif  // CVCP_CORE_SELECTORS_H_
