// Quickstart: select k for MPCKMeans with CVCP on synthetic blobs.
//
// Generates 4 Gaussian blobs, samples 10% of the objects as labeled
// supervision, lets CVCP pick k from {2..8} by sound cross-validation over
// the derived constraints, and compares the chosen model against the
// ground truth.

#include <cstdio>

#include "common/rng.h"
#include "core/cvcp.h"
#include "constraints/oracle.h"
#include "data/generators.h"
#include "eval/external_measures.h"

int main() {
  cvcp::Rng rng(/*seed=*/42);

  // 1. Data: 4 blobs of 40 points at the corners of a square.
  std::vector<cvcp::GaussianClusterSpec> specs(4);
  specs[0].mean = {0.0, 0.0};
  specs[1].mean = {12.0, 0.0};
  specs[2].mean = {0.0, 12.0};
  specs[3].mean = {12.0, 12.0};
  for (auto& spec : specs) {
    spec.stddevs = {1.0};
    spec.size = 40;
  }
  cvcp::Dataset data =
      cvcp::MakeGaussianMixture("quickstart-blobs", specs, &rng);

  // 2. Supervision: labels for 10% of the objects (Scenario I).
  auto labeled = cvcp::SampleLabeledObjects(data, 0.10, &rng);
  if (!labeled.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 labeled.status().ToString().c_str());
    return 1;
  }
  cvcp::Supervision supervision =
      cvcp::Supervision::FromLabels(data, labeled.value());
  std::printf("dataset: %zu points, %d classes, %zu labeled objects\n",
              data.size(), data.NumClasses(),
              supervision.involved_objects().size());

  // 3. CVCP: pick k for MPCKMeans from {2..8} with 5-fold CV. The grid×fold
  //    cells run on all hardware threads by default (cv.exec.threads = 0);
  //    any thread count returns a bit-identical report.
  cvcp::MpckMeansClusterer clusterer;
  cvcp::CvcpConfig config;
  config.cv.n_folds = 5;
  config.cv.exec.threads = 0;  // 0 = all hardware threads, 1 = serial
  config.param_grid = {2, 3, 4, 5, 6, 7, 8};
  auto report = cvcp::RunCvcp(data, supervision, clusterer, config, &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "CVCP failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n   k   CV constraint F-measure\n");
  for (const auto& s : report->scores) {
    std::printf("  %2d   %.4f%s\n", s.param, s.score,
                s.param == report->best_param ? "   <- selected" : "");
  }

  // 4. External check (not available to CVCP): Overall F vs ground truth on
  //    the objects not involved in supervision.
  std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  const double overall_f = cvcp::OverallFMeasure(
      data.labels(), report->final_clustering, &exclude);
  std::printf("\nselected k=%d; Overall F-Measure vs ground truth: %.4f\n",
              report->best_param, overall_f);
  std::printf("(true number of classes: %d)\n", data.NumClasses());
  return 0;
}
