// COP-KMeans under CVCP (the paper's future-work direction): hard
// constraint enforcement instead of MPCKMeans' soft penalties. Also shows
// the failure mode soft methods don't have — infeasibility — and how the
// library reports it through Status instead of crashing.

#include <cstdio>

#include "cluster/copkmeans.h"
#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "data/generators.h"
#include "eval/external_measures.h"

int main() {
  cvcp::Rng rng(17);
  cvcp::Dataset data = cvcp::MakeBlobs("cop-demo", 3, 40, 2, 25.0, 1.5, &rng);

  // --- Infeasibility demo: 4 mutually cannot-linked points, k = 3. ---
  {
    cvcp::ConstraintSet impossible;
    const std::vector<size_t> objs = {0, 40, 80, 5};
    for (size_t i = 0; i < objs.size(); ++i) {
      for (size_t j = i + 1; j < objs.size(); ++j) {
        (void)impossible.AddCannotLink(objs[i], objs[j]);
      }
    }
    cvcp::CopKMeansConfig config;
    config.k = 3;
    config.max_restarts = 5;
    auto result =
        cvcp::RunCopKMeans(data.points(), impossible, config, &rng);
    std::printf("4 mutually cannot-linked objects, k=3 -> %s\n\n",
                result.ok() ? "unexpectedly feasible!"
                            : result.status().ToString().c_str());
  }

  // --- Model selection with hard constraints. ---
  auto pool = cvcp::BuildConstraintPool(data, 0.10, &rng);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }
  cvcp::Supervision supervision =
      cvcp::Supervision::FromConstraints(pool.value());
  std::printf("supervision: %zu hard constraints\n",
              supervision.constraints().size());

  cvcp::CopKMeansClusterer clusterer;
  cvcp::CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6};
  auto report = cvcp::RunCvcp(data, supervision, clusterer, config, &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "CVCP failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const auto& s : report->scores) {
    std::printf("  k=%d  CV F=%.4f%s\n", s.param, s.score,
                s.param == report->best_param ? "   <- selected" : "");
  }

  // Hard semantics: every constraint must hold in the final clustering.
  size_t violated = 0;
  for (const cvcp::Constraint& c : supervision.constraints().all()) {
    const bool together = report->final_clustering.SameCluster(c.a, c.b);
    const bool want_together = c.type == cvcp::ConstraintType::kMustLink;
    if (together != want_together) ++violated;
  }
  std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  std::printf(
      "\nselected k=%d (true: %d); violated constraints: %zu of %zu; "
      "Overall F on unseen objects: %.4f\n",
      report->best_param, data.NumClasses(), violated,
      supervision.constraints().size(),
      cvcp::OverallFMeasure(data.labels(), report->final_clustering,
                            &exclude));
  return 0;
}
