// Scenario II walkthrough: the user has pairwise must-/cannot-link
// constraints (no labels) and wants the number of clusters k for MPCKMeans.
// Compares CVCP's choice against the Silhouette-coefficient baseline the
// paper uses (§4.3), on an ALOI-like image dataset.

#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "core/selectors.h"
#include "data/paper_suites.h"
#include "eval/external_measures.h"

int main() {
  cvcp::Rng rng(/*seed=*/7);
  cvcp::Dataset data = cvcp::MakeAloiK5Like(/*master_seed=*/20140324,
                                            /*index=*/4);
  std::printf("%s: %zu images, %zu colour-moment attributes, %d categories\n",
              data.name().c_str(), data.size(), data.dims(),
              data.NumClasses());

  // --- Constraint pool per the paper: all pairs among 10% of each class,
  //     then a 20% sample of that pool. ---
  auto pool = cvcp::BuildConstraintPool(data, 0.10, &rng);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }
  auto sampled = cvcp::SampleConstraints(pool.value(), 0.20, &rng);
  if (!sampled.ok()) {
    std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
    return 1;
  }
  cvcp::Supervision supervision =
      cvcp::Supervision::FromConstraints(sampled.value());
  std::printf("constraint pool: %zu pairs; provided to the algorithm: %zu\n",
              pool->size(), supervision.constraints().size());

  // --- CVCP over k = 2..10. ---
  cvcp::MpckMeansClusterer clusterer;
  cvcp::CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = cvcp::MakeKGrid(data.NumClasses());
  auto report = cvcp::RunCvcp(data, supervision, clusterer, config, &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "CVCP failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // --- Silhouette baseline on the same grid. ---
  cvcp::Rng sil_rng(11);
  auto sil = cvcp::SelectBySilhouette(data, supervision, clusterer,
                                      config.param_grid, &sil_rng);

  std::printf("\n  k    CVCP CV-F    silhouette\n");
  for (size_t gi = 0; gi < config.param_grid.size(); ++gi) {
    const auto& s = report->scores[gi];
    std::printf("  %2d   %.4f       %s\n", s.param, s.score,
                sil.ok() ? cvcp::FormatDouble(sil->silhouettes[gi]).c_str()
                         : "—");
  }
  std::printf("\nCVCP selects k=%d; Silhouette selects k=%d; true classes: "
              "%d\n",
              report->best_param, sil.ok() ? sil->best_param : -1,
              data.NumClasses());

  // --- Which choice was externally better? ---
  std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  const double cvcp_f =
      cvcp::OverallFMeasure(data.labels(), report->final_clustering, &exclude);
  std::printf("Overall F at CVCP's k:       %.4f\n", cvcp_f);
  if (sil.ok()) {
    const double sil_f = cvcp::OverallFMeasure(data.labels(),
                                               sil->best_clustering, &exclude);
    std::printf("Overall F at Silhouette's k: %.4f\n", sil_f);
  }
  return 0;
}
