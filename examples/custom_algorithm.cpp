// Plugging your own algorithm into CVCP: the framework selects parameters
// for anything that implements SemiSupervisedClusterer. Here we wrap a
// naive "cut the OPTICSDend dendrogram into p clusters" method — no
// constraint use at all — and let CVCP pick p purely from how well the cuts
// agree with the held-out constraints. This mirrors the paper's point that
// the evaluation lens (constraint classification) is independent of how the
// clusterer consumes supervision.

#include <cstdio>

#include "cluster/dendrogram.h"
#include "cluster/optics.h"
#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cvcp.h"
#include "data/generators.h"
#include "eval/external_measures.h"

namespace {

/// Unsupervised hierarchy cutter: parameter = number of clusters. Builds
/// the OPTICSDend dendrogram (fixed MinPts) and descends the highest
/// merges until `param` subtrees remain.
class DendrogramCutClusterer : public cvcp::SemiSupervisedClusterer {
 public:
  std::string name() const override { return "OPTICSDend-cut"; }
  std::string param_name() const override { return "clusters"; }

 protected:
  cvcp::Result<cvcp::Clustering> DoCluster(
      const cvcp::Dataset& data, const cvcp::Supervision& supervision,
      int param, cvcp::Rng* rng,
      const cvcp::ClusterContext& context) const override {
    (void)supervision;  // deliberately unsupervised
    (void)rng;
    (void)context;  // recomputes its hierarchy; see DatasetCache for reuse
    cvcp::OpticsConfig config;
    config.min_pts = 4;
    auto optics = cvcp::RunOptics(data.points(), config);
    if (!optics.ok()) return optics.status();
    cvcp::Dendrogram dg = cvcp::Dendrogram::FromReachability(optics.value());

    // Repeatedly split the widest remaining subtree (largest height).
    std::vector<int> frontier = {dg.root()};
    while (static_cast<int>(frontier.size()) < param) {
      int widest = -1;
      double best_h = -1.0;
      for (size_t i = 0; i < frontier.size(); ++i) {
        const auto& nd = dg.node(frontier[i]);
        if (!nd.is_leaf() && nd.height > best_h) {
          best_h = nd.height;
          widest = static_cast<int>(i);
        }
      }
      if (widest < 0) break;  // only leaves left
      const auto nd = dg.node(frontier[static_cast<size_t>(widest)]);
      frontier[static_cast<size_t>(widest)] = nd.left;
      frontier.push_back(nd.right);
    }
    std::vector<int> assignment(data.size(), cvcp::kNoise);
    for (size_t c = 0; c < frontier.size(); ++c) {
      for (size_t obj : dg.MembersOf(frontier[c])) {
        assignment[obj] = static_cast<int>(c);
      }
    }
    return cvcp::Clustering(std::move(assignment));
  }
};

}  // namespace

int main() {
  cvcp::Rng rng(3);
  cvcp::Dataset data =
      cvcp::MakeBlobs("custom-demo", 5, 30, 2, 40.0, 1.0, &rng);
  auto labeled = cvcp::SampleLabeledObjects(data, 0.15, &rng);
  if (!labeled.ok()) {
    std::fprintf(stderr, "%s\n", labeled.status().ToString().c_str());
    return 1;
  }
  cvcp::Supervision supervision =
      cvcp::Supervision::FromLabels(data, labeled.value());

  DendrogramCutClusterer clusterer;
  cvcp::CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = {2, 3, 4, 5, 6, 7, 8};
  auto report = cvcp::RunCvcp(data, supervision, clusterer, config, &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "CVCP failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("CVCP over a custom (fully unsupervised) clusterer \"%s\":\n\n",
              clusterer.name().c_str());
  for (const auto& s : report->scores) {
    std::printf("  %s=%d  CV F=%.4f%s\n", clusterer.param_name().c_str(),
                s.param, s.score,
                s.param == report->best_param ? "   <- selected" : "");
  }
  std::vector<bool> exclude = supervision.InvolvementMask(data.size());
  std::printf("\nselected %d clusters (true: %d); Overall F on unseen "
              "objects: %.4f\n",
              report->best_param, data.NumClasses(),
              cvcp::OverallFMeasure(data.labels(), report->final_clustering,
                                    &exclude));
  return 0;
}
