// Scenario I walkthrough on real data: the user has labels for 10% of the
// Iris flowers and wants the best MinPts for density-based semi-supervised
// clustering (FOSC-OPTICSDend). Mirrors the paper's §3.1.1 setup and prints
// every intermediate the framework produces:
//   supervision -> per-fold splits -> per-MinPts CV scores -> selection ->
//   final clustering vs ground truth (on the objects CVCP never saw).

#include <cstdio>

#include "common/rng.h"
#include "constraints/oracle.h"
#include "core/cross_validation.h"
#include "core/cvcp.h"
#include "data/iris.h"
#include "data/paper_suites.h"
#include "eval/external_measures.h"

int main() {
  cvcp::Rng rng(/*seed=*/20140324);
  cvcp::Dataset iris = cvcp::MakeIris();
  std::printf("Iris: %zu flowers, %zu attributes, %d species\n", iris.size(),
              iris.dims(), iris.NumClasses());

  // --- Supervision: 10% labeled objects. ---
  auto labeled = cvcp::SampleLabeledObjects(iris, 0.10, &rng);
  if (!labeled.ok()) {
    std::fprintf(stderr, "%s\n", labeled.status().ToString().c_str());
    return 1;
  }
  cvcp::Supervision supervision =
      cvcp::Supervision::FromLabels(iris, labeled.value());
  std::printf("labeled objects: %zu  => derived constraints: %zu "
              "(%zu must-link, %zu cannot-link)\n",
              supervision.involved_objects().size(),
              supervision.constraints().size(),
              supervision.constraints().num_must_links(),
              supervision.constraints().num_cannot_links());

  // --- Peek at one CV split to see the sound fold construction. ---
  {
    cvcp::Rng peek_rng(1);
    auto folds = cvcp::MakeSupervisionFolds(iris, supervision, {.n_folds = 5},
                                            &peek_rng);
    if (folds.ok()) {
      const cvcp::FoldSplit& f = folds->front();
      std::printf(
          "fold 1 of 5: %zu train objects (%zu constraints) / %zu test "
          "objects (%zu constraints), zero overlap by construction\n",
          f.train_objects.size(), f.train_constraints.size(),
          f.test_objects.size(), f.test_constraints.size());
    }
  }

  // --- CVCP over the paper's MinPts grid. ---
  cvcp::FoscOpticsDendClusterer clusterer;
  cvcp::CvcpConfig config;
  config.cv.n_folds = 5;
  config.param_grid = cvcp::DefaultMinPtsGrid();
  auto report = cvcp::RunCvcp(iris, supervision, clusterer, config, &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "CVCP failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n MinPts   cross-validated constraint F-measure\n");
  for (const auto& s : report->scores) {
    std::printf("   %2d     %.4f  (%d valid folds)%s\n", s.param, s.score,
                s.valid_folds,
                s.param == report->best_param ? "   <- selected" : "");
  }

  // --- External check on the objects not involved in supervision. ---
  std::vector<bool> exclude = supervision.InvolvementMask(iris.size());
  const double overall_f =
      cvcp::OverallFMeasure(iris.labels(), report->final_clustering, &exclude);
  std::printf(
      "\nfinal model: MinPts=%d -> %d clusters, %zu noise points\n",
      report->best_param, report->final_clustering.NumClusters(),
      report->final_clustering.NumNoise());
  std::printf("Overall F-Measure vs ground truth (unseen objects): %.4f\n",
              overall_f);
  return 0;
}
