#!/usr/bin/env python3
"""Runs clang-tidy over every first-party TU in a compile database.

Thin wrapper so CI and developers invoke the same thing:

    python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                                    [--filter REGEX]

* Reads compile_commands.json from the build dir (configure with
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
* Keeps only first-party TUs (src/, bench/, tests/, tools/) — vendored
  third-party code (e.g. a FetchContent'd googletest) is not ours to
  lint.
* Runs clang-tidy with the repo-root .clang-tidy profile, in parallel,
  and exits non-zero when any TU has findings.
* Exits 0 with a notice when clang-tidy is not installed: local trees
  without LLVM stay usable; the CI job installs clang-tidy and is the
  enforcement point.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIRST_PARTY = tuple(
    os.path.join(REPO_ROOT, d) + os.sep
    for d in ("src", "bench", "tests", "tools"))


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15"):
        if shutil.which(name):
            return name
    return None


def load_tus(build_dir, pattern):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"error: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return None
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    tus = []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if not path.startswith(FIRST_PARTY):
            continue
        if pattern and not re.search(pattern, path):
            continue
        tus.append(path)
    return sorted(set(tus))


def main():
    parser = argparse.ArgumentParser(
        description="clang-tidy over first-party TUs")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 2)
    parser.add_argument("--filter", default="",
                        help="only TUs whose path matches this regex")
    parser.add_argument("--clang-tidy", default="",
                        help="explicit clang-tidy binary")
    args = parser.parse_args()

    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        print("clang-tidy not found on PATH; skipping (the CI "
              "clang-tidy job is the enforcement point)")
        return 0

    build_dir = os.path.join(REPO_ROOT, args.build_dir) \
        if not os.path.isabs(args.build_dir) else args.build_dir
    tus = load_tus(build_dir, args.filter)
    if tus is None:
        return 2
    if not tus:
        print("no first-party TUs matched", file=sys.stderr)
        return 2

    print(f"{binary}: {len(tus)} TU(s), {args.jobs} job(s)")
    failed = []

    def run_one(path):
        proc = subprocess.run(
            [binary, "-p", build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, out, err in pool.map(run_one, tus):
            rel = os.path.relpath(path, REPO_ROOT)
            if code != 0:
                failed.append(rel)
                sys.stdout.write(f"FAIL {rel}\n{out}\n")
                if err.strip():
                    sys.stdout.write(err + "\n")
            else:
                sys.stdout.write(f"ok   {rel}\n")

    if failed:
        print(f"\n{len(failed)} TU(s) with findings:")
        for rel in failed:
            print(f"  {rel}")
        return 1
    print("\nclean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
