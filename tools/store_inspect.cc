// store_inspect: command-line inspector for an artifact store directory
// (the --store DIR the benches write). Subcommands:
//
//   store_inspect ls DIR      list every artifact: kind, storage mode
//                             (f64/f32), bytes, validity, and the decoded
//                             key fields (dataset hash, metric, MinPts)
//   store_inspect verify DIR  same listing, but exit nonzero if any file
//                             fails full frame validation (bad magic,
//                             CRC mismatch, version skew, truncation) or
//                             if a filename's storage mode disagrees with
//                             the record type in its payload
//   store_inspect purge DIR   delete every artifact and stale temp file
//   store_inspect purge-tmp DIR
//                             delete only orphaned `*.tmp.*` files left
//                             by crashed writers, keeping every artifact
//
// `verify` is the offline counterpart of the store's read path: a file it
// flags would be classified as a miss (and recomputed) by the next bench
// run, never misread. `purge-tmp` is only safe when no process is
// actively writing to the store — an in-flight temp file looks exactly
// like an orphan.

#include <cstdio>
#include <string>

#include "core/artifact_store.h"

namespace {

using namespace cvcp;  // NOLINT

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ls|verify|purge|purge-tmp DIR\n"
               "  ls        list every artifact with kind, bytes, validity\n"
               "  verify    like ls, but exit 1 if any artifact is invalid\n"
               "  purge     delete every artifact and stale temp file\n"
               "  purge-tmp delete only orphaned *.tmp.* files (no writer "
               "may be live)\n",
               argv0);
  return 2;
}

int RunList(ArtifactStore& store, bool fail_on_invalid) {
  auto listed = store.List();
  if (!listed.ok()) {
    std::fprintf(stderr, "%s\n", listed.status().ToString().c_str());
    return 1;
  }
  size_t invalid = 0;
  uint64_t total_bytes = 0;
  for (const ArtifactFileInfo& file : listed.value()) {
    total_bytes += file.bytes;
    if (!file.valid) ++invalid;
    std::printf("%-13s %-4s %10llu  %-3s %s",
                ArtifactKindName(static_cast<ArtifactKind>(file.kind)),
                file.storage.empty() ? "-" : file.storage.c_str(),
                static_cast<unsigned long long>(file.bytes),
                file.valid ? "ok" : "BAD", file.filename.c_str());
    if (!file.decoded_key.empty()) {
      std::printf("  [%s]", file.decoded_key.c_str());
    }
    if (!file.valid) std::printf(" -- %s", file.detail.c_str());
    std::printf("\n");
  }
  std::printf("%zu artifacts, %llu bytes, %zu invalid\n",
              listed.value().size(),
              static_cast<unsigned long long>(total_bytes), invalid);
  return fail_on_invalid && invalid > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage(argv[0]);
  const std::string command = argv[1];
  ArtifactStore store(argv[2]);
  if (command == "ls") return RunList(store, /*fail_on_invalid=*/false);
  if (command == "verify") return RunList(store, /*fail_on_invalid=*/true);
  if (command == "purge") {
    auto purged = store.Purge();
    if (!purged.ok()) {
      std::fprintf(stderr, "%s\n", purged.status().ToString().c_str());
      return 1;
    }
    std::printf("purged %zu files from %s\n", purged.value(), argv[2]);
    return 0;
  }
  if (command == "purge-tmp") {
    auto swept = store.SweepOrphanTemps();
    if (!swept.ok()) {
      std::fprintf(stderr, "%s\n", swept.status().ToString().c_str());
      return 1;
    }
    std::printf("removed %llu orphaned temp files from %s\n",
                static_cast<unsigned long long>(swept.value()), argv[2]);
    return 0;
  }
  return Usage(argv[0]);
}
