#!/usr/bin/env python3
"""Checks that relative markdown links point at files that exist.

Scans every tracked *.md file in the repository for inline links
(``[text](target)``) and reference definitions (``[label]: target``),
skips external schemes (http/https/mailto) and pure in-page anchors, and
verifies that each remaining target resolves to a file or directory
relative to the linking file. ``#fragment`` suffixes are stripped before
the existence check; fragments themselves are only validated against the
anchors of markdown targets when the target file is part of the scan.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link). Run from anywhere inside the repository:

    python3 tools/check_markdown_links.py
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True, capture_output=True, text=True,
    )
    return Path(out.stdout.strip())


def markdown_files(root: Path) -> list[Path]:
    # --others --exclude-standard: also scan new, not-yet-committed docs.
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        check=True, capture_output=True, text=True, cwd=root,
    )
    return [root / line for line in out.stdout.splitlines() if line]


def github_anchor(heading: str) -> str:
    """GitHub's slugger: lowercase, drop punctuation, spaces to dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = path.read_text(encoding="utf-8")
    return {github_anchor(m.group(1)) for m in HEADING.finditer(text)}


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    known_md = {path.resolve() for path in files}
    errors = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
        for target in targets:
            if EXTERNAL.match(target) or target.startswith("//"):
                continue
            base, _, fragment = target.partition("#")
            if not base:  # in-page anchor
                resolved = path.resolve()
            else:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(root)}: broken link -> {target}")
                    continue
            if fragment and resolved in known_md:
                if github_anchor(fragment) not in anchors_of(resolved):
                    errors.append(
                        f"{path.relative_to(root)}: missing anchor -> "
                        f"{target}")
    for error in errors:
        print(error)
    checked = len(files)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} markdown "
              "file(s)")
        return 1
    print(f"all relative links OK across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
